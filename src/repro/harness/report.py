"""Text renderers: print each experiment as the paper's rows/series.

Each ``render_*`` takes the corresponding experiment result and returns a
string (also printable by the CLI-style examples). Keeping rendering apart
from measurement lets tests assert on data and humans read tables.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.harness import experiments as ex


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}MB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}KB"
    return f"{n}B"


def _rule(width: int = 78) -> str:
    return "-" * width


def render_table1(rows: Dict[str, str]) -> str:
    out = ["TABLE I: GPU HARDWARE PARAMETERS", _rule()]
    for key, val in rows.items():
        out.append(f"{key:<42s} {val}")
    return "\n".join(out)


def render_table2(rows: List[ex.Characteristics]) -> str:
    out = [
        "TABLE II: BENCHMARK CHARACTERISTICS",
        _rule(),
        f"{'Bench':8s} {'Instr':>9s} {'Shared%':>8s} {'ShRd%':>6s} "
        f"{'Global%':>8s} {'GlRd%':>6s} {'Atomics':>8s} {'Barr':>6s} "
        f"{'Fence':>6s}",
    ]
    for r in rows:
        out.append(
            f"{r.name:8s} {r.instructions:>9d} {r.shared_access_pct:>7.1f}% "
            f"{r.shared_read_pct:>5.1f}% {r.global_access_pct:>7.1f}% "
            f"{r.global_read_pct:>5.1f}% {r.atomics:>8d} {r.barriers:>6d} "
            f"{r.fences:>6d}"
        )
    return "\n".join(out)


def render_effectiveness(rows: List[ex.EffectivenessRow]) -> str:
    out = [
        "EFFECTIVENESS: REAL RACES (paper VI-A)",
        _rule(),
        f"{'Bench':8s} {'Shared':>7s} {'Global':>7s}  categories / kinds",
    ]
    for r in rows:
        extra = ""
        if r.single_block_clean is not None:
            extra = (" [race-free config clean]" if r.single_block_clean
                     else " [race-free config NOT clean!]")
        out.append(
            f"{r.name:8s} {r.shared_races:>7d} {r.global_races:>7d}  "
            f"{r.by_category} {r.by_kind}{extra}"
        )
    return "\n".join(out)


def render_injected(results: List[ex.InjectedResult]) -> str:
    detected = sum(1 for r in results if r.detected)
    out = [
        f"INJECTED RACES: {detected}/{len(results)} detected "
        f"(paper: 41/41)",
        _rule(),
    ]
    for r in results:
        sites = ",".join(r.spec.omit + r.spec.emit)
        mark = "DETECTED" if r.detected else "MISSED  "
        out.append(
            f"{mark} {r.spec.bench:8s} {r.spec.category:8s} {sites:24s} "
            f"(+{r.new_races} races)"
        )
    return "\n".join(out)


def render_table3(rows: List[ex.GranularityRow],
                  granularities: Sequence[int] = ex.GRANULARITIES) -> str:
    hdr = " ".join(f"{g:>4d}B" for g in granularities)
    out = [
        "TABLE III: FALSE RACES vs TRACKING GRANULARITY "
        "(distinct entries / thread pairs)",
        _rule(),
        f"{'Bench':8s} shared: {hdr}    global: {hdr}",
    ]
    for r in rows:
        sh = " ".join(f"{r.shared[g][0]:>5d}" for g in granularities)
        gl = " ".join(f"{r.global_[g][0]:>5d}" for g in granularities)
        out.append(f"{r.name:8s}         {sh}            {gl}")
    return "\n".join(out)


def render_bloom(rows: List[ex.BloomRow]) -> str:
    out = [
        "BLOOM SIGNATURE ACCURACY (paper VI-A2)",
        _rule(),
        f"{'Bits':>5s} {'Bins':>5s} {'Miss rate':>10s} {'Paper':>8s}",
    ]
    for r in rows:
        paper = f"{r.expected_2bin:.4f}" if r.expected_2bin else "-"
        out.append(
            f"{r.sig_bits:>5d} {r.bins:>5d} {r.miss_rate:>10.4f} {paper:>8s}"
        )
    return "\n".join(out)


def render_idsizes(rows: List[ex.IdSizeRow]) -> str:
    out = [
        "SYNC/FENCE ID INCREMENTS (paper VI-A2: small, 8-bit suffices)",
        _rule(),
        f"{'Bench':8s} {'maxSync':>8s} {'maxFence':>9s} {'overflow':>9s}",
    ]
    for r in rows:
        ovf = r.sync_overflows + r.fence_overflows
        out.append(
            f"{r.name:8s} {r.max_sync_increments:>8d} "
            f"{r.max_fence_increments:>9d} {ovf:>9d}"
        )
    return "\n".join(out)


def render_fig7(result: ex.Fig7Result) -> str:
    out = [
        "FIG 7: NORMALIZED EXECUTION TIME (baseline = detection off)",
        _rule(),
        f"{'Bench':8s} {'Shared':>8s} {'Shr+Glb':>8s} {'Software':>9s} "
        f"{'GRace':>10s}",
    ]
    for r in result.rows:
        sw = f"{r.software_norm:>8.2f}x" if r.software_norm else "        -"
        gr = f"{r.grace_norm:>9.1f}x" if r.grace_norm else "         -"
        out.append(
            f"{r.name:8s} {r.shared_norm:>8.3f} {r.full_norm:>8.3f} {sw} {gr}"
        )
    out.append(_rule())
    out.append(
        f"{'GEOMEAN':8s} {result.shared_geomean:>8.3f} "
        f"{result.full_geomean:>8.3f}   (paper: 1.01 / 1.27)"
    )
    return "\n".join(out)


def render_fig8(rows: List[ex.Fig8Row]) -> str:
    out = [
        "FIG 8: SHARED SHADOW ENTRIES IN HARDWARE vs GLOBAL MEMORY",
        _rule(),
        f"{'Bench':8s} {'HW shadow':>10s} {'SW shadow':>10s} "
        f"{'L1 misses':>10s}",
    ]
    for r in rows:
        out.append(
            f"{r.name:8s} {r.hardware_norm:>10.3f} "
            f"{r.software_split_norm:>10.3f} {r.shadow_l1_misses:>10d}"
        )
    return "\n".join(out)


def render_fig9(rows: List[ex.Fig9Row]) -> str:
    out = [
        "FIG 9: AVERAGE DRAM BANDWIDTH UTILIZATION",
        _rule(),
        f"{'Bench':8s} {'Base':>7s} {'Shared':>7s} {'Shr+Glb':>8s} "
        f"{'L1 hit':>7s}",
    ]
    for r in rows:
        out.append(
            f"{r.name:8s} {r.baseline_util:>6.1%} {r.shared_util:>6.1%} "
            f"{r.full_util:>7.1%} {r.l1_hit_rate:>6.1%}"
        )
    return "\n".join(out)


def render_table4(rows: List[ex.Table4Row]) -> str:
    out = [
        "TABLE IV: GLOBAL SHADOW MEMORY OVERHEAD (4-byte granularity)",
        _rule(),
        f"{'Bench':8s} {'Data':>9s} {'Shadow':>9s} {'@paper inputs':>14s}",
    ]
    for r in rows:
        out.append(
            f"{r.name:8s} {_fmt_bytes(r.data_bytes):>9s} "
            f"{_fmt_bytes(r.shadow_bytes):>9s} "
            f"{_fmt_bytes(r.paper_projection_bytes):>14s}"
        )
    return "\n".join(out)


def render_hw_cost(report: Dict) -> str:
    c = report["comparators"]
    s = report["storage"]
    return "\n".join([
        "HARDWARE OVERHEAD (paper VI-C2)",
        _rule(),
        f"shared shadow entry: {report['shared_entry_bits']} bits "
        "(paper: 12)",
        f"global shadow entry: {report['global_entry_bits_basic']} basic / "
        f"{report['global_entry_bits_fence']} +fence / "
        f"{report['global_entry_bits_full']} +atomic bits "
        "(paper: 28 / 36 / 52)",
        f"shared comparators per SM: {c.shared_per_sm} x "
        f"{c.shared_width_bits}-bit (paper: 8 x 12-bit)",
        f"global comparators per slice: {c.global_basic_per_slice} x "
        f"{c.global_basic_width_bits}-bit + {c.global_id_per_slice} x "
        f"{c.global_id_width_bits}-bit (paper: 32 x 28-bit + 16 x 24-bit)",
        f"shared shadow storage per Fermi SM: "
        f"{_fmt_bytes(s.shared_shadow_per_sm)} (paper: 4.5KB)",
        f"ID storage per Fermi SM: {_fmt_bytes(s.id_storage_per_sm)} "
        "(paper: 3KB)",
        f"race register file per slice: "
        f"{_fmt_bytes(s.race_register_file_per_slice)} (paper: 0.75KB)",
    ])
