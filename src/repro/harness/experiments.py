"""One experiment function per paper table/figure (DESIGN.md index).

Every function returns plain data (dataclasses / dicts / lists) so that
tests can assert on it and :mod:`repro.harness.report` can render it. The
experiments use the scaled GPU configuration (see
:func:`repro.common.config.scaled_gpu_config`) unless noted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.injection import INJECTION_CATALOG, InjectionSpec
from repro.bench.suite import SUITE, Characteristics
from repro.common.config import (
    DetectionMode,
    DetectorBackend,
    GPUConfig,
    HAccRGConfig,
)
from repro.common.types import MemSpace
from repro.core.bloom import BloomSignature
from repro.core.hw_cost import comparator_budget, storage_budget
from repro.core.shadow_memory import global_shadow_footprint
from repro.harness.runner import run_benchmark

ALL_BENCH = [b.name for b in SUITE]

#: word-granularity detection config used by the effectiveness experiments
#: (§VI-A: "we track the shared and global memory accesses at the word
#: granularities")
WORD_CONFIG = HAccRGConfig(mode=DetectionMode.FULL, shared_granularity=4,
                           global_granularity=4)

#: race-free build overrides per benchmark (documented real bugs disabled)
RACE_FREE_OVERRIDES: Dict[str, Dict[str, object]] = {
    "SCAN": {"num_blocks": 1},
    "KMEANS": {"num_update_blocks": 1},
    "OFFT": {"fix_bug": True},
}


# ---------------------------------------------------------------------------
# table1: GPU hardware parameters
# ---------------------------------------------------------------------------

def table1_config(gpu_config: Optional[GPUConfig] = None) -> Dict[str, str]:
    """Table I rows from the configuration object."""
    return (gpu_config or GPUConfig()).describe()


# ---------------------------------------------------------------------------
# table2: benchmark characteristics
# ---------------------------------------------------------------------------

def table2_characteristics(names: Sequence[str] = ALL_BENCH,
                           scale: float = 1.0) -> List[Characteristics]:
    """Dynamic instruction/access mix per benchmark (timing off)."""
    rows = []
    for name in names:
        res = run_benchmark(name, None, scale=scale, timing_enabled=False,
                            **RACE_FREE_OVERRIDES.get(name, {}))
        rows.append(Characteristics.from_stats(name, res.stats))
    return rows


# ---------------------------------------------------------------------------
# effectiveness: real races (§VI-A)
# ---------------------------------------------------------------------------

@dataclass
class EffectivenessRow:
    name: str
    shared_races: int
    global_races: int
    by_category: Dict[str, int]
    by_kind: Dict[str, int]
    single_block_clean: Optional[bool] = None  # for SCAN/KMEANS/OFFT


def effectiveness_real_races(names: Sequence[str] = ALL_BENCH,
                             scale: float = 1.0) -> List[EffectivenessRow]:
    """Run every benchmark as shipped; report detected races.

    Reproduces §VI-A: no shared-memory races anywhere; global races only
    in SCAN and KMEANS (multi-block scaling bugs) and OFFT (mirror-index
    WAR); the fixed/single-block configurations are clean.
    """
    rows = []
    for name in names:
        res = run_benchmark(name, WORD_CONFIG, scale=scale,
                            timing_enabled=False)
        clean = None
        if name in RACE_FREE_OVERRIDES:
            fixed = run_benchmark(name, WORD_CONFIG, scale=scale,
                                  timing_enabled=False, verify=True,
                                  **RACE_FREE_OVERRIDES[name])
            clean = len(fixed.races) == 0
        rows.append(EffectivenessRow(
            name=name,
            shared_races=res.shared_races(),
            global_races=res.global_races(),
            by_category={c.name: n for c, n in res.races.by_category().items()},
            by_kind={k.name: n for k, n in res.races.by_kind().items()},
            single_block_clean=clean,
        ))
    return rows


# ---------------------------------------------------------------------------
# injected: the 41 injected races (§VI-A)
# ---------------------------------------------------------------------------

@dataclass
class InjectedResult:
    spec: InjectionSpec
    detected: bool
    new_races: int
    categories: Dict[str, int]


def effectiveness_injected_races(scale: float = 1.0,
                                 catalog: Sequence[InjectionSpec] = tuple(
                                     INJECTION_CATALOG)
                                 ) -> List[InjectedResult]:
    """Inject each catalogued race and check HAccRG detects something new.

    ``detected`` compares against the same configuration *without* the
    injection, so benchmarks with documented real races still count only
    the injected race's contribution.
    """
    results = []
    baseline_cache: Dict[Tuple, int] = {}
    for spec in catalog:
        overrides = spec.build_overrides()
        key = (spec.bench, tuple(sorted(overrides.items())))
        if key not in baseline_cache:
            base = run_benchmark(spec.bench, WORD_CONFIG, scale=scale,
                                 timing_enabled=False, **overrides)
            baseline_cache[key] = len(base.races)
        res = run_benchmark(spec.bench, WORD_CONFIG, scale=scale,
                            timing_enabled=False,
                            injection=spec.injection(), **overrides)
        new = len(res.races) - baseline_cache[key]
        results.append(InjectedResult(
            spec=spec,
            detected=new > 0,
            new_races=new,
            categories={c.name: n for c, n in res.races.by_category().items()},
        ))
    return results


# ---------------------------------------------------------------------------
# table3: false positives vs tracking granularity
# ---------------------------------------------------------------------------

GRANULARITIES = (4, 8, 16, 32, 64)


@dataclass
class GranularityRow:
    name: str
    #: granularity -> (distinct false races, distinct falsely-racing pairs)
    shared: Dict[int, Tuple[int, int]]
    global_: Dict[int, Tuple[int, int]]


def table3_granularity(names: Sequence[str] = ALL_BENCH,
                       granularities: Sequence[int] = GRANULARITIES,
                       scale: float = 1.0) -> List[GranularityRow]:
    """False races as tracking granularity coarsens (4 B ... 64 B).

    Benchmarks run in their race-free configurations so that *every*
    reported race is a false positive. The paper's Table III metric is the
    count of reported false data races; we report both the distinct-entry
    count and the distinct thread-pair count (coarser entries aggregate
    more threads, so pairs grow while entries shrink).

    Each benchmark executes once; the granularity sweep replays its
    recorded access trace through fresh detection structures (replay is
    bit-identical to live hardware detection — see
    :mod:`repro.harness.trace` — and an order of magnitude cheaper than
    re-simulating per configuration).
    """
    from repro.harness.trace import record, replay

    rows = []
    for name in names:
        overrides = RACE_FREE_OVERRIDES.get(name, {})
        events = record(name, scale=scale, **overrides)
        sh: Dict[int, Tuple[int, int]] = {}
        gl: Dict[int, Tuple[int, int]] = {}
        for g in granularities:
            log = replay(events, HAccRGConfig(mode=DetectionMode.SHARED,
                                              shared_granularity=g))
            sh[g] = (len(log), log.distinct_pairs(MemSpace.SHARED))
            log = replay(events, HAccRGConfig(mode=DetectionMode.GLOBAL,
                                              global_granularity=g))
            gl[g] = (len(log), log.distinct_pairs(MemSpace.GLOBAL))
        rows.append(GranularityRow(name=name, shared=sh, global_=gl))
    return rows


# ---------------------------------------------------------------------------
# bloom: signature size/bins accuracy (§VI-A2)
# ---------------------------------------------------------------------------

@dataclass
class BloomRow:
    sig_bits: int
    bins: int
    miss_rate: float
    expected_2bin: Optional[float]  # paper's value for the 2-bin points


def bloom_accuracy_study(num_addresses: int = 1 << 20,
                         seed: int = 7) -> List[BloomRow]:
    """Stress a million lock addresses through every signature geometry.

    Paper §VI-A2: 8/16/32-bit signatures with 2 bins miss 25 % / 12.5 % /
    6.25 % of injected races; 2 bins beat 4 bins at equal size.
    """
    rng = np.random.Generator(np.random.PCG64(seed))
    addrs = rng.integers(0, 1 << 30, size=num_addresses, dtype=np.int64) * 4
    rows = []
    paper = {(8, 2): 0.25, (16, 2): 0.125, (32, 2): 0.0625}
    for bits in (8, 16, 32):
        for bins in (2, 4):
            sig = BloomSignature(bits, bins)
            rows.append(BloomRow(
                sig_bits=bits,
                bins=bins,
                miss_rate=sig.miss_rate(addrs),
                expected_2bin=paper.get((bits, bins)),
            ))
    return rows


# ---------------------------------------------------------------------------
# idsizes: sync/fence ID increment study (§VI-A2)
# ---------------------------------------------------------------------------

@dataclass
class IdSizeRow:
    name: str
    max_sync_increments: int
    max_fence_increments: int
    sync_overflows: int
    fence_overflows: int


def id_size_study(names: Sequence[str] = ALL_BENCH,
                  scale: float = 1.0) -> List[IdSizeRow]:
    """Measure logical-clock increments; 8-bit IDs must never overflow."""
    rows = []
    for name in names:
        res = run_benchmark(name, WORD_CONFIG, scale=scale,
                            timing_enabled=False,
                            **RACE_FREE_OVERRIDES.get(name, {}))
        st = res.id_stats
        rows.append(IdSizeRow(
            name=name,
            max_sync_increments=st.max_sync_increments,
            max_fence_increments=st.max_fence_increments,
            sync_overflows=st.sync_overflows,
            fence_overflows=st.fence_overflows,
        ))
    return rows


# ---------------------------------------------------------------------------
# fig7: performance impact
# ---------------------------------------------------------------------------

@dataclass
class Fig7Row:
    name: str
    baseline_cycles: int
    shared_norm: float
    full_norm: float
    software_norm: Optional[float] = None
    grace_norm: Optional[float] = None


@dataclass
class Fig7Result:
    rows: List[Fig7Row]
    shared_geomean: float
    full_geomean: float


def fig7_performance(names: Sequence[str] = ALL_BENCH,
                     software_names: Sequence[str] = ("SCAN", "HIST",
                                                      "KMEANS"),
                     scale: float = 1.0) -> Fig7Result:
    """Normalized execution time under each detection configuration.

    Paper Fig. 7 + §VI-B text: shared-only ~1 % geomean, shared+global
    ~27 % geomean; software HAccRG 6.6x/12.4x/18.1x on SCAN/HIST/KMEANS;
    GRace ~2 orders of magnitude beyond the software implementation.
    """
    rows = []
    for name in names:
        base = run_benchmark(name, None, scale=scale)
        shared = run_benchmark(
            name, HAccRGConfig(mode=DetectionMode.SHARED), scale=scale)
        full = run_benchmark(
            name, HAccRGConfig(mode=DetectionMode.FULL), scale=scale)
        row = Fig7Row(
            name=name,
            baseline_cycles=base.cycles,
            shared_norm=shared.cycles / base.cycles,
            full_norm=full.cycles / base.cycles,
        )
        if name in software_names:
            sw = run_benchmark(
                name,
                HAccRGConfig(mode=DetectionMode.FULL,
                             backend=DetectorBackend.SOFTWARE),
                scale=scale)
            gr = run_benchmark(
                name,
                HAccRGConfig(mode=DetectionMode.SHARED,
                             backend=DetectorBackend.GRACE),
                scale=scale)
            row.software_norm = sw.cycles / base.cycles
            row.grace_norm = gr.cycles / base.cycles
        rows.append(row)
    n = len(rows)
    return Fig7Result(
        rows=rows,
        shared_geomean=math.prod(r.shared_norm for r in rows) ** (1 / n),
        full_geomean=math.prod(r.full_norm for r in rows) ** (1 / n),
    )


# ---------------------------------------------------------------------------
# fig8: shared shadow entries stored in global memory
# ---------------------------------------------------------------------------

@dataclass
class Fig8Row:
    name: str
    hardware_norm: float      # shared shadow in dedicated hardware
    software_split_norm: float  # shared shadow in global memory
    shadow_l1_misses: int


def fig8_shadow_split(names: Sequence[str] = ALL_BENCH,
                      scale: float = 1.0) -> List[Fig8Row]:
    """Fig. 8: split the shared shadow between hardware and global memory.

    Both runs enable full (shared+global) detection; the split run stores
    the shared-memory shadow entries in device memory, fetched through the
    L1. Most benchmarks see a small penalty; OFFT suffers because one
    banked shared access spans many shadow lines.
    """
    rows = []
    for name in names:
        base = run_benchmark(name, None, scale=scale)
        hw = run_benchmark(
            name, HAccRGConfig(mode=DetectionMode.FULL), scale=scale)
        split = run_benchmark(
            name,
            HAccRGConfig(mode=DetectionMode.FULL, shared_shadow_in_global=True),
            scale=scale)
        rows.append(Fig8Row(
            name=name,
            hardware_norm=hw.cycles / base.cycles,
            software_split_norm=split.cycles / base.cycles,
            shadow_l1_misses=split.shared_shadow_misses,
        ))
    return rows


# ---------------------------------------------------------------------------
# fig9: DRAM bandwidth utilization
# ---------------------------------------------------------------------------

@dataclass
class Fig9Row:
    name: str
    baseline_util: float
    shared_util: float
    full_util: float
    l1_hit_rate: float


def fig9_bandwidth(names: Sequence[str] = ALL_BENCH,
                   scale: float = 1.0) -> List[Fig9Row]:
    """Average DRAM bandwidth utilization per detection configuration.

    Paper Fig. 9: shared detection leaves utilization unchanged; global
    detection raises it for benchmarks that lean on the L2 and barely
    moves it for high-L1-hit-rate benchmarks (SCAN, PSUM, KMEANS).
    """
    rows = []
    for name in names:
        base = run_benchmark(name, None, scale=scale)
        shared = run_benchmark(
            name, HAccRGConfig(mode=DetectionMode.SHARED), scale=scale)
        full = run_benchmark(
            name, HAccRGConfig(mode=DetectionMode.FULL), scale=scale)
        rows.append(Fig9Row(
            name=name,
            baseline_util=base.dram_utilization,
            shared_util=shared.dram_utilization,
            full_util=full.dram_utilization,
            l1_hit_rate=base.l1_hit_rate,
        ))
    return rows


# ---------------------------------------------------------------------------
# table4: global shadow memory overhead
# ---------------------------------------------------------------------------

@dataclass
class Table4Row:
    name: str
    data_bytes: int
    shadow_bytes: int
    paper_projection_bytes: int  # at the paper's input sizes


#: data footprints implied by the paper's inputs (Table II), in bytes,
#: used to re-project Table IV at full scale
PAPER_DATA_BYTES: Dict[str, int] = {
    "MCARLO": 256 * 4 * 4 + 64 * 1024 * 4,          # params + path samples
    "SCAN": 2 * 512 * 4,
    "FWALSH": 512 * 1024 * 4 * 2 + 32 * 4,
    "HIST": 16 * 1024 * 1024 + 256 * 4,
    "SORTNW": (12 * 1024 + 2 * 1024) * 4 * 2,
    "REDUCE": 1024 * 1024 * 4 + 4096 * 4,
    "PSUM": 16 * 1024 * 4 * 3,
    "OFFT": 256 * 256 * 4 * 2,
    "KMEANS": 100 * 10 * 4 * 2 + 4096,
    "HASH": 256 * 1024 * 4 + 16 * 1024 * 4 * 2,
}


def table4_memory_overhead(names: Sequence[str] = ALL_BENCH,
                           scale: float = 1.0,
                           granularity: int = 4) -> List[Table4Row]:
    """Global shadow footprint at 4-byte granularity (paper Table IV)."""
    rows = []
    for name in names:
        res = run_benchmark(name, None, scale=scale, timing_enabled=False,
                            **RACE_FREE_OVERRIDES.get(name, {}))
        rows.append(Table4Row(
            name=name,
            data_bytes=res.data_bytes,
            shadow_bytes=global_shadow_footprint(res.data_bytes,
                                                 granularity),
            paper_projection_bytes=global_shadow_footprint(
                PAPER_DATA_BYTES[name], granularity),
        ))
    return rows


# ---------------------------------------------------------------------------
# hwcost: §VI-C2 hardware overhead
# ---------------------------------------------------------------------------

def hw_cost_report(gpu_config: Optional[GPUConfig] = None,
                   detector_config: Optional[HAccRGConfig] = None) -> Dict:
    """Comparator and storage budgets (paper §VI-C2 numbers)."""
    gpu = gpu_config or GPUConfig()
    cfg = detector_config or HAccRGConfig()
    comps = comparator_budget(gpu, cfg)
    stor = storage_budget(gpu, cfg)
    return {
        "comparators": comps,
        "storage": stor,
        "shared_entry_bits": cfg.shared_entry_bits(),
        "global_entry_bits_basic": cfg.global_entry_bits(False, False),
        "global_entry_bits_fence": cfg.global_entry_bits(True, False),
        "global_entry_bits_full": cfg.global_entry_bits(True, True),
    }
