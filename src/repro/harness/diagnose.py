"""Race diagnosis: turn raw race reports into array-level bug summaries.

A raw :class:`RaceReport` names a byte address and two thread ids — useful
for the detector's evaluation, but a developer debugging a kernel wants
*which array*, *which elements*, and *what kind of bug*. This module maps
race addresses back to the named device allocations and groups the
reports into per-array findings with a suggested fix derived from the
race category (barrier / fence / lockset / stale-L1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.types import MemSpace, RaceCategory
from repro.core.races import RaceLog, RaceReport
from repro.gpu.device import DeviceMemory

_SUGGESTIONS = {
    RaceCategory.SHARED_BARRIER:
        "add a __syncthreads() between the conflicting shared-memory "
        "accesses (or restructure so only one warp touches the range)",
    RaceCategory.GLOBAL_BARRIER:
        "order the conflicting global accesses: a barrier if the threads "
        "share a block, or split the work so blocks own disjoint ranges",
    RaceCategory.GLOBAL_LOCKSET:
        "protect every access to this data with one common lock "
        "(a consistent bucket-to-lock mapping)",
    RaceCategory.GLOBAL_FENCE:
        "insert a __threadfence() after the producer's write and before "
        "the synchronization that publishes it",
}


@dataclass
class ArrayFinding:
    """All races attributed to one device array."""

    array: str
    base: int
    size: int
    races: int
    kinds: Dict[str, int]
    categories: Dict[str, int]
    element_range: Tuple[int, int]   # first/last racy byte offset
    blocks_involved: List[int]
    stale_l1: int = 0

    def headline(self) -> str:
        kinds = "/".join(sorted(self.kinds))
        lo, hi = self.element_range
        return (f"{self.array}: {self.races} {kinds} race(s) over bytes "
                f"[{lo}, {hi}] involving blocks {self.blocks_involved}")

    def suggestion(self) -> str:
        top = max(self.categories, key=self.categories.get)
        return _SUGGESTIONS[RaceCategory[top]]


@dataclass
class Diagnosis:
    findings: List[ArrayFinding]
    unattributed: int  # races whose address matched no named allocation

    def render(self) -> str:
        if not self.findings and not self.unattributed:
            return "no races detected."
        out = [f"{len(self.findings)} racy array(s):"]
        for f in self.findings:
            out.append(f"  - {f.headline()}")
            out.append(f"    fix: {f.suggestion()}")
        if self.unattributed:
            out.append(f"  ({self.unattributed} race(s) outside named "
                       "allocations)")
        return "\n".join(out)


def diagnose(log: RaceLog, device_mem: Optional[DeviceMemory] = None,
             shared_label: str = "<shared memory>") -> Diagnosis:
    """Group a race log into per-array findings.

    Global races are attributed through ``device_mem``'s named
    allocations; shared-memory races are grouped under ``shared_label``
    (per-block offsets, so the label is the kernel's shared declaration).
    """
    groups: Dict[Tuple[str, int, int], List[RaceReport]] = {}
    unattributed = 0
    for r in log.reports:
        if r.space == MemSpace.SHARED:
            key = (shared_label, 0, 0)
        else:
            alloc = (device_mem.allocation_of(r.addr)
                     if device_mem is not None else None)
            if alloc is None:
                unattributed += 1
                continue
            key = alloc
        groups.setdefault(key, []).append(r)

    findings = []
    for (name, base, size), races in sorted(groups.items(),
                                            key=lambda kv: -len(kv[1])):
        kinds: Dict[str, int] = {}
        cats: Dict[str, int] = {}
        offsets = []
        blocks = set()
        stale = 0
        for r in races:
            kinds[r.kind.name] = kinds.get(r.kind.name, 0) + 1
            cats[r.category.name] = cats.get(r.category.name, 0) + 1
            offsets.append(r.addr - base)
            blocks.add(r.owner_block)
            blocks.add(r.access_block)
            if r.stale_l1:
                stale += 1
        findings.append(ArrayFinding(
            array=name,
            base=base,
            size=size,
            races=len(races),
            kinds=kinds,
            categories=cats,
            element_range=(min(offsets), max(offsets)),
            blocks_involved=sorted(b for b in blocks if b >= 0),
            stale_l1=stale,
        ))
    return Diagnosis(findings=findings, unattributed=unattributed)
