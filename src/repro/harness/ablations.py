"""Ablation studies for the design choices DESIGN.md calls out.

Each ablation disables one mechanism of the detector and measures what it
was buying:

- **fence suppression** (§III-C): without the fence-ID check every fenced
  producer/consumer hand-off (REDUCE, PSUM, KMEANS, HASH) is reported as
  a false RAW race;
- **warp-aware suppression** (§III-A): comparing threads instead of warps
  (the re-grouping mode) turns lockstep-ordered intra-warp sharing into
  reported races;
- **lazy sync-ID increment** (§IV-B): incrementing at every barrier
  instead of only after global accesses inflates the logical clocks that
  8-bit counters must hold;
- **dirty-only shadow write-back**: writing every checked entry back
  (naive RDU) multiplies shadow DRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from repro.common.config import DetectionMode, HAccRGConfig
from repro.harness.experiments import RACE_FREE_OVERRIDES, WORD_CONFIG
from repro.harness.runner import run_benchmark


@dataclass
class AblationRow:
    name: str
    baseline: float
    ablated: float

    @property
    def delta(self) -> float:
        return self.ablated - self.baseline


def ablation_fence_suppression(
        names: Sequence[str] = ("REDUCE", "PSUM", "KMEANS", "HASH"),
        scale: float = 1.0) -> List[AblationRow]:
    """False races reported when the fence-ID check is disabled."""
    rows = []
    off = replace(WORD_CONFIG, fence_check_enabled=False)
    for name in names:
        overrides = RACE_FREE_OVERRIDES.get(name, {})
        base = run_benchmark(name, WORD_CONFIG, scale=scale,
                             timing_enabled=False, **overrides)
        abl = run_benchmark(name, off, scale=scale,
                            timing_enabled=False, **overrides)
        rows.append(AblationRow(name, float(len(base.races)),
                                float(len(abl.races))))
    return rows


def _warp_synchronous_reduce(ctx, g_in, g_out):
    """The classic SDK warp-synchronous reduction tail: the last five
    levels (s < 32) skip ``__syncthreads`` because a single warp's lanes
    are lockstep-ordered. Correct on real hardware *only* because of warp
    execution — exactly what the §III-A suppression encodes."""
    tid = ctx.tid_x
    sh = ctx.shared["sdata"]
    v = yield ctx.load(g_in, ctx.global_tid_x)
    yield ctx.store(sh, tid, v)
    yield ctx.syncthreads()
    s = ctx.block_dim.x // 2
    while s >= 32:
        if tid < s:
            a = yield ctx.load(sh, tid)
            b = yield ctx.load(sh, tid + s)
            yield ctx.store(sh, tid, a + b)
        yield ctx.syncthreads()
        s //= 2
    # warp-synchronous tail: no barriers below warp width
    while s > 0:
        if tid < s:
            a = yield ctx.load(sh, tid)
            b = yield ctx.load(sh, tid + s)
            yield ctx.store(sh, tid, a + b)
        s //= 2
    if tid == 0:
        r = yield ctx.load(sh, 0)
        yield ctx.store(g_out, ctx.block_id_x, r)


def ablation_warp_suppression(scale: float = 1.0) -> List[AblationRow]:
    """False races reported when warp-lockstep suppression is removed.

    Uses workloads that *depend* on lockstep ordering: the SDK-style
    warp-synchronous reduction tail (barrier-free below warp width) and
    HIST (one thread's byte counter is re-used by a warp-mate in a later
    iteration). With suppression both are race-free; comparing threads
    instead of warps (the re-grouping mode, §III-A) reports their
    intra-warp sharing.
    """
    import numpy as np

    from repro.common.config import scaled_gpu_config
    from repro.core.detector import HAccRGDetector
    from repro.gpu import GPUSimulator, Kernel

    rows = []
    for regroup in (False, True):
        cfg = replace(WORD_CONFIG, warp_regrouping=regroup)
        sim = GPUSimulator(scaled_gpu_config(), timing_enabled=False)
        det = HAccRGDetector(cfg, sim)
        sim.attach_detector(det)
        n = 512
        g_in = sim.malloc("wsr_in", n)
        g_out = sim.malloc("wsr_out", n // 128)
        g_in.host_write(np.arange(n, dtype=np.float64))
        sim.launch(Kernel(_warp_synchronous_reduce,
                          shared={"sdata": (128, 4)}),
                   grid=n // 128, block=128, args=(g_in, g_out))
        expected = np.arange(n).reshape(-1, 128).sum(axis=1)
        assert np.array_equal(g_out.host_read(), expected)
        if not regroup:
            base_races = len(det.log)
        else:
            rows.append(AblationRow("WSREDUCE", float(base_races),
                                    float(len(det.log))))

    regroup_cfg = replace(WORD_CONFIG, warp_regrouping=True)
    base = run_benchmark("HIST", WORD_CONFIG, scale=scale,
                         timing_enabled=False)
    abl = run_benchmark("HIST", regroup_cfg, scale=scale,
                        timing_enabled=False)
    rows.append(AblationRow("HIST", float(len(base.races)),
                            float(len(abl.races))))
    return rows


def ablation_sync_id_optimization(
        names: Sequence[str] = ("SORTNW", "FWALSH", "SCAN", "REDUCE"),
        scale: float = 1.0) -> List[AblationRow]:
    """Max sync-ID increments with/without the lazy-increment rule."""
    rows = []
    eager = replace(WORD_CONFIG, sync_id_lazy_increment=False)
    for name in names:
        overrides = RACE_FREE_OVERRIDES.get(name, {})
        base = run_benchmark(name, WORD_CONFIG, scale=scale,
                             timing_enabled=False, **overrides)
        abl = run_benchmark(name, eager, scale=scale,
                            timing_enabled=False, **overrides)
        rows.append(AblationRow(
            name,
            float(base.id_stats.max_sync_increments),
            float(abl.id_stats.max_sync_increments),
        ))
    return rows


def ablation_shadow_writeback(
        names: Sequence[str] = ("KMEANS", "MCARLO", "REDUCE"),
        scale: float = 1.0) -> List[AblationRow]:
    """RDU shadow-line transactions with dirty-only vs always-write RDUs.

    The metric is the RDU's L2-port traffic (shadow line RMWs issued):
    redundant write-backs mostly re-dirty lines that are already resident,
    so DRAM bytes barely move, but every extra transaction occupies the
    L2 and the interconnect.
    """
    rows = []
    naive = HAccRGConfig(mode=DetectionMode.FULL,
                         shadow_writeback_dirty_only=False)
    smart = HAccRGConfig(mode=DetectionMode.FULL)
    for name in names:
        overrides = RACE_FREE_OVERRIDES.get(name, {})
        base = run_benchmark(name, smart, scale=scale, **overrides)
        abl = run_benchmark(name, naive, scale=scale, **overrides)
        rows.append(AblationRow(
            name,
            float(base.shadow_transactions),
            float(abl.shadow_transactions),
        ))
    return rows


def render_ablation(title: str, rows: List[AblationRow],
                    base_label: str, abl_label: str) -> str:
    out = [f"ABLATION: {title}", "-" * 72,
           f"{'Bench':8s} {base_label:>16s} {abl_label:>16s}"]
    for r in rows:
        out.append(f"{r.name:8s} {r.baseline:>16.0f} {r.ablated:>16.0f}")
    return "\n".join(out)
