"""Experiment harness: one function per paper table/figure.

:mod:`repro.harness.runner` provides the uniform benchmark runner (build a
simulator, attach the requested detector, run the plan, collect a
:class:`RunResult`). :mod:`repro.harness.experiments` implements every
experiment of the DESIGN.md index; :mod:`repro.harness.report` renders
their results as the paper's rows/series.
"""

from repro.harness.runner import RunResult, run_benchmark
from repro.harness import experiments, report

__all__ = ["RunResult", "run_benchmark", "experiments", "report"]
