"""Access-trace recording and detector replay.

Detection experiments often re-run the same benchmark under many detector
configurations (granularity sweeps, ablations). The kernel execution —
generators, scheduling, functional memory — dominates that cost, yet the
access stream it produces is identical every time (execution is
deterministic and hardware detection never perturbs it). This module
splits the two:

- :class:`TraceRecorder` is an event-bus subscriber that captures every
  warp access plus the synchronization events (barriers with block
  sync-IDs, fences, kernel/block boundaries) as compact records — it can
  ride a live run alongside an attached detector (same bus, observer
  priority) or record standalone;
- :func:`replay` feeds a recorded trace back through any
  :class:`~repro.core.detector.HAccRGDetector`-compatible detector's
  *detection* structures, producing the identical race log at a fraction
  of the cost;
- traces serialize to/from a JSON-lines text format for offline analysis
  or cross-tool exchange, and to a struct-packed binary format (versioned
  ``HART`` header) that fuzz corpora use to keep stores small.

Replay fidelity: hardware detection is passive, so replayed race results
are bit-identical to live runs at any granularity (asserted by the
tests). Timing-dependent detectors (the software baselines) cannot be
replayed — they change the interleaving they measure.

The trace also records lock acquire/release markers ("L"/"U" records with
the thread's global id and the lock address). Normal replay ignores them;
``replay(..., perfect_sigs=True)`` reconstructs each thread's *precise*
lockset from the markers and substitutes exact one-bit-per-lock
signatures for the recorded Bloom signatures — the fuzzer's ablation knob
for attributing Bloom-aliasing mismatches.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.config import DetectionMode, HAccRGConfig
from repro.common.errors import TraceFormatError
from repro.common.types import AccessKind, LaneAccess, MemSpace, WarpAccess
from repro.core.clocks import RaceRegisterFile
from repro.core.races import RaceLog
from repro.core.shadow import SharedShadowTable
from repro.core.shadow_memory import GlobalShadowMemory
from repro.events import Subscriber
from repro.events.records import (
    AccessIssued,
    BarrierReleased,
    BlockEnded,
    BlockStarted,
    FenceIssued,
    KernelStarted,
    LockAcquired,
    LockReleased,
)

#: trace record kinds
_ACCESS, _BARRIER, _FENCE, _BLOCK_START, _BLOCK_END, _KERNEL = (
    "A", "B", "F", "S", "E", "K")
_LOCK, _UNLOCK = "L", "U"


@dataclass
class TraceEvent:
    """One trace record (see the ``kind`` constants above)."""

    kind: str
    # access fields
    space: int = 0
    access_kind: int = 0
    # Lane records. The *wire* layout is 5-tuples (lane, addr, size, sig,
    # critical); a freshly recorded event instead aliases the simulator's
    # 6-field LaneAccess tuples (lane, addr, size, kind, sig, critical)
    # zero-copy. Indices 0-2 agree between the layouts; use
    # :meth:`lane_rows` for a normalized wire-layout view.
    lanes: List[Tuple] = field(default_factory=list)
    sm_id: int = 0
    block_id: int = 0
    warp_id: int = 0
    warp_in_block: int = 0
    base_tid: int = 0
    sync_id: int = 0
    fence_id: int = 0
    l1_hits: Optional[List[bool]] = None
    # barrier / fence / block fields
    shared_bytes: int = 0
    region_bytes: int = 0
    # lock marker fields ("L"/"U"): acquiring thread and lock address
    thread: int = 0
    addr: int = 0

    def lane_rows(self) -> List[Tuple[int, int, int, int, bool]]:
        """The lane records in wire layout (lane, addr, size, sig, critical)."""
        ls = self.lanes
        if ls and len(ls[0]) == 6:
            return [(l[0], l[1], l[2], l[4], l[5]) for l in ls]
        return ls

    def to_json(self) -> str:
        d = self.__dict__
        ls = d.get("lanes")
        if ls and len(ls[0]) == 6:
            d = dict(d)
            d["lanes"] = self.lane_rows()
        return json.dumps(d, separators=(",", ":"))

    @staticmethod
    def from_json(line: str) -> "TraceEvent":
        try:
            d = json.loads(line)
            if not isinstance(d, dict):
                raise TraceFormatError("trace line is not a JSON object")
            lanes = d.get("lanes", [])
            if not isinstance(lanes, list) or any(
                    not isinstance(l, (list, tuple)) or len(l) != 5
                    for l in lanes):
                raise TraceFormatError("malformed lane list in trace line")
            d["lanes"] = [tuple(l) for l in lanes]
            ev = TraceEvent(**d)
            if ev.kind not in _BIN_KIND_CODES:
                raise TraceFormatError(
                    f"unknown trace record kind {ev.kind!r}")
            return ev
        except TraceFormatError:
            raise
        except (ValueError, TypeError) as exc:
            # json decode errors are ValueErrors; unknown/missing fields
            # surface as TypeErrors from the dataclass constructor
            raise TraceFormatError(
                f"corrupt JSON trace line: {exc}") from exc

    def to_warp_access(self, sig_for: Optional[Callable[[int], int]] = None
                       ) -> WarpAccess:
        """Build the WarpAccess; ``sig_for(tid)`` overrides critical-lane
        signatures (perfect-signature replay)."""
        kind = AccessKind(self.access_kind)
        ls = self.lanes
        recorded = bool(ls) and len(ls[0]) == 6
        _new = tuple.__new__
        if sig_for is None:
            if recorded:
                # freshly recorded events alias the simulator's LaneAccess
                # tuples — reuse them outright (replay-side zero-copy)
                lanes = ls
            else:
                # deserialized wire rows: rebuild the lane tuples through
                # tuple.__new__ to skip the generated NamedTuple
                # constructor frame per lane
                lanes = [_new(LaneAccess, (l[0], l[1], l[2], kind,
                                           l[3], l[4]))
                         for l in ls]
        else:
            base = self.base_tid
            if recorded:
                lanes = [
                    _new(LaneAccess,
                         (l[0], l[1], l[2], kind,
                          sig_for(base + l[0]) if l[5] else l[4], l[5]))
                    for l in ls
                ]
            else:
                lanes = [
                    _new(LaneAccess,
                         (l[0], l[1], l[2], kind,
                          sig_for(base + l[0]) if l[4] else l[3], l[4]))
                    for l in ls
                ]
        return WarpAccess(
            space=MemSpace(self.space),
            kind=kind,
            lanes=lanes,
            sm_id=self.sm_id,
            block_id=self.block_id,
            warp_id=self.warp_id,
            warp_in_block=self.warp_in_block,
            base_tid=self.base_tid,
            sync_id=self.sync_id,
            fence_id=self.fence_id,
        )


class TraceRecorder(Subscriber):
    """Bus subscriber that records every detection-relevant event of a run.

    Subscribe at observer priority (``sim.add_observer(recorder)``): it
    never perturbs timing or detection, so it can record the same live run
    a detector is analyzing. When recording standalone it also answers
    lock-signature queries with the paper's Bloom geometry, so critical
    sections carry real signatures into the trace.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.region_bytes = 0

    def on_kernel_start(self, ev: KernelStarted) -> None:
        # record the *application* footprint: a co-resident detector's
        # internal shadow reservation must not leak into the trace, or
        # concurrently recorded traces would differ from standalone ones
        region = ev.device_mem.app_bytes
        self.region_bytes = max(self.region_bytes, region)
        self.events.append(TraceEvent(kind=_KERNEL, region_bytes=region))

    def on_block_start(self, ev: BlockStarted) -> None:
        block = ev.block
        self.events.append(TraceEvent(
            kind=_BLOCK_START, block_id=block.block_id,
            sm_id=block.sm_id or 0,
            shared_bytes=block.launch.kernel.shared_bytes()))

    def on_block_end(self, ev: BlockEnded) -> None:
        self.events.append(TraceEvent(kind=_BLOCK_END,
                                      block_id=ev.block.block_id))

    def on_access(self, ev: AccessIssued):
        access = ev.access
        # per-access hot path: build the record through __new__ plus a
        # __dict__ literal (skipping the 16-parameter dataclass __init__)
        # and alias the access's LaneAccess list zero-copy — nothing
        # mutates lane tuples after decode, and every egress path
        # normalizes through ``lane_rows``. The dict keys must stay in
        # field declaration order so ``to_json`` output is unchanged.
        te = TraceEvent.__new__(TraceEvent)
        te.__dict__ = {
            "kind": _ACCESS,
            "space": int(access.space),
            "access_kind": int(access.kind),
            "lanes": access.lanes,
            "sm_id": access.sm_id,
            "block_id": access.block_id,
            "warp_id": access.warp_id,
            "warp_in_block": access.warp_in_block,
            "base_tid": access.base_tid,
            "sync_id": access.sync_id,
            "fence_id": access.fence_id,
            "l1_hits": (list(ev.lane_l1_hit)
                        if ev.lane_l1_hit is not None else None),
            "shared_bytes": 0,
            "region_bytes": 0,
            "thread": 0,
            "addr": 0,
        }
        self.events.append(te)
        return None

    def on_barrier(self, ev: BarrierReleased):
        self.events.append(TraceEvent(kind=_BARRIER,
                                      block_id=ev.block.block_id))
        return None

    def on_fence(self, ev: FenceIssued):
        self.events.append(TraceEvent(kind=_FENCE, warp_id=ev.warp.warp_id,
                                      fence_id=ev.warp.fence_id))
        return None

    def on_lock_acquired(self, ev: LockAcquired) -> int:
        # the marker itself is recorded so offline analyses (the oracle's
        # precise locksets, perfect-signature replay) can reconstruct the
        # exact set of locks each thread holds at every access
        self.events.append(TraceEvent(kind=_LOCK,
                                      thread=ev.thread.global_tid,
                                      addr=ev.addr))
        # signatures must reach the trace: encode with the paper geometry.
        # With a detector on the bus its (identical) answer wins — it sits
        # at detector priority, ahead of this observer.
        from repro.core.bloom import BloomSignature
        if not hasattr(self, "_bloom"):
            self._bloom = BloomSignature(16, 2)
        return self._bloom.insert(ev.thread.lock_sig, ev.addr)

    def on_lock_released(self, ev: LockReleased) -> None:
        self.events.append(TraceEvent(kind=_UNLOCK,
                                      thread=ev.thread.global_tid,
                                      addr=ev.addr))
        return None  # abstain: the bus default (clear-on-empty) applies

    # ------------------------------------------------------------------

    def dump(self) -> str:
        """Serialize the trace as JSON lines."""
        return "\n".join(e.to_json() for e in self.events)

    @staticmethod
    def load(text: str) -> List[TraceEvent]:
        return [TraceEvent.from_json(line)
                for line in text.splitlines() if line.strip()]


# ---------------------------------------------------------------------------
# compact binary format (versioned; fuzz corpora store traces this way)
# ---------------------------------------------------------------------------

#: magic + version header; bump the version on any layout change
_BIN_MAGIC = b"HART"
_BIN_VERSION = 1

_BIN_KIND_CODES = {_KERNEL: 0, _BLOCK_START: 1, _BLOCK_END: 2, _BARRIER: 3,
                   _FENCE: 4, _ACCESS: 5, _LOCK: 6, _UNLOCK: 7}
_BIN_KIND_NAMES = {v: k for k, v in _BIN_KIND_CODES.items()}

_S_HEADER = struct.Struct("<4sH")           # magic, version
_S_KIND = struct.Struct("<B")
_S_KERNEL = struct.Struct("<q")             # region_bytes
_S_BLOCK_START = struct.Struct("<iiq")      # block_id, sm_id, shared_bytes
_S_BLOCK = struct.Struct("<i")              # block_id (end / barrier)
_S_FENCE = struct.Struct("<iq")             # warp_id, fence_id
_S_LOCK = struct.Struct("<qq")              # thread, addr
#: space, access_kind, sm, block, warp, warp_in_block, base_tid, sync,
#: fence, l1-flag (0 absent / 1 present), lane count
_S_ACCESS = struct.Struct("<BBiiiiqqqBH")
_S_LANE = struct.Struct("<BqiqB")           # lane, addr, size, sig, critical


def dump_binary(events: Sequence[TraceEvent]) -> bytes:
    """Struct-pack a trace (~6x smaller than the JSON-lines form)."""
    out = [_S_HEADER.pack(_BIN_MAGIC, _BIN_VERSION)]
    for ev in events:
        out.append(_S_KIND.pack(_BIN_KIND_CODES[ev.kind]))
        if ev.kind == _KERNEL:
            out.append(_S_KERNEL.pack(ev.region_bytes))
        elif ev.kind == _BLOCK_START:
            out.append(_S_BLOCK_START.pack(ev.block_id, ev.sm_id,
                                           ev.shared_bytes))
        elif ev.kind in (_BLOCK_END, _BARRIER):
            out.append(_S_BLOCK.pack(ev.block_id))
        elif ev.kind == _FENCE:
            out.append(_S_FENCE.pack(ev.warp_id, ev.fence_id))
        elif ev.kind in (_LOCK, _UNLOCK):
            out.append(_S_LOCK.pack(ev.thread, ev.addr))
        elif ev.kind == _ACCESS:
            has_l1 = ev.l1_hits is not None
            out.append(_S_ACCESS.pack(
                ev.space, ev.access_kind, ev.sm_id, ev.block_id,
                ev.warp_id, ev.warp_in_block, ev.base_tid, ev.sync_id,
                ev.fence_id, 1 if has_l1 else 0, len(ev.lanes)))
            for lane, addr, size, sig, crit in ev.lane_rows():
                out.append(_S_LANE.pack(lane, addr, size, sig,
                                        1 if crit else 0))
            if has_l1:
                out.append(bytes(1 if h else 0 for h in ev.l1_hits))
        else:  # pragma: no cover - all kinds enumerated above
            raise ValueError(f"unknown trace kind {ev.kind!r}")
    return b"".join(out)


def load_binary(data: bytes) -> List[TraceEvent]:
    """Parse a binary trace produced by :func:`dump_binary`.

    Raises :class:`~repro.common.errors.TraceFormatError` on anything
    malformed — bad magic, unsupported version, unknown record kind, or a
    record truncated mid-field — never a bare ``struct.error``.
    """
    if len(data) < _S_HEADER.size:
        raise TraceFormatError("truncated trace (incomplete HART header)")
    magic, version = _S_HEADER.unpack_from(data, 0)
    if magic != _BIN_MAGIC:
        raise TraceFormatError("not a binary trace (bad magic)")
    if version != _BIN_VERSION:
        raise TraceFormatError(f"binary trace version {version} unsupported "
                               f"(expected {_BIN_VERSION})")
    pos = _S_HEADER.size
    events: List[TraceEvent] = []
    try:
        while pos < len(data):
            (code,) = _S_KIND.unpack_from(data, pos)
            pos += _S_KIND.size
            try:
                kind = _BIN_KIND_NAMES[code]
            except KeyError:
                raise TraceFormatError(
                    f"unknown trace record code {code} at byte "
                    f"{pos - _S_KIND.size}") from None
            if kind == _KERNEL:
                (region,) = _S_KERNEL.unpack_from(data, pos)
                pos += _S_KERNEL.size
                events.append(TraceEvent(kind=kind, region_bytes=region))
            elif kind == _BLOCK_START:
                bid, sm, shared = _S_BLOCK_START.unpack_from(data, pos)
                pos += _S_BLOCK_START.size
                events.append(TraceEvent(kind=kind, block_id=bid, sm_id=sm,
                                         shared_bytes=shared))
            elif kind in (_BLOCK_END, _BARRIER):
                (bid,) = _S_BLOCK.unpack_from(data, pos)
                pos += _S_BLOCK.size
                events.append(TraceEvent(kind=kind, block_id=bid))
            elif kind == _FENCE:
                wid, fid = _S_FENCE.unpack_from(data, pos)
                pos += _S_FENCE.size
                events.append(TraceEvent(kind=kind, warp_id=wid,
                                         fence_id=fid))
            elif kind in (_LOCK, _UNLOCK):
                thread, addr = _S_LOCK.unpack_from(data, pos)
                pos += _S_LOCK.size
                events.append(TraceEvent(kind=kind, thread=thread,
                                         addr=addr))
            else:  # access
                (space, akind, sm, bid, wid, wib, base_tid, sync, fence,
                 l1_flag, n_lanes) = _S_ACCESS.unpack_from(data, pos)
                pos += _S_ACCESS.size
                lanes = []
                for _ in range(n_lanes):
                    lane, addr, size, sig, crit = _S_LANE.unpack_from(
                        data, pos)
                    pos += _S_LANE.size
                    lanes.append((lane, addr, size, sig, bool(crit)))
                l1_hits: Optional[List[bool]] = None
                if l1_flag:
                    if pos + n_lanes > len(data):
                        raise TraceFormatError(
                            "truncated trace (incomplete L1-hit vector)")
                    l1_hits = [b != 0 for b in data[pos:pos + n_lanes]]
                    pos += n_lanes
                events.append(TraceEvent(
                    kind=kind, space=space, access_kind=akind, lanes=lanes,
                    sm_id=sm, block_id=bid, warp_id=wid, warp_in_block=wib,
                    base_tid=base_tid, sync_id=sync, fence_id=fence,
                    l1_hits=l1_hits))
    except struct.error as exc:
        raise TraceFormatError(
            f"truncated trace (record cut short at byte {pos})") from exc
    return events


def write_trace(path, events: Sequence[TraceEvent],
                binary: Optional[bool] = None) -> None:
    """Write a trace file; binary iff requested or the suffix is ``.bin``."""
    from pathlib import Path
    p = Path(path)
    if binary is None:
        binary = p.suffix == ".bin"
    if binary:
        p.write_bytes(dump_binary(events))
    else:
        p.write_text("\n".join(e.to_json() for e in events) + "\n",
                     encoding="utf-8")


def parse_trace(data: bytes) -> List[TraceEvent]:
    """Parse raw trace bytes, sniffing binary vs JSON-lines by the magic.

    Raises :class:`~repro.common.errors.TraceFormatError` on any corrupt
    or truncated input.
    """
    if data[:len(_BIN_MAGIC)] == _BIN_MAGIC:
        return load_binary(data)
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceFormatError(
            "trace is neither binary (bad magic) nor UTF-8 text") from exc
    return TraceRecorder.load(text)


def read_trace(path) -> List[TraceEvent]:
    """Read a trace file, sniffing binary vs JSON-lines by the magic."""
    from pathlib import Path
    return parse_trace(Path(path).read_bytes())


class _PreciseLocksets:
    """Track per-thread held locks from "L"/"U" records and hand out exact
    one-bit-per-lock signatures (first-seen lock order; deterministic)."""

    #: shadow sig fields are int64: cap the distinct-lock universe safely
    MAX_LOCKS = 62

    def __init__(self) -> None:
        self._held: Dict[int, List[int]] = {}
        self._bit: Dict[int, int] = {}

    def acquire(self, thread: int, addr: int) -> None:
        self._held.setdefault(thread, []).append(addr)

    def release(self, thread: int, addr: int) -> None:
        held = self._held.get(thread)
        if held and addr in held:
            held.remove(addr)

    def sig_for(self, thread: int) -> int:
        sig = 0
        for addr in self._held.get(thread, ()):
            bit = self._bit.setdefault(addr, len(self._bit))
            if bit >= self.MAX_LOCKS:
                raise ValueError(
                    f"perfect-signature replay supports at most "
                    f"{self.MAX_LOCKS} distinct locks")
            sig |= 1 << bit
        return sig


def record(benchmark_name: str, scale: float = 1.0,
           **overrides) -> List[TraceEvent]:
    """Run one benchmark with a recorder attached; return its trace."""
    from repro.bench.suite import get_benchmark
    from repro.common.config import scaled_gpu_config
    from repro.gpu.simulator import GPUSimulator

    recorder = TraceRecorder()
    sim = GPUSimulator(scaled_gpu_config(), timing_enabled=False)
    sim.add_observer(recorder)
    plan = get_benchmark(benchmark_name).plan(sim, scale=scale, **overrides)
    plan.run(sim)
    return recorder.events


def replay(events: Sequence[TraceEvent],
           config: Optional[HAccRGConfig] = None,
           perfect_sigs: bool = False) -> RaceLog:
    """Feed a recorded trace through fresh detection structures.

    Reproduces exactly what a live :class:`HAccRGDetector` run reports at
    the given configuration: per-block shared shadow tables (reset at
    barriers), a global shadow memory re-initialized per kernel, and the
    race register file driven by the trace's fence events.

    ``perfect_sigs=True`` replaces the recorded Bloom lock signatures with
    exact one-bit-per-lock signatures reconstructed from the trace's
    lock markers — a Bloom-aliasing ablation that no config switch can
    express, because the recorded lane signatures bake in the encoding
    geometry of record time.
    """
    cfg = config or HAccRGConfig(mode=DetectionMode.FULL,
                                 shared_granularity=4)
    log = RaceLog()
    rrf = RaceRegisterFile(cfg.fence_id_bits)
    shared_tables: dict = {}
    gsm: Optional[GlobalShadowMemory] = None
    locksets = _PreciseLocksets() if perfect_sigs else None

    for ev in events:
        if ev.kind == _KERNEL:
            if cfg.mode.global_enabled:
                gsm = GlobalShadowMemory(max(1, ev.region_bytes), cfg, log,
                                         rrf)
            shared_tables.clear()
        elif ev.kind == _BLOCK_START:
            if cfg.mode.shared_enabled and ev.shared_bytes:
                shared_tables[ev.block_id] = SharedShadowTable(
                    ev.shared_bytes, cfg.shared_granularity, log,
                    regroup=cfg.warp_regrouping,
                    fast_path=cfg.fast_path)
        elif ev.kind == _BLOCK_END:
            shared_tables.pop(ev.block_id, None)
        elif ev.kind == _BARRIER:
            table = shared_tables.get(ev.block_id)
            if table is not None:
                table.barrier_reset()
        elif ev.kind == _FENCE:
            rrf.on_fence(ev.warp_id, ev.fence_id)
        elif ev.kind == _LOCK:
            if locksets is not None:
                locksets.acquire(ev.thread, ev.addr)
        elif ev.kind == _UNLOCK:
            if locksets is not None:
                locksets.release(ev.thread, ev.addr)
        elif ev.kind == _ACCESS:
            access = ev.to_warp_access(
                sig_for=locksets.sig_for if locksets is not None else None)
            if access.space == MemSpace.SHARED:
                table = shared_tables.get(ev.block_id)
                if table is not None:
                    table.check(access)
            elif gsm is not None:
                gsm.check(access, lane_l1_hit=ev.l1_hits)
    return log
