"""Access-trace recording and detector replay.

Detection experiments often re-run the same benchmark under many detector
configurations (granularity sweeps, ablations). The kernel execution —
generators, scheduling, functional memory — dominates that cost, yet the
access stream it produces is identical every time (execution is
deterministic and hardware detection never perturbs it). This module
splits the two:

- :class:`TraceRecorder` is an event-bus subscriber that captures every
  warp access plus the synchronization events (barriers with block
  sync-IDs, fences, kernel/block boundaries) as compact records — it can
  ride a live run alongside an attached detector (same bus, observer
  priority) or record standalone;
- :func:`replay` feeds a recorded trace back through any
  :class:`~repro.core.detector.HAccRGDetector`-compatible detector's
  *detection* structures, producing the identical race log at a fraction
  of the cost;
- traces serialize to/from a JSON-lines text format for offline analysis
  or cross-tool exchange.

Replay fidelity: hardware detection is passive, so replayed race results
are bit-identical to live runs at any granularity (asserted by the
tests). Timing-dependent detectors (the software baselines) cannot be
replayed — they change the interleaving they measure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.common.config import DetectionMode, HAccRGConfig
from repro.common.types import AccessKind, LaneAccess, MemSpace, WarpAccess
from repro.core.clocks import RaceRegisterFile
from repro.core.races import RaceLog
from repro.core.shadow import SharedShadowTable
from repro.core.shadow_memory import GlobalShadowMemory
from repro.events import Subscriber
from repro.events.records import (
    AccessIssued,
    BarrierReleased,
    BlockEnded,
    BlockStarted,
    FenceIssued,
    KernelStarted,
    LockAcquired,
)

#: trace record kinds
_ACCESS, _BARRIER, _FENCE, _BLOCK_START, _BLOCK_END, _KERNEL = (
    "A", "B", "F", "S", "E", "K")


@dataclass
class TraceEvent:
    """One trace record (see the ``kind`` constants above)."""

    kind: str
    # access fields
    space: int = 0
    access_kind: int = 0
    lanes: List[Tuple[int, int, int, int, bool]] = field(
        default_factory=list)  # (lane, addr, size, sig, critical)
    sm_id: int = 0
    block_id: int = 0
    warp_id: int = 0
    warp_in_block: int = 0
    base_tid: int = 0
    sync_id: int = 0
    fence_id: int = 0
    l1_hits: Optional[List[bool]] = None
    # barrier / fence / block fields
    shared_bytes: int = 0
    region_bytes: int = 0

    def to_json(self) -> str:
        return json.dumps(self.__dict__, separators=(",", ":"))

    @staticmethod
    def from_json(line: str) -> "TraceEvent":
        d = json.loads(line)
        d["lanes"] = [tuple(l) for l in d.get("lanes", [])]
        return TraceEvent(**d)

    def to_warp_access(self) -> WarpAccess:
        lanes = [
            LaneAccess(lane, addr, size, AccessKind(kind_), sig=sig,
                       critical=crit)
            for lane, addr, size, kind_, sig, crit in (
                (l[0], l[1], l[2], self.access_kind, l[3], l[4])
                for l in self.lanes
            )
        ]
        return WarpAccess(
            space=MemSpace(self.space),
            kind=AccessKind(self.access_kind),
            lanes=lanes,
            sm_id=self.sm_id,
            block_id=self.block_id,
            warp_id=self.warp_id,
            warp_in_block=self.warp_in_block,
            base_tid=self.base_tid,
            sync_id=self.sync_id,
            fence_id=self.fence_id,
        )


class TraceRecorder(Subscriber):
    """Bus subscriber that records every detection-relevant event of a run.

    Subscribe at observer priority (``sim.add_observer(recorder)``): it
    never perturbs timing or detection, so it can record the same live run
    a detector is analyzing. When recording standalone it also answers
    lock-signature queries with the paper's Bloom geometry, so critical
    sections carry real signatures into the trace.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.region_bytes = 0

    def on_kernel_start(self, ev: KernelStarted) -> None:
        # record the *application* footprint: a co-resident detector's
        # internal shadow reservation must not leak into the trace, or
        # concurrently recorded traces would differ from standalone ones
        region = ev.device_mem.app_bytes
        self.region_bytes = max(self.region_bytes, region)
        self.events.append(TraceEvent(kind=_KERNEL, region_bytes=region))

    def on_block_start(self, ev: BlockStarted) -> None:
        block = ev.block
        self.events.append(TraceEvent(
            kind=_BLOCK_START, block_id=block.block_id,
            sm_id=block.sm_id or 0,
            shared_bytes=block.launch.kernel.shared_bytes()))

    def on_block_end(self, ev: BlockEnded) -> None:
        self.events.append(TraceEvent(kind=_BLOCK_END,
                                      block_id=ev.block.block_id))

    def on_access(self, ev: AccessIssued):
        access = ev.access
        self.events.append(TraceEvent(
            kind=_ACCESS,
            space=int(access.space),
            access_kind=int(access.kind),
            lanes=[(la.lane, la.addr, la.size, la.sig, la.critical)
                   for la in access.lanes],
            sm_id=access.sm_id,
            block_id=access.block_id,
            warp_id=access.warp_id,
            warp_in_block=access.warp_in_block,
            base_tid=access.base_tid,
            sync_id=access.sync_id,
            fence_id=access.fence_id,
            l1_hits=(list(ev.lane_l1_hit)
                     if ev.lane_l1_hit is not None else None),
        ))
        return None

    def on_barrier(self, ev: BarrierReleased):
        self.events.append(TraceEvent(kind=_BARRIER,
                                      block_id=ev.block.block_id))
        return None

    def on_fence(self, ev: FenceIssued):
        self.events.append(TraceEvent(kind=_FENCE, warp_id=ev.warp.warp_id,
                                      fence_id=ev.warp.fence_id))
        return None

    def on_lock_acquired(self, ev: LockAcquired) -> int:
        # signatures must reach the trace: encode with the paper geometry.
        # With a detector on the bus its (identical) answer wins — it sits
        # at detector priority, ahead of this observer.
        from repro.core.bloom import BloomSignature
        if not hasattr(self, "_bloom"):
            self._bloom = BloomSignature(16, 2)
        return self._bloom.insert(ev.thread.lock_sig, ev.addr)

    # ------------------------------------------------------------------

    def dump(self) -> str:
        """Serialize the trace as JSON lines."""
        return "\n".join(e.to_json() for e in self.events)

    @staticmethod
    def load(text: str) -> List[TraceEvent]:
        return [TraceEvent.from_json(line)
                for line in text.splitlines() if line.strip()]


def record(benchmark_name: str, scale: float = 1.0,
           **overrides) -> List[TraceEvent]:
    """Run one benchmark with a recorder attached; return its trace."""
    from repro.bench.suite import get_benchmark
    from repro.common.config import scaled_gpu_config
    from repro.gpu.simulator import GPUSimulator

    recorder = TraceRecorder()
    sim = GPUSimulator(scaled_gpu_config(), timing_enabled=False)
    sim.add_observer(recorder)
    plan = get_benchmark(benchmark_name).plan(sim, scale=scale, **overrides)
    plan.run(sim)
    return recorder.events


def replay(events: Sequence[TraceEvent],
           config: Optional[HAccRGConfig] = None) -> RaceLog:
    """Feed a recorded trace through fresh detection structures.

    Reproduces exactly what a live :class:`HAccRGDetector` run reports at
    the given configuration: per-block shared shadow tables (reset at
    barriers), a global shadow memory re-initialized per kernel, and the
    race register file driven by the trace's fence events.
    """
    cfg = config or HAccRGConfig(mode=DetectionMode.FULL,
                                 shared_granularity=4)
    log = RaceLog()
    rrf = RaceRegisterFile(cfg.fence_id_bits)
    shared_tables: dict = {}
    gsm: Optional[GlobalShadowMemory] = None

    for ev in events:
        if ev.kind == _KERNEL:
            if cfg.mode.global_enabled:
                gsm = GlobalShadowMemory(max(1, ev.region_bytes), cfg, log,
                                         rrf)
            shared_tables.clear()
        elif ev.kind == _BLOCK_START:
            if cfg.mode.shared_enabled and ev.shared_bytes:
                shared_tables[ev.block_id] = SharedShadowTable(
                    ev.shared_bytes, cfg.shared_granularity, log,
                    regroup=cfg.warp_regrouping)
        elif ev.kind == _BLOCK_END:
            shared_tables.pop(ev.block_id, None)
        elif ev.kind == _BARRIER:
            table = shared_tables.get(ev.block_id)
            if table is not None:
                table.barrier_reset()
        elif ev.kind == _FENCE:
            rrf.on_fence(ev.warp_id, ev.fence_id)
        elif ev.kind == _ACCESS:
            access = ev.to_warp_access()
            if access.space == MemSpace.SHARED:
                table = shared_tables.get(ev.block_id)
                if table is not None:
                    table.check(access)
            elif gsm is not None:
                gsm.check(access, lane_l1_hit=ev.l1_hits)
    return log
