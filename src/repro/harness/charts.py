"""ASCII bar charts for the figure experiments.

The paper's Figs. 7-9 are grouped bar charts; the text tables in
:mod:`repro.harness.report` carry the numbers, and these renderers carry
the *shape* — per-benchmark grouped bars scaled to the terminal — so a
reproduction run visually resembles the figures it regenerates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.harness import experiments as ex

_BAR = "#"
_WIDTH = 46


def _bar(value: float, vmax: float, width: int = _WIDTH) -> str:
    n = 0 if vmax <= 0 else max(0, min(width, round(value / vmax * width)))
    return _BAR * n


def grouped_bars(title: str, groups: Sequence[Tuple[str, List[Tuple[str, float]]]],
                 unit: str = "", vmax: Optional[float] = None) -> str:
    """Render grouped horizontal bars.

    ``groups`` is ``[(group label, [(series label, value), ...]), ...]``;
    all bars share one scale (``vmax`` or the data maximum).
    """
    all_vals = [v for _, series in groups for _, v in series]
    scale = vmax if vmax is not None else (max(all_vals) if all_vals else 1)
    out = [title, "=" * (len(title))]
    for label, series in groups:
        out.append(label)
        for sname, value in series:
            out.append(f"  {sname:>8s} |{_bar(value, scale):<{_WIDTH}s}| "
                       f"{value:.2f}{unit}")
    return "\n".join(out)


def chart_fig7(result: ex.Fig7Result) -> str:
    groups = []
    for r in result.rows:
        series = [("shared", r.shared_norm), ("shr+glb", r.full_norm)]
        groups.append((r.name, series))
    groups.append(("GEOMEAN", [("shared", result.shared_geomean),
                               ("shr+glb", result.full_geomean)]))
    return grouped_bars(
        "Fig 7: normalized execution time (1.00 = detection off)",
        groups, unit="x",
    )


def chart_fig8(rows: List[ex.Fig8Row]) -> str:
    groups = [(r.name, [("hw", r.hardware_norm),
                        ("sw-split", r.software_split_norm)])
              for r in rows]
    return grouped_bars(
        "Fig 8: shared shadow in hardware vs global memory",
        groups, unit="x",
    )


def chart_fig9(rows: List[ex.Fig9Row]) -> str:
    groups = [(r.name, [("base", r.baseline_util * 100),
                        ("shared", r.shared_util * 100),
                        ("shr+glb", r.full_util * 100)])
              for r in rows]
    return grouped_bars(
        "Fig 9: average DRAM bandwidth utilization",
        groups, unit="%", vmax=100.0,
    )
