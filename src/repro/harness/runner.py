"""Uniform benchmark runner used by every experiment.

``run_benchmark`` builds a fresh simulator with the requested detector
configuration, runs a benchmark's full plan (all kernel launches), and
collects a :class:`RunResult` with everything any experiment needs: cycles,
instruction statistics, race log, DRAM utilization, cache statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.bench.common import Injection, NO_INJECTION
from repro.bench.suite import get_benchmark
from repro.common.config import (
    DetectionMode,
    DetectorBackend,
    GPUConfig,
    HAccRGConfig,
    scaled_gpu_config,
)
from repro.common.types import KernelStats, MemSpace
from repro.core.detector import HAccRGDetector
from repro.core.races import RaceLog
from repro.gpu.simulator import GPUSimulator
from repro.swdetect.grace import GRaceAddrDetector
from repro.swdetect.software_haccrg import SoftwareHAccRG


@dataclass
class RunResult:
    """Everything one benchmark run produced."""

    name: str
    cycles: int
    stats: KernelStats
    dram_utilization: float
    dram_bytes: int
    dram_shadow_bytes: int
    l1_hit_rate: float
    l2_hit_rate: float
    races: Optional[RaceLog] = None
    detector: Optional[object] = None
    verified: Optional[bool] = None
    data_bytes: int = 0

    def shared_races(self) -> int:
        return self.races.count(space=MemSpace.SHARED) if self.races else 0

    def global_races(self) -> int:
        return (len(self.races) - self.shared_races()) if self.races else 0


def make_detector(config: HAccRGConfig, sim: GPUSimulator):
    """Instantiate the detector for ``config.backend`` (None when OFF)."""
    if config.mode == DetectionMode.OFF:
        return None
    if config.backend == DetectorBackend.HARDWARE:
        return HAccRGDetector(config, sim)
    if config.backend == DetectorBackend.SOFTWARE:
        return SoftwareHAccRG(config, sim)
    return GRaceAddrDetector(config, sim)


def run_benchmark(name: str,
                  detector_config: Optional[HAccRGConfig] = None,
                  gpu_config: Optional[GPUConfig] = None,
                  scale: float = 1.0,
                  seed: int = 0,
                  injection: Injection = NO_INJECTION,
                  timing_enabled: bool = True,
                  verify: bool = False,
                  **overrides) -> RunResult:
    """Run one benchmark under one detection configuration.

    ``detector_config=None`` (or mode OFF) runs the unmodified GPU — the
    Fig. 7 baseline. ``timing_enabled=False`` skips the cache/DRAM timing
    for detection-only experiments (granularity sweeps run ~3x faster).
    ``overrides`` are forwarded to the benchmark's builder (e.g.
    ``num_blocks=1`` for the race-free SCAN configuration).
    """
    bench = get_benchmark(name)
    sim = GPUSimulator(gpu_config or scaled_gpu_config(),
                       timing_enabled=timing_enabled)
    detector = None
    if detector_config is not None and detector_config.mode != DetectionMode.OFF:
        detector = make_detector(detector_config, sim)
        sim.attach_detector(detector)

    plan = bench.plan(sim, scale=scale, seed=seed, injection=injection,
                      **overrides)
    results = plan.run(sim)

    verified: Optional[bool] = None
    if verify and plan.verify is not None:
        plan.verify()  # raises on functional mismatch
        verified = True

    stats = KernelStats()
    for r in results:
        stats.merge(r.stats)
    cycles = sum(r.cycles for r in results)
    return RunResult(
        name=name,
        cycles=cycles,
        stats=stats,
        dram_utilization=(sum(r.dram_utilization for r in results)
                          / max(1, len(results))),
        dram_bytes=results[-1].dram_bytes if results else 0,
        dram_shadow_bytes=results[-1].dram_shadow_bytes if results else 0,
        l1_hit_rate=(sum(r.l1_hit_rate for r in results)
                     / max(1, len(results))),
        l2_hit_rate=(sum(r.l2_hit_rate for r in results)
                     / max(1, len(results))),
        races=detector.log if detector is not None else None,
        detector=detector,
        verified=verified,
        data_bytes=plan.data_bytes,
    )
