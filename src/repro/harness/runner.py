"""Uniform benchmark runner used by every experiment.

``run_benchmark`` builds a fresh simulator with the requested detector
configuration, runs a benchmark's full plan (all kernel launches), and
collects a :class:`RunResult` with everything any experiment needs: cycles,
instruction statistics, race log, DRAM utilization, cache statistics.

When a campaign session is installed (see :mod:`repro.campaign`),
``run_benchmark`` routes through it instead: the call is canonically
hashed into a job key, served from the content-addressed result store on
a hit, and executed + stored on a miss. Experiments never know the
difference — a cached :class:`RunResult` compares equal to a live one.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.common import Injection, NO_INJECTION
from repro.bench.suite import get_benchmark
from repro.common.config import (
    DetectionMode,
    DetectorBackend,
    GPUConfig,
    HAccRGConfig,
    scaled_gpu_config,
)
from repro.common.errors import ShardTimeoutError
from repro.common.types import KernelStats, MemSpace
from repro.core.clocks import ClockStats
from repro.core.detector import HAccRGDetector
from repro.core.races import RaceLog
from repro.events import PhaseStats, Subscriber
from repro.gpu.simulator import GPUSimulator
from repro.swdetect.grace import GRaceAddrDetector
from repro.swdetect.software_haccrg import SoftwareHAccRG


@dataclass
class RunResult:
    """Everything one benchmark run produced.

    Every field except ``detector`` is plain data that survives a
    JSON round trip (see :func:`repro.harness.export.run_result_record`)
    — campaign workers ship these across process boundaries. ``detector``
    is a *live-only* convenience handle on the in-process detector; it is
    ``None`` for cache-served results, excluded from equality, and never
    serialized. Experiments must read detector-derived numbers from the
    ``id_stats`` / ``shared_shadow_misses`` fields instead.
    """

    name: str
    cycles: int
    stats: KernelStats
    dram_utilization: float
    dram_bytes: int
    dram_shadow_bytes: int
    l1_hit_rate: float
    l2_hit_rate: float
    races: Optional[RaceLog] = None
    #: live-only simulator handle; not part of the serializable record
    detector: Optional[object] = field(default=None, repr=False,
                                       compare=False)
    verified: Optional[bool] = None
    data_bytes: int = 0
    num_launches: int = 1
    #: §VI-A2 sync/fence ID increment statistics (hardware backend only)
    id_stats: Optional[ClockStats] = None
    #: Fig. 8 split-shadow L1 misses (0 unless shared_shadow_in_global)
    shared_shadow_misses: int = 0
    #: global-RDU shadow-line transactions (write-back ablation metric)
    shadow_transactions: int = 0
    #: per-phase cycle breakdown from the event pipeline's metrics
    #: collector (issue/idle split, detector-induced stalls, shadow
    #: traffic); None for results cached before the field existed
    phases: Optional[PhaseStats] = None
    #: TLB statistics (repro.vm TLBStats.record() shape: counters plus
    #: app/shadow miss rates) for runs that model address translation;
    #: None otherwise and for results cached before the field existed
    tlb: Optional[Dict[str, Any]] = None

    def shared_races(self) -> int:
        return self.races.count(space=MemSpace.SHARED) if self.races else 0

    def global_races(self) -> int:
        return (len(self.races) - self.shared_races()) if self.races else 0


def make_detector(config: HAccRGConfig, sim: GPUSimulator):
    """Instantiate the detector for ``config.backend`` (None when OFF)."""
    if config.mode == DetectionMode.OFF:
        return None
    if config.backend == DetectorBackend.HARDWARE:
        return HAccRGDetector(config, sim)
    if config.backend == DetectorBackend.SOFTWARE:
        return SoftwareHAccRG(config, sim)
    return GRaceAddrDetector(config, sim)


# ---------------------------------------------------------------------------
# campaign session hook
# ---------------------------------------------------------------------------

#: when set, run_benchmark routes through the installed campaign session
#: (cache lookup + store) instead of simulating directly
_session = None


def install_session(session) -> Optional[object]:
    """Install a campaign session; returns the previously installed one.

    The session object must expose ``run_call(**kwargs) -> RunResult``
    receiving exactly the keyword arguments of :func:`run_benchmark`.
    Pass ``None`` to uninstall. Used by
    :func:`repro.campaign.engine.session`.
    """
    global _session
    previous = _session
    _session = session
    return previous


def active_session():
    """The currently installed campaign session (or None)."""
    return _session


def run_benchmark(name: str,
                  detector_config: Optional[HAccRGConfig] = None,
                  gpu_config: Optional[GPUConfig] = None,
                  scale: float = 1.0,
                  seed: int = 0,
                  injection: Injection = NO_INJECTION,
                  timing_enabled: bool = True,
                  verify: bool = False,
                  **overrides) -> RunResult:
    """Run one benchmark under one detection configuration.

    ``detector_config=None`` (or mode OFF) runs the unmodified GPU — the
    Fig. 7 baseline. ``timing_enabled=False`` skips the cache/DRAM timing
    for detection-only experiments (granularity sweeps run ~3x faster).
    ``overrides`` are forwarded to the benchmark's builder (e.g.
    ``num_blocks=1`` for the race-free SCAN configuration).
    """
    if _session is not None:
        return _session.run_call(
            name=name, detector_config=detector_config,
            gpu_config=gpu_config, scale=scale, seed=seed,
            injection=injection, timing_enabled=timing_enabled,
            verify=verify, overrides=overrides)
    return run_benchmark_direct(
        name, detector_config, gpu_config, scale=scale, seed=seed,
        injection=injection, timing_enabled=timing_enabled, verify=verify,
        **overrides)


def shard_retries() -> int:
    """Bounded re-run budget after a shard-worker timeout (default 1).

    A timed-out sharded run kills the whole worker fleet; the retry builds
    a fresh simulator (which respawns workers) and re-executes. The
    simulation is deterministic, so a retry reproduces the run exactly.
    """
    raw = os.environ.get("REPRO_SHARD_RETRIES")
    if raw is None:
        return 1
    try:
        return max(0, int(raw))
    except ValueError:
        return 1


def rebuild_bench_launches(payload: Dict[str, Any], sim: GPUSimulator
                           ) -> List[Any]:
    """Shard-side launch-plan rebuild (see ``GPUSimulator.launch_source``).

    Runs the benchmark builder against the worker-local simulator,
    repeating the coordinator's allocation sequence so device addresses
    match byte for byte, and returns the plan's launch sequence.
    """
    bench = get_benchmark(payload["name"])
    plan = bench.plan(sim, scale=payload["scale"], seed=payload["seed"],
                      injection=payload["injection"],
                      **payload["overrides"])
    return list(plan.launches)


def run_benchmark_direct(name: str,
                         detector_config: Optional[HAccRGConfig] = None,
                         gpu_config: Optional[GPUConfig] = None,
                         scale: float = 1.0,
                         seed: int = 0,
                         injection: Injection = NO_INJECTION,
                         timing_enabled: bool = True,
                         verify: bool = False,
                         observers: Optional[Sequence[Subscriber]] = None,
                         **overrides) -> RunResult:
    """Simulate unconditionally, bypassing any installed campaign session.

    This is the execution path campaign workers use: the session wraps
    *around* it, so cache misses and pool jobs always land here.

    ``observers`` are event-bus subscribers (tracers, probes) added at
    observer priority alongside any detector — they watch the same live
    run. They are live objects, so this parameter exists only on the
    direct path: it never reaches a campaign session's cache key.

    Sharded runs (``sm_workers > 0``) that stall past the watchdog are
    retried with a fresh simulator up to ``REPRO_SHARD_RETRIES`` times;
    the failed attempt's partial state is discarded wholesale.
    """
    attempt = 0
    retries = shard_retries()
    while True:
        try:
            return _run_benchmark_attempt(
                name, detector_config, gpu_config, scale=scale, seed=seed,
                injection=injection, timing_enabled=timing_enabled,
                verify=verify, observers=observers, **overrides)
        except ShardTimeoutError:
            attempt += 1
            if attempt > retries:
                raise


def _run_benchmark_attempt(name: str,
                           detector_config: Optional[HAccRGConfig] = None,
                           gpu_config: Optional[GPUConfig] = None,
                           scale: float = 1.0,
                           seed: int = 0,
                           injection: Injection = NO_INJECTION,
                           timing_enabled: bool = True,
                           verify: bool = False,
                           observers: Optional[Sequence[Subscriber]] = None,
                           **overrides) -> RunResult:
    bench = get_benchmark(name)
    sim = GPUSimulator(gpu_config or scaled_gpu_config(),
                       timing_enabled=timing_enabled)
    sim.launch_source = ("repro.harness.runner", "rebuild_bench_launches", {
        "name": name, "scale": scale, "seed": seed,
        "injection": injection, "overrides": dict(overrides),
    })
    detector = None
    if detector_config is not None and detector_config.mode != DetectionMode.OFF:
        detector = make_detector(detector_config, sim)
        sim.attach_detector(detector)
    for obs in observers or ():
        sim.add_observer(obs)

    plan = bench.plan(sim, scale=scale, seed=seed, injection=injection,
                      **overrides)
    try:
        results = plan.run(sim)
    finally:
        sim.close()

    verified: Optional[bool] = None
    if verify and plan.verify is not None:
        plan.verify()  # raises on functional mismatch
        verified = True

    # translation-modeling observers (e.g. TLBProbe) publish their stats
    # into the run's metrics so RunResult.tlb / the export carry them
    for obs in observers or ():
        tlb_record = getattr(obs, "tlb_record", None)
        if callable(tlb_record):
            sim.metrics.note_tlb(tlb_record())

    # Per-launch SimulationResults snapshot *cumulative* simulator counters:
    # SM stats/cycles and the cache/DRAM statistics are never reset between
    # launches of one simulator, so the final launch's snapshot already
    # aggregates the whole run. Its hit rates are the accesses-weighted
    # means over all launches and its DRAM utilization is the
    # cycles-weighted mean — summing or averaging the per-launch snapshots
    # would double-count earlier launches.
    last = results[-1] if results else None
    stats = KernelStats()
    if last is not None:
        stats.merge(last.stats)

    id_stats: Optional[ClockStats] = None
    clock = getattr(getattr(detector, "rrf", None), "stats", None)
    if isinstance(clock, ClockStats):
        id_stats = ClockStats(
            max_sync_increments=clock.max_sync_increments,
            max_fence_increments=clock.max_fence_increments,
            sync_overflows=clock.sync_overflows,
            fence_overflows=clock.fence_overflows,
        )

    return RunResult(
        name=name,
        cycles=last.cycles if last else 0,
        stats=stats,
        dram_utilization=last.dram_utilization if last else 0.0,
        dram_bytes=last.dram_bytes if last else 0,
        dram_shadow_bytes=last.dram_shadow_bytes if last else 0,
        l1_hit_rate=last.l1_hit_rate if last else 0.0,
        l2_hit_rate=last.l2_hit_rate if last else 0.0,
        races=detector.log if detector is not None else None,
        detector=detector,
        verified=verified,
        data_bytes=plan.data_bytes,
        num_launches=len(results),
        id_stats=id_stats,
        shared_shadow_misses=int(getattr(detector, "shared_shadow_misses",
                                         0) or 0),
        shadow_transactions=int(getattr(
            getattr(detector, "global_rdu", None), "shadow_transactions",
            0) or 0),
        phases=last.phases if last else None,
        tlb=sim.metrics.tlb,
    )
