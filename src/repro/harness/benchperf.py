"""Performance benchmarking: simulator, fuzz, detector, and service rates.

``repro bench-perf`` measures six throughput surfaces on pinned
workloads and writes the canonical record to ``BENCH_10.json`` at the
repo root (CI uploads it as an artifact, fails on malformed output, and
diffs it against the previous record with ``tools/bench_compare.py``):

- **simulate** — trace-recording throughput (events/second) over pinned
  benchmark cells;
- **fuzz** — full differential fuzz iterations/second (generate +
  record + oracle + diff across default modes) over pinned seeds;
- **replay** — per-detector-backend replay throughput over one pinned
  trace, with each backend's overhead relative to the fastest;
- **service** — end-to-end jobs/second through a live ``repro.serve``
  endpoint (upload → submit → verdict), plus the cache-hit rate for
  repeat submissions;
- **multigpu** — cross-GPU events/second through the full
  :class:`~repro.multigpu.system.MultiGPUSimulator` stack (simulation +
  merge + directory detection + HB oracle) over pinned benchmark cells;
- **static_prefilter** — mg-fuzz iterations/second with the scope-aware
  static analyzer gating the multi-device simulation
  (``repro fuzz --gpus 2 --static-prefilter``), plus the speedup over
  the same pinned seed band run fully dynamic.

Each measurement is a :class:`PerfJob` — a content-addressed job record
(kind ``"perf"``) registered in the campaign executor table, so perf
cells can also ride the campaign pool/cache like any other job kind.
"""

from __future__ import annotations

import gc
import hashlib
import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from repro.common.errors import ConfigError

#: bump whenever the perf record shape changes
PERF_SCHEMA = 1

#: the canonical record name + output file for this PR's bench record
BENCH_NAME = "BENCH_10"
BENCH_FILENAME = "BENCH_10.json"

#: pinned simulator cells: (benchmark, scale)
_SIM_CELLS = (("HIST", 0.25), ("SCAN", 0.25))
_SIM_CELLS_QUICK = (("SCAN", 0.1),)

#: pinned fuzz seeds
_FUZZ_SEEDS = tuple(range(8))
_FUZZ_SEEDS_QUICK = (0, 1)

#: the pinned trace every replay backend is timed on
_REPLAY_CELL = ("HIST", 0.25)
_REPLAY_CELL_QUICK = ("SCAN", 0.1)

#: service-throughput shape: (distinct traces, jobs per trace)
_SERVICE_LOAD = (4, 2)
_SERVICE_LOAD_QUICK = (2, 2)

#: pinned multi-GPU cells: (benchmark, devices, scale)
_MG_CELLS = (("MG_RING", 2, 0.5), ("MG_PRODCONS", 2, 0.5))
_MG_CELLS_QUICK = (("MG_RING", 2, 0.25),)

#: pinned mg-fuzz band for the static-prefilter section: (seed, iterations)
_PREFILTER_BAND = (0, 12)
_PREFILTER_BAND_QUICK = (0, 6)


class PerfSpecError(ConfigError):
    """A perf job record is malformed."""


# ---------------------------------------------------------------------------
# the "perf" job kind
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PerfJob:
    """One content-addressed perf measurement cell.

    ``metric`` selects the measurement:

    - ``"simulate"`` — record ``bench`` at ``scale``; value = events/s;
    - ``"fuzz"`` — run one differential fuzz iteration for ``seed``;
      value = iterations/s;
    - ``"replay"`` — replay ``bench``/``scale`` through ``backend``;
      value = events/s through that backend;
    - ``"multigpu"`` — run multi-GPU ``bench`` at ``scale`` on ``gpus``
      devices (detector + oracle attached); value = cross-GPU events/s.
    """

    metric: str
    bench: str = ""
    scale: float = 1.0
    seed: int = 0
    backend: str = ""
    repeats: int = 1
    gpus: int = 2

    _METRICS = ("simulate", "fuzz", "replay", "multigpu")

    def __post_init__(self) -> None:
        if self.metric not in self._METRICS:
            raise PerfSpecError(
                f"unknown perf metric {self.metric!r} "
                f"(known: {', '.join(self._METRICS)})")
        if self.repeats < 1:
            raise PerfSpecError("repeats must be >= 1")

    def record(self) -> Dict[str, Any]:
        return {
            "schema": PERF_SCHEMA,
            "kind": "perf",
            "metric": self.metric,
            "bench": self.bench,
            "scale": float(self.scale),
            "seed": int(self.seed),
            "backend": self.backend,
            "repeats": int(self.repeats),
            "gpus": int(self.gpus),
        }

    def key(self) -> str:
        payload = json.dumps(self.record(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "PerfJob":
        if record.get("schema") != PERF_SCHEMA:
            raise PerfSpecError(
                f"perf schema {record.get('schema')!r} != {PERF_SCHEMA}")
        return cls(metric=record["metric"], bench=record.get("bench", ""),
                   scale=float(record.get("scale", 1.0)),
                   seed=int(record.get("seed", 0)),
                   backend=record.get("backend", ""),
                   repeats=int(record.get("repeats", 1)),
                   gpus=int(record.get("gpus", 2)))

    def describe(self) -> str:
        if self.metric == "simulate":
            return f"simulate {self.bench}@{self.scale}"
        if self.metric == "fuzz":
            return f"fuzz seed={self.seed}"
        if self.metric == "multigpu":
            return f"multigpu {self.bench}@{self.scale} x{self.gpus}"
        return f"replay {self.bench}@{self.scale} via {self.backend}"


def execute_perf_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side entry point for the ``"perf"`` job kind."""
    job = PerfJob.from_record(record)
    best: Optional[Dict[str, Any]] = None
    for _ in range(job.repeats):
        out = _measure_once(job)
        if best is None or out["elapsed"] < best["elapsed"]:
            best = out
    assert best is not None
    best["job"] = job.record()
    return best


def _measure_once(job: PerfJob) -> Dict[str, Any]:
    # Timed regions run with the cyclic GC paused (collected beforehand):
    # a generational collection landing inside a ~30 ms cell is pure
    # measurement noise, and min-of-repeats should reflect the work, not
    # the collector's schedule. Collection resumes right after the region.
    if job.metric == "simulate":
        from repro.harness.trace import record as record_trace
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            events = record_trace(job.bench, scale=job.scale)
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        return {"metric": "simulate", "events": len(events),
                "elapsed": elapsed,
                "rate": len(events) / elapsed if elapsed else 0.0,
                "unit": "events/s"}
    if job.metric == "fuzz":
        from repro.fuzz.generator import generate_program
        from repro.fuzz.harness import run_iteration
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            program = generate_program(job.seed)
            result = run_iteration(program)
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        return {"metric": "fuzz", "seed": job.seed,
                "oracle_races": result.get("oracle_races", 0),
                "real_bugs": result.get("real_bugs", 0),
                "elapsed": elapsed,
                "rate": 1.0 / elapsed if elapsed else 0.0,
                "unit": "iterations/s"}
    if job.metric == "multigpu":
        from repro.common.config import HAccRGConfig
        from repro.multigpu.runner import run_mg_benchmark
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            res = run_mg_benchmark(job.bench, gpus=job.gpus,
                                   detector_config=HAccRGConfig(),
                                   scale=job.scale, timing_enabled=False)
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        return {"metric": "multigpu", "events": res.events,
                "gpus": job.gpus,
                "contradictions": len(res.contradictions),
                "elapsed": elapsed,
                "rate": res.events / elapsed if elapsed else 0.0,
                "unit": "events/s"}
    # replay: record once (untimed), time only the backend replay
    from repro.harness.trace import record as record_trace
    from repro.serve.backends import get_backend, run_backend
    backend = get_backend(job.backend)
    events = record_trace(job.bench, scale=job.scale)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        run_backend(backend, events)
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return {"metric": "replay", "backend": backend.name,
            "events": len(events), "elapsed": elapsed,
            "rate": len(events) / elapsed if elapsed else 0.0,
            "unit": "events/s"}


# ---------------------------------------------------------------------------
# the full bench-perf run
# ---------------------------------------------------------------------------

#: replay backends timed by bench-perf (static needs a program spec and
#: is exercised by the serve test suite instead)
_TIMED_BACKENDS = ("haccrg-bloom", "haccrg-full", "haccrg-word",
                   "swdetect", "oracle")


def run_bench_perf(quick: bool = False, workers: int = 0) -> Dict[str, Any]:
    """Run every section and return the canonical bench record."""
    sections = {
        "simulate": _section_simulate(quick),
        "fuzz": _section_fuzz(quick),
        "replay": _section_replay(quick),
        "service": _section_service(quick, workers),
        "multigpu": _section_multigpu(quick),
        "static_prefilter": _section_static_prefilter(quick),
    }
    return {
        "schema": PERF_SCHEMA,
        "bench": BENCH_NAME,
        "quick": bool(quick),
        "python": platform.python_version(),
        "platform": sys.platform,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "sections": sections,
    }


def _section_simulate(quick: bool) -> Dict[str, Any]:
    cells = _SIM_CELLS_QUICK if quick else _SIM_CELLS
    runs = []
    total_events = 0
    total_elapsed = 0.0
    for bench, scale in cells:
        out = execute_perf_record(
            PerfJob("simulate", bench=bench, scale=scale,
                    repeats=1 if quick else 3).record())
        runs.append({"bench": bench, "scale": scale,
                     "events": out["events"],
                     "elapsed": round(out["elapsed"], 6),
                     "events_per_sec": round(out["rate"], 1)})
        total_events += out["events"]
        total_elapsed += out["elapsed"]
    return {
        "unit": "events/s",
        "runs": runs,
        "events_per_sec": round(total_events / total_elapsed, 1)
        if total_elapsed else 0.0,
    }


def _section_fuzz(quick: bool) -> Dict[str, Any]:
    seeds = _FUZZ_SEEDS_QUICK if quick else _FUZZ_SEEDS
    elapsed = 0.0
    real_bugs = 0
    for seed in seeds:
        out = execute_perf_record(PerfJob("fuzz", seed=seed).record())
        elapsed += out["elapsed"]
        real_bugs += out["real_bugs"]
    return {
        "unit": "iterations/s",
        "iterations": len(seeds),
        "seeds": list(seeds),
        "elapsed": round(elapsed, 6),
        "iterations_per_sec": round(len(seeds) / elapsed, 2)
        if elapsed else 0.0,
        "real_bugs": real_bugs,
    }


def _section_replay(quick: bool) -> Dict[str, Any]:
    bench, scale = _REPLAY_CELL_QUICK if quick else _REPLAY_CELL
    backends: Dict[str, Dict[str, Any]] = {}
    events = 0
    total_elapsed = 0.0
    for name in _TIMED_BACKENDS:
        out = execute_perf_record(
            PerfJob("replay", bench=bench, scale=scale, backend=name,
                    repeats=1 if quick else 3).record())
        events = out["events"]
        total_elapsed += out["elapsed"]
        backends[name] = {"elapsed": round(out["elapsed"], 6),
                          "events_per_sec": round(out["rate"], 1)}
    fastest = max(b["events_per_sec"] for b in backends.values()) or 1.0
    for entry in backends.values():
        entry["overhead_vs_fastest"] = round(
            fastest / entry["events_per_sec"], 3) \
            if entry["events_per_sec"] else None
    # aggregate throughput: every backend replays the same pinned trace,
    # so the section-level rate is (backends * events) / total elapsed
    aggregate = (len(backends) * events / total_elapsed
                 if total_elapsed else 0.0)
    return {"unit": "events/s", "bench": bench, "scale": scale,
            "events": events, "elapsed": round(total_elapsed, 6),
            "events_per_sec": round(aggregate, 1), "backends": backends}


def _section_multigpu(quick: bool) -> Dict[str, Any]:
    cells = _MG_CELLS_QUICK if quick else _MG_CELLS
    runs = []
    total_events = 0
    total_elapsed = 0.0
    for bench, gpus, scale in cells:
        out = execute_perf_record(
            PerfJob("multigpu", bench=bench, scale=scale, gpus=gpus,
                    repeats=1 if quick else 3).record())
        runs.append({"bench": bench, "gpus": gpus, "scale": scale,
                     "events": out["events"],
                     "contradictions": out["contradictions"],
                     "elapsed": round(out["elapsed"], 6),
                     "events_per_sec": round(out["rate"], 1)})
        total_events += out["events"]
        total_elapsed += out["elapsed"]
    return {
        "unit": "events/s",
        "runs": runs,
        "events_per_sec": round(total_events / total_elapsed, 1)
        if total_elapsed else 0.0,
    }


def _section_static_prefilter(quick: bool) -> Dict[str, Any]:
    """mg-fuzz throughput with the static analyzer as a simulation gate.

    Runs the same pinned seed band twice — fully dynamic, then with
    ``static_prefilter`` — so the record carries both the gated rate
    and the honest speedup (prefiltered cells skip the multi-device
    simulation but still pay for generation + static analysis).
    """
    from repro.multigpu.fuzz import run_mg_fuzz

    seed, iterations = _PREFILTER_BAND_QUICK if quick else _PREFILTER_BAND
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        full = run_mg_fuzz(seed, iterations)
        full_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        pre = run_mg_fuzz(seed, iterations, static_prefilter=True)
        pre_elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return {
        "unit": "iterations/s",
        "seed": seed,
        "iterations": iterations,
        "prefiltered": pre["prefiltered"],
        "static_contradictions": len(pre["static_contradictions"])
        + len(full["static_contradictions"]),
        "full_elapsed": round(full_elapsed, 6),
        "elapsed": round(pre_elapsed, 6),
        "speedup": round(full_elapsed / pre_elapsed, 3)
        if pre_elapsed else 0.0,
        "iterations_per_sec": round(iterations / pre_elapsed, 2)
        if pre_elapsed else 0.0,
    }


def _section_service(quick: bool, workers: int) -> Dict[str, Any]:
    """End-to-end throughput through a live in-process service."""
    from repro.harness.trace import dump_binary
    from repro.harness.trace import record as record_trace
    from repro.serve.app import ServerThread, ServiceConfig
    from repro.serve.client import ServiceClient

    n_traces, per_trace = _SERVICE_LOAD_QUICK if quick else _SERVICE_LOAD
    backends = ("haccrg-word", "oracle")[:per_trace]
    blobs = []
    for i in range(n_traces):
        scale = 0.1 + 0.02 * i
        blobs.append(dump_binary(record_trace("SCAN", scale=scale)))

    import tempfile
    with tempfile.TemporaryDirectory(prefix="benchperf-") as tmp:
        config = ServiceConfig(port=0, store=tmp, workers=workers,
                               high_water=256, rate=10_000.0,
                               burst=10_000.0)
        with ServerThread(config) as server:
            client = ServiceClient(server.url, client_id="bench-perf")
            start = time.perf_counter()
            digests = [client.upload(blob)["digest"] for blob in blobs]
            states = []
            for digest in digests:
                for backend in backends:
                    states.append(client.submit(digest, backend))
            for state in states:
                if state["status"] not in ("done",):
                    client.wait(state["job"], timeout=300.0)
            elapsed = time.perf_counter() - start

            # repeat submissions: every one must be a verdict-cache hit
            start_hit = time.perf_counter()
            hits = 0
            for digest in digests:
                for backend in backends:
                    state = client.submit(digest, backend)
                    hits += 1 if state.get("cached") else 0
            hit_elapsed = time.perf_counter() - start_hit
            metrics = client.metrics()

    jobs = len(digests) * len(backends)
    return {
        "unit": "jobs/s",
        "workers": workers,
        "traces": len(digests),
        "jobs": jobs,
        "elapsed": round(elapsed, 6),
        "jobs_per_sec": round(jobs / elapsed, 2) if elapsed else 0.0,
        "cache_hits": hits,
        "cache_hit_elapsed": round(hit_elapsed, 6),
        "cache_hits_per_sec": round(jobs / hit_elapsed, 1)
        if hit_elapsed else 0.0,
        "server_replays": int(metrics.get("jobs_replays", -1)),
        "server_cache_hits": int(metrics.get("jobs_cache_hits", -1)),
    }


# ---------------------------------------------------------------------------
# output file + validation
# ---------------------------------------------------------------------------

def repo_root() -> Path:
    """The repository root (three levels above this file's package)."""
    return Path(__file__).resolve().parents[3]


def bench_path(output: Optional[str] = None) -> Path:
    return Path(output) if output else repo_root() / BENCH_FILENAME


def write_bench_file(record: Dict[str, Any],
                     output: Optional[str] = None) -> Path:
    """Validate and write the canonical bench record; returns the path."""
    validate_bench_record(record)
    path = bench_path(output)
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    path.write_text(payload + "\n", encoding="utf-8")
    return path


def validate_bench_record(record: Dict[str, Any]) -> None:
    """Raise ``PerfSpecError`` unless the record is well-formed."""
    if not isinstance(record, dict):
        raise PerfSpecError("bench record is not an object")
    if record.get("schema") != PERF_SCHEMA:
        raise PerfSpecError(
            f"bench schema {record.get('schema')!r} != {PERF_SCHEMA}")
    if record.get("bench") != BENCH_NAME:
        raise PerfSpecError(f"bench name {record.get('bench')!r} "
                            f"!= {BENCH_NAME!r}")
    sections = record.get("sections")
    if not isinstance(sections, dict):
        raise PerfSpecError("bench record has no 'sections' object")
    required = {
        "simulate": "events_per_sec",
        "fuzz": "iterations_per_sec",
        "replay": "backends",
        "service": "jobs_per_sec",
        "multigpu": "events_per_sec",
        "static_prefilter": "iterations_per_sec",
    }
    for name, field in required.items():
        section = sections.get(name)
        if not isinstance(section, dict):
            raise PerfSpecError(f"missing bench section {name!r}")
        if field not in section:
            raise PerfSpecError(
                f"bench section {name!r} is missing {field!r}")
    for name in ("simulate", "fuzz", "service", "multigpu",
                 "static_prefilter"):
        rate = sections[name][required[name]]
        if not isinstance(rate, (int, float)) or rate <= 0:
            raise PerfSpecError(
                f"bench section {name!r} reports non-positive rate "
                f"{rate!r}")
    backends = sections["replay"]["backends"]
    if not isinstance(backends, dict) or not backends:
        raise PerfSpecError("bench section 'replay' measured no backends")
    for backend, entry in backends.items():
        rate = entry.get("events_per_sec")
        if not isinstance(rate, (int, float)) or rate <= 0:
            raise PerfSpecError(
                f"replay backend {backend!r} reports non-positive rate "
                f"{rate!r}")


def validate_bench_file(path: Optional[str] = None) -> Dict[str, Any]:
    """Load + validate a bench file (the CI gate); returns the record."""
    target = bench_path(path)
    try:
        record = json.loads(target.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise PerfSpecError(f"bench file {target} does not exist") \
            from None
    except ValueError as exc:
        raise PerfSpecError(f"bench file {target} is not valid JSON: "
                            f"{exc}") from None
    validate_bench_record(record)
    return record


def render_summary(record: Dict[str, Any]) -> str:
    """Human-readable digest of a bench record."""
    s = record["sections"]
    lines = [
        f"bench-perf ({'quick' if record.get('quick') else 'full'}, "
        f"python {record.get('python')})",
        f"  simulate  {s['simulate']['events_per_sec']:>10.1f} events/s "
        f"({len(s['simulate']['runs'])} cells)",
        f"  fuzz      {s['fuzz']['iterations_per_sec']:>10.2f} iters/s "
        f"({s['fuzz']['iterations']} iterations)",
    ]
    for name in sorted(s["replay"]["backends"]):
        entry = s["replay"]["backends"][name]
        lines.append(f"  replay    {entry['events_per_sec']:>10.1f} "
                     f"events/s  {name} "
                     f"(x{entry['overhead_vs_fastest']} vs fastest)")
    svc = s["service"]
    lines.append(f"  service   {svc['jobs_per_sec']:>10.2f} jobs/s "
                 f"({svc['jobs']} jobs, {svc['workers']} workers); "
                 f"cache hits {svc['cache_hits_per_sec']:.1f}/s")
    mg = s.get("multigpu")
    if mg is not None:
        lines.append(f"  multigpu  {mg['events_per_sec']:>10.1f} events/s "
                     f"({len(mg['runs'])} cells)")
    sp = s.get("static_prefilter")
    if sp is not None:
        lines.append(f"  prefilter {sp['iterations_per_sec']:>10.2f} "
                     f"iters/s  ({sp['prefiltered']}/{sp['iterations']} "
                     f"cells skipped, x{sp['speedup']} vs full)")
    return "\n".join(lines)
