"""The §IV-B virtual-memory experiment: tagged vs split shadow TLBs.

Drives the benchmark suite's *global-memory address traces* through both
proposed TLB mechanisms at equal regular-TLB capacity and reports miss
rates and translation cycles. The qualitative claims to reproduce: the
1-bit-tag scheme costs regular-entry capacity (its application miss rate
rises once shadow translations compete), the split scheme is faster, and
a smaller shadow TLB suffices because only global-space pages have
shadows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.types import MemSpace
from repro.events import Subscriber
from repro.events.records import AccessIssued
from repro.harness.experiments import RACE_FREE_OVERRIDES
from repro.vm.page_table import PageTable
from repro.vm.tlb import SplitTLB, TaggedTLB


class _TraceCollector(Subscriber):
    """Bus observer that records the global-access address stream of a run."""

    def __init__(self) -> None:
        self.addrs: List[int] = []

    def on_access(self, ev: AccessIssued):
        if ev.access.space == MemSpace.GLOBAL:
            self.addrs.extend(la.addr for la in ev.access.lanes)
        return None


class TLBProbe(Subscriber):
    """Observer that models address translation for one live run.

    Feeds every global-memory lane address through a :class:`TaggedTLB`
    backed by an on-demand page table (pages map on first touch, same
    policy as real lazy allocation). With ``shadowed=True`` the probe
    prices the detector's paired app+shadow lookup
    (:meth:`TaggedTLB.access_cycles`); otherwise only the application
    translation. The benchmark runner harvests :meth:`tlb_record` into
    ``MetricsCollector.note_tlb``, which is how the statistics reach
    ``RunResult.tlb``, the JSON export, and the CLI summary line.
    """

    #: pure function of the access stream — safe under epoch replay
    replay_safe = True

    def __init__(self, entries: int = 16, page_size: int = 4096,
                 shadowed: bool = False) -> None:
        self._page_size = page_size
        self._pt = PageTable(page_size)
        self._tlb = TaggedTLB(entries, self._pt)
        self._shadowed = shadowed
        self._mapped: set = set()
        #: total modeled translation cycles over the run
        self.translation_cycles = 0

    def on_access(self, ev: AccessIssued):
        if ev.access.space != MemSpace.GLOBAL:
            return None
        for la in ev.access.lanes:
            vpn = la.addr // self._page_size
            if vpn not in self._mapped:
                self._mapped.add(vpn)
                self._pt.map_range(vpn * self._page_size, self._page_size,
                                   is_global=True)
            if self._shadowed:
                self.translation_cycles += self._tlb.access_cycles(la.addr)
            else:
                _, cycles = self._tlb.translate(la.addr)
                self.translation_cycles += cycles
        return None

    def tlb_record(self):
        """JSON-safe ``TLBStats.record()`` snapshot (runner harvest hook)."""
        return self._tlb.stats.record()


@dataclass
class VMTLBRow:
    name: str
    accesses: int
    tagged_app_miss: float
    tagged_total_miss: float
    tagged_cycles: int
    split_app_miss: float
    split_total_miss: float
    split_cycles: int
    shadow_pages: int
    app_pages: int


def collect_global_trace(name: str, scale: float = 1.0) -> List[int]:
    """Run a benchmark with a trace-collecting hook; return its stream."""
    collector = _TraceCollector()
    from repro.common.config import scaled_gpu_config
    from repro.gpu.simulator import GPUSimulator
    from repro.bench.suite import get_benchmark

    sim = GPUSimulator(scaled_gpu_config(), timing_enabled=False)
    sim.add_observer(collector)
    plan = get_benchmark(name).plan(
        sim, scale=scale, **RACE_FREE_OVERRIDES.get(name, {})
    )
    plan.run(sim)
    return collector.addrs


def cyclic_trace(pages: int, page_size: int, rounds: int = 16) -> List[int]:
    """Synthetic TLB-capacity probe: cycle over ``pages`` pages.

    Real kernels stream (high page locality), which hides TLB capacity;
    the classic cyclic sweep exposes it: once the combined app+shadow
    working set exceeds the tagged TLB, LRU thrashes every probe.
    """
    return [p * page_size for _ in range(rounds) for p in range(pages)]


def vm_tlb_study(names: Sequence[str] = ("REDUCE", "HIST", "KMEANS",
                                         "PSUM"),
                 tlb_entries: int = 16,
                 shadow_entries: int = 8,
                 page_size: int = 4096,
                 scale: float = 1.0) -> List[VMTLBRow]:
    """Compare the two shadow-translation mechanisms.

    Benchmarks provide real (stream-local) traces; the synthetic CYCLIC
    row cycles over exactly ``tlb_entries`` pages to expose the tagged
    mechanism's capacity loss.
    """
    rows = []
    traces = {name: collect_global_trace(name, scale=scale)
              for name in names}
    traces["CYCLIC"] = cyclic_trace(tlb_entries, page_size)
    for name, trace in traces.items():
        span = max(trace) + 4 if trace else 4

        pt_tagged = PageTable(page_size)
        pt_tagged.map_range(0, span, is_global=True)
        tagged = TaggedTLB(tlb_entries, pt_tagged)
        tagged_cycles = sum(tagged.access_cycles(a) for a in trace)

        pt_split = PageTable(page_size)
        pt_split.map_range(0, span, is_global=True)
        split = SplitTLB(tlb_entries, shadow_entries, pt_split)
        split_cycles = sum(split.access_cycles(a) for a in trace)

        rows.append(VMTLBRow(
            name=name,
            accesses=len(trace),
            tagged_app_miss=tagged.stats.app_miss_rate,
            tagged_total_miss=tagged.stats.total_miss_rate,
            tagged_cycles=tagged_cycles,
            split_app_miss=split.stats.app_miss_rate,
            split_total_miss=split.stats.total_miss_rate,
            split_cycles=split_cycles,
            shadow_pages=pt_split.shadow_pages_allocated,
            app_pages=pt_split.app_pages_allocated,
        ))
    return rows


def render_vm_tlb(rows: List[VMTLBRow]) -> str:
    out = [
        "VIRTUAL MEMORY: TAGGED vs SPLIT SHADOW TLB (paper IV-B)",
        "-" * 78,
        f"{'Bench':8s} {'accesses':>9s} {'tag app-miss':>13s} "
        f"{'split app-miss':>15s} {'tag cyc':>9s} {'split cyc':>10s} "
        f"{'shadow pg':>10s}",
    ]
    for r in rows:
        out.append(
            f"{r.name:8s} {r.accesses:>9d} {r.tagged_app_miss:>12.1%} "
            f"{r.split_app_miss:>14.1%} {r.tagged_cycles:>9d} "
            f"{r.split_cycles:>10d} {r.shadow_pages:>10d}"
        )
    return "\n".join(out)
