"""Detection-parity checking across detector implementations.

The repository carries four implementations of (subsets of) the same
detection semantics: the hardware detector, the software-instrumented
detector, trace replay, and the offline log analyzer. Parity between
them is a strong correctness signal — they share the semantics but not
the code path that applies it. This module runs a benchmark under each
and diffs the race sets; the `parity` tests keep them locked together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.common.config import DetectionMode, DetectorBackend, HAccRGConfig
from repro.common.types import MemSpace
from repro.harness.runner import run_benchmark, run_benchmark_direct
from repro.harness.trace import TraceRecorder, replay

#: a race's identity for cross-implementation comparison
RaceKey = Tuple[MemSpace, int, str, str]


def _keys(log) -> FrozenSet[RaceKey]:
    return frozenset(
        (r.space, r.entry, r.kind.name, r.category.name)
        for r in log.reports
    )


@dataclass
class ParityResult:
    benchmark: str
    hardware: FrozenSet[RaceKey]
    software: FrozenSet[RaceKey]
    replayed: FrozenSet[RaceKey]

    @property
    def consistent(self) -> bool:
        return self.hardware == self.software == self.replayed

    def differences(self) -> Dict[str, FrozenSet[RaceKey]]:
        out = {}
        if self.software != self.hardware:
            out["software-only"] = self.software - self.hardware
            out["hardware-not-software"] = self.hardware - self.software
        if self.replayed != self.hardware:
            out["replay-only"] = self.replayed - self.hardware
            out["hardware-not-replay"] = self.hardware - self.replayed
        return {k: v for k, v in out.items() if v}


def check_parity(name: str, scale: float = 0.5,
                 config: HAccRGConfig = None,
                 **overrides) -> ParityResult:
    """Run ``name`` under all comparable implementations and diff."""
    cfg = config or HAccRGConfig(mode=DetectionMode.FULL,
                                 shared_granularity=4)
    # the trace is recorded *during* the hardware run — detector and
    # recorder subscribe to the same event bus and observe the identical
    # live interleaving, so no separate recording pass is needed
    recorder = TraceRecorder()
    hw = run_benchmark_direct(name, cfg, scale=scale, timing_enabled=False,
                              observers=[recorder], **overrides)
    sw = run_benchmark(name, cfg.with_backend(DetectorBackend.SOFTWARE),
                       scale=scale, timing_enabled=False, **overrides)
    rep = replay(recorder.events, cfg)
    return ParityResult(
        benchmark=name,
        hardware=_keys(hw.races),
        software=_keys(sw.races),
        replayed=_keys(rep),
    )


def parity_sweep(names: Sequence[str], scale: float = 0.5,
                 overrides_by_name: Dict[str, dict] = None
                 ) -> List[ParityResult]:
    overrides_by_name = overrides_by_name or {}
    return [check_parity(n, scale=scale,
                         **overrides_by_name.get(n, {}))
            for n in names]
