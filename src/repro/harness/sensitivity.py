"""Sensitivity of the Fig. 7 overhead to memory-system provisioning.

The paper's combined-detection overhead is an emergent property of L2
capacity and DRAM bandwidth absorbing shadow traffic. This study sweeps
both and reports the geomean overhead at each point, answering the
robustness question a reviewer would ask: *does the conclusion survive a
smaller L2 or a slower memory?* The expected shape: overhead shrinks as
either resource grows (more shadow traffic absorbed / more headroom), and
even the starved corner stays far below software-instrumentation cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.common.config import DetectionMode, HAccRGConfig, scaled_gpu_config
from repro.harness.runner import run_benchmark
from repro.harness.experiments import RACE_FREE_OVERRIDES


@dataclass
class SensitivityPoint:
    label: str
    l2_slice_kb: int
    dram_bytes_per_cycle: float
    geomean_overhead: float
    worst_overhead: float
    worst_bench: str


DEFAULT_BENCHES = ("MCARLO", "FWALSH", "HIST", "REDUCE", "PSUM")


def overhead_at(l2_slice_kb: int, dram_bpc: float,
                names: Sequence[str] = DEFAULT_BENCHES,
                scale: float = 0.5) -> SensitivityPoint:
    """Geomean/worst FULL-mode overhead for one memory configuration."""
    gpu = scaled_gpu_config(l2_slice_size=l2_slice_kb * 1024,
                            dram_bytes_per_cycle=dram_bpc)
    ratios = []
    worst = (0.0, "")
    for name in names:
        overrides = RACE_FREE_OVERRIDES.get(name, {})
        base = run_benchmark(name, None, gpu_config=gpu, scale=scale,
                             **overrides)
        full = run_benchmark(name, HAccRGConfig(mode=DetectionMode.FULL),
                             gpu_config=gpu, scale=scale, **overrides)
        ratio = full.cycles / base.cycles
        ratios.append(ratio)
        if ratio > worst[0]:
            worst = (ratio, name)
    geo = math.prod(ratios) ** (1 / len(ratios))
    return SensitivityPoint(
        label=f"L2={l2_slice_kb}KB/slice, DRAM={dram_bpc:g}B/cyc",
        l2_slice_kb=l2_slice_kb,
        dram_bytes_per_cycle=dram_bpc,
        geomean_overhead=geo,
        worst_overhead=worst[0],
        worst_bench=worst[1],
    )


def sensitivity_study(l2_sizes_kb: Sequence[int] = (4, 8, 16),
                      dram_bpcs: Sequence[float] = (4.0, 8.0, 16.0),
                      names: Sequence[str] = DEFAULT_BENCHES,
                      scale: float = 0.5) -> List[SensitivityPoint]:
    """Full cross-product sweep."""
    return [overhead_at(l2, bpc, names=names, scale=scale)
            for l2 in l2_sizes_kb for bpc in dram_bpcs]


def render_sensitivity(points: List[SensitivityPoint]) -> str:
    out = [
        "SENSITIVITY: FULL-DETECTION OVERHEAD vs MEMORY PROVISIONING",
        "-" * 72,
        f"{'configuration':34s} {'geomean':>9s} {'worst':>8s} {'bench':>8s}",
    ]
    for p in points:
        out.append(
            f"{p.label:34s} {p.geomean_overhead:>9.3f} "
            f"{p.worst_overhead:>8.3f} {p.worst_bench:>8s}"
        )
    return "\n".join(out)
