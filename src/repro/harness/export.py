"""Structured (JSON-serializable) export of runs, races, and experiments.

A downstream tool — CI regression tracking, a race-report viewer, a
notebook — wants machine-readable output rather than the text tables of
:mod:`repro.harness.report`. These helpers flatten the result objects
into plain dicts of primitives; everything returned is ``json.dumps``-safe.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.common.types import KernelStats, MemSpace, RaceCategory, RaceKind
from repro.core.clocks import ClockStats
from repro.core.races import RaceLog, RaceReport
from repro.events import PhaseStats
from repro.harness.runner import RunResult


def race_to_dict(race: RaceReport) -> Dict[str, Any]:
    """One race report as a flat dict of primitives."""
    return {
        "category": race.category.name,
        "kind": race.kind.name,
        "space": race.space.name,
        "entry": int(race.entry),
        "addr": int(race.addr),
        "owner_tid": int(race.owner_tid),
        "access_tid": int(race.access_tid),
        "owner_block": int(race.owner_block),
        "access_block": int(race.access_block),
        "pc": int(race.pc),
        "stale_l1": bool(race.stale_l1),
        "description": race.describe(),
    }


def race_log_to_dict(log: RaceLog, max_races: Optional[int] = None
                     ) -> Dict[str, Any]:
    """Summary + (optionally truncated) race list."""
    races = log.reports if max_races is None else log.reports[:max_races]
    return {
        "distinct_races": len(log),
        "distinct_pairs": log.distinct_pairs(),
        "total_trips": log.total_trips(),
        "by_category": {c.name: n for c, n in log.by_category().items()},
        "by_kind": {k.name: n for k, n in log.by_kind().items()},
        "races": [race_to_dict(r) for r in races],
        "truncated": max_races is not None and len(log) > max_races,
    }


def run_result_to_dict(res: RunResult,
                       max_races: Optional[int] = 100) -> Dict[str, Any]:
    """One benchmark run as a flat record."""
    out: Dict[str, Any] = {
        "benchmark": res.name,
        "cycles": int(res.cycles),
        "instructions": int(res.stats.instructions),
        "shared_reads": int(res.stats.shared_reads),
        "shared_writes": int(res.stats.shared_writes),
        "global_reads": int(res.stats.global_reads),
        "global_writes": int(res.stats.global_writes),
        "atomics": int(res.stats.atomics),
        "barriers": int(res.stats.barriers),
        "fences": int(res.stats.fences),
        "dram_utilization": float(res.dram_utilization),
        "dram_bytes": int(res.dram_bytes),
        "dram_shadow_bytes": int(res.dram_shadow_bytes),
        "l1_hit_rate": float(res.l1_hit_rate),
        "l2_hit_rate": float(res.l2_hit_rate),
        "data_bytes": int(res.data_bytes),
        "verified": res.verified,
    }
    if res.phases is not None:
        out["phases"] = phase_stats_record(res.phases)
        out["phases"]["detector_stall_cycles"] = int(
            res.phases.detector_stall_cycles)
    if res.tlb is not None:
        out["tlb"] = dict(res.tlb)
    if res.races is not None:
        out["race_log"] = race_log_to_dict(res.races, max_races=max_races)
    return out


def to_json(obj: Any, indent: int = 2) -> str:
    """Serialize an exported record (round-trip safety asserted)."""
    text = json.dumps(obj, indent=indent, sort_keys=True)
    json.loads(text)  # must always round-trip
    return text


# ---------------------------------------------------------------------------
# full-fidelity records: RunResult <-> plain dict, exactly
# ---------------------------------------------------------------------------
#
# The summary exporters above truncate race lists and drop detector state;
# the campaign engine needs *lossless* records so a cache-served RunResult
# compares equal to the live one. These records serialize everything except
# the live ``detector`` handle (flagged live-only on RunResult).

_STATS_FIELDS = ("instructions", "shared_reads", "shared_writes",
                 "global_reads", "global_writes", "atomics", "barriers",
                 "fences")

_CLOCK_FIELDS = ("max_sync_increments", "max_fence_increments",
                 "sync_overflows", "fence_overflows")

_PHASE_FIELDS = ("issue_slots", "issue_cycles", "idle_cycles",
                 "access_stall_cycles", "barrier_stall_cycles",
                 "fence_stall_cycles", "shadow_traffic_bytes")


def phase_stats_record(phases: PhaseStats) -> Dict[str, int]:
    return {name: int(getattr(phases, name)) for name in _PHASE_FIELDS}


def phase_stats_from_record(record: Dict[str, int]) -> PhaseStats:
    return PhaseStats(**{name: int(record[name]) for name in _PHASE_FIELDS})


def kernel_stats_record(stats: KernelStats) -> Dict[str, int]:
    return {name: int(getattr(stats, name)) for name in _STATS_FIELDS}


def kernel_stats_from_record(record: Dict[str, int]) -> KernelStats:
    return KernelStats(**{name: int(record[name]) for name in _STATS_FIELDS})


def race_record(race: RaceReport) -> Dict[str, Any]:
    """One race report with *every* field (unlike :func:`race_to_dict`)."""
    return {
        "category": race.category.name,
        "kind": race.kind.name,
        "space": race.space.name,
        "entry": int(race.entry),
        "addr": int(race.addr),
        "owner_tid": int(race.owner_tid),
        "access_tid": int(race.access_tid),
        "owner_block": int(race.owner_block),
        "access_block": int(race.access_block),
        "pc": int(race.pc),
        "cycle": int(race.cycle),
        "stale_l1": bool(race.stale_l1),
    }


def race_from_record(record: Dict[str, Any]) -> RaceReport:
    return RaceReport(
        category=RaceCategory[record["category"]],
        kind=RaceKind[record["kind"]],
        space=MemSpace[record["space"]],
        entry=int(record["entry"]),
        addr=int(record["addr"]),
        owner_tid=int(record["owner_tid"]),
        access_tid=int(record["access_tid"]),
        owner_block=int(record["owner_block"]),
        access_block=int(record["access_block"]),
        pc=int(record["pc"]),
        cycle=int(record["cycle"]),
        stale_l1=bool(record["stale_l1"]),
    )


def race_log_record(log: RaceLog) -> Dict[str, Any]:
    """Lossless RaceLog state: reports, trip counts, and pair keys.

    Trip-count keys are (space, entry, kind, category) tuples and pair
    keys extend them with the thread pair; both are flattened to lists of
    enum names + ints so the record is plain JSON.
    """
    return {
        "reports": [race_record(r) for r in log.reports],
        "trips": [
            [space.name, int(entry), kind.name, category.name, int(count)]
            for (space, entry, kind, category), count
            in sorted(log.trip_counts.items())
        ],
        "pairs": [
            [space.name, int(entry), kind.name, category.name,
             int(owner), int(access)]
            for (space, entry, kind, category, owner, access)
            in sorted(log._pair_keys)
        ],
    }


def race_log_from_record(record: Dict[str, Any]) -> RaceLog:
    log = RaceLog()
    for r in record["reports"]:
        report = race_from_record(r)
        log.reports.append(report)
        log._seen.add(log._key(report))
    for space, entry, kind, category, count in record["trips"]:
        key = (MemSpace[space], int(entry), RaceKind[kind],
               RaceCategory[category])
        log.trip_counts[key] = int(count)
    for space, entry, kind, category, owner, access in record["pairs"]:
        log._pair_keys.add((MemSpace[space], int(entry), RaceKind[kind],
                            RaceCategory[category], int(owner), int(access)))
    return log


def clock_stats_record(stats: ClockStats) -> Dict[str, int]:
    return {name: int(getattr(stats, name)) for name in _CLOCK_FIELDS}


def clock_stats_from_record(record: Dict[str, int]) -> ClockStats:
    return ClockStats(**{name: int(record[name]) for name in _CLOCK_FIELDS})


def run_result_record(res: RunResult) -> Dict[str, Any]:
    """Lossless RunResult record (everything but the live detector)."""
    return {
        "name": res.name,
        "cycles": int(res.cycles),
        "stats": kernel_stats_record(res.stats),
        "dram_utilization": float(res.dram_utilization),
        "dram_bytes": int(res.dram_bytes),
        "dram_shadow_bytes": int(res.dram_shadow_bytes),
        "l1_hit_rate": float(res.l1_hit_rate),
        "l2_hit_rate": float(res.l2_hit_rate),
        "races": race_log_record(res.races) if res.races is not None else None,
        "verified": res.verified,
        "data_bytes": int(res.data_bytes),
        "num_launches": int(res.num_launches),
        "id_stats": (clock_stats_record(res.id_stats)
                     if res.id_stats is not None else None),
        "shared_shadow_misses": int(res.shared_shadow_misses),
        "shadow_transactions": int(res.shadow_transactions),
        "phases": (phase_stats_record(res.phases)
                   if res.phases is not None else None),
        "tlb": dict(res.tlb) if res.tlb is not None else None,
    }


def run_result_from_record(record: Dict[str, Any]) -> RunResult:
    """Rebuild a RunResult that compares equal to the original."""
    return RunResult(
        name=record["name"],
        cycles=int(record["cycles"]),
        stats=kernel_stats_from_record(record["stats"]),
        dram_utilization=float(record["dram_utilization"]),
        dram_bytes=int(record["dram_bytes"]),
        dram_shadow_bytes=int(record["dram_shadow_bytes"]),
        l1_hit_rate=float(record["l1_hit_rate"]),
        l2_hit_rate=float(record["l2_hit_rate"]),
        races=(race_log_from_record(record["races"])
               if record["races"] is not None else None),
        detector=None,
        verified=record["verified"],
        data_bytes=int(record["data_bytes"]),
        num_launches=int(record["num_launches"]),
        id_stats=(clock_stats_from_record(record["id_stats"])
                  if record["id_stats"] is not None else None),
        shared_shadow_misses=int(record["shared_shadow_misses"]),
        shadow_transactions=int(record["shadow_transactions"]),
        # .get(): records cached before the event pipeline lack the field
        phases=(phase_stats_from_record(record["phases"])
                if record.get("phases") is not None else None),
        # .get(): records cached before the TLB surface lack the field
        tlb=(dict(record["tlb"])
             if record.get("tlb") is not None else None),
    )
