"""Structured (JSON-serializable) export of runs, races, and experiments.

A downstream tool — CI regression tracking, a race-report viewer, a
notebook — wants machine-readable output rather than the text tables of
:mod:`repro.harness.report`. These helpers flatten the result objects
into plain dicts of primitives; everything returned is ``json.dumps``-safe.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.core.races import RaceLog, RaceReport
from repro.harness.runner import RunResult


def race_to_dict(race: RaceReport) -> Dict[str, Any]:
    """One race report as a flat dict of primitives."""
    return {
        "category": race.category.name,
        "kind": race.kind.name,
        "space": race.space.name,
        "entry": int(race.entry),
        "addr": int(race.addr),
        "owner_tid": int(race.owner_tid),
        "access_tid": int(race.access_tid),
        "owner_block": int(race.owner_block),
        "access_block": int(race.access_block),
        "pc": int(race.pc),
        "stale_l1": bool(race.stale_l1),
        "description": race.describe(),
    }


def race_log_to_dict(log: RaceLog, max_races: Optional[int] = None
                     ) -> Dict[str, Any]:
    """Summary + (optionally truncated) race list."""
    races = log.reports if max_races is None else log.reports[:max_races]
    return {
        "distinct_races": len(log),
        "distinct_pairs": log.distinct_pairs(),
        "total_trips": log.total_trips(),
        "by_category": {c.name: n for c, n in log.by_category().items()},
        "by_kind": {k.name: n for k, n in log.by_kind().items()},
        "races": [race_to_dict(r) for r in races],
        "truncated": max_races is not None and len(log) > max_races,
    }


def run_result_to_dict(res: RunResult,
                       max_races: Optional[int] = 100) -> Dict[str, Any]:
    """One benchmark run as a flat record."""
    out: Dict[str, Any] = {
        "benchmark": res.name,
        "cycles": int(res.cycles),
        "instructions": int(res.stats.instructions),
        "shared_reads": int(res.stats.shared_reads),
        "shared_writes": int(res.stats.shared_writes),
        "global_reads": int(res.stats.global_reads),
        "global_writes": int(res.stats.global_writes),
        "atomics": int(res.stats.atomics),
        "barriers": int(res.stats.barriers),
        "fences": int(res.stats.fences),
        "dram_utilization": float(res.dram_utilization),
        "dram_bytes": int(res.dram_bytes),
        "dram_shadow_bytes": int(res.dram_shadow_bytes),
        "l1_hit_rate": float(res.l1_hit_rate),
        "l2_hit_rate": float(res.l2_hit_rate),
        "data_bytes": int(res.data_bytes),
        "verified": res.verified,
    }
    if res.races is not None:
        out["race_log"] = race_log_to_dict(res.races, max_races=max_races)
    return out


def to_json(obj: Any, indent: int = 2) -> str:
    """Serialize an exported record (round-trip safety asserted)."""
    text = json.dumps(obj, indent=indent, sort_keys=True)
    json.loads(text)  # must always round-trip
    return text
