"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list`` — show the benchmark suite and its metadata;
- ``run BENCH`` — run one benchmark under a chosen detection mode and
  print races + performance counters;
- ``experiment ID`` — regenerate one paper artifact (table1, table2,
  effectiveness, injected, table3, bloom, idsizes, fig7, fig8, fig9,
  table4, hwcost, ablations, vmtlb);
- ``reproduce`` — regenerate everything, in paper order.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.suite import SUITE
from repro.common.config import (
    DetectionMode,
    DetectorBackend,
    HAccRGConfig,
)
from repro.harness import ablations as ab
from repro.harness import experiments as ex
from repro.harness import report
from repro.harness import vm_experiment as vme
from repro.harness.runner import run_benchmark

_MODES = {
    "off": DetectionMode.OFF,
    "shared": DetectionMode.SHARED,
    "global": DetectionMode.GLOBAL,
    "full": DetectionMode.FULL,
}

_BACKENDS = {
    "hardware": DetectorBackend.HARDWARE,
    "software": DetectorBackend.SOFTWARE,
    "grace": DetectorBackend.GRACE,
}


def _cmd_list(args) -> int:
    print(f"{'name':8s} {'fences':>7s} {'locks':>6s} {'real bug':>9s}  inputs")
    for b in SUITE:
        print(f"{b.name:8s} {'yes' if b.uses_fences else '-':>7s} "
              f"{'yes' if b.uses_locks else '-':>6s} "
              f"{'yes' if b.has_real_race else '-':>9s}  {b.scaled_input}")
    return 0


def _cmd_run(args) -> int:
    mode = _MODES[args.mode]
    cfg = None
    if mode != DetectionMode.OFF:
        cfg = HAccRGConfig(
            mode=mode,
            backend=_BACKENDS[args.backend],
            shared_granularity=args.shared_granularity,
            global_granularity=args.global_granularity,
        )
    res = run_benchmark(args.bench.upper(), cfg, scale=args.scale)
    print(f"{res.name}: {res.cycles} cycles, "
          f"{res.stats.instructions} instructions, "
          f"DRAM util {res.dram_utilization:.1%}, "
          f"L1 hit {res.l1_hit_rate:.1%}")
    if res.races is not None:
        print(f"races: {len(res.races)} distinct "
              f"({res.shared_races()} shared, {res.global_races()} global)")
        for r in res.races.reports[: args.max_races]:
            print("  " + r.describe())
        hidden = len(res.races) - args.max_races
        if hidden > 0:
            print(f"  ... and {hidden} more")
        if args.diagnose and len(res.races):
            from repro.harness.diagnose import diagnose
            sim = getattr(res.detector, "sim", None)
            mem = sim.device_mem if sim is not None else None
            print()
            print(diagnose(res.races, mem).render())
    return 0


_EXPERIMENTS = {
    "table1": lambda s: report.render_table1(ex.table1_config()),
    "table2": lambda s: report.render_table2(
        ex.table2_characteristics(scale=s)),
    "effectiveness": lambda s: report.render_effectiveness(
        ex.effectiveness_real_races(scale=s)),
    "injected": lambda s: report.render_injected(
        ex.effectiveness_injected_races(scale=s)),
    "table3": lambda s: report.render_table3(ex.table3_granularity(scale=s)),
    "bloom": lambda s: report.render_bloom(ex.bloom_accuracy_study()),
    "idsizes": lambda s: report.render_idsizes(ex.id_size_study(scale=s)),
    "fig7": lambda s: _figure(ex.fig7_performance(scale=s),
                              report.render_fig7, "chart_fig7"),
    "fig8": lambda s: _figure(ex.fig8_shadow_split(scale=s),
                              report.render_fig8, "chart_fig8"),
    "fig9": lambda s: _figure(ex.fig9_bandwidth(scale=s),
                              report.render_fig9, "chart_fig9"),
    "table4": lambda s: report.render_table4(
        ex.table4_memory_overhead(scale=s)),
    "hwcost": lambda s: report.render_hw_cost(ex.hw_cost_report()),
    "vmtlb": lambda s: vme.render_vm_tlb(vme.vm_tlb_study(scale=s)),
    "ablations": lambda s: "\n\n".join([
        ab.render_ablation("fence-ID suppression",
                           ab.ablation_fence_suppression(scale=s),
                           "races (with)", "races (without)"),
        ab.render_ablation("warp-aware suppression",
                           ab.ablation_warp_suppression(scale=s),
                           "races (with)", "races (without)"),
        ab.render_ablation("lazy sync-ID increment",
                           ab.ablation_sync_id_optimization(scale=s),
                           "max incr (lazy)", "max incr (eager)"),
        ab.render_ablation("dirty-only shadow write-back",
                           ab.ablation_shadow_writeback(scale=s),
                           "shadow txns", "shadow txns (naive)"),
    ]),
}


def _figure(data, table_renderer, chart_name: str) -> str:
    """Figures print both the numeric table and the ASCII bar chart."""
    from repro.harness import charts

    return "\n\n".join([table_renderer(data),
                        getattr(charts, chart_name)(data)])


def _cmd_experiment(args) -> int:
    print(_EXPERIMENTS[args.id](args.scale))
    return 0


def _cmd_reproduce(args) -> int:
    order = ["table1", "table2", "effectiveness", "injected", "table3",
             "bloom", "idsizes", "fig7", "fig8", "fig9", "table4",
             "hwcost", "vmtlb", "ablations"]
    for exp_id in order:
        print(_EXPERIMENTS[exp_id](args.scale))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="HAccRG reproduction: run benchmarks and regenerate "
                    "the paper's tables and figures.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite").set_defaults(
        fn=_cmd_list)

    run_p = sub.add_parser("run", help="run one benchmark with detection")
    run_p.add_argument("bench", choices=[b.name for b in SUITE],
                       type=str.upper)
    run_p.add_argument("--mode", choices=sorted(_MODES), default="full")
    run_p.add_argument("--backend", choices=sorted(_BACKENDS),
                       default="hardware")
    run_p.add_argument("--shared-granularity", type=int, default=4)
    run_p.add_argument("--global-granularity", type=int, default=4)
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--max-races", type=int, default=10)
    run_p.add_argument("--diagnose", action="store_true",
                       help="group races into per-array findings with "
                            "suggested fixes")
    run_p.set_defaults(fn=_cmd_run)

    exp_p = sub.add_parser("experiment",
                           help="regenerate one paper artifact")
    exp_p.add_argument("id", choices=sorted(_EXPERIMENTS))
    exp_p.add_argument("--scale", type=float, default=1.0)
    exp_p.set_defaults(fn=_cmd_experiment)

    rep_p = sub.add_parser("reproduce",
                           help="regenerate every table and figure")
    rep_p.add_argument("--scale", type=float, default=1.0)
    rep_p.set_defaults(fn=_cmd_reproduce)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
