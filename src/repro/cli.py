"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list`` — show the benchmark suite and its metadata;
- ``run BENCH`` — run one benchmark under a chosen detection mode and
  print races + performance counters;
- ``experiment ID`` — regenerate one paper artifact (table1, table2,
  effectiveness, injected, table3, bloom, idsizes, fig7, fig8, fig9,
  table4, hwcost, ablations, vmtlb, multigpu);
- ``reproduce`` — regenerate everything, in paper order; with
  ``--workers N --cache DIR`` the experiment grid is pre-computed in
  parallel through the campaign engine and every re-run is incremental;
  ``--gpus N`` (N > 1) renders the multi-GPU extension section instead
  (see docs/MULTIGPU.md);
- ``campaign list/run/status/clean`` — drive experiment grids through
  the parallel campaign engine (see docs/CAMPAIGNS.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.bench.suite import SUITE
from repro.common.config import (
    DetectionMode,
    DetectorBackend,
    HAccRGConfig,
)
from repro.harness import ablations as ab
from repro.harness import experiments as ex
from repro.harness import report
from repro.harness import vm_experiment as vme
from repro.harness.runner import run_benchmark

_MODES = {
    "off": DetectionMode.OFF,
    "shared": DetectionMode.SHARED,
    "global": DetectionMode.GLOBAL,
    "full": DetectionMode.FULL,
}

_BACKENDS = {
    "hardware": DetectorBackend.HARDWARE,
    "software": DetectorBackend.SOFTWARE,
    "grace": DetectorBackend.GRACE,
}


def _cmd_list(args) -> int:
    print(f"{'name':8s} {'fences':>7s} {'locks':>6s} {'real bug':>9s}  inputs")
    for b in SUITE:
        print(f"{b.name:8s} {'yes' if b.uses_fences else '-':>7s} "
              f"{'yes' if b.uses_locks else '-':>6s} "
              f"{'yes' if b.has_real_race else '-':>9s}  {b.scaled_input}")
    return 0


def _cmd_run(args) -> int:
    mode = _MODES[args.mode]
    cfg = None
    if mode != DetectionMode.OFF:
        cfg = HAccRGConfig(
            mode=mode,
            backend=_BACKENDS[args.backend],
            shared_granularity=args.shared_granularity,
            global_granularity=args.global_granularity,
        )
    if args.tlb:
        # translation modeling is a live observer, so it takes the direct
        # (session-bypassing) path; the probe prices the paired app+shadow
        # lookup whenever a detector is attached
        from repro.harness.runner import run_benchmark_direct
        from repro.harness.vm_experiment import TLBProbe

        probe = TLBProbe(entries=args.tlb, shadowed=cfg is not None)
        res = run_benchmark_direct(args.bench.upper(), cfg,
                                   scale=args.scale, observers=(probe,))
    else:
        res = run_benchmark(args.bench.upper(), cfg, scale=args.scale)
    print(f"{res.name}: {res.cycles} cycles, "
          f"{res.stats.instructions} instructions, "
          f"DRAM util {res.dram_utilization:.1%}, "
          f"L1 hit {res.l1_hit_rate:.1%}")
    if res.phases is not None:
        ph = res.phases
        print(f"phases: {ph.issue_cycles} issue / {ph.idle_cycles} idle "
              f"cycles, {ph.detector_stall_cycles} detector-stall "
              f"({ph.access_stall_cycles} access, "
              f"{ph.barrier_stall_cycles} barrier, "
              f"{ph.fence_stall_cycles} fence), "
              f"shadow traffic {ph.shadow_traffic_bytes} B")
    if res.tlb is not None:
        t = res.tlb
        print(f"tlb: {t['app_accesses']} app + {t['shadow_accesses']} "
              f"shadow lookups, app miss {t['app_miss_rate']:.1%}, "
              f"total miss {t['total_miss_rate']:.1%}, "
              f"{t['walks']} page walks")
    if res.races is not None:
        print(f"races: {len(res.races)} distinct "
              f"({res.shared_races()} shared, {res.global_races()} global)")
        for r in res.races.reports[: args.max_races]:
            print("  " + r.describe())
        hidden = len(res.races) - args.max_races
        if hidden > 0:
            print(f"  ... and {hidden} more")
        if args.diagnose and len(res.races):
            from repro.harness.diagnose import diagnose
            sim = getattr(res.detector, "sim", None)
            mem = sim.device_mem if sim is not None else None
            print()
            print(diagnose(res.races, mem).render())
    return 0


_EXPERIMENTS = {
    "table1": lambda s: report.render_table1(ex.table1_config()),
    "table2": lambda s: report.render_table2(
        ex.table2_characteristics(scale=s)),
    "effectiveness": lambda s: report.render_effectiveness(
        ex.effectiveness_real_races(scale=s)),
    "injected": lambda s: report.render_injected(
        ex.effectiveness_injected_races(scale=s)),
    "table3": lambda s: report.render_table3(ex.table3_granularity(scale=s)),
    "bloom": lambda s: report.render_bloom(ex.bloom_accuracy_study()),
    "idsizes": lambda s: report.render_idsizes(ex.id_size_study(scale=s)),
    "fig7": lambda s: _figure(ex.fig7_performance(scale=s),
                              report.render_fig7, "chart_fig7"),
    "fig8": lambda s: _figure(ex.fig8_shadow_split(scale=s),
                              report.render_fig8, "chart_fig8"),
    "fig9": lambda s: _figure(ex.fig9_bandwidth(scale=s),
                              report.render_fig9, "chart_fig9"),
    "table4": lambda s: report.render_table4(
        ex.table4_memory_overhead(scale=s)),
    "hwcost": lambda s: report.render_hw_cost(ex.hw_cost_report()),
    "vmtlb": lambda s: vme.render_vm_tlb(vme.vm_tlb_study(scale=s)),
    "multigpu": lambda s: _multigpu_section(s, gpus=2),
    "ablations": lambda s: "\n\n".join([
        ab.render_ablation("fence-ID suppression",
                           ab.ablation_fence_suppression(scale=s),
                           "races (with)", "races (without)"),
        ab.render_ablation("warp-aware suppression",
                           ab.ablation_warp_suppression(scale=s),
                           "races (with)", "races (without)"),
        ab.render_ablation("lazy sync-ID increment",
                           ab.ablation_sync_id_optimization(scale=s),
                           "max incr (lazy)", "max incr (eager)"),
        ab.render_ablation("dirty-only shadow write-back",
                           ab.ablation_shadow_writeback(scale=s),
                           "shadow txns", "shadow txns (naive)"),
    ]),
}


def _figure(data, table_renderer, chart_name: str) -> str:
    """Figures print both the numeric table and the ASCII bar chart."""
    from repro.harness import charts

    return "\n\n".join([table_renderer(data),
                        getattr(charts, chart_name)(data)])


def _multigpu_section(scale: float, gpus: int) -> str:
    from repro.multigpu.experiment import multigpu_study, render_multigpu

    return render_multigpu(multigpu_study(scale=scale, gpus=gpus))


def _cmd_experiment(args) -> int:
    if args.id == "multigpu":
        print(_multigpu_section(args.scale, gpus=args.gpus))
        return 0
    print(_EXPERIMENTS[args.id](args.scale))
    return 0


_REPRODUCE_ORDER = ["table1", "table2", "effectiveness", "injected",
                    "table3", "bloom", "idsizes", "fig7", "fig8", "fig9",
                    "table4", "hwcost", "vmtlb", "ablations"]

#: default on-disk result cache location for campaign-backed commands
DEFAULT_CACHE = ".repro-cache"


def _render_reproduce(scale: float) -> None:
    for exp_id in _REPRODUCE_ORDER:
        print(_EXPERIMENTS[exp_id](scale))
        print()


def _cmd_reproduce(args) -> int:
    if args.gpus > 1:
        # the multi-GPU extension section: every registered multi-device
        # benchmark plus the injection matrix, detector vs oracle. The
        # single-GPU tables are unaffected by the device count, so this
        # renders the one section that is.
        print(_multigpu_section(args.scale, gpus=args.gpus))
        return 0
    if args.sm_workers is not None:
        # the env var is how the setting reaches every simulator the
        # render path builds (and, like REPRO_FAST_PATH, it is excluded
        # from campaign job digests — cached cells stay valid)
        os.environ["REPRO_SM_WORKERS"] = str(args.sm_workers)
    if args.profile:
        # profile the single-process render path: the cProfile stats
        # cover simulation + detection end to end, which is what the
        # engine fast path optimizes
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            _render_reproduce(args.scale)
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative")
            print(f"\n--- profile: top {args.profile_top} by cumulative "
                  f"time ---", file=sys.stderr)
            stats.print_stats(args.profile_top)
        return 0

    if args.cache is None and args.workers <= 1:
        _render_reproduce(args.scale)
        return 0

    from repro.campaign import (
        ResultStore,
        get_campaign,
        run_campaign,
        session,
    )
    from repro.campaign.progress import ProgressReporter

    store = ResultStore(args.cache or DEFAULT_CACHE)
    if args.workers > 1:
        # pre-fill the cache in parallel: every run_benchmark cell the
        # reproduce pass will issue, executed by the worker pool
        campaign = get_campaign("reproduce")
        progress = ProgressReporter(total=0, quiet=args.quiet)
        run = run_campaign(campaign, store, scale=args.scale,
                           workers=args.workers, timeout=args.timeout,
                           retries=args.retries, progress=progress)
        if run.failed:
            print(run.state.summary(), file=sys.stderr)
    with session(store) as sess:
        _render_reproduce(args.scale)
    print(f"[cache] {sess.cache_hits} hits, {sess.executed} simulated, "
          f"store at {store.root}", file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# campaign verbs
# ---------------------------------------------------------------------------

def _state_path(args, store) -> Path:
    if getattr(args, "state", None):
        return Path(args.state)
    return store.root / f"state-{args.campaign}.json"


def _cmd_campaign_list(args) -> int:
    from repro.campaign import CAMPAIGNS

    print(f"{'name':14s} {'cells':>6s}  description")
    for name in sorted(CAMPAIGNS):
        c = CAMPAIGNS[name]
        print(f"{name:14s} {len(c.jobs(args.scale)):6d}  {c.description}")
    return 0


def _cmd_campaign_run(args) -> int:
    from repro.campaign import (
        CampaignInterrupted,
        ProgressReporter,
        ResultStore,
        get_campaign,
        run_campaign,
    )

    try:
        campaign = get_campaign(args.campaign)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    store = ResultStore(args.cache)
    progress = ProgressReporter(total=0, quiet=args.quiet,
                                min_interval=args.progress_interval)
    try:
        run = run_campaign(
            campaign, store, scale=args.scale, workers=args.workers,
            timeout=args.timeout, retries=args.retries,
            state_path=_state_path(args, store),
            retry_failed=args.retry_failed, progress=progress)
    except CampaignInterrupted as exc:
        print(str(exc), file=sys.stderr)
        return 130
    print(run.state.summary())
    if args.report:
        Path(args.report).write_text(
            json.dumps(run.report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"report written to {args.report}", file=sys.stderr)
    else:
        print(json.dumps(run.report, indent=2, sort_keys=True))
    return 1 if run.failed else 0


def _cmd_campaign_status(args) -> int:
    from repro.campaign import CampaignState, ResultStore

    store = ResultStore(args.cache)
    path = _state_path(args, store)
    if not path.exists():
        print(f"no campaign state at {path}", file=sys.stderr)
        return 1
    state = CampaignState.load(path, args.campaign)
    print(state.summary())
    print(f"store: {len(store)} cached result(s) at {store.root}")
    return 1 if state.failures() else 0


def _cmd_campaign_clean(args) -> int:
    from repro.campaign import ResultStore

    store = ResultStore(args.cache)
    older = args.older_than * 86400.0 if args.older_than is not None else None
    removed = store.prune(older_than_seconds=older)
    scope = (f"older than {args.older_than:g} day(s)"
             if older is not None else "all entries")
    print(f"removed {removed} cache entr(ies) ({scope}) from {store.root}")
    if args.states:
        for path in sorted(Path(store.root).glob("state-*.json")):
            path.unlink()
            print(f"removed {path}")
    return 0


# ---------------------------------------------------------------------------
# trace + fuzz verbs
# ---------------------------------------------------------------------------

def _cmd_trace_record(args) -> int:
    from repro.harness.runner import run_benchmark_direct
    from repro.harness.trace import TraceRecorder, write_trace

    recorder = TraceRecorder()
    run_benchmark_direct(args.bench.upper(), detector_config=None,
                         scale=args.scale, seed=args.seed,
                         timing_enabled=False, observers=(recorder,))
    write_trace(args.output, recorder.events,
                binary=True if args.binary else None)
    size = os.path.getsize(args.output)
    print(f"{args.bench.upper()}: {len(recorder.events)} events -> "
          f"{args.output} ({size} bytes)")
    return 0


def _cmd_trace_replay(args) -> int:
    from repro.common.errors import TraceFormatError
    from repro.harness.trace import read_trace, replay

    try:
        events = read_trace(args.trace)
    except TraceFormatError as exc:
        print(f"error: {args.trace}: {exc}", file=sys.stderr)
        return 2

    if args.backend is not None:
        # service-backend replay: emit the canonical verdict JSON, byte-
        # identical to what the detection service serves for this trace
        from repro.serve.backends import (
            BackendError, canonical_json, get_backend, trace_digest,
            verdict_record)
        try:
            backend = get_backend(args.backend)
            record = verdict_record(trace_digest(events), backend, events)
        except BackendError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        sys.stdout.write(canonical_json(record) + "\n")
        return 0

    mode = _MODES[args.mode]
    if mode == DetectionMode.OFF:
        print("error: replay needs a detection mode", file=sys.stderr)
        return 2
    cfg = HAccRGConfig(mode=mode,
                       shared_granularity=args.shared_granularity,
                       global_granularity=args.global_granularity,
                       sync_id_bits=args.sync_id_bits,
                       fence_id_bits=args.fence_id_bits)
    log = replay(events, cfg, perfect_sigs=args.perfect_sigs)
    print(f"{args.trace}: {len(events)} events, {len(log)} distinct races")
    for r in log.reports[: args.max_races]:
        print("  " + r.describe())
    hidden = len(log) - args.max_races
    if hidden > 0:
        print(f"  ... and {hidden} more")
    if args.oracle:
        from repro.core.groundtruth import (detector_entries,
                                            oracle_entries, oracle_races)
        races = oracle_races(events)
        orc = oracle_entries(races, cfg.shared_granularity,
                             cfg.global_granularity,
                             cfg.mode.shared_enabled,
                             cfg.mode.global_enabled)
        det = detector_entries(log, cfg.mode.shared_enabled,
                               cfg.mode.global_enabled)
        print(f"oracle: {len(races)} racing byte-pairs, {len(orc)} entries; "
              f"detector-only {len(det - orc)}, oracle-only {len(orc - det)}")
    return 0


def _cmd_fuzz(args) -> int:
    if args.gpus > 1:
        from repro.multigpu.fuzz import MGFuzzParams, run_mg_fuzz

        summary = run_mg_fuzz(args.seed, args.iterations,
                              MGFuzzParams(gpus=args.gpus),
                              static_prefilter=args.static_prefilter)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(f"mg-fuzz: {summary['iterations']} iterations on "
                  f"{args.gpus} devices "
                  f"({summary['prefiltered']} statically prefiltered), "
                  f"{summary['racy_programs']} racy "
                  f"programs ({summary['oracle_races']} oracle / "
                  f"{summary['detector_races']} detector races), "
                  f"digest {summary['digest'][:16]}")
            for c in summary["contradictions"]:
                print(f"  CONTRADICTION: {c}")
            for c in summary["static_contradictions"]:
                print(f"  STATIC CONTRADICTION: {c}")
        return 1 if (summary["contradictions"]
                     or summary["static_contradictions"]) else 0

    from repro.fuzz import GeneratorParams, run_fuzz_campaign

    params = GeneratorParams(inject_every=args.inject_every)
    result = run_fuzz_campaign(
        seed=args.seed, iterations=args.iterations, workers=args.workers,
        params=params, modes=tuple(args.mode or ()),
        cache_dir=args.cache, corpus_dir=args.corpus,
        minimize=args.minimize,
        static_prefilter=args.static_prefilter, timeout=args.timeout)
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"fuzz: {summary['iterations']} iterations "
              f"({summary['cache_hits']} cached, "
              f"{summary['prefiltered']} prefiltered, "
              f"{summary['errors']} errors), "
              f"corpus digest {summary['digest'][:16]}")
        print(f"  programs: " + ", ".join(
            f"{k}={v}" for k, v in sorted(summary["programs_by_note"].items())))
        for name, res in sorted(summary["modes"].items()):
            fp = ", ".join(f"{k}={v}" for k, v in sorted(res["fp"].items()))
            fn = ", ".join(f"{k}={v}" for k, v in sorted(res["fn"].items()))
            print(f"  {name}: detected {res['detected']} vs oracle "
                  f"{res['oracle']}; fp [{fp or '-'}] fn [{fn or '-'}]")
        print(f"  real reproduction bugs: {summary['real_bugs']}"
              + (f" {summary['real_bug_hashes']}"
                 if summary['real_bug_hashes'] else ""))
    return 1 if summary["real_bugs"] else 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve.app import ServiceConfig, run_service

    config = ServiceConfig(
        host=args.host, port=args.port, store=args.store,
        workers=args.workers, timeout=args.timeout, retries=args.retries,
        high_water=args.high_water, rate=args.rate, burst=args.burst)
    try:
        asyncio.run(run_service(config))
    except KeyboardInterrupt:
        print("repro-serve: shutting down")
    return 0


def _cmd_submit(args) -> int:
    from repro.serve.backends import backend_names
    from repro.serve.client import JobFailed, ServiceClient, ServiceError

    if args.list_backends:
        for name in backend_names():
            print(name)
        return 0
    if args.trace is None or not args.backend:
        print("error: submit needs a trace file and at least one "
              "--backend (or --list-backends)", file=sys.stderr)
        return 2
    program = None
    if args.program is not None:
        program = json.loads(Path(args.program).read_text(encoding="utf-8"))

    client = ServiceClient(args.server, client_id=args.client)
    try:
        receipt = client.upload(args.trace)
    except (ServiceError, ConnectionError, OSError) as exc:
        print(f"error: upload failed: {exc}", file=sys.stderr)
        return 1
    if not args.json:
        print(f"uploaded {args.trace}: trace {receipt['digest'][:16]}... "
              f"({receipt['events']} events, {receipt['bytes']} bytes)")
    failures = 0
    for backend in args.backend:
        try:
            state = client.submit(receipt["digest"], backend,
                                  program=program)
            if state["status"] not in ("done", "error", "timeout",
                                       "crashed"):
                state = client.wait(state["job"], timeout=args.timeout)
            verdict_body = client.verdict_bytes(state["verdict"])
            if args.json:
                sys.stdout.write(verdict_body.decode("utf-8") + "\n")
            else:
                verdict = json.loads(verdict_body)
                result = verdict["result"]
                races = result.get("distinct", result.get("count"))
                cached = " (cached)" if state.get("cached") else ""
                print(f"{backend}: {races} distinct races, verdict "
                      f"{state['verdict'][:16]}...{cached}")
        except (ServiceError, JobFailed, TimeoutError) as exc:
            failures += 1
            print(f"error: {backend}: {exc}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_bench_perf(args) -> int:
    from repro.harness.benchperf import (
        bench_path,
        render_summary,
        run_bench_perf,
        write_bench_file,
    )

    record = run_bench_perf(quick=args.quick, workers=args.workers)
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(render_summary(record))
    if not args.no_write:
        path = write_bench_file(record, args.output)
        print(f"wrote {path}")
    else:
        _ = bench_path(args.output)
    return 0


def _cmd_analyze_mg(args) -> int:
    """Multi-device static analysis: the ``--gpus N`` route.

    Exit codes are script-friendly: 0 = every region proved race-free,
    1 = static-vs-oracle contradiction or worker error (an analyzer
    bug), 2 = racy verdicts present, 3 = unknown verdicts only.
    """
    from repro.analyze.mgworker import run_mg_analyze_campaign

    bench = args.bench
    result = run_mg_analyze_campaign(
        gpus=args.gpus, seed=args.seed, iterations=args.iterations,
        workers=args.workers, benchmarks=bench is not None,
        injected=args.injected, validate=args.validate,
        cache_dir=args.cache, timeout=args.timeout)
    if bench not in (None, "all"):
        result.results = [r for r in result.results
                          if r.get("source") != "bench"
                          or f"mgbench:{bench.upper()}:"
                          in r.get("note", "")]
    summary = result.summary()
    summary["gpus"] = args.gpus
    summary["programs_detail"] = [
        {
            "note": rec.get("note", ""),
            "verdicts": rec.get("verdicts", {}),
            "placement": rec.get("report", {}).get("placement"),
            "validation_ok": rec.get("validation", {}).get("ok"),
        }
        for rec in result.results
    ]
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        v = summary["verdicts"]
        print(f"analyze[x{args.gpus}]: {summary['programs']} programs "
              f"({summary['cache_hits']} cached, {summary['errors']} "
              f"errors): {v['racy']} racy, {v['unknown']} unknown, "
              f"{v['race_free']} race-free regions")
        for rec in result.results:
            rv = rec.get("verdicts", {})
            line = (f"  {rec.get('note') or rec['hash']}: "
                    f"racy={rv.get('racy', 0)} "
                    f"unknown={rv.get('unknown', 0)} "
                    f"race-free={rv.get('race_free', 0)}")
            placement = rec.get("report", {}).get("placement")
            if placement:
                per_dev = ", ".join(
                    f"d{d['device']}:{len(d['local_arrays'])} local"
                    f"+{len(d['visible_shared_arrays'])} shared"
                    for d in placement["devices"])
                line += (f" [{placement['shared_pages']} shared pages; "
                         f"{per_dev}]")
            val = rec.get("validation")
            if val is not None:
                line += (" [oracle ok]" if val["ok"]
                         else f" [CONTRADICTED: {val['contradictions']}]")
            print(line)
        if args.validate:
            t = summary["validation"]
            print(f"  oracle cross-check: {t['racy_confirmed']} witnesses "
                  f"confirmed, {t['race_free_clean']} regions clean, "
                  f"{t['unknown']} unknown, "
                  f"{summary['contradictions']} contradictions "
                  f"(fp={t['static_fp']} fn={t['static_fn']})")
    if summary["contradictions"]:
        return 1
    if summary["verdicts"]["racy"]:
        return 2
    if summary["verdicts"]["unknown"]:
        return 3
    return 0


def _cmd_analyze(args) -> int:
    if args.gpus > 1:
        return _cmd_analyze_mg(args)

    from repro.analyze import run_analyze_campaign

    bench = args.bench
    result = run_analyze_campaign(
        seed=args.seed, iterations=args.iterations, workers=args.workers,
        benchmarks=bench is not None, injected=args.injected,
        validate=args.validate, cache_dir=args.cache,
        timeout=args.timeout)
    if bench not in (None, "all"):
        result.results = [r for r in result.results
                          if r.get("source") != "bench"
                          or f"bench:{bench}:" in r.get("note", "")]
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        v = summary["verdicts"]
        print(f"analyze: {summary['programs']} programs "
              f"({summary['cache_hits']} cached, {summary['errors']} "
              f"errors): {v['racy']} racy, {v['unknown']} unknown, "
              f"{v['race_free']} race-free regions")
        for rec in result.results:
            rv = rec.get("verdicts", {})
            line = (f"  {rec.get('note') or rec['hash']}: "
                    f"racy={rv.get('racy', 0)} "
                    f"unknown={rv.get('unknown', 0)} "
                    f"race-free={rv.get('race_free', 0)}")
            val = rec.get("validation")
            if val is not None:
                line += (" [oracle ok]" if val["ok"]
                         else f" [CONTRADICTED: {val['contradictions']}]")
            print(line)
        if args.validate:
            t = summary["validation"]
            print(f"  oracle cross-check: {t['racy_confirmed']} witnesses "
                  f"confirmed, {t['race_free_clean']} regions clean, "
                  f"{t['unknown']} unknown, "
                  f"{summary['contradictions']} contradictions")
    return 1 if summary["contradictions"] else 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="HAccRG reproduction: run benchmarks and regenerate "
                    "the paper's tables and figures.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite").set_defaults(
        fn=_cmd_list)

    run_p = sub.add_parser("run", help="run one benchmark with detection")
    run_p.add_argument("bench", choices=[b.name for b in SUITE],
                       type=str.upper)
    run_p.add_argument("--mode", choices=sorted(_MODES), default="full")
    run_p.add_argument("--backend", choices=sorted(_BACKENDS),
                       default="hardware")
    run_p.add_argument("--shared-granularity", type=int, default=4)
    run_p.add_argument("--global-granularity", type=int, default=4)
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--max-races", type=int, default=10)
    run_p.add_argument("--tlb", type=int, default=0, metavar="ENTRIES",
                       help="model address translation through an "
                            "ENTRIES-entry tagged TLB (repro.vm) and "
                            "report its statistics; runs the direct "
                            "(uncached) path")
    run_p.add_argument("--diagnose", action="store_true",
                       help="group races into per-array findings with "
                            "suggested fixes")
    run_p.set_defaults(fn=_cmd_run)

    exp_p = sub.add_parser("experiment",
                           help="regenerate one paper artifact")
    exp_p.add_argument("id", choices=sorted(_EXPERIMENTS))
    exp_p.add_argument("--scale", type=float, default=1.0)
    exp_p.add_argument("--gpus", type=int, default=2,
                       help="device count for the multigpu experiment "
                            "(ignored by single-GPU experiments)")
    exp_p.set_defaults(fn=_cmd_experiment)

    rep_p = sub.add_parser("reproduce",
                           help="regenerate every table and figure")
    rep_p.add_argument("--scale", type=float, default=1.0)
    rep_p.add_argument("--gpus", type=int, default=1,
                       help="with N > 1, render the multi-GPU extension "
                            "section on an N-device system instead of "
                            "the single-GPU tables (docs/MULTIGPU.md)")
    rep_p.add_argument("--workers", type=int, default=1,
                       help="pre-compute the experiment grid with N "
                            "parallel workers before rendering")
    rep_p.add_argument("--cache", default=None, metavar="DIR",
                       help="result-store directory; makes reproduce "
                            f"incremental across runs (default "
                            f"{DEFAULT_CACHE} when --workers > 1)")
    rep_p.add_argument("--timeout", type=float, default=None,
                       help="per-job timeout in seconds (parallel only)")
    rep_p.add_argument("--retries", type=int, default=1,
                       help="retries per failed job (parallel only)")
    rep_p.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")
    rep_p.add_argument("--sm-workers", type=int, default=None,
                       metavar="N",
                       help="shard each simulation's SMs across N "
                            "processes with the epoch-sliced engine "
                            "(bit-identical to inline; 0 = inline, "
                            "the default)")
    rep_p.add_argument("--profile", action="store_true",
                       help="run under cProfile and dump the hottest "
                            "functions to stderr (single-process only)")
    rep_p.add_argument("--profile-top", type=int, default=25,
                       metavar="N",
                       help="functions shown with --profile "
                            "(default: 25)")
    rep_p.set_defaults(fn=_cmd_reproduce)

    camp_p = sub.add_parser(
        "campaign", help="run experiment grids through the campaign engine")
    camp_sub = camp_p.add_subparsers(dest="verb", required=True)

    def _common(sp, with_campaign: bool = True):
        if with_campaign:
            sp.add_argument("campaign", help="campaign name (see "
                                             "'campaign list')")
        sp.add_argument("--cache", default=DEFAULT_CACHE, metavar="DIR",
                        help="result-store directory "
                             f"(default {DEFAULT_CACHE})")
        sp.add_argument("--state", default=None, metavar="FILE",
                        help="campaign state file (default "
                             "<cache>/state-<campaign>.json)")

    list_p = camp_sub.add_parser("list", help="list known campaigns")
    list_p.add_argument("--scale", type=float, default=1.0)
    list_p.set_defaults(fn=_cmd_campaign_list)

    crun_p = camp_sub.add_parser(
        "run", help="run (or resume) a campaign through the worker pool")
    _common(crun_p)
    crun_p.add_argument("--scale", type=float, default=1.0)
    crun_p.add_argument("--workers", type=int, default=1)
    crun_p.add_argument("--timeout", type=float, default=None,
                        help="per-job timeout in seconds")
    crun_p.add_argument("--retries", type=int, default=1,
                        help="retries per failed job")
    crun_p.add_argument("--retry-failed", action="store_true",
                        help="re-queue jobs a previous run marked failed")
    crun_p.add_argument("--report", default=None, metavar="FILE",
                        help="write the JSON campaign report here "
                             "instead of stdout")
    crun_p.add_argument("--quiet", action="store_true")
    crun_p.add_argument("--progress-interval", type=float, default=0.0,
                        help="min seconds between progress lines")
    crun_p.set_defaults(fn=_cmd_campaign_run)

    stat_p = camp_sub.add_parser("status",
                                 help="show a campaign's job states")
    _common(stat_p)
    stat_p.set_defaults(fn=_cmd_campaign_status)

    clean_p = camp_sub.add_parser(
        "clean", help="prune the result store (and optionally state files)")
    _common(clean_p, with_campaign=False)
    clean_p.add_argument("--older-than", type=float, default=None,
                         metavar="DAYS",
                         help="only remove entries older than DAYS "
                              "(default: remove everything)")
    clean_p.add_argument("--states", action="store_true",
                         help="also remove campaign state files")
    clean_p.set_defaults(fn=_cmd_campaign_clean)

    trace_p = sub.add_parser(
        "trace", help="record and replay execution traces")
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    trec_p = trace_sub.add_parser(
        "record", help="record a benchmark's access trace (no detector)")
    trec_p.add_argument("bench", choices=[b.name for b in SUITE],
                        type=str.upper)
    trec_p.add_argument("-o", "--output", required=True, metavar="PATH",
                        help="trace file (.bin = compact binary, else "
                             "JSON-lines)")
    trec_p.add_argument("--scale", type=float, default=1.0)
    trec_p.add_argument("--seed", type=int, default=0)
    trec_p.add_argument("--binary", action="store_true",
                        help="force the binary format regardless of suffix")
    trec_p.set_defaults(fn=_cmd_trace_record)

    trep_p = trace_sub.add_parser(
        "replay", help="replay a trace through the detection structures")
    trep_p.add_argument("trace", help="trace file (binary or JSON-lines)")
    trep_p.add_argument("--mode", choices=sorted(_MODES), default="full")
    trep_p.add_argument("--shared-granularity", type=int, default=4)
    trep_p.add_argument("--global-granularity", type=int, default=4)
    trep_p.add_argument("--sync-id-bits", type=int, default=8)
    trep_p.add_argument("--fence-id-bits", type=int, default=8)
    trep_p.add_argument("--perfect-sigs", action="store_true",
                        help="replace Bloom lock signatures with exact "
                             "per-lock bits (aliasing ablation)")
    trep_p.add_argument("--oracle", action="store_true",
                        help="also run the exact happens-before oracle "
                             "and report the entry-level diff")
    trep_p.add_argument("--max-races", type=int, default=10)
    trep_p.add_argument("--backend", default=None, metavar="NAME",
                        help="replay through a named service backend and "
                             "print the canonical verdict JSON (byte-"
                             "identical to the detection service's "
                             "response; see docs/SERVICE.md)")
    trep_p.set_defaults(fn=_cmd_trace_replay)

    fuzz_p = sub.add_parser(
        "fuzz", help="differential kernel fuzzing against the exact "
                     "happens-before oracle (see docs/FUZZING.md)")
    fuzz_p.add_argument("--seed", type=int, default=0)
    fuzz_p.add_argument("--iterations", type=int, default=100)
    fuzz_p.add_argument("--workers", type=int, default=1)
    fuzz_p.add_argument("--gpus", type=int, default=1,
                        help="with N > 1, run the multi-GPU differential "
                             "fuzzer on an N-device system instead "
                             "(docs/MULTIGPU.md); other flags except "
                             "--seed/--iterations/--json are ignored")
    fuzz_p.add_argument("--inject-every", type=int, default=2,
                        help="inject a planned race into every Nth "
                             "program (0 = never)")
    fuzz_p.add_argument("--mode", action="append", metavar="NAME",
                        help="detector mode(s) to diff (default: all; "
                             "repeatable)")
    fuzz_p.add_argument("--cache", default=None, metavar="DIR",
                        help="campaign result store for resumable runs")
    fuzz_p.add_argument("--corpus", default=None, metavar="DIR",
                        help="corpus directory (programs, reproducer "
                             "traces, summary)")
    fuzz_p.add_argument("--minimize", action="store_true",
                        help="delta-debug real-bug reproducers")
    fuzz_p.add_argument("--timeout", type=float, default=None,
                        help="per-iteration timeout (seconds, parallel "
                             "runs only)")
    fuzz_p.add_argument("--static-prefilter", action="store_true",
                        help="skip the simulator for programs the static "
                             "analyzer proves race-free (see "
                             "docs/ANALYSIS.md)")
    fuzz_p.add_argument("--json", action="store_true",
                        help="print the full summary as JSON")
    fuzz_p.set_defaults(fn=_cmd_fuzz)

    an_p = sub.add_parser(
        "analyze", help="static race analysis, differentially validated "
                        "against the oracle (see docs/ANALYSIS.md)")
    an_p.add_argument("--seed", type=int, default=0)
    an_p.add_argument("--iterations", type=int, default=0,
                      help="number of fuzz-generated programs to analyze")
    an_p.add_argument("--workers", type=int, default=1)
    an_p.add_argument("--gpus", type=int, default=1,
                      help="with N > 1, run the scope-aware multi-device "
                           "analysis (XGPU race class) instead: --bench "
                           "selects MG benchmark models, --iterations "
                           "analyzes mg-fuzz seeds; exit code 0 = proved "
                           "race-free, 2 = racy, 3 = unknown "
                           "(docs/ANALYSIS.md)")
    an_p.add_argument("--bench", default=None, metavar="NAME",
                      help="also analyze benchmark models ('all' or one "
                           "benchmark name)")
    an_p.add_argument("--injected", action="store_true",
                      help="include every injected variant of the "
                           "41-race catalog")
    an_p.add_argument("--no-validate", dest="validate",
                      action="store_false",
                      help="skip the oracle cross-check (no simulation)")
    an_p.add_argument("--cache", default=None, metavar="DIR",
                      help="campaign result store for resumable runs")
    an_p.add_argument("--timeout", type=float, default=None,
                      help="per-program timeout (seconds, parallel runs "
                           "only)")
    an_p.add_argument("--json", action="store_true",
                      help="print the full summary as JSON")
    an_p.set_defaults(fn=_cmd_analyze)

    srv_p = sub.add_parser(
        "serve", help="run the async detection service over HART traces "
                      "(see docs/SERVICE.md)")
    srv_p.add_argument("--host", default="127.0.0.1")
    srv_p.add_argument("--port", type=int, default=8037,
                       help="listen port (0 = pick a free port)")
    srv_p.add_argument("--store", default=".serve-store", metavar="DIR",
                       help="root for the trace store and verdict cache")
    srv_p.add_argument("--workers", type=int, default=2,
                       help="replay worker processes (0 = run replays "
                            "inline in threads)")
    srv_p.add_argument("--timeout", type=float, default=120.0,
                       help="per-job replay timeout (seconds)")
    srv_p.add_argument("--retries", type=int, default=1,
                       help="retries for timed-out/crashed jobs")
    srv_p.add_argument("--high-water", type=int, default=64,
                       help="queue depth past which submissions get 429")
    srv_p.add_argument("--rate", type=float, default=50.0,
                       help="per-client job submissions per second")
    srv_p.add_argument("--burst", type=float, default=100.0,
                       help="per-client token-bucket burst size")
    srv_p.set_defaults(fn=_cmd_serve)

    sub_p = sub.add_parser(
        "submit", help="upload a trace to a running detection service "
                       "and fetch verdicts (see docs/SERVICE.md)")
    sub_p.add_argument("trace", nargs="?", default=None,
                       help="trace file (binary or JSON-lines)")
    sub_p.add_argument("--server", default="http://127.0.0.1:8037",
                       metavar="URL")
    sub_p.add_argument("--backend", action="append", default=[],
                       metavar="NAME",
                       help="detector backend(s) to run (repeatable)")
    sub_p.add_argument("--program", default=None, metavar="FILE",
                       help="program-spec JSON (required by the 'static' "
                            "backend)")
    sub_p.add_argument("--client", default=None, metavar="ID",
                       help="client id for rate limiting (X-Client)")
    sub_p.add_argument("--timeout", type=float, default=300.0,
                       help="seconds to wait for each verdict")
    sub_p.add_argument("--json", action="store_true",
                       help="print the raw canonical verdict JSON, one "
                            "line per backend")
    sub_p.add_argument("--list-backends", action="store_true",
                       help="list registered backends and exit")
    sub_p.set_defaults(fn=_cmd_submit)

    bp_p = sub.add_parser(
        "bench-perf", help="measure simulator, fuzz, detector, multi-GPU, "
                           "service, and static-prefilter throughput; "
                           "writes BENCH_10.json")
    bp_p.add_argument("--quick", action="store_true",
                      help="smaller workloads (CI smoke; marked in the "
                           "output record)")
    bp_p.add_argument("--workers", type=int, default=0,
                      help="service worker processes for the throughput "
                           "section (0 = inline)")
    bp_p.add_argument("--output", default=None, metavar="FILE",
                      help="where to write the canonical record "
                           "(default: BENCH_10.json at the repo root)")
    bp_p.add_argument("--no-write", action="store_true",
                      help="print only; do not write the bench file")
    bp_p.add_argument("--json", action="store_true",
                      help="print the full record as JSON")
    bp_p.set_defaults(fn=_cmd_bench_perf)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) closed early; exit quietly the
        # way coreutils do, without a traceback
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
