"""Resumable campaign state.

The engine checkpoints every job-state transition to a small JSON file so
a campaign survives Ctrl-C, a crashed driver, or a rebooted CI runner:
re-running the same campaign command resumes exactly where it stopped.
Jobs found ``running`` at load time are demoted to ``pending`` (their
worker died with the previous driver); ``done`` jobs whose store entry
has since been evicted are also re-queued by the engine.

Saves are atomic (temp file + rename), mirroring the result store.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

STATE_SCHEMA = 1

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

_STATUSES = (PENDING, RUNNING, DONE, FAILED)


@dataclass
class JobState:
    """Tracked lifecycle of one campaign cell."""

    key: str
    label: str
    status: str = PENDING
    attempts: int = 0
    error: Optional[str] = None
    elapsed: Optional[float] = None
    cached: bool = False


@dataclass
class CampaignState:
    """Persistent pending/running/done/failed map for one campaign."""

    campaign: str
    path: Optional[Path] = None
    jobs: Dict[str, JobState] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # persistence

    @classmethod
    def load(cls, path: os.PathLike | str, campaign: str) -> "CampaignState":
        """Load the state file, or start fresh if absent/corrupt.

        A corrupt state file is not fatal — the store still dedups any
        work that already completed, so the worst case is re-verifying
        cache hits.
        """
        path = Path(path)
        state = cls(campaign=campaign, path=path)
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
            if data.get("schema") != STATE_SCHEMA:
                raise ValueError("unknown state schema")
            for record in data.get("jobs", []):
                js = JobState(**record)
                if js.status not in _STATUSES:
                    raise ValueError(f"bad status {js.status!r}")
                # a previous driver died mid-job: its worker is gone
                if js.status == RUNNING:
                    js.status = PENDING
                state.jobs[js.key] = js
        except FileNotFoundError:
            pass
        except (ValueError, KeyError, TypeError, OSError):
            state.jobs.clear()
        return state

    def save(self) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = {
            "schema": STATE_SCHEMA,
            "campaign": self.campaign,
            "jobs": [asdict(js) for js in self.jobs.values()],
        }
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=1, sort_keys=True)
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------
    # transitions

    def sync_jobs(self, labeled: List[Tuple[str, str]]) -> None:
        """Reconcile the state with the campaign's current job list.

        ``labeled`` is (label, key) pairs. New cells appear as pending;
        cells no longer in the campaign are dropped; completed cells keep
        their terminal status.
        """
        keys = {key for _, key in labeled}
        for key in [k for k in self.jobs if k not in keys]:
            del self.jobs[key]
        for label, key in labeled:
            if key not in self.jobs:
                self.jobs[key] = JobState(key=key, label=label)
            else:
                self.jobs[key].label = label

    def requeue(self, key: str) -> None:
        js = self.jobs[key]
        js.status = PENDING
        js.error = None

    def mark_running(self, key: str) -> None:
        js = self.jobs[key]
        js.status = RUNNING
        js.attempts += 1

    def mark_done(self, key: str, elapsed: Optional[float] = None,
                  cached: bool = False) -> None:
        js = self.jobs[key]
        js.status = DONE
        js.error = None
        js.elapsed = elapsed
        js.cached = cached

    def mark_failed(self, key: str, error: str) -> None:
        js = self.jobs[key]
        js.status = FAILED
        js.error = error

    # ------------------------------------------------------------------
    # queries

    def pending(self) -> List[JobState]:
        return [js for js in self.jobs.values() if js.status == PENDING]

    def counts(self) -> Dict[str, int]:
        out = {status: 0 for status in _STATUSES}
        for js in self.jobs.values():
            out[js.status] += 1
        return out

    def failures(self) -> List[JobState]:
        return [js for js in self.jobs.values() if js.status == FAILED]

    def finished(self) -> bool:
        return all(js.status in (DONE, FAILED) for js in self.jobs.values())

    def summary(self) -> str:
        """Human-readable status block for ``repro campaign status``."""
        counts = self.counts()
        total = len(self.jobs)
        lines = [
            f"campaign: {self.campaign} ({total} jobs)",
            "  " + "  ".join(f"{status}: {counts[status]}"
                             for status in _STATUSES),
        ]
        for js in self.failures():
            lines.append(f"  FAILED {js.label} after {js.attempts} "
                         f"attempt(s): {js.error}")
        return "\n".join(lines)
