"""Content-addressed on-disk result store.

Entries live under ``root/<key[:2]>/<key>.json`` where ``key`` is the
job's canonical SHA-256 (:meth:`repro.campaign.jobs.Job.key`). Each entry
stores the canonical job record alongside the lossless result record, so
the store doubles as a self-describing experiment archive: any entry can
be re-validated or re-executed from its own file.

Corruption is never fatal: an entry that fails to parse or whose key does
not match its contents is evicted on read and the job simply recomputes.
Writes are atomic (temp file + rename) so a killed campaign cannot leave
a half-written entry behind.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.campaign.jobs import JOB_SCHEMA, Job

#: store layout version (independent of JOB_SCHEMA, which keys the hash)
STORE_SCHEMA = 1


class ResultStore:
    """Content-addressed cache of job results, keyed by job hash."""

    def __init__(self, root: os.PathLike | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, job: Job) -> bool:
        return self.path_for(job.key()).exists()

    def get(self, job: Job) -> Optional[Dict[str, Any]]:
        """The stored result record, or None (counting a miss).

        A corrupt or mismatched entry is evicted and reported as a miss —
        callers recompute, they never crash on a bad cache file.
        """
        key = job.key()
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
            if entry["key"] != key or entry["schema"] != STORE_SCHEMA \
                    or entry["job"]["schema"] != JOB_SCHEMA:
                raise ValueError("stale or mismatched entry")
            result = entry["result"]
            if not isinstance(result, dict):
                raise ValueError("malformed result record")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            self.evictions += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(self, job: Job, result: Dict[str, Any],
            elapsed: Optional[float] = None) -> Path:
        """Atomically persist one result record; returns its path."""
        key = job.key()
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": STORE_SCHEMA,
            "key": key,
            "job": job.record(),
            "created": time.time(),
            "elapsed": elapsed,
            "result": result,
        }
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # maintenance

    def entries(self) -> Iterator[Tuple[str, Path]]:
        """All (key, path) pairs currently in the store."""
        for sub in sorted(self.root.iterdir()) if self.root.exists() else []:
            if not sub.is_dir():
                continue
            for path in sorted(sub.glob("*.json")):
                yield path.stem, path

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def prune(self, older_than_seconds: Optional[float] = None) -> int:
        """Delete entries (all, or only those older than the cutoff)."""
        now = time.time()
        removed = 0
        for _, path in list(self.entries()):
            if older_than_seconds is not None:
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    continue
                if age < older_than_seconds:
                    continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}
