"""Content-addressed job specifications.

A :class:`Job` captures one ``run_benchmark`` call — benchmark, detector
and GPU configuration, scale, seed, injection, and builder overrides — in
a canonical form whose SHA-256 hash is stable across processes, Python
versions, and dict insertion orders. The hash is the key of the
on-disk result store (:mod:`repro.campaign.store`): two invocations that
would simulate identically share one cache entry.

Canonicalization rules:

- ``gpu_config=None`` resolves to :func:`scaled_gpu_config` *before*
  hashing, so the key pins the actual hardware parameters rather than a
  default that could drift;
- a detector config in mode OFF collapses to ``None`` (``run_benchmark``
  treats them identically);
- injection sites and override keys are sorted;
- enums serialize by name, never by value.

``JOB_SCHEMA`` is part of the hashed payload — bump it whenever the
simulator's observable behaviour changes in a way that invalidates old
cached results.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.bench.common import Injection, NO_INJECTION
from repro.common.config import (
    DetectionMode,
    DetectorBackend,
    GPUConfig,
    HAccRGConfig,
    scaled_gpu_config,
)
from repro.common.errors import ConfigError

#: bump to invalidate every previously cached result
JOB_SCHEMA = 1

_JSON_PRIMITIVES = (str, int, float, bool, type(None))


class JobSpecError(ConfigError):
    """A job argument cannot be canonically serialized."""


def _config_record(cfg) -> Dict[str, Any]:
    """A frozen config dataclass as a plain dict (enums by name)."""
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(cfg):
        if f.name in ("fast_path", "sm_workers", "epoch_cycles"):
            # execution strategy, bit-identical results: cache keys and
            # job digests must not fork on it
            continue
        value = getattr(cfg, f.name)
        out[f.name] = value.name if isinstance(value, enum.Enum) else value
    return out


def _detector_from_record(record: Optional[Dict[str, Any]]
                          ) -> Optional[HAccRGConfig]:
    if record is None:
        return None
    kwargs = dict(record)
    kwargs["mode"] = DetectionMode[kwargs["mode"]]
    kwargs["backend"] = DetectorBackend[kwargs["backend"]]
    return HAccRGConfig(**kwargs)


@dataclass(frozen=True)
class Job:
    """One canonicalized ``run_benchmark`` cell."""

    bench: str
    detector: Optional[HAccRGConfig]
    gpu: GPUConfig
    scale: float
    seed: int
    omit: Tuple[str, ...]
    emit: Tuple[str, ...]
    timing_enabled: bool
    verify: bool
    overrides: Tuple[Tuple[str, Any], ...]

    @classmethod
    def from_call(cls, name: str,
                  detector_config: Optional[HAccRGConfig] = None,
                  gpu_config: Optional[GPUConfig] = None,
                  scale: float = 1.0,
                  seed: int = 0,
                  injection: Injection = NO_INJECTION,
                  timing_enabled: bool = True,
                  verify: bool = False,
                  overrides: Optional[Dict[str, Any]] = None) -> "Job":
        """Canonicalize the arguments of one ``run_benchmark`` call."""
        overrides = overrides or {}
        for key, value in overrides.items():
            if not isinstance(value, _JSON_PRIMITIVES):
                raise JobSpecError(
                    f"override {key!r} has non-JSON value {value!r}; "
                    f"campaign jobs only accept primitive overrides")
        if detector_config is not None and \
                detector_config.mode == DetectionMode.OFF:
            detector_config = None
        return cls(
            bench=name.upper(),
            detector=detector_config,
            gpu=gpu_config or scaled_gpu_config(),
            scale=float(scale),
            seed=int(seed),
            omit=injection.omit_sites,
            emit=injection.emit_sites,
            timing_enabled=bool(timing_enabled),
            verify=bool(verify),
            overrides=tuple(sorted(overrides.items())),
        )

    # ------------------------------------------------------------------
    # canonical form and key

    def record(self) -> Dict[str, Any]:
        """The canonical, JSON-safe form (what gets hashed and stored)."""
        return {
            "schema": JOB_SCHEMA,
            "bench": self.bench,
            "detector": (_config_record(self.detector)
                         if self.detector is not None else None),
            "gpu": _config_record(self.gpu),
            "scale": self.scale,
            "seed": self.seed,
            "injection": {"omit": list(self.omit), "emit": list(self.emit)},
            "timing_enabled": self.timing_enabled,
            "verify": self.verify,
            "overrides": {k: v for k, v in self.overrides},
        }

    def key(self) -> str:
        """Stable content hash of the canonical form."""
        payload = json.dumps(self.record(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "Job":
        """Rebuild a Job from its canonical form (worker-side)."""
        if record.get("schema") != JOB_SCHEMA:
            raise JobSpecError(
                f"job schema {record.get('schema')!r} != {JOB_SCHEMA}")
        return cls(
            bench=record["bench"],
            detector=_detector_from_record(record["detector"]),
            gpu=GPUConfig(**record["gpu"]),
            scale=float(record["scale"]),
            seed=int(record["seed"]),
            omit=tuple(record["injection"]["omit"]),
            emit=tuple(record["injection"]["emit"]),
            timing_enabled=bool(record["timing_enabled"]),
            verify=bool(record["verify"]),
            overrides=tuple(sorted(record["overrides"].items())),
        )

    # ------------------------------------------------------------------
    # execution

    def run_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for ``run_benchmark_direct``."""
        kwargs: Dict[str, Any] = {
            "detector_config": self.detector,
            "gpu_config": self.gpu,
            "scale": self.scale,
            "seed": self.seed,
            "injection": Injection(omit=self.omit, emit=self.emit),
            "timing_enabled": self.timing_enabled,
            "verify": self.verify,
        }
        kwargs.update(dict(self.overrides))
        return kwargs

    def describe(self) -> str:
        """Short human-readable cell description for progress lines."""
        mode = self.detector.mode.name.lower() if self.detector else "off"
        extras = []
        if self.omit or self.emit:
            extras.append("inject=" + ",".join(self.omit + self.emit))
        if self.overrides:
            extras.append(",".join(f"{k}={v}" for k, v in self.overrides))
        suffix = (" [" + " ".join(extras) + "]") if extras else ""
        return f"{self.bench}/{mode}{suffix}"


def execute(job: Job) -> Dict[str, Any]:
    """Run one job to completion and return its lossless result record.

    This is what pool workers call: everything in, everything out is
    plain data, so it crosses ``spawn`` process boundaries without
    pickling simulator state.
    """
    from repro.harness.export import run_result_record
    from repro.harness.runner import run_benchmark_direct

    res = run_benchmark_direct(job.bench, **job.run_kwargs())
    return run_result_record(res)


def execute_bench_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side entry point for benchmark jobs (the default kind)."""
    return execute(Job.from_record(record))


# ---------------------------------------------------------------------------
# job-kind registry
#
# The pool executes *records*, not Job instances, so any subsystem can
# ride the same workers/cache/retry machinery by contributing a frozen
# spec with ``key()``/``record()`` and registering an executor for its
# ``kind``. Targets are "module:function" strings imported lazily so the
# supervisor process never pays for subsystems a campaign doesn't use.

JOB_EXECUTORS: Dict[str, str] = {
    "bench": "repro.campaign.jobs:execute_bench_record",
    "fuzz": "repro.fuzz.worker:execute_fuzz_record",
    "analyze": "repro.analyze.worker:execute_analyze_record",
    "replay": "repro.serve.worker:execute_replay_record",
    "perf": "repro.harness.benchperf:execute_perf_record",
    "multigpu": "repro.multigpu.runner:execute_mg_record",
    "mganalyze": "repro.analyze.mgworker:execute_mg_analyze_record",
}


def register_executor(kind: str, target: str) -> None:
    """Register (or override) the executor for one job kind."""
    if ":" not in target:
        raise JobSpecError(f"executor target {target!r} is not "
                           f"'module:function'")
    JOB_EXECUTORS[kind] = target


def _load_env_executors() -> None:
    """Pick up out-of-tree job kinds from ``REPRO_JOB_EXECUTORS``.

    Spawn workers import this module fresh, so in-process
    :func:`register_executor` calls never reach them; the environment
    does. Format: ``kind=module:function[,kind=module:function...]``.
    """
    import os

    for part in os.environ.get("REPRO_JOB_EXECUTORS", "").split(","):
        kind, _, target = part.strip().partition("=")
        if kind and ":" in target:
            JOB_EXECUTORS[kind] = target


_load_env_executors()


def execute_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one job record, dispatching on its ``kind`` field."""
    import importlib

    kind = record.get("kind", "bench")
    try:
        target = JOB_EXECUTORS[kind]
    except KeyError:
        raise JobSpecError(f"no executor registered for job kind "
                           f"{kind!r}") from None
    mod_name, fn_name = target.split(":", 1)
    fn = getattr(importlib.import_module(mod_name), fn_name)
    return fn(record)
