"""Multiprocessing worker pool for campaign jobs.

Workers are persistent ``spawn`` processes (spawn is fork-safe on every
platform and never inherits simulator state); each receives one job at a
time on a private queue and reports outcomes on a shared result queue.
The supervisor enforces a per-job wall-clock timeout by terminating the
worker and respawning a replacement, retries transient failures a bounded
number of times, and treats a crashed worker (segfault, ``os._exit``,
OOM-kill) as a job failure rather than a campaign failure — one bad cell
never kills the run.

``workers <= 1`` (or an unusable multiprocessing platform) degrades to a
serial in-process loop with the same retry semantics; per-job timeouts
are not enforceable without a second process and are ignored there.

Everything that crosses a process boundary is plain data: job records in,
result records out (see :mod:`repro.campaign.jobs`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.campaign.jobs import Job, execute_record

#: outcome status values
OK = "ok"
ERROR = "error"
TIMEOUT = "timeout"
CRASHED = "crashed"


@dataclass
class JobOutcome:
    """Terminal result of one job after all retries."""

    key: str
    status: str                       # ok | error | timeout | crashed
    record: Optional[Dict[str, Any]]  # result record when status == ok
    error: Optional[str]
    attempts: int
    elapsed: float                    # last attempt's wall-clock seconds

    @property
    def ok(self) -> bool:
        return self.status == OK


DispatchFn = Callable[[str, int, int], None]
OutcomeFn = Callable[[JobOutcome], None]


def _worker_main(worker_id: int, task_q, result_q) -> None:
    """Worker loop: pull one job record, execute, report, repeat."""
    while True:
        item = task_q.get()
        if item is None:
            return
        key, job_record = item
        start = time.perf_counter()
        try:
            record = execute_record(job_record)
            result_q.put((worker_id, key, OK, record, None,
                          time.perf_counter() - start))
        except Exception as exc:  # crash isolation: report, keep serving
            result_q.put((worker_id, key, ERROR, None,
                          f"{type(exc).__name__}: {exc}",
                          time.perf_counter() - start))


class SpawnWorker:
    """Supervisor-side handle on one spawned worker process.

    Generic over the worker entry point: ``target(worker_id, task_q,
    result_q)`` runs in the child. Campaign pools use the job-executing
    :func:`_worker_main`; epoch-sharded simulation
    (:mod:`repro.gpu.epoch`) reuses the same spawn/kill/respawn machinery
    with its shard dispatcher as the target. A ``None`` on the task queue
    always means "shut down".
    """

    def __init__(self, ctx, worker_id: int, result_q,
                 target: Callable[..., None] = _worker_main) -> None:
        self.ctx = ctx
        self.worker_id = worker_id
        self.result_q = result_q
        self.target = target
        self.task_q = ctx.SimpleQueue()
        self.process = ctx.Process(
            target=target,
            args=(worker_id, self.task_q, result_q),
            daemon=True,
        )
        self.process.start()
        self.current: Optional[str] = None    # key being executed
        self.deadline: Optional[float] = None
        self.busy_seconds = 0.0
        self._started_at: Optional[float] = None

    def dispatch(self, key: str, job_record: Dict[str, Any],
                 timeout: Optional[float]) -> None:
        now = time.monotonic()
        self.current = key
        self._started_at = now
        self.deadline = now + timeout if timeout else None
        self.task_q.put((key, job_record))

    def finish(self) -> None:
        if self._started_at is not None:
            self.busy_seconds += time.monotonic() - self._started_at
        self.current = None
        self.deadline = None
        self._started_at = None

    def timed_out(self) -> bool:
        return (self.deadline is not None
                and time.monotonic() > self.deadline)

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)

    def stop(self) -> None:
        """Graceful shutdown: sentinel, short join, then terminate."""
        try:
            self.task_q.put(None)
        except (OSError, ValueError):
            pass
        self.process.join(timeout=2)
        self.kill()


class WorkerPool:
    """Run jobs across N processes with timeout + retry + crash isolation."""

    def __init__(self, workers: int = 1,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 start_method: str = "spawn") -> None:
        self.workers = max(1, int(workers))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.start_method = start_method
        self.worker_busy_seconds: List[float] = []

    # ------------------------------------------------------------------

    def run(self, jobs: Dict[str, Job],
            on_dispatch: Optional[DispatchFn] = None,
            on_outcome: Optional[OutcomeFn] = None
            ) -> Dict[str, JobOutcome]:
        """Execute every job; returns final outcomes keyed by job hash.

        ``on_dispatch(key, worker_id, attempt)`` fires when a job starts
        (attempt is 1-based); ``on_outcome`` fires once per job with its
        terminal outcome. Both run in the supervisor process.
        """
        if not jobs:
            return {}
        if self.workers == 1 or not self._mp_usable():
            return self._run_serial(jobs, on_dispatch, on_outcome)
        return self._run_parallel(jobs, on_dispatch, on_outcome)

    # ------------------------------------------------------------------
    # serial fallback

    def _run_serial(self, jobs: Dict[str, Job],
                    on_dispatch: Optional[DispatchFn],
                    on_outcome: Optional[OutcomeFn]
                    ) -> Dict[str, JobOutcome]:
        outcomes: Dict[str, JobOutcome] = {}
        busy = 0.0
        for key, job in jobs.items():
            attempts = 0
            while True:
                attempts += 1
                if on_dispatch:
                    on_dispatch(key, 0, attempts)
                start = time.perf_counter()
                try:
                    record = execute_record(job.record())
                    elapsed = time.perf_counter() - start
                    busy += elapsed
                    outcome = JobOutcome(key, OK, record, None, attempts,
                                         elapsed)
                    break
                except Exception as exc:
                    elapsed = time.perf_counter() - start
                    busy += elapsed
                    if attempts > self.retries:
                        outcome = JobOutcome(
                            key, ERROR, None,
                            f"{type(exc).__name__}: {exc}", attempts,
                            elapsed)
                        break
            outcomes[key] = outcome
            if on_outcome:
                on_outcome(outcome)
        self.worker_busy_seconds = [busy]
        return outcomes

    # ------------------------------------------------------------------
    # parallel path

    @staticmethod
    def _mp_usable() -> bool:
        try:
            import multiprocessing
            multiprocessing.get_context("spawn")
            return True
        except (ImportError, ValueError):  # pragma: no cover - exotic OS
            return False

    def _run_parallel(self, jobs: Dict[str, Job],
                      on_dispatch: Optional[DispatchFn],
                      on_outcome: Optional[OutcomeFn]
                      ) -> Dict[str, JobOutcome]:
        import multiprocessing
        import queue as queue_mod

        ctx = multiprocessing.get_context(self.start_method)
        result_q = ctx.Queue()
        records = {key: job.record() for key, job in jobs.items()}
        attempts: Dict[str, int] = {key: 0 for key in jobs}
        pending: List[str] = list(jobs)
        outcomes: Dict[str, JobOutcome] = {}
        n_workers = min(self.workers, len(jobs))
        pool: List[SpawnWorker] = [
            SpawnWorker(ctx, wid, result_q) for wid in range(n_workers)
        ]

        def dispatch_to(worker: SpawnWorker) -> None:
            key = pending.pop(0)
            attempts[key] += 1
            worker.dispatch(key, records[key], self.timeout)
            if on_dispatch:
                on_dispatch(key, worker.worker_id, attempts[key])

        def settle(key: str, status: str, record, error: str,
                   elapsed: float) -> None:
            """Retry a failed attempt or record the terminal outcome."""
            if status != OK and attempts[key] <= self.retries:
                pending.append(key)
                return
            outcome = JobOutcome(key, status, record, error,
                                 attempts[key], elapsed)
            outcomes[key] = outcome
            if on_outcome:
                on_outcome(outcome)

        try:
            while len(outcomes) < len(jobs):
                for worker in pool:
                    if worker.current is None and pending:
                        dispatch_to(worker)

                try:
                    wid, key, status, record, error, elapsed = \
                        result_q.get(timeout=0.05)
                except queue_mod.Empty:
                    pass
                else:
                    worker = next(w for w in pool if w.worker_id == wid)
                    if worker.current == key:
                        worker.finish()
                        settle(key, status, record, error, elapsed)
                    continue  # drain results before health checks

                # health checks: hung or dead workers
                for i, worker in enumerate(pool):
                    if worker.current is None:
                        continue
                    key = worker.current
                    if worker.timed_out():
                        worker.finish()
                        worker.kill()
                        pool[i] = self._respawn(ctx, worker, result_q)
                        settle(key, TIMEOUT, None,
                               f"timed out after {self.timeout:.1f}s",
                               self.timeout or 0.0)
                    elif not worker.process.is_alive():
                        worker.finish()
                        worker.kill()
                        pool[i] = self._respawn(ctx, worker, result_q)
                        settle(key, CRASHED, None,
                               "worker process died "
                               f"(exit code {worker.process.exitcode})",
                               0.0)
        finally:
            self.worker_busy_seconds = [w.busy_seconds for w in pool]
            for worker in pool:
                worker.stop()
            result_q.close()
            result_q.join_thread()
        return outcomes

    def _respawn(self, ctx, dead: SpawnWorker, result_q) -> SpawnWorker:
        replacement = SpawnWorker(ctx, dead.worker_id, result_q,
                              target=dead.target)
        replacement.busy_seconds = dead.busy_seconds
        return replacement
