"""Live campaign progress and the structured campaign report.

The reporter is fed by the engine on every dispatch/completion and emits
single-line terminal updates (rate-limited) plus a final JSON-safe report
with throughput, ETA accuracy, cache effectiveness, and per-worker
utilization — the numbers needed to tune ``--workers`` for a machine.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, TextIO


class ProgressReporter:
    """Tracks campaign throughput; prints terminal lines; builds reports."""

    def __init__(self, total: int, stream: Optional[TextIO] = None,
                 quiet: bool = False, min_interval: float = 0.0) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.quiet = quiet
        self.min_interval = min_interval
        self.started_at = time.monotonic()
        self.done = 0
        self.failed = 0
        self.cached = 0
        self.executed = 0
        self.retries = 0
        self._running = 0
        self._last_emit = 0.0

    # ------------------------------------------------------------------
    # engine callbacks

    def job_started(self, label: str, worker_id: int, attempt: int) -> None:
        if attempt == 1:
            self._running += 1
        else:
            self.retries += 1
            self._emit(f"retry #{attempt - 1} {label} (worker {worker_id})")

    def job_cached(self, label: str) -> None:
        self.done += 1
        self.cached += 1
        self._emit(f"cached {label}")

    def job_finished(self, label: str, ok: bool, elapsed: float,
                     error: Optional[str] = None) -> None:
        self._running = max(0, self._running - 1)
        self.executed += 1
        if ok:
            self.done += 1
            self._emit(f"done {label} ({elapsed:.1f}s)")
        else:
            self.failed += 1
            self._emit(f"FAILED {label}: {error}", force=True)

    # ------------------------------------------------------------------
    # metrics

    def elapsed(self) -> float:
        return time.monotonic() - self.started_at

    def jobs_per_second(self) -> float:
        wall = self.elapsed()
        finished = self.done + self.failed
        return finished / wall if wall > 0 else 0.0

    def eta_seconds(self) -> Optional[float]:
        """Remaining-time estimate from executed-job throughput.

        Cache hits are excluded from the rate (they are ~free), so the
        ETA reflects how long the remaining *simulations* will take.
        """
        remaining = self.total - self.done - self.failed
        if remaining <= 0:
            return 0.0
        if self.executed == 0:
            return None
        rate = self.executed / self.elapsed()
        return remaining / rate if rate > 0 else None

    def snapshot(self) -> Dict[str, Any]:
        eta = self.eta_seconds()
        return {
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "cached": self.cached,
            "executed": self.executed,
            "retries": self.retries,
            "elapsed_seconds": round(self.elapsed(), 3),
            "jobs_per_second": round(self.jobs_per_second(), 3),
            "eta_seconds": round(eta, 1) if eta is not None else None,
            "cache_hit_ratio": (self.cached / (self.done + self.failed)
                                if (self.done + self.failed) else 0.0),
        }

    def report(self, campaign: str,
               worker_busy_seconds: List[float]) -> Dict[str, Any]:
        """Final structured campaign report (JSON-safe)."""
        wall = self.elapsed()
        workers = [
            {"worker": i, "busy_seconds": round(busy, 3),
             "utilization": round(busy / wall, 3) if wall > 0 else 0.0}
            for i, busy in enumerate(worker_busy_seconds)
        ]
        out = self.snapshot()
        out.update({
            "campaign": campaign,
            "workers": workers,
            "aggregate_busy_seconds":
                round(sum(w["busy_seconds"] for w in workers), 3),
        })
        return out

    # ------------------------------------------------------------------

    def _emit(self, message: str, force: bool = False) -> None:
        if self.quiet:
            return
        now = time.monotonic()
        if not force and now - self._last_emit < self.min_interval:
            return
        self._last_emit = now
        finished = self.done + self.failed
        eta = self.eta_seconds()
        eta_txt = f", ETA {eta:.0f}s" if eta is not None else ""
        print(f"[{finished}/{self.total}] {message} "
              f"({self._running} running, {self.cached} cached"
              f"{eta_txt})", file=self.stream)
