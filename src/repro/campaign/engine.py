"""Campaign orchestration: cache -> queue -> pool -> store.

Two entry points:

- :func:`run_campaign` drives a declarative grid through the worker pool
  with the resumable state file, skipping anything the store already
  holds. Ctrl-C checkpoints and exits; re-running resumes.
- :func:`session` installs a :class:`CampaignSession` so that *any* code
  calling ``run_benchmark`` (the experiment functions, the CLI) is served
  from the store transparently — cache hit: no simulator is built at
  all; miss: simulate in-process and persist for next time.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.campaign import queue as cq
from repro.campaign.campaigns import Campaign
from repro.campaign.jobs import Job
from repro.campaign.pool import JobOutcome, WorkerPool
from repro.campaign.progress import ProgressReporter
from repro.campaign.store import ResultStore


class CampaignInterrupted(KeyboardInterrupt):
    """Ctrl-C during a campaign; state was checkpointed before re-raise."""


# ---------------------------------------------------------------------------
# transparent run_benchmark caching
# ---------------------------------------------------------------------------

@dataclass
class CampaignSession:
    """Serves ``run_benchmark`` calls from a result store.

    Installed via :func:`session`; :func:`repro.harness.runner.
    run_benchmark` routes through :meth:`run_call` while active. On a hit
    the RunResult is rebuilt from the stored record (no simulator is
    constructed); on a miss the call executes normally and the lossless
    record is persisted.
    """

    store: ResultStore
    executed: int = 0
    cache_hits: int = 0
    read_only: bool = False

    def run_call(self, *, name: str, detector_config, gpu_config, scale,
                 seed, injection, timing_enabled, verify,
                 overrides: Dict[str, Any]):
        import time

        from repro.campaign.jobs import JobSpecError
        from repro.harness.export import (
            run_result_from_record,
            run_result_record,
        )
        from repro.harness.runner import run_benchmark_direct

        try:
            job = Job.from_call(
                name, detector_config=detector_config,
                gpu_config=gpu_config, scale=scale, seed=seed,
                injection=injection, timing_enabled=timing_enabled,
                verify=verify, overrides=overrides)
        except JobSpecError:
            # un-hashable call (e.g. object-valued override): run it
            # directly, just without caching
            self.executed += 1
            return run_benchmark_direct(
                name, detector_config, gpu_config, scale=scale, seed=seed,
                injection=injection, timing_enabled=timing_enabled,
                verify=verify, **overrides)
        record = self.store.get(job)
        if record is not None:
            self.cache_hits += 1
            return run_result_from_record(record)
        if self.read_only:
            raise LookupError(
                f"cache miss for {job.describe()} in a read-only session")
        start = time.perf_counter()
        res = run_benchmark_direct(name, **job.run_kwargs())
        self.executed += 1
        self.store.put(job, run_result_record(res),
                       elapsed=time.perf_counter() - start)
        return res


@contextlib.contextmanager
def session(store: ResultStore, read_only: bool = False):
    """Context manager: route ``run_benchmark`` through ``store``."""
    from repro.harness import runner

    sess = CampaignSession(store=store, read_only=read_only)
    previous = runner.install_session(sess)
    try:
        yield sess
    finally:
        runner.install_session(previous)


# ---------------------------------------------------------------------------
# campaign driver
# ---------------------------------------------------------------------------

@dataclass
class CampaignRun:
    """Outcome of one :func:`run_campaign` invocation."""

    campaign: str
    state: cq.CampaignState
    report: Dict[str, Any]
    outcomes: Dict[str, JobOutcome] = field(default_factory=dict)

    @property
    def failed(self) -> int:
        return self.state.counts()[cq.FAILED]


def run_campaign(campaign: Campaign,
                 store: ResultStore,
                 scale: float = 1.0,
                 workers: int = 1,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 state_path=None,
                 retry_failed: bool = False,
                 progress: Optional[ProgressReporter] = None) -> CampaignRun:
    """Run one campaign to completion (or resume a stopped one).

    Cells already in the store count as cache hits and never reach the
    pool. ``retry_failed`` re-queues cells a previous invocation marked
    failed; otherwise they stay failed and are only reported.
    """
    labeled = campaign.jobs(scale)
    jobs = {job.key(): job for _, job in labeled}
    labels = {job.key(): label for label, job in labeled}

    if state_path is None:
        state_path = store.root / f"state-{campaign.name}.json"
    state = cq.CampaignState.load(state_path, campaign.name)
    state.sync_jobs([(label, key) for key, label in labels.items()])

    if progress is None:
        progress = ProgressReporter(total=len(jobs), quiet=True)
    progress.total = len(jobs)

    # cache pass: anything already stored is done, whatever the state
    # says. Full get() rather than an existence check: a corrupt entry is
    # evicted here and its cell re-queued instead of being trusted.
    to_run: Dict[str, Job] = {}
    for key, job in jobs.items():
        js = state.jobs[key]
        if js.status == cq.FAILED and not retry_failed:
            continue
        if store.get(job) is not None:
            if js.status != cq.DONE:
                state.mark_done(key, cached=True)
            progress.job_cached(labels[key])
        else:
            state.requeue(key)
            to_run[key] = job
    state.save()

    pool = WorkerPool(workers=workers, timeout=timeout, retries=retries)

    def on_dispatch(key: str, worker_id: int, attempt: int) -> None:
        state.mark_running(key)
        state.save()
        progress.job_started(labels[key], worker_id, attempt)

    def on_outcome(outcome: JobOutcome) -> None:
        if outcome.ok:
            store.put(jobs[outcome.key], outcome.record,
                      elapsed=outcome.elapsed)
            state.mark_done(outcome.key, elapsed=outcome.elapsed)
        else:
            state.mark_failed(outcome.key,
                              f"{outcome.status}: {outcome.error}")
        state.save()
        progress.job_finished(labels[outcome.key], outcome.ok,
                              outcome.elapsed, outcome.error)

    outcomes: Dict[str, JobOutcome] = {}
    try:
        outcomes = pool.run(to_run, on_dispatch=on_dispatch,
                            on_outcome=on_outcome)
    except KeyboardInterrupt:
        # demote any running jobs and checkpoint so a re-run resumes here
        for js in state.jobs.values():
            if js.status == cq.RUNNING:
                js.status = cq.PENDING
        state.save()
        raise CampaignInterrupted(
            f"campaign {campaign.name!r} interrupted; state saved to "
            f"{state_path}") from None

    report = progress.report(campaign.name, pool.worker_busy_seconds)
    report["state_path"] = str(state_path)
    report["store_root"] = str(store.root)
    report["store_entries"] = len(store)
    return CampaignRun(campaign=campaign.name, state=state, report=report,
                       outcomes=outcomes)
