"""Parallel experiment-campaign engine.

Turns the one-shot experiment harness into an orchestration layer:

- :mod:`~repro.campaign.jobs` — content-addressed job specs (one
  canonical hash per ``run_benchmark`` cell);
- :mod:`~repro.campaign.store` — on-disk result store keyed by job hash
  (every re-run of a known cell is a cache hit);
- :mod:`~repro.campaign.queue` — resumable pending/running/done/failed
  campaign state that survives Ctrl-C;
- :mod:`~repro.campaign.pool` — spawn-safe multiprocessing worker pool
  with per-job timeout, bounded retry, and crash isolation;
- :mod:`~repro.campaign.progress` — live progress lines + structured
  JSON campaign report;
- :mod:`~repro.campaign.campaigns` — declarative grids covering the
  paper's experiment index;
- :mod:`~repro.campaign.engine` — the driver tying it together, plus
  the :func:`~repro.campaign.engine.session` context manager that makes
  any ``run_benchmark`` caller cache-transparent.

See ``docs/CAMPAIGNS.md`` for the architecture and cache-key definition.
"""

from repro.campaign.campaigns import CAMPAIGNS, Campaign, get_campaign
from repro.campaign.engine import (
    CampaignInterrupted,
    CampaignRun,
    CampaignSession,
    run_campaign,
    session,
)
from repro.campaign.jobs import JOB_SCHEMA, Job, JobSpecError, execute
from repro.campaign.pool import JobOutcome, WorkerPool
from repro.campaign.progress import ProgressReporter
from repro.campaign.queue import CampaignState, JobState
from repro.campaign.store import ResultStore

__all__ = [
    "CAMPAIGNS",
    "Campaign",
    "CampaignInterrupted",
    "CampaignRun",
    "CampaignSession",
    "CampaignState",
    "JOB_SCHEMA",
    "Job",
    "JobOutcome",
    "JobSpecError",
    "JobState",
    "ProgressReporter",
    "ResultStore",
    "WorkerPool",
    "execute",
    "get_campaign",
    "run_campaign",
    "session",
]
