"""Declarative campaign definitions covering the paper's experiment index.

Each campaign enumerates the exact ``run_benchmark`` cells its experiment
functions issue (same configs, same overrides, same flags), so a campaign
run pre-fills the result store and the subsequent in-session experiment
pass is 100 % cache hits. Cells shared between figures (e.g. the Fig. 7
baselines reused by Figs. 8 and 9) hash identically and are deduplicated
at enumeration time — the content-addressed store makes the full
``reproduce`` grid strictly smaller than the sum of its figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.bench.common import NO_INJECTION, Injection
from repro.bench.injection import INJECTION_CATALOG
from repro.campaign.jobs import Job
from repro.common.config import (
    DetectionMode,
    DetectorBackend,
    HAccRGConfig,
)

LabeledJob = Tuple[str, Job]


def _cell(label: str, bench: str, cfg=None, timing: bool = True,
          verify: bool = False, injection: Injection = NO_INJECTION,
          scale: float = 1.0, **overrides) -> LabeledJob:
    return label, Job.from_call(
        bench, detector_config=cfg, scale=scale, injection=injection,
        timing_enabled=timing, verify=verify, overrides=overrides)


def _suite_names() -> List[str]:
    from repro.bench.suite import SUITE
    return [b.name for b in SUITE]


def _race_free_overrides() -> Dict[str, Dict[str, object]]:
    from repro.harness.experiments import RACE_FREE_OVERRIDES
    return RACE_FREE_OVERRIDES


def _word_config() -> HAccRGConfig:
    from repro.harness.experiments import WORD_CONFIG
    return WORD_CONFIG


# ---------------------------------------------------------------------------
# builders (scale -> labeled jobs)
# ---------------------------------------------------------------------------

def _table2(scale: float) -> List[LabeledJob]:
    free = _race_free_overrides()
    return [
        _cell(f"table2/{name}", name, None, timing=False, scale=scale,
              **free.get(name, {}))
        for name in _suite_names()
    ]


def _effectiveness(scale: float) -> List[LabeledJob]:
    word = _word_config()
    free = _race_free_overrides()
    cells = [
        _cell(f"effectiveness/{name}", name, word, timing=False, scale=scale)
        for name in _suite_names()
    ]
    cells += [
        _cell(f"effectiveness/{name}-fixed", name, word, timing=False,
              verify=True, scale=scale, **free[name])
        for name in sorted(free)
    ]
    return cells


def _injected(scale: float) -> List[LabeledJob]:
    word = _word_config()
    cells: List[LabeledJob] = []
    for i, spec in enumerate(INJECTION_CATALOG):
        overrides = spec.build_overrides()
        cells.append(_cell(
            f"injected/{spec.bench}-baseline", spec.bench, word,
            timing=False, scale=scale, **overrides))
        cells.append(_cell(
            f"injected/{spec.bench}-{spec.category}-{i}", spec.bench, word,
            timing=False, injection=spec.injection(), scale=scale,
            **overrides))
    return cells


def _table3(scale: float) -> List[LabeledJob]:
    """Granularity sweep as direct-detection cells.

    The table3 *experiment* replays one recorded trace per benchmark
    (cheaper); this campaign enumerates the equivalent live-detection
    grid, which the replay is bit-identical to — useful for validating
    the replay path and for sweeping granularities in parallel.
    """
    free = _race_free_overrides()
    cells = []
    for name in _suite_names():
        for g in (4, 8, 16, 32, 64):
            cells.append(_cell(
                f"table3/{name}-shared-{g}", name,
                HAccRGConfig(mode=DetectionMode.SHARED,
                             shared_granularity=g),
                timing=False, scale=scale, **free.get(name, {})))
            cells.append(_cell(
                f"table3/{name}-global-{g}", name,
                HAccRGConfig(mode=DetectionMode.GLOBAL,
                             global_granularity=g),
                timing=False, scale=scale, **free.get(name, {})))
    return cells


def _idsizes(scale: float) -> List[LabeledJob]:
    word = _word_config()
    free = _race_free_overrides()
    return [
        _cell(f"idsizes/{name}", name, word, timing=False, scale=scale,
              **free.get(name, {}))
        for name in _suite_names()
    ]


def _fig7(scale: float) -> List[LabeledJob]:
    software = ("SCAN", "HIST", "KMEANS")
    cells: List[LabeledJob] = []
    for name in _suite_names():
        cells.append(_cell(f"fig7/{name}-base", name, None, scale=scale))
        cells.append(_cell(f"fig7/{name}-shared", name,
                           HAccRGConfig(mode=DetectionMode.SHARED),
                           scale=scale))
        cells.append(_cell(f"fig7/{name}-full", name,
                           HAccRGConfig(mode=DetectionMode.FULL),
                           scale=scale))
        if name in software:
            cells.append(_cell(
                f"fig7/{name}-software", name,
                HAccRGConfig(mode=DetectionMode.FULL,
                             backend=DetectorBackend.SOFTWARE),
                scale=scale))
            cells.append(_cell(
                f"fig7/{name}-grace", name,
                HAccRGConfig(mode=DetectionMode.SHARED,
                             backend=DetectorBackend.GRACE),
                scale=scale))
    return cells


def _fig8(scale: float) -> List[LabeledJob]:
    cells: List[LabeledJob] = []
    for name in _suite_names():
        cells.append(_cell(f"fig8/{name}-base", name, None, scale=scale))
        cells.append(_cell(f"fig8/{name}-full", name,
                           HAccRGConfig(mode=DetectionMode.FULL),
                           scale=scale))
        cells.append(_cell(
            f"fig8/{name}-split", name,
            HAccRGConfig(mode=DetectionMode.FULL,
                         shared_shadow_in_global=True),
            scale=scale))
    return cells


def _fig9(scale: float) -> List[LabeledJob]:
    # exactly the fig7 base/shared/full cells; kept as its own campaign so
    # `campaign run fig9` works standalone (cells dedup against fig7 runs)
    cells: List[LabeledJob] = []
    for name in _suite_names():
        cells.append(_cell(f"fig9/{name}-base", name, None, scale=scale))
        cells.append(_cell(f"fig9/{name}-shared", name,
                           HAccRGConfig(mode=DetectionMode.SHARED),
                           scale=scale))
        cells.append(_cell(f"fig9/{name}-full", name,
                           HAccRGConfig(mode=DetectionMode.FULL),
                           scale=scale))
    return cells


def _table4(scale: float) -> List[LabeledJob]:
    # identical cells to table2 (baseline, timing off, race-free builds);
    # listed separately so the campaign index mirrors the experiment index
    free = _race_free_overrides()
    return [
        _cell(f"table4/{name}", name, None, timing=False, scale=scale,
              **free.get(name, {}))
        for name in _suite_names()
    ]


def _smoke(scale: float) -> List[LabeledJob]:
    """Tiny CI grid: two benchmarks, baseline + full detection."""
    scale = min(scale, 0.25)
    cells = []
    for name in ("SCAN", "REDUCE"):
        cells.append(_cell(f"smoke/{name}-base", name, None, timing=False,
                           scale=scale))
        cells.append(_cell(
            f"smoke/{name}-full", name,
            HAccRGConfig(mode=DetectionMode.FULL, shared_granularity=4),
            timing=False, scale=scale))
    return cells


def _multigpu(scale: float) -> List[LabeledJob]:
    """The multi-GPU extension grid: suite x devices + injection matrix.

    Cells are :class:`repro.multigpu.runner.MGJob` records (job kind
    ``"multigpu"``); they ride the same pool/cache/retry machinery as
    ``run_benchmark`` cells via the executor registry.
    """
    from repro.multigpu.bench import MG_BENCHMARKS, MG_INJECTION_CATALOG
    from repro.multigpu.runner import MGJob

    cells: List[LabeledJob] = []
    for bench in MG_BENCHMARKS:
        for gpus in (2, 3):
            cells.append((
                f"multigpu/{bench.name}-x{gpus}",
                MGJob(bench=bench.name, gpus=gpus, scale=scale,
                      verify=not bench.has_real_race)))
    for spec in MG_INJECTION_CATALOG:
        if not spec.injection:
            continue  # the design race already runs fault-free above
        cells.append((
            f"multigpu/{spec.bench}-{spec.injection}",
            MGJob(bench=spec.bench, gpus=2, scale=scale,
                  injection=spec.injection)))
    return cells


def _reproduce(scale: float) -> List[LabeledJob]:
    """Every run_benchmark cell the full ``reproduce`` pass issues."""
    cells: List[LabeledJob] = []
    for builder in (_table2, _effectiveness, _injected, _idsizes,
                    _fig7, _fig8, _fig9, _table4):
        cells.extend(builder(scale))
    return cells


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Campaign:
    """A named, declarative grid of jobs."""

    name: str
    description: str
    builder: Callable[[float], List[LabeledJob]]

    def jobs(self, scale: float = 1.0) -> List[LabeledJob]:
        """Enumerate (label, job) cells, deduplicated by content hash."""
        seen: Dict[str, str] = {}
        out: List[LabeledJob] = []
        for label, job in self.builder(scale):
            key = job.key()
            if key in seen:
                continue
            seen[key] = label
            out.append((label, job))
        return out


CAMPAIGNS: Dict[str, Campaign] = {
    c.name: c for c in (
        Campaign("table2", "benchmark characteristics grid", _table2),
        Campaign("effectiveness", "real races + race-free verification",
                 _effectiveness),
        Campaign("injected", "41-injection matrix with per-cell baselines",
                 _injected),
        Campaign("table3", "granularity sweep (live-detection grid)",
                 _table3),
        Campaign("idsizes", "sync/fence ID increment study", _idsizes),
        Campaign("fig7", "performance impact grid", _fig7),
        Campaign("fig8", "shared-shadow split grid", _fig8),
        Campaign("fig9", "DRAM bandwidth grid", _fig9),
        Campaign("table4", "shadow memory overhead grid", _table4),
        Campaign("smoke", "tiny CI sanity grid", _smoke),
        Campaign("multigpu", "multi-GPU suite + cross-GPU injections",
                 _multigpu),
        Campaign("reproduce", "every cell of the full reproduce pass",
                 _reproduce),
    )
}


def get_campaign(name: str) -> Campaign:
    try:
        return CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(sorted(CAMPAIGNS))
        raise KeyError(f"unknown campaign {name!r} (known: {known})") from None
