"""Entry point for ``python -m repro``.

The ``__name__`` guard is load-bearing: campaign worker processes start
via the ``spawn`` method, which re-imports the parent's main module —
an unguarded ``sys.exit(main())`` would re-run the CLI in every worker.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
