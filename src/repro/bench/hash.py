"""HASH: lock-protected hash-table update microbenchmark.

The paper describes HASH as "a microbenchmark where every thread updates a
hash table atomically" (256K-entry table, 16K elements). Our implementation
uses per-bucket spin locks around a two-cell bucket update (count + value),
which exercises the full lockset path of the detector, and a __threadfence
before lock release — the correct GPU locking idiom of Fig. 2(b): without
the fence, a thread acquiring the freed lock can read the bucket's stale
contents. The paper measured at most 5 fence-ID increments for HASH.

Injection sites:

- ``fence`` — remove the pre-release fence (a Fig. 2(b) fence race);
- ``critical:naked-write`` — update a bucket *without* taking its lock
  (protected/unprotected mixing, a §VI-A critical-section injection);
- ``critical:wrong-lock`` — take the *neighbour's* lock instead
  (different-locks race);
- ``xblock`` — dummy cross-block write outside the table.
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import (
    Benchmark,
    Injection,
    LaunchSpec,
    NO_INJECTION,
    RunPlan,
    rng_for,
    scaled,
)
from repro.gpu.kernel import Kernel

_BLOCK = 128


def hash_kernel(ctx, g_keys, g_table, g_locks, n_buckets, inj):
    i = ctx.global_tid_x
    if i >= g_keys.length:
        return
    key = yield ctx.load(g_keys, i)
    bucket = int(key) % n_buckets
    yield ctx.compute(3)  # hash computation

    if inj.inject("critical:naked-write") and ctx.tid_x == 7:
        # unprotected update racing with locked updates of bucket 0
        c = yield ctx.load(g_table, 0)
        yield ctx.store(g_table, 0, c + 1.0)
        return

    lock_idx = bucket
    if inj.inject("critical:wrong-lock") and ctx.tid_x % 2 == 1:
        lock_idx = (bucket + 1) % n_buckets

    yield ctx.lock(g_locks, lock_idx)
    # bucket update: count in cell 2b, running sum in cell 2b+1
    c = yield ctx.load(g_table, 2 * bucket)
    yield ctx.store(g_table, 2 * bucket, c + 1.0)
    s = yield ctx.load(g_table, 2 * bucket + 1)
    yield ctx.store(g_table, 2 * bucket + 1, s + key)
    if inj.keep("fence"):
        yield ctx.threadfence()
    yield ctx.unlock(g_locks, lock_idx)

    if inj.inject("xblock") and ctx.tid_x == 3:
        yield ctx.store(g_keys, (i + _BLOCK) % g_keys.length, key)


def build(sim, scale: float = 1.0, seed: int = 0,
          injection: Injection = NO_INJECTION) -> RunPlan:
    n_keys = scaled(1024, scale, minimum=_BLOCK, multiple=_BLOCK)
    n_buckets = max(8, n_keys // 16)
    rng = rng_for(seed)
    keys = rng.integers(0, 1 << 20, size=n_keys).astype(np.float64)

    g_keys = sim.malloc("hash_keys", n_keys)
    g_table = sim.malloc("hash_table", 2 * n_buckets)
    g_locks = sim.malloc("hash_locks", n_buckets)
    g_keys.host_write(keys)

    kernel = Kernel(hash_kernel, name="hash")

    def verify() -> None:
        table = g_table.host_read().reshape(-1, 2)
        buckets = keys.astype(np.int64) % n_buckets
        for b in range(n_buckets):
            mask = buckets == b
            assert table[b, 0] == mask.sum(), (
                f"bucket {b}: count {table[b, 0]} vs {mask.sum()}"
            )
            assert table[b, 1] == keys[mask].sum(), f"bucket {b} sum"

    return RunPlan(
        name="HASH",
        launches=[LaunchSpec(kernel, grid=n_keys // _BLOCK, block=_BLOCK,
                             args=(g_keys, g_table, g_locks, n_buckets,
                                   injection))],
        verify=verify,
        data_bytes=(n_keys + 3 * n_buckets) * 4,
    )


BENCHMARK = Benchmark(
    name="HASH",
    paper_input="256K-entry table, 16K elements",
    scaled_input="1K keys, 64 buckets, per-bucket spin locks",
    build=build,
    uses_fences=True,
    uses_locks=True,
    injection_sites={
        "fence": "fence",
        "critical:naked-write": "critical",
        "critical:wrong-lock": "critical",
        "xblock": "xblock",
    },
    description="lock-protected hash-table updates (lockset path)",
)
