"""Benchmark plumbing: run plans, fault injection, verification helpers.

Every benchmark builds a :class:`RunPlan`: the ordered kernel launches that
make up the workload, a functional verifier, and the data footprint used by
the Table IV experiment. Race injection (§VI-A "Injected Races") is driven
by an :class:`Injection` passed into the kernels: named *sites* in the
kernel code consult it to decide whether to skip a barrier/fence or emit a
dummy conflicting access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.gpu.kernel import Kernel


class Injection:
    """Selects which fault-injection sites are active for a run.

    Sites are string identifiers baked into kernel code. ``omit`` sites
    remove a synchronization operation (barrier or fence); ``emit`` sites
    add a dummy conflicting access. The same object answers both so a
    kernel needs a single argument.
    """

    def __init__(self, omit: Sequence[str] = (), emit: Sequence[str] = ()) -> None:
        self._omit = frozenset(omit)
        self._emit = frozenset(emit)

    def keep(self, site: str) -> bool:
        """True when the synchronization at ``site`` should be executed."""
        return site not in self._omit

    def inject(self, site: str) -> bool:
        """True when the dummy access at ``site`` should be emitted."""
        return site in self._emit

    @property
    def active_sites(self) -> Tuple[str, ...]:
        return tuple(sorted(self._omit | self._emit))

    @property
    def omit_sites(self) -> Tuple[str, ...]:
        """Sorted sites whose synchronization is removed (canonical form)."""
        return tuple(sorted(self._omit))

    @property
    def emit_sites(self) -> Tuple[str, ...]:
        """Sorted sites whose dummy conflicting access is enabled."""
        return tuple(sorted(self._emit))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Injection(omit={sorted(self._omit)}, emit={sorted(self._emit)})"


#: The default, fault-free injection.
NO_INJECTION = Injection()


@dataclass
class LaunchSpec:
    """One kernel launch inside a run plan."""

    kernel: Kernel
    grid: Any
    block: Any
    args: Tuple = ()


@dataclass
class RunPlan:
    """Everything needed to execute and check one benchmark configuration."""

    name: str
    launches: List[LaunchSpec]
    verify: Optional[Callable[[], None]] = None  # raises AssertionError
    data_bytes: int = 0           # kernel data tracked by global shadow
    racy_by_design: bool = False  # documented real bug: skip verification
    notes: str = ""

    def run(self, sim) -> List:
        """Execute every launch on ``sim``; returns the per-launch results."""
        results = []
        for ls in self.launches:
            results.append(sim.launch(ls.kernel, ls.grid, ls.block, ls.args))
        return results


@dataclass
class Benchmark:
    """A registered benchmark: metadata + plan builder.

    ``build(sim, scale, seed, injection, **overrides)`` allocates device
    arrays on ``sim`` and returns the :class:`RunPlan`. ``scale`` in (0, 1]
    shrinks the input proportionally (tests use small scales; experiments
    use 1.0).
    """

    name: str
    paper_input: str
    scaled_input: str
    build: Callable[..., RunPlan]
    uses_fences: bool = False
    uses_locks: bool = False
    has_real_race: bool = False
    injection_sites: Dict[str, str] = field(default_factory=dict)
    #: categories: 'barrier', 'xblock', 'fence', 'critical'
    description: str = ""

    def plan(self, sim, scale: float = 1.0, seed: int = 0,
             injection: Injection = NO_INJECTION, **overrides) -> RunPlan:
        return self.build(sim, scale=scale, seed=seed,
                          injection=injection, **overrides)


def rng_for(seed: int) -> np.random.Generator:
    """Deterministic per-benchmark RNG (HPC-guide: explicit generators)."""
    return np.random.Generator(np.random.PCG64(seed))


def scaled(n: int, scale: float, minimum: int = 1,
           multiple: int = 1) -> int:
    """Scale a nominal size, clamped and rounded to a multiple."""
    v = max(minimum, int(n * scale))
    if multiple > 1:
        v = max(multiple, (v // multiple) * multiple)
    return v
