"""Benchmark registry and per-benchmark characteristics (paper Table II).

``SUITE`` lists the ten benchmarks in the paper's order. Helper functions
run a plan on a fresh simulator and extract the Table II characteristics
(instruction mix, shared/global access fractions) from the collected
:class:`repro.common.types.KernelStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bench import fwalsh, hash as hash_bench, hist, kmeans, mcarlo
from repro.bench import offt, psum, reduce as reduce_bench, scan, sortnw
from repro.bench.common import Benchmark

#: Paper order (Table II).
SUITE: List[Benchmark] = [
    mcarlo.BENCHMARK,
    scan.BENCHMARK,
    fwalsh.BENCHMARK,
    hist.BENCHMARK,
    sortnw.BENCHMARK,
    reduce_bench.BENCHMARK,
    psum.BENCHMARK,
    offt.BENCHMARK,
    kmeans.BENCHMARK,
    hash_bench.BENCHMARK,
]

_BY_NAME: Dict[str, Benchmark] = {b.name: b for b in SUITE}


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark by its paper name (case-insensitive)."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None


@dataclass
class Characteristics:
    """Table II row: dynamic instruction/access mix of one benchmark."""

    name: str
    instructions: int
    shared_access_pct: float
    shared_read_pct: float
    global_access_pct: float
    global_read_pct: float
    atomics: int
    barriers: int
    fences: int

    @staticmethod
    def from_stats(name: str, stats) -> "Characteristics":
        instr = max(1, stats.instructions)
        sh = stats.shared_accesses
        gl = stats.global_accesses
        return Characteristics(
            name=name,
            instructions=stats.instructions,
            shared_access_pct=100.0 * sh / instr,
            shared_read_pct=100.0 * stats.shared_reads / sh if sh else 0.0,
            global_access_pct=100.0 * gl / instr,
            global_read_pct=100.0 * stats.global_reads / gl if gl else 0.0,
            atomics=stats.atomics,
            barriers=stats.barriers,
            fences=stats.fences,
        )
