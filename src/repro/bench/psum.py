"""PSUM: the __threadfence partial-sum microbenchmark (CUDA guide example).

The paper builds PSUM from the programming guide's threadfence sample —
the same last-block pattern as REDUCE but *global-memory heavy* (Table II
attributes ~87% of PSUM's instructions to global accesses): every thread
accumulates a strided slice of the input directly from global memory with
no shared-memory staging, writes a per-thread partial, and block 0's
thread 0 of the last-arriving block folds the per-block partials.

Injection sites: ``fence`` (the documented fence-removal case),
``xblock`` (cross-block dummy write), ``barrier:final`` (barrier before
the per-block partial write).
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import (
    Benchmark,
    Injection,
    LaunchSpec,
    NO_INJECTION,
    RunPlan,
    rng_for,
    scaled,
)
from repro.gpu.kernel import Kernel

_BLOCK = 128


def psum_kernel(ctx, g_in, g_thread_sums, g_block_sums, g_out, g_count,
                n, per_thread, inj):
    tid = ctx.tid_x
    bid = ctx.block_id_x
    gtid = ctx.global_tid_x
    nblocks = ctx.grid_dim.x
    stride = ctx.num_threads
    sh_flag = ctx.shared["flag"]  # guide-style amLast flag (1 word)

    # global-strided accumulation straight from device memory
    acc = 0.0
    for k in range(per_thread):
        i = gtid + k * stride
        if i < n:
            v = yield ctx.load(g_in, i)
            acc += v
    yield ctx.store(g_thread_sums, gtid, acc)
    if inj.keep("barrier:final"):
        yield ctx.syncthreads()

    if tid == 0:
        # fold the block's per-thread partials; strided (warp-wide
        # windows would be the SDK way, but PSUM is the global-heavy
        # microbenchmark, so thread 0 walks its own block's slice, which
        # it may legally re-read: same-block accesses are barrier-ordered)
        block_total = 0.0
        for t in range(ctx.block_dim.x):
            v = yield ctx.load(g_thread_sums, bid * ctx.block_dim.x + t)
            block_total += v
        yield ctx.store(g_block_sums, bid, block_total)
        if inj.keep("fence"):
            yield ctx.threadfence()
        ticket = yield ctx.atomic_inc(g_count, 0, float(nblocks))
        yield ctx.store(sh_flag, 0, 1.0 if ticket == nblocks - 1 else 0.0)
    yield ctx.syncthreads()

    am_last = yield ctx.load(sh_flag, 0)
    if am_last != 0.0:
        # last block: coalesced cooperative read of the block sums, then
        # a per-thread strided fold published through global memory
        acc2 = 0.0
        for b in range(tid, nblocks, ctx.block_dim.x):
            v = yield ctx.load(g_block_sums, b)
            acc2 += v
        yield ctx.store(g_thread_sums, bid * ctx.block_dim.x + tid, acc2)
        yield ctx.syncthreads()
        if tid == 0:
            total = 0.0
            for t in range(min(nblocks, ctx.block_dim.x)):
                v = yield ctx.load(g_thread_sums,
                                   bid * ctx.block_dim.x + t)
                total += v
            yield ctx.store(g_out, 0, total)
            yield ctx.store(g_count, 0, 0.0)  # reset, guide-style
    if inj.inject("xblock") and tid == 2:
        yield ctx.store(g_block_sums, (bid + 1) % nblocks, -1.0)


def build(sim, scale: float = 1.0, seed: int = 0,
          injection: Injection = NO_INJECTION) -> RunPlan:
    n = scaled(16384, scale, minimum=512, multiple=_BLOCK)
    per_thread = 4
    nblocks = max(1, n // (_BLOCK * per_thread))
    total_threads = nblocks * _BLOCK
    rng = rng_for(seed)
    data = rng.integers(0, 50, size=n).astype(np.float64)

    g_in = sim.malloc("psum_in", n)
    g_thread_sums = sim.malloc("psum_tsums", total_threads)
    g_block_sums = sim.malloc("psum_bsums", nblocks)
    g_out = sim.malloc("psum_out", 1)
    g_count = sim.malloc("psum_count", 1)
    g_in.host_write(data)

    kernel = Kernel(psum_kernel, name="psum", shared={"flag": (1, 4)})

    def verify() -> None:
        got = g_out.host_read()[0]
        assert got == data.sum(), f"psum mismatch: {got} vs {data.sum()}"

    return RunPlan(
        name="PSUM",
        launches=[LaunchSpec(kernel, grid=nblocks, block=_BLOCK,
                             args=(g_in, g_thread_sums, g_block_sums,
                                   g_out, g_count, n, per_thread,
                                   injection))],
        verify=verify,
        data_bytes=(n + total_threads + nblocks + 2) * 4,
    )


BENCHMARK = Benchmark(
    name="PSUM",
    paper_input="16K elements",
    scaled_input="16K elements, no shared staging (global-heavy)",
    build=build,
    uses_fences=True,
    injection_sites={
        "barrier:final": "barrier",
        "fence": "fence",
        "xblock": "xblock",
    },
    description="threadfence partial-sum microbenchmark",
)
