"""Race-injection catalog: the 41 injected races of §VI-A.

The paper verifies detection effectiveness by injecting artificial races:

- 23 by removing barrier calls,
- 13 by inserting dummy memory accesses across thread-block boundaries,
-  3 by removing memory-fence calls,
-  2 by inserting dummy accesses inside/outside critical sections,

for a total of 41, all detected by HAccRG. :data:`INJECTION_CATALOG` lists
41 specs distributed over the benchmark suite to match those category
counts exactly; each spec names a benchmark plus the injection sites to
activate and the race category the detector is expected to report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bench.common import Injection


@dataclass(frozen=True)
class InjectionSpec:
    """One injected race: which benchmark, which site, what to expect."""

    bench: str
    category: str             # 'barrier' | 'xblock' | 'fence' | 'critical'
    omit: Tuple[str, ...] = ()
    emit: Tuple[str, ...] = ()
    #: build-time overrides (e.g. force the race-free configuration so the
    #: injected race is the only one present)
    overrides: Dict[str, object] = None  # type: ignore[assignment]

    def injection(self) -> Injection:
        return Injection(omit=self.omit, emit=self.emit)

    def build_overrides(self) -> Dict[str, object]:
        return dict(self.overrides or {})


def _barrier(bench: str, site: str, **overrides) -> InjectionSpec:
    return InjectionSpec(bench, "barrier", omit=(site,),
                         overrides=overrides or None)


def _xblock(bench: str, **overrides) -> InjectionSpec:
    return InjectionSpec(bench, "xblock", emit=("xblock",),
                         overrides=overrides or None)


def _fence(bench: str, **overrides) -> InjectionSpec:
    return InjectionSpec(bench, "fence", omit=("fence",),
                         overrides=overrides or None)


def _critical(bench: str, site: str, **overrides) -> InjectionSpec:
    return InjectionSpec(bench, "critical", emit=(site,),
                         overrides=overrides or None)


#: 23 barrier removals + 13 cross-block dummies + 3 fence removals
#: + 2 critical-section dummies = 41 injected races. Every site below is
#: one whose removal/insertion creates a *cross-warp* conflict — removing
#: a barrier that only orders lanes of one warp is not a race (lockstep
#: execution orders them; e.g. the warp-synchronous tail of a tree
#: reduction), and the detector correctly stays silent there, so such
#: sites are deliberately absent.
INJECTION_CATALOG: List[InjectionSpec] = [
    # --- 23 barrier removals -------------------------------------------
    _barrier("SCAN", "barrier:step0", num_blocks=1),
    _barrier("SCAN", "barrier:step1", num_blocks=1),
    _barrier("SCAN", "barrier:step2", num_blocks=1),
    _barrier("SCAN", "barrier:step3", num_blocks=1),
    _barrier("SCAN", "barrier:step4", num_blocks=1),
    _barrier("SCAN", "barrier:step5", num_blocks=1),
    _barrier("SCAN", "barrier:step6", num_blocks=1),
    _barrier("MCARLO", "barrier:store"),
    _barrier("FWALSH", "barrier:store"),
    _barrier("FWALSH", "barrier:stage5"),
    _barrier("FWALSH", "barrier:stage6"),
    _barrier("HIST", "barrier:merge"),
    _barrier("SORTNW", "barrier:step1"),
    _barrier("SORTNW", "barrier:step2"),
    _barrier("SORTNW", "barrier:step3"),
    _barrier("SORTNW", "barrier:step4"),
    _barrier("SORTNW", "barrier:step5"),
    _barrier("SORTNW", "barrier:step6"),
    _barrier("REDUCE", "barrier:load"),
    _barrier("REDUCE", "barrier:tree0"),
    _barrier("REDUCE", "barrier:tree0", seed=1),
    _barrier("PSUM", "barrier:final"),
    _barrier("OFFT", "barrier:fft0", fix_bug=True),
    # --- 13 cross-block dummy accesses ---------------------------------
    _xblock("MCARLO"),
    _xblock("SCAN", num_blocks=1),
    _xblock("FWALSH"),
    _xblock("HIST"),
    _xblock("SORTNW"),
    _xblock("REDUCE"),
    _xblock("PSUM"),
    _xblock("OFFT", fix_bug=True),
    _xblock("KMEANS", num_update_blocks=1),
    _xblock("HASH"),
    InjectionSpec("FWALSH", "xblock", emit=("xblock",),
                  overrides={"seed": 1}),
    InjectionSpec("REDUCE", "xblock", emit=("xblock",),
                  overrides={"seed": 1}),
    InjectionSpec("PSUM", "xblock", emit=("xblock",),
                  overrides={"seed": 1}),
    # --- 3 fence removals -----------------------------------------------
    _fence("REDUCE"),
    _fence("PSUM"),
    _fence("KMEANS", num_update_blocks=1),
    # --- 2 critical-section dummies --------------------------------------
    _critical("HASH", "critical:naked-write"),
    _critical("HASH", "critical:wrong-lock"),
]

assert len(INJECTION_CATALOG) == 41

CATEGORY_COUNTS = {
    "barrier": 23,
    "xblock": 13,
    "fence": 3,
    "critical": 2,
}
assert {
    c: sum(1 for s in INJECTION_CATALOG if s.category == c)
    for c in CATEGORY_COUNTS
} == CATEGORY_COUNTS
