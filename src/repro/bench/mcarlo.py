"""MCARLO: Monte Carlo option pricing (CUDA SDK `MonteCarlo`).

One block prices one option: threads simulate price paths (compute-heavy
loops over pre-generated normal samples read from global memory), reduce
the per-thread payoff sums in shared memory, and thread 0 writes the
option's expected value. Paper input: 256 options x 64K paths (scaled here
to 16 options x 512 paths). Characteristics per Table II: compute-dominated,
low shared-memory share.

Injection sites: ``barrier:reduce{k}`` and ``xblock``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bench.common import (
    Benchmark,
    Injection,
    LaunchSpec,
    NO_INJECTION,
    RunPlan,
    rng_for,
    scaled,
)
from repro.gpu.kernel import Kernel

_BLOCK = 64
_TREE_STEPS = 6


def mcarlo_kernel(ctx, g_samples, g_params, g_out, paths_per_thread, inj):
    tid = ctx.tid_x
    opt = ctx.block_id_x
    sh = ctx.shared["payoff"]

    # option parameters: S (spot), X (strike), MuByT, VBySqrtT
    s0 = yield ctx.load(g_params, opt * 4 + 0)
    x = yield ctx.load(g_params, opt * 4 + 1)
    mu = yield ctx.load(g_params, opt * 4 + 2)
    vol = yield ctx.load(g_params, opt * 4 + 3)

    acc = 0.0
    n_threads = ctx.block_dim.x
    for p in range(paths_per_thread):
        idx = (opt * n_threads * paths_per_thread
               + p * n_threads + tid) % g_samples.length
        z = yield ctx.load(g_samples, idx)
        # geometric Brownian step + call payoff
        price = s0 * math.exp(mu + vol * z)
        payoff = price - x if price > x else 0.0
        acc += payoff
        yield ctx.compute(8)  # exp/fma chain
    yield ctx.store(sh, tid, acc)
    if inj.keep("barrier:store"):
        yield ctx.syncthreads()

    s = n_threads // 2
    step = 0
    while s > 0:
        if tid < s:
            a = yield ctx.load(sh, tid)
            b = yield ctx.load(sh, tid + s)
            yield ctx.store(sh, tid, a + b)
        if inj.keep(f"barrier:reduce{step}"):
            yield ctx.syncthreads()
        s //= 2
        step += 1

    if tid == 0:
        total = yield ctx.load(sh, 0)
        yield ctx.store(g_out, opt, total / (n_threads * paths_per_thread))
        if inj.inject("xblock"):
            yield ctx.store(g_out, (opt + 1) % ctx.grid_dim.x, 0.0)


def build(sim, scale: float = 1.0, seed: int = 0,
          injection: Injection = NO_INJECTION) -> RunPlan:
    num_options = scaled(16, scale, minimum=2)
    paths_per_thread = 8
    n_samples = 4096
    rng = rng_for(seed)
    samples = rng.standard_normal(n_samples)
    params = np.empty(num_options * 4)
    params[0::4] = rng.uniform(20, 60, num_options)   # spot
    params[1::4] = rng.uniform(20, 60, num_options)   # strike
    params[2::4] = rng.uniform(-0.05, 0.05, num_options)
    params[3::4] = rng.uniform(0.05, 0.3, num_options)

    g_samples = sim.malloc("mc_samples", n_samples)
    g_params = sim.malloc("mc_params", num_options * 4)
    g_out = sim.malloc("mc_out", num_options)
    g_samples.host_write(samples)
    g_params.host_write(params)

    kernel = Kernel(mcarlo_kernel, name="mcarlo",
                    shared={"payoff": (_BLOCK, 4)})

    def verify() -> None:
        got = g_out.host_read()
        for opt in range(num_options):
            s0, x, mu, vol = params[opt * 4:opt * 4 + 4]
            idx = (opt * _BLOCK * paths_per_thread
                   + np.arange(_BLOCK * paths_per_thread)) % n_samples
            # reference uses the same sample assignment as the kernel
            pp = np.arange(_BLOCK * paths_per_thread)
            tid = pp % _BLOCK
            p = pp // _BLOCK
            ref_idx = (opt * _BLOCK * paths_per_thread
                       + p * _BLOCK + tid) % n_samples
            prices = s0 * np.exp(mu + vol * samples[ref_idx])
            payoff = np.maximum(prices - x, 0.0)
            assert abs(got[opt] - payoff.mean()) < 1e-9, (
                f"option {opt}: {got[opt]} vs {payoff.mean()}"
            )

    return RunPlan(
        name="MCARLO",
        launches=[LaunchSpec(kernel, grid=num_options, block=_BLOCK,
                             args=(g_samples, g_params, g_out,
                                   paths_per_thread, injection))],
        verify=verify,
        data_bytes=(n_samples + num_options * 5) * 4,
    )


BENCHMARK = Benchmark(
    name="MCARLO",
    paper_input="256 options, 64K paths",
    scaled_input="16 options x 64 threads x 8 paths",
    build=build,
    injection_sites={
        "barrier:store": "barrier",
        **{f"barrier:reduce{k}": "barrier" for k in range(_TREE_STEPS)},
        "xblock": "xblock",
    },
    description="Monte Carlo option pricing; compute-heavy",
)
