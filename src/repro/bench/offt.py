"""OFFT: ocean-surface FFT simulation (CUDA SDK `oceanFFT`).

Two kernels model the parts of oceanFFT the paper exercises:

1. ``spectrum_kernel`` — generates the wave spectrum in the frequency
   domain. Each thread computes the spectrum value for one (x, y) mesh
   coordinate and also writes the conjugate-mirror entry. The *documented
   real bug* (§VI-A): "the memory address is incorrectly calculated, and
   two threads accessed the same memory location, causing a write-after-read
   data race in the global memory space." We reproduce it faithfully: the
   mirror index ``(H - y) % H * W + (W - x) % W`` collides with the direct
   index of another thread on the x = 0 / y = 0 axes, so a handful of
   thread pairs read-then-write each other's cells.

2. ``fft_row_kernel`` — a shared-memory butterfly pass over mesh rows whose
   lanes stride across many shared-memory rows (stride 33 words, the usual
   padding-free FFT layout). This is the access pattern that makes OFFT the
   outlier of Fig. 8: with shared shadow entries in global memory, one
   warp access touches many shadow lines.

Injection sites: ``barrier:fft{k}``, ``xblock``.
"""

from __future__ import annotations

import math


from repro.bench.common import (
    Benchmark,
    Injection,
    LaunchSpec,
    NO_INJECTION,
    RunPlan,
    rng_for,
    scaled,
)
from repro.gpu.kernel import Kernel

_BLOCK = 64


def spectrum_kernel(ctx, g_h0, g_spec, mesh_w, mesh_h, fix_bug, inj):
    """Wave-spectrum generation with the SDK's mirror-index bug.

    Threads of the lower half-plane (y <= H/2) each own one coordinate:
    they write their own cell and the conjugate-mirror cell in the upper
    half-plane. The mirror of column x is column ``(W - x) % W``, which for
    ``x == 0`` wraps back to column 0 — so thread (0, y) mirror-writes
    cell (0, H - y), a cell thread (0, H - y) also... owns when
    ``H - y <= H/2``: a read-then-write of a location another thread wrote
    (WAR / WAW on the x = 0 column). The fixed kernel excludes the
    self-conjugate column, as the corrected SDK does.
    """
    gtid = ctx.global_tid_x
    half_rows = mesh_h // 2 + 1
    if gtid >= mesh_w * half_rows:
        return
    x = gtid % mesh_w
    y = gtid // mesh_w

    h0 = yield ctx.load(g_h0, (y * mesh_w + x) % g_h0.length)
    # dispersion phase (compute stand-in for the twiddle math)
    yield ctx.compute(6)
    val = h0 * math.cos(0.1 * (x + y)) + 0.5

    # The spectrum combines each wave with its conjugate: the kernel folds
    # in the mirror coefficient at ((H - y) % H, (W - x) % W). The buggy
    # form reads the mirror from the *output* array ``g_spec``: for y == 0
    # the mirror row wraps back onto row 0, so thread (x, 0) reads cell
    # ((W - x) % W, 0) — a cell thread ((W - x) % W, 0) *writes* — the
    # documented address-calculation WAR in global memory. The corrected
    # kernel reads the conjugate coefficient from the input ``g_h0``.
    my = (mesh_h - y) % mesh_h
    mx = (mesh_w - x) % mesh_w
    m = my * mesh_w + mx
    if (mx, my) != (x, y):
        if fix_bug:
            conj = yield ctx.load(g_h0, m % g_h0.length)
        else:
            conj = yield ctx.load(g_spec, m)
        val = val + 0.5 * conj
        yield ctx.compute(2)

    # write of the owned cell
    yield ctx.store(g_spec, y * mesh_w + x, val)


def fft_row_kernel(ctx, g_spec, mesh_w, inj):
    """Shared-memory butterfly pass with row-spreading strided layout."""
    tid = ctx.tid_x
    row = ctx.block_id_x
    sh = ctx.shared["line"]  # padded layout: stride 33 words per lane

    stride_words = 33
    v = yield ctx.load(g_spec, row * mesh_w + tid)
    yield ctx.store(sh, tid * stride_words, v)
    yield ctx.syncthreads()

    half = ctx.block_dim.x // 2
    step = 0
    while half >= 1:
        # butterfly with the read and the write phases separated by a
        # barrier (each thread reads its partner's cell, so the exchange
        # needs two synchronization points per stage)
        partner = tid ^ half
        a = yield ctx.load(sh, tid * stride_words)
        b = yield ctx.load(sh, partner * stride_words)
        yield ctx.compute(4)  # twiddle multiply
        if inj.keep(f"barrier:fft{step}"):
            yield ctx.syncthreads()
        if tid < partner:
            yield ctx.store(sh, tid * stride_words, a + b)
        else:
            yield ctx.store(sh, tid * stride_words, a - b)
        yield ctx.syncthreads()
        half //= 2
        step += 1

    r = yield ctx.load(sh, tid * stride_words)
    yield ctx.store(g_spec, row * mesh_w + tid, r)
    if inj.inject("xblock") and tid == 0:
        other = ((row + 1) % ctx.grid_dim.x) * mesh_w
        yield ctx.store(g_spec, other, 0.0)


def build(sim, scale: float = 1.0, seed: int = 0,
          injection: Injection = NO_INJECTION,
          fix_bug: bool = False) -> RunPlan:
    # width stays >= 64 so row-0 conjugate pairs span multiple warps, as
    # in the SDK's 256-wide mesh (narrower rows fit one warp and the
    # lockstep ordering genuinely removes the race)
    mesh_w = scaled(64, scale, minimum=64, multiple=16)
    mesh_h = mesh_w
    npts = mesh_w * mesh_h
    rng = rng_for(seed)
    h0 = rng.standard_normal(npts)

    g_h0 = sim.malloc("offt_h0", npts)
    g_spec = sim.malloc("offt_spec", npts)
    g_h0.host_write(h0)

    spec_k = Kernel(spectrum_kernel, name="offt_spectrum")
    fft_k = Kernel(fft_row_kernel, name="offt_fft",
                   shared={"line": (_BLOCK * 33, 4)})

    nthreads = mesh_w * (mesh_h // 2 + 1)
    launches = [
        LaunchSpec(spec_k, grid=max(1, -(-nthreads // _BLOCK)), block=_BLOCK,
                   args=(g_h0, g_spec, mesh_w, mesh_h, fix_bug, injection)),
        LaunchSpec(fft_k, grid=mesh_h, block=min(_BLOCK, mesh_w),
                   args=(g_spec, mesh_w, injection)),
    ]

    return RunPlan(
        name="OFFT",
        launches=launches,
        verify=None,  # spectral output checked statistically in tests
        data_bytes=2 * npts * 4,
        racy_by_design=not fix_bug,
        notes="mirror-index bug active" if not fix_bug else "bug fixed",
    )


BENCHMARK = Benchmark(
    name="OFFT",
    paper_input="meshW=256, meshH=256",
    scaled_input="64x64 mesh; mirror-index WAR bug preserved",
    build=build,
    has_real_race=True,
    injection_sites={
        **{f"barrier:fft{k}": "barrier" for k in range(6)},
        "xblock": "xblock",
    },
    description="ocean FFT spectrum + row butterflies (Fig. 8 outlier)",
)
