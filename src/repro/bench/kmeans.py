"""KMEANS: parallel k-means clustering (the paper cites a CUDA k-means).

Two kernels per iteration:

1. ``assign_kernel`` — each thread reads one point and all centroids,
   writes the nearest-centroid label (embarrassingly parallel, race-free);
2. ``update_kernel`` — recomputes the centroids from the labels. Like
   SCAN, the documented bug (§VI-A) is a *scaling* bug: the update kernel
   is written for a single thread block (each thread owns a subset of
   clusters and scans all points), but launching multiple blocks to "scale
   up" makes every block recompute and write the same centroid cells —
   cross-block races on the centroid array. With ``num_update_blocks=1``
   the kernel is race-free and verified.

KMEANS also uses a __threadfence between update and a convergence-flag
atomic, matching the paper's listing of KMEANS among the fence-using
benchmarks. Injection sites: ``fence``, ``barrier:update``, ``xblock``.
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import (
    Benchmark,
    Injection,
    LaunchSpec,
    NO_INJECTION,
    RunPlan,
    rng_for,
    scaled,
)
from repro.gpu.kernel import Kernel

_BLOCK = 128
_K = 4       # clusters
_DIMS = 2    # features per point


def assign_kernel(ctx, g_points, g_centroids, g_labels, n, inj):
    i = ctx.global_tid_x
    if i >= n:
        return
    px = yield ctx.load(g_points, i * _DIMS)
    py = yield ctx.load(g_points, i * _DIMS + 1)
    best, best_d = 0, float("inf")
    for c in range(_K):
        cx = yield ctx.load(g_centroids, c * _DIMS)
        cy = yield ctx.load(g_centroids, c * _DIMS + 1)
        d = (px - cx) ** 2 + (py - cy) ** 2
        yield ctx.compute(4)
        if d < best_d:
            best, best_d = c, d
    yield ctx.store(g_labels, i, float(best))
    if inj.inject("xblock") and ctx.tid_x == 0:
        # dummy write into the label cell another block owns
        yield ctx.store(g_labels, (i + ctx.block_dim.x) % n, 0.0)


def update_kernel(ctx, g_points, g_labels, g_centroids, g_counts, g_flag,
                  g_move, n, inj):
    """Centroid update written for ONE block; multi-block launch races.

    Warp 0's first ``_K * _DIMS`` threads each own one (cluster, dim)
    accumulator; after publishing a centroid value each writer fences and
    takes an atomic ticket. Warp 1's leader spins on the ticket count,
    then reads the fresh centroids to compute the convergence movement —
    the standard fence-gated producer/consumer hand-off (remove the fence
    and every centroid read is a RAW race).
    """
    tid = ctx.tid_x
    nslots = _K * _DIMS
    slot = tid
    if slot < nslots:
        c = slot // _DIMS
        d = slot % _DIMS
        acc = 0.0
        cnt = 0.0
        for i in range(n):
            lbl = yield ctx.load(g_labels, i)
            if int(lbl) == c:
                v = yield ctx.load(g_points, i * _DIMS + d)
                acc += v
                cnt += 1.0
            yield ctx.compute(1)
        if cnt > 0:
            yield ctx.store(g_centroids, slot, acc / cnt)
        if d == 0:
            yield ctx.store(g_counts, c, cnt)
        if inj.keep("fence"):
            yield ctx.threadfence()
        yield ctx.atomic_add(g_flag, 0, 1.0)
    elif tid == 32:
        # warp 1: convergence check over the published centroids
        done = 0.0
        while done < nslots:
            done = yield ctx.atomic_add(g_flag, 0, 0.0)
        movement = 0.0
        for s in range(nslots):
            v = yield ctx.load(g_centroids, s)
            movement += abs(v)
            yield ctx.compute(1)
        yield ctx.store(g_move, 0, movement)
        yield ctx.store(g_flag, 0, 0.0)  # re-arm the ticket for next round


def build(sim, scale: float = 1.0, seed: int = 0,
          injection: Injection = NO_INJECTION,
          num_update_blocks: int = 4, iterations: int = 2) -> RunPlan:
    n = scaled(1024, scale, minimum=_BLOCK, multiple=_BLOCK)
    rng = rng_for(seed)
    centers = rng.uniform(-10, 10, size=(_K, _DIMS))
    pts = (centers[rng.integers(0, _K, n)]
           + rng.standard_normal((n, _DIMS)) * 0.5)

    g_points = sim.malloc("km_points", n * _DIMS)
    g_centroids = sim.malloc("km_centroids", _K * _DIMS)
    g_labels = sim.malloc("km_labels", n)
    g_counts = sim.malloc("km_counts", _K)
    g_flag = sim.malloc("km_flag", 1)
    g_move = sim.malloc("km_move", 1)
    g_points.host_write(pts.reshape(-1))
    init = pts[:: n // _K][:_K].reshape(-1)
    g_centroids.host_write(init)

    a_k = Kernel(assign_kernel, name="kmeans_assign")
    u_k = Kernel(update_kernel, name="kmeans_update")

    launches = []
    for _ in range(iterations):
        launches.append(LaunchSpec(
            a_k, grid=n // _BLOCK, block=_BLOCK,
            args=(g_points, g_centroids, g_labels, n, injection),
        ))
        launches.append(LaunchSpec(
            u_k, grid=num_update_blocks, block=64,
            args=(g_points, g_labels, g_centroids, g_counts, g_flag,
                  g_move, n, injection),
        ))

    racy = num_update_blocks > 1

    def verify() -> None:
        counts = g_counts.host_read()
        assert counts.sum() == n, f"label counts {counts} != {n}"
        labels = g_labels.host_read().astype(int)
        cents = g_centroids.host_read().reshape(_K, _DIMS)
        for c in range(_K):
            mask = labels == c
            if mask.sum():
                ref = pts[mask].mean(axis=0)
                assert np.allclose(cents[c], ref), (
                    f"centroid {c}: {cents[c]} vs {ref}"
                )

    return RunPlan(
        name="KMEANS",
        launches=launches,
        verify=None if racy else verify,
        data_bytes=(n * _DIMS + n + _K * _DIMS + _K + 2) * 4,
        racy_by_design=racy,
        notes="multi-block update reproduces the documented scaling bug"
        if racy else "single-block update is race-free",
    )


BENCHMARK = Benchmark(
    name="KMEANS",
    paper_input="mesh=100, dx=10",
    scaled_input="1K points, 4 clusters, 2 iterations",
    build=build,
    uses_fences=True,
    has_real_race=True,
    injection_sites={
        "fence": "fence",
        "xblock": "xblock",
    },
    description="parallel k-means; single-block update kernel scaled wrong",
)
