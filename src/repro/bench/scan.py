"""SCAN: parallel prefix sum (CUDA SDK `scan`), paper input 512 elements.

The SDK's naive scan kernel processes the whole input inside *one* thread
block using a double-buffered shared array and a barrier per log-step.
The documented bug the paper detects (§VI-A): the kernel is "designed to
execute as a single thread-block, but multiple thread-blocks are launched
to scale up the workload. Consequently, all thread-blocks operate on the
same data, causing data dependences that otherwise would not exist." We
reproduce both configurations: ``num_blocks=1`` is race-free and verified;
the default multi-block launch carries the real global-memory races.

Injection sites (``barrier:step{k}`` omit a per-step barrier;
``xblock`` emits a cross-block dummy write).
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import (
    Benchmark,
    Injection,
    LaunchSpec,
    NO_INJECTION,
    RunPlan,
    rng_for,
    scaled,
)
from repro.gpu.kernel import Kernel
from repro.gpu.ops import OP_LOAD, OP_STORE

#: log2 of the fixed per-block scan width (the SDK uses 512 = 2**9;
#: barriers per kernel = 2 * steps)
_STEPS = 9


def scan_kernel(ctx, g_in, g_out, n, inj):
    """Naive Hillis-Steele scan of ``n`` elements in shared memory.

    Every launched block runs the identical code over the *same* global
    range [0, n) — the SDK scaling bug.
    """
    tid = ctx.tid_x
    sh = ctx.shared["temp"]  # double buffer: 2 * n entries
    pout, pin = 0, 1

    sync = ctx.syncthreads
    active = tid < n
    # double-buffer byte addresses for this thread's element, indexed by
    # pout/pin; the log-step loop yields raw op tuples (what ctx.load /
    # ctx.store build) — it is the hottest kernel code after HIST's.
    # Barrier-keep flags are a pure frozenset lookup, resolved up front.
    space = sh.space
    item = sh.itemsize
    a_tid = sh.base + item * tid
    aoffs = (a_tid, a_tid + item * n)
    keeps = [inj.keep(f"barrier:step{k}") for k in range((n - 1).bit_length())]

    if active:
        # exclusive scan: element tid seeds with input[tid - 1]
        if tid > 0:
            v = yield ctx.load(g_in, tid - 1)
            yield ctx.store(sh, tid, v)
        else:
            yield ctx.store(sh, tid, 0.0)
            yield ctx.compute(1)
    yield sync()

    offset = 1
    step = 0
    while offset < n:
        pout, pin = pin, pout
        if active:
            pi = aoffs[pin]
            po = aoffs[pout]
            if tid >= offset:
                a = yield (OP_LOAD, space, pi, item)
                b = yield (OP_LOAD, space, pi - item * offset, item)
                yield (OP_STORE, space, po, item, a + b)
            else:
                a = yield (OP_LOAD, space, pi, item)
                yield (OP_STORE, space, po, item, a)
        if keeps[step]:
            yield sync()
        offset <<= 1
        step += 1

    if active:
        r = yield (OP_LOAD, space, aoffs[pout], item)
        yield ctx.store(g_out, tid, r)
        if inj.inject("xblock") and tid == 0 and ctx.block_id_x == 0:
            # dummy write into the range another block also writes
            yield ctx.store(g_out, n - 1, -1.0)


def build(sim, scale: float = 1.0, seed: int = 0,
          injection: Injection = NO_INJECTION,
          num_blocks: int = 4) -> RunPlan:
    n = scaled(512, scale, minimum=64, multiple=32)
    rng = rng_for(seed)
    data = rng.integers(0, 10, size=n).astype(np.float64)

    g_in = sim.malloc("scan_in", n)
    g_out = sim.malloc("scan_out", n)
    g_in.host_write(data)

    kernel = Kernel(scan_kernel, name="scan",
                    shared={"temp": (2 * n, 4)})

    expected = np.concatenate(([0.0], np.cumsum(data)[:-1]))

    def verify() -> None:
        got = g_out.host_read()
        assert np.allclose(got, expected), (
            f"scan mismatch: {got[:8]} vs {expected[:8]}"
        )

    racy = num_blocks > 1
    return RunPlan(
        name="SCAN",
        launches=[LaunchSpec(kernel, grid=num_blocks, block=n,
                             args=(g_in, g_out, n, injection))],
        verify=None if racy else verify,
        data_bytes=2 * n * 4,
        racy_by_design=racy,
        notes="multi-block launch reproduces the documented SDK bug"
        if racy else "single-block launch is race-free",
    )


BENCHMARK = Benchmark(
    name="SCAN",
    paper_input="512 elements",
    scaled_input="512 elements, 4 blocks over the same data (SDK bug)",
    build=build,
    has_real_race=True,
    injection_sites={
        **{f"barrier:step{k}": "barrier" for k in range(_STEPS)},
        "xblock": "xblock",
    },
    description="parallel prefix sum; shared-memory double buffer",
)
