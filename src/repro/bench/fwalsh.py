"""FWALSH: fast Walsh-Hadamard transform (CUDA SDK `fastWalshTransform`).

Two kernels, as in the SDK: a shared-memory kernel performs the low-order
butterfly stages inside each block (barrier per stage), and a global-memory
kernel performs one high-order stage per launch with strided paired
accesses across blocks. Paper input: 512K-element data, 32-element kernel
(scaled here to 2K elements).

Injection sites: ``barrier:stage{k}`` (shared stages) and ``xblock``.
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import (
    Benchmark,
    Injection,
    LaunchSpec,
    NO_INJECTION,
    RunPlan,
    rng_for,
    scaled,
)
from repro.gpu.kernel import Kernel

_BLOCK_ELEMS = 256  # elements per shared-memory block transform
_BLOCK = 128        # threads per block (2 elements per thread)


def fwalsh_shared_kernel(ctx, g_data, inj):
    """Butterflies within one block's 256-element tile, in shared memory."""
    tid = ctx.tid_x
    base = ctx.block_id_x * _BLOCK_ELEMS
    sh = ctx.shared["tile"]

    for k in range(2):
        i = tid + k * ctx.block_dim.x
        v = yield ctx.load(g_data, base + i)
        yield ctx.store(sh, i, v)
    if inj.keep("barrier:store"):
        yield ctx.syncthreads()

    stride = 1
    stage = 0
    while stride < _BLOCK_ELEMS:
        # each thread handles one butterfly pair per stage
        pair = tid
        lo = (pair // stride) * (stride * 2) + (pair % stride)
        hi = lo + stride
        a = yield ctx.load(sh, lo)
        b = yield ctx.load(sh, hi)
        yield ctx.store(sh, lo, a + b)
        yield ctx.store(sh, hi, a - b)
        if inj.keep(f"barrier:stage{stage}"):
            yield ctx.syncthreads()
        stride <<= 1
        stage += 1

    for k in range(2):
        i = tid + k * ctx.block_dim.x
        v = yield ctx.load(sh, i)
        yield ctx.store(g_data, base + i, v)
        if inj.inject("xblock") and tid == 0 and k == 0:
            yield ctx.store(g_data, (base + _BLOCK_ELEMS) % g_data.length,
                            0.0)


def fwalsh_global_kernel(ctx, g_data, stride, inj):
    """One high-order butterfly stage directly in global memory."""
    pair = ctx.global_tid_x
    if pair >= g_data.length // 2:
        return
    lo = (pair // stride) * (stride * 2) + (pair % stride)
    hi = lo + stride
    a = yield ctx.load(g_data, lo)
    b = yield ctx.load(g_data, hi)
    yield ctx.store(g_data, lo, a + b)
    yield ctx.store(g_data, hi, a - b)


def _reference_fwht(x: np.ndarray) -> np.ndarray:
    out = x.copy()
    h = 1
    while h < len(out):
        for i in range(0, len(out), h * 2):
            for j in range(i, i + h):
                a, b = out[j], out[j + h]
                out[j], out[j + h] = a + b, a - b
        h *= 2
    return out


def build(sim, scale: float = 1.0, seed: int = 0,
          injection: Injection = NO_INJECTION) -> RunPlan:
    n = scaled(2048, scale, minimum=_BLOCK_ELEMS, multiple=_BLOCK_ELEMS)
    rng = rng_for(seed)
    data = rng.integers(-8, 8, size=n).astype(np.float64)

    g_data = sim.malloc("fwalsh_data", n)
    g_data.host_write(data)

    shared_kernel = Kernel(fwalsh_shared_kernel, name="fwalsh_shared",
                           shared={"tile": (_BLOCK_ELEMS, 4)})
    global_kernel = Kernel(fwalsh_global_kernel, name="fwalsh_global")

    launches = [LaunchSpec(shared_kernel, grid=n // _BLOCK_ELEMS,
                           block=_BLOCK, args=(g_data, injection))]
    stride = _BLOCK_ELEMS
    pairs = n // 2
    while stride < n:
        launches.append(LaunchSpec(
            global_kernel, grid=max(1, pairs // _BLOCK), block=_BLOCK,
            args=(g_data, stride, injection),
        ))
        stride <<= 1

    expected = _reference_fwht(data)

    def verify() -> None:
        got = g_data.host_read()
        assert np.allclose(got, expected), (
            f"fwalsh mismatch: {got[:8]} vs {expected[:8]}"
        )

    return RunPlan(
        name="FWALSH",
        launches=launches,
        verify=verify,
        data_bytes=n * 4,
    )


BENCHMARK = Benchmark(
    name="FWALSH",
    paper_input="data length 512K, kernel length 32",
    scaled_input="2K elements, 256-element shared tiles",
    build=build,
    injection_sites={
        "barrier:store": "barrier",
        **{f"barrier:stage{k}": "barrier" for k in range(8)},
        "xblock": "xblock",
    },
    description="fast Walsh-Hadamard transform, shared + global stages",
)
