"""HIST: 64-bin histogram over byte data (CUDA SDK `histogram64`).

Threads read 4-byte words from global memory and bump one-byte counters in
shared-memory sub-histograms. The sub-histograms are *warp-interleaved*:
the byte counter of bin ``b`` for warp ``w`` lives at shared address
``b * num_warps + w``, so different warps' counters for one bin sit in
adjacent bytes. That byte-granularity layout is exactly why the paper's
Table III shows false shared-memory races for HIST even at the finest
granularities — "the benchmark operates on a data structure having element
size of one byte, which translates to accesses from multiple warps mapping
to the same memory entries". There is no *real* race: each warp only ever
touches its own counters.

The input is generated so that within each warp-wide read the four decoded
bytes of each lane map to bins unique per lane, mirroring the SDK's
per-thread tagging that makes intra-warp byte updates safe.

Injection sites: ``barrier:merge`` and ``xblock``.
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import (
    Benchmark,
    Injection,
    LaunchSpec,
    NO_INJECTION,
    RunPlan,
    rng_for,
    scaled,
)
from repro.gpu.kernel import Kernel
from repro.gpu.ops import OP_LOAD, OP_STORE

_BINS = 64
_BLOCK = 128
_WARPS = _BLOCK // 32


def hist_kernel(ctx, g_words, g_hist, words_per_thread, inj):
    tid = ctx.tid_x
    warp = ctx.warp_in_block
    lane = ctx.lane
    sh = ctx.shared["subhist"]  # _BINS x _WARPS x 4 one-byte counters

    load_addr = ctx.load_addr
    space = sh.space
    stride = 4 * _WARPS  # bytes per bin row
    # this thread's fixed byte column within every bin row
    col = sh.base + warp * 4 + (lane & 3)
    bdim = ctx.block_dim.x
    length = g_words.length
    gspace = g_words.space
    gbase = g_words.base

    base = ctx.block_id_x * bdim * words_per_thread
    for k in range(words_per_thread):
        i = base + k * bdim + tid
        if i < length:
            # ops yielded as raw tuples (what ctx.load/load_addr build):
            # this loop is the hottest kernel code in the perf suite
            word = yield (OP_LOAD, gspace, gbase + 4 * i, 4)
            w = int(word)
            # decode four packed 6-bit fields -> four byte-counter bumps.
            # Layout: bin-major, one 4-byte field per warp, lanes spread
            # over the field's four bytes (overflow mitigation) — warps
            # stay word-aligned, so 4-byte tracking is exact but any
            # coarser granularity merges different warps' counters.
            for shift in (0, 6, 12, 18):
                addr = col + ((w >> shift) & (_BINS - 1)) * stride
                c = yield (OP_LOAD, space, addr, 1)
                yield (OP_STORE, space, addr, 1, c + 1)
    if inj.keep("barrier:merge"):
        yield ctx.syncthreads()

    # merge: one thread per bin folds its warp counters into global memory
    if tid < _BINS:
        total = 0.0
        row = sh.base + tid * stride
        for w in range(stride):
            c = yield load_addr(space, row + w, 1)
            total += c
        yield ctx.atomic_add(g_hist, tid, total)
        if inj.inject("xblock") and tid == 0:
            yield ctx.store(g_hist, _BINS - 1, 0.0)


def _make_input(rng: np.random.Generator, n_words: int) -> np.ndarray:
    """Packed words whose four 6-bit fields are lane-unique per warp row."""
    words = np.zeros(n_words, dtype=np.int64)
    for shift in (0, 6, 12, 18):
        # per 32-word row, assign a random permutation of 32 distinct bins
        rows = -(-n_words // 32)
        vals = np.concatenate([
            rng.permutation(_BINS)[:32] for _ in range(rows)
        ])[:n_words]
        words |= vals.astype(np.int64) << shift
    return words


def build(sim, scale: float = 1.0, seed: int = 0,
          injection: Injection = NO_INJECTION) -> RunPlan:
    n_words = scaled(8192, scale, minimum=_BLOCK, multiple=_BLOCK)
    words_per_thread = 4
    nblocks = max(1, n_words // (_BLOCK * words_per_thread))
    rng = rng_for(seed)
    words = _make_input(rng, n_words)

    g_words = sim.malloc("hist_words", n_words)
    g_hist = sim.malloc("hist_out", _BINS)
    g_words.host_write(words.astype(np.float64))

    kernel = Kernel(hist_kernel, name="hist",
                    shared={"subhist": (_BINS * _WARPS * 4, 1)})

    expected = np.zeros(_BINS)
    for shift in (0, 6, 12, 18):
        np.add.at(expected, (words >> shift) & (_BINS - 1), 1)

    def verify() -> None:
        got = g_hist.host_read()
        assert np.array_equal(got, expected), (
            f"hist mismatch: {got[:8]} vs {expected[:8]}"
        )

    return RunPlan(
        name="HIST",
        launches=[LaunchSpec(kernel, grid=nblocks, block=_BLOCK,
                             args=(g_words, g_hist, words_per_thread,
                                   injection))],
        verify=verify,
        data_bytes=(n_words + _BINS) * 4,
    )


BENCHMARK = Benchmark(
    name="HIST",
    paper_input="byte count 16M",
    scaled_input="32K bytes (8K packed words), 64 bins",
    build=build,
    injection_sites={
        "barrier:merge": "barrier",
        "xblock": "xblock",
    },
    description="64-bin histogram; 1-byte shared counters, warp-interleaved",
)
