"""SORTNW: bitonic sorting network (CUDA SDK `sortingNetworks`).

Each block sorts a 2*blockDim tile in shared memory with the classic
bitonic stages; every compare-exchange step is separated by a barrier.
Strides shrink from tile/2 down to 1, so at coarse tracking granularities
the small-stride steps put both elements of a compare-exchange pair —
owned by threads of different warps in earlier steps — into one shadow
entry, which is where this benchmark's granularity false positives come
from. Paper input: 12K elements / 2K values (scaled to 1K elements).

Injection sites: ``barrier:step{k}`` and ``xblock``.
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import (
    Benchmark,
    Injection,
    LaunchSpec,
    NO_INJECTION,
    RunPlan,
    rng_for,
    scaled,
)
from repro.gpu.kernel import Kernel

_BLOCK = 128
_TILE = 2 * _BLOCK  # elements sorted per block


def sortnw_kernel(ctx, g_data, inj):
    tid = ctx.tid_x
    base = ctx.block_id_x * _TILE
    sh = ctx.shared["tile"]

    for k in range(2):
        i = tid + k * ctx.block_dim.x
        v = yield ctx.load(g_data, base + i)
        yield ctx.store(sh, i, v)
    yield ctx.syncthreads()

    step = 0
    size = 2
    while size <= _TILE:
        # direction alternates per `size`-aligned chunk (bitonic merge)
        stride = size // 2
        while stride > 0:
            pos = 2 * tid - (tid & (stride - 1))
            lo, hi = pos, pos + stride
            ddd = 1 if ((tid & (size // 2)) == 0) else 0
            a = yield ctx.load(sh, lo)
            b = yield ctx.load(sh, hi)
            if (a > b) == bool(ddd):
                yield ctx.store(sh, lo, b)
                yield ctx.store(sh, hi, a)
            else:
                yield ctx.compute(1)
            if inj.keep(f"barrier:step{step % 8}"):
                yield ctx.syncthreads()
            stride //= 2
            step += 1
        size *= 2

    for k in range(2):
        i = tid + k * ctx.block_dim.x
        v = yield ctx.load(sh, i)
        yield ctx.store(g_data, base + i, v)
        if inj.inject("xblock") and tid == 0 and k == 0:
            yield ctx.store(g_data, (base + _TILE) % g_data.length, 0.0)


def build(sim, scale: float = 1.0, seed: int = 0,
          injection: Injection = NO_INJECTION) -> RunPlan:
    n = scaled(1024, scale, minimum=_TILE, multiple=_TILE)
    rng = rng_for(seed)
    data = rng.permutation(n).astype(np.float64)

    g_data = sim.malloc("sortnw_data", n)
    g_data.host_write(data)

    kernel = Kernel(sortnw_kernel, name="sortnw",
                    shared={"tile": (_TILE, 4)})

    expected = data.reshape(-1, _TILE).copy()
    expected.sort(axis=1)

    def verify() -> None:
        got = g_data.host_read().reshape(-1, _TILE)
        assert np.array_equal(got, expected), "sortnw mismatch"

    return RunPlan(
        name="SORTNW",
        launches=[LaunchSpec(kernel, grid=n // _TILE, block=_BLOCK,
                             args=(g_data, injection))],
        verify=verify,
        data_bytes=n * 4,
    )


BENCHMARK = Benchmark(
    name="SORTNW",
    paper_input="12K elements, 2K values",
    scaled_input="1K elements, 256-element tiles",
    build=build,
    injection_sites={
        **{f"barrier:step{k}": "barrier" for k in range(8)},
        "xblock": "xblock",
    },
    description="bitonic sorting network in shared memory",
)
