"""REDUCE: single-pass parallel reduction with __threadfence.

Models the CUDA SDK `reduction` final kernel (and the programming-guide
single-pass pattern): each block reduces its grid-strided chunk in shared
memory, writes its partial sum to global memory, executes a __threadfence
so the partial is visible device-wide, then atomically takes a ticket; the
block that draws the last ticket reduces the partials array to the final
value. Paper input: 1M elements (scaled here to 16K by default).

Injection sites: ``barrier:tree{k}`` (shared tree barriers), ``fence``
(the __threadfence before the ticket — removing it is the paper's
fence-injection case), ``xblock`` (dummy cross-block access),
``barrier:load`` (barrier after the load phase).
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import (
    Benchmark,
    Injection,
    LaunchSpec,
    NO_INJECTION,
    RunPlan,
    rng_for,
    scaled,
)
from repro.gpu.kernel import Kernel

_BLOCK = 128
_TREE_STEPS = 7  # log2(_BLOCK)


def reduce_kernel(ctx, g_in, g_partial, g_out, g_ticket, n, per_thread, inj):
    tid = ctx.tid_x
    bid = ctx.block_id_x
    nblocks = ctx.grid_dim.x
    sh = ctx.shared["sdata"]

    # grid-strided accumulation
    acc = 0.0
    base = bid * ctx.block_dim.x * per_thread
    for k in range(per_thread):
        i = base + k * ctx.block_dim.x + tid
        if i < n:
            v = yield ctx.load(g_in, i)
            acc += v
            yield ctx.compute(1)
    yield ctx.store(sh, tid, acc)
    if inj.keep("barrier:load"):
        yield ctx.syncthreads()

    # shared-memory tree reduction
    s = ctx.block_dim.x // 2
    step = 0
    while s > 0:
        if tid < s:
            a = yield ctx.load(sh, tid)
            b = yield ctx.load(sh, tid + s)
            yield ctx.store(sh, tid, a + b)
        if inj.keep(f"barrier:tree{step}"):
            yield ctx.syncthreads()
        s //= 2
        step += 1

    if tid == 0:
        block_sum = yield ctx.load(sh, 0)
        yield ctx.store(g_partial, bid, block_sum)
        if inj.keep("fence"):
            yield ctx.threadfence()
        ticket = yield ctx.atomic_inc(g_ticket, 0, float(nblocks))
        # guide idiom: publish "am I last?" to the block via shared memory
        yield ctx.store(sh, 1, 1.0 if ticket == nblocks - 1 else 0.0)
    yield ctx.syncthreads()

    am_last = yield ctx.load(sh, 1)
    if am_last != 0.0:
        # last block: all threads cooperatively reduce the partials with
        # coalesced warp-wide reads (one transaction, no stale L1 hits)
        acc2 = 0.0
        for b in range(tid, nblocks, ctx.block_dim.x):
            p = yield ctx.load(g_partial, b)
            acc2 += p
        yield ctx.syncthreads()
        yield ctx.store(sh, tid, acc2)
        yield ctx.syncthreads()
        s = ctx.block_dim.x // 2
        while s > 0:
            if tid < s:
                a = yield ctx.load(sh, tid)
                b2 = yield ctx.load(sh, tid + s)
                yield ctx.store(sh, tid, a + b2)
            yield ctx.syncthreads()
            s //= 2
        if tid == 0:
            total = yield ctx.load(sh, 0)
            yield ctx.store(g_out, 0, total)
    if inj.inject("xblock") and tid == 1:
        # dummy unfenced write into another block's partial slot
        yield ctx.store(g_partial, (bid + 1) % nblocks, 0.0)


def build(sim, scale: float = 1.0, seed: int = 0,
          injection: Injection = NO_INJECTION) -> RunPlan:
    n = scaled(16384, scale, minimum=512, multiple=_BLOCK)
    per_thread = 4
    nblocks = max(1, n // (_BLOCK * per_thread))
    rng = rng_for(seed)
    data = rng.integers(0, 100, size=n).astype(np.float64)

    g_in = sim.malloc("reduce_in", n)
    g_partial = sim.malloc("reduce_partial", nblocks)
    g_out = sim.malloc("reduce_out", 1)
    g_ticket = sim.malloc("reduce_ticket", 1)
    g_in.host_write(data)

    kernel = Kernel(reduce_kernel, name="reduce",
                    shared={"sdata": (_BLOCK, 4)})

    def verify() -> None:
        got = g_out.host_read()[0]
        assert got == data.sum(), f"reduce mismatch: {got} vs {data.sum()}"

    return RunPlan(
        name="REDUCE",
        launches=[LaunchSpec(kernel, grid=nblocks, block=_BLOCK,
                             args=(g_in, g_partial, g_out, g_ticket,
                                   n, per_thread, injection))],
        verify=verify,
        data_bytes=(n + nblocks + 2) * 4,
    )


BENCHMARK = Benchmark(
    name="REDUCE",
    paper_input="1M elements",
    scaled_input="16K elements, 128-thread blocks, single-pass w/ fence",
    build=build,
    uses_fences=True,
    injection_sites={
        "barrier:load": "barrier",
        **{f"barrier:tree{k}": "barrier" for k in range(_TREE_STEPS)},
        "fence": "fence",
        "xblock": "xblock",
    },
    description="single-pass parallel reduction with __threadfence",
)
