"""CUDA-benchmark re-implementations (paper Table II workloads).

Ten benchmarks exercise the detector exactly as the paper's evaluation does:
seven CUDA-SDK-derived kernels (MCARLO, SCAN, FWALSH, HIST, SORTNW, REDUCE,
OFFT), the KMEANS clustering kernel, and the PSUM / HASH microbenchmarks.
Inputs are scaled down from the paper's (documented per benchmark) so that
pure-Python simulation completes in seconds; access *patterns* — strides,
element sizes, synchronization placement, and the documented real bugs —
are preserved.

Use :data:`repro.bench.suite.SUITE` to iterate all benchmarks, or import a
specific one from its module.
"""

from repro.bench.common import Injection, NO_INJECTION, RunPlan, Benchmark
from repro.bench.suite import SUITE, get_benchmark

__all__ = [
    "Injection",
    "NO_INJECTION",
    "RunPlan",
    "Benchmark",
    "SUITE",
    "get_benchmark",
]
