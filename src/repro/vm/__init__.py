"""Virtual-memory support for HAccRG (paper §IV-B "Supporting Virtual Memory").

Recent GPUs (the paper cites Intel Sandy Bridge and AMD Fusion) translate
GPU addresses through page tables and TLBs. Tracking global memory with
shadow entries then needs two things:

1. **On-demand shadow paging** (:mod:`repro.vm.page_table`): shadow pages
   are allocated when the corresponding *global-space* application pages
   are created — a one-bit field in the GPU page-table entry marks pages
   belonging to the global memory space, and only those get shadows.
2. **Dual address translation in the TLB** (:mod:`repro.vm.tlb`): every
   global access needs both the application translation and the shadow
   translation. The paper proposes two mechanisms: (a) append one bit to
   the TLB tags so shadow translations share the existing TLB (reducing
   its effective capacity for regular entries), or (b) a separate, smaller
   shadow TLB probed in parallel (faster, at extra hardware cost). Both
   are implemented and compared by the ``vm_tlb`` experiment.
"""

from repro.vm.page_table import PageTable, PageTableEntry
from repro.vm.tlb import SplitTLB, TaggedTLB, TLBStats

__all__ = ["PageTable", "PageTableEntry", "TaggedTLB", "SplitTLB",
           "TLBStats"]
