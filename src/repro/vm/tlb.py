"""The two shadow-translation TLB mechanisms of paper §IV-B.

Every global memory access needs two translations: the application address
and its shadow address. The paper proposes:

- :class:`TaggedTLB` — append one bit to each TLB tag (0 = regular page,
  1 = shadow page) and look both kinds up in the *same* structure. No new
  hardware, but shadow entries "can potentially reduce the effective TLB
  capacity for regular (non-shadow) memory entries".
- :class:`SplitTLB` — keep the regular TLB unchanged and add a separate,
  smaller shadow TLB probed in parallel ("Shadow memory TLB can be smaller
  than the regular TLB since all GPU pages do not belong to the global
  memory space. This approach provides faster TLB accesses").

Both share the fully-associative-per-set LRU machinery of the cache model;
misses walk the page table (allocating shadow pages on demand).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.common.errors import ConfigError
from repro.vm.page_table import PageTable


@dataclass
class TLBStats:
    """Hit/miss counters, split by translation kind."""

    app_accesses: int = 0
    app_hits: int = 0
    shadow_accesses: int = 0
    shadow_hits: int = 0
    walks: int = 0

    @property
    def app_miss_rate(self) -> float:
        return (1 - self.app_hits / self.app_accesses
                if self.app_accesses else 0.0)

    @property
    def shadow_miss_rate(self) -> float:
        return (1 - self.shadow_hits / self.shadow_accesses
                if self.shadow_accesses else 0.0)

    @property
    def total_miss_rate(self) -> float:
        acc = self.app_accesses + self.shadow_accesses
        hits = self.app_hits + self.shadow_hits
        return 1 - hits / acc if acc else 0.0

    def merge(self, other: "TLBStats") -> None:
        """Accumulate another stats record into this one (in place)."""
        self.app_accesses += other.app_accesses
        self.app_hits += other.app_hits
        self.shadow_accesses += other.shadow_accesses
        self.shadow_hits += other.shadow_hits
        self.walks += other.walks

    def record(self) -> Dict[str, Any]:
        """JSON-safe export: raw counters plus the derived miss rates.

        This is the shape :class:`~repro.events.metrics.MetricsCollector`
        carries and ``RunResult.tlb`` serializes — keep keys stable.
        """
        return {
            "app_accesses": int(self.app_accesses),
            "app_hits": int(self.app_hits),
            "shadow_accesses": int(self.shadow_accesses),
            "shadow_hits": int(self.shadow_hits),
            "walks": int(self.walks),
            "app_miss_rate": float(self.app_miss_rate),
            "shadow_miss_rate": float(self.shadow_miss_rate),
            "total_miss_rate": float(self.total_miss_rate),
        }

    @staticmethod
    def from_record(record: Dict[str, Any]) -> "TLBStats":
        return TLBStats(
            app_accesses=int(record["app_accesses"]),
            app_hits=int(record["app_hits"]),
            shadow_accesses=int(record["shadow_accesses"]),
            shadow_hits=int(record["shadow_hits"]),
            walks=int(record["walks"]),
        )


class _LRUArray:
    """Small fully-associative LRU translation array."""

    def __init__(self, entries: int) -> None:
        self.capacity = entries
        self._slots: dict = {}  # key -> lru tick
        self._tick = 0

    def lookup(self, key) -> bool:
        self._tick += 1
        if key in self._slots:
            self._slots[key] = self._tick
            return True
        return False

    def insert(self, key) -> None:
        self._tick += 1
        if key not in self._slots and len(self._slots) >= self.capacity:
            victim = min(self._slots, key=self._slots.get)
            del self._slots[victim]
        self._slots[key] = self._tick

    def resident(self) -> int:
        return len(self._slots)


class TaggedTLB:
    """Mechanism (a): shadow translations share the TLB via a 1-bit tag."""

    #: cycles per probe; both translation kinds are serialized through the
    #: single structure, so a global access probes twice
    lookup_cycles = 1

    def __init__(self, entries: int, page_table: PageTable) -> None:
        if entries < 1:
            raise ConfigError("TLB needs at least one entry")
        self._array = _LRUArray(entries)
        self._pt = page_table
        self.stats = TLBStats()

    def translate(self, vaddr: int) -> Tuple[int, int]:
        """App translation; returns (paddr, cycles)."""
        self.stats.app_accesses += 1
        key = (0, self._pt.vpn_of(vaddr))
        cycles = self.lookup_cycles
        if self._array.lookup(key):
            self.stats.app_hits += 1
        else:
            self.stats.walks += 1
            cycles += PAGE_WALK_CYCLES
            self._array.insert(key)
        paddr, _ = self._pt.translate(vaddr)
        return paddr, cycles

    def shadow_translate(self, vaddr: int) -> Tuple[int, int]:
        """Shadow translation through the same array (tag bit = 1)."""
        self.stats.shadow_accesses += 1
        key = (1, self._pt.vpn_of(vaddr))
        cycles = self.lookup_cycles
        if self._array.lookup(key):
            self.stats.shadow_hits += 1
        else:
            self.stats.walks += 1
            cycles += PAGE_WALK_CYCLES
            self._array.insert(key)
        paddr, _ = self._pt.shadow_translate(vaddr)
        return paddr, cycles

    def access_cycles(self, vaddr: int) -> int:
        """One detected global access: app + shadow, serialized."""
        _, c1 = self.translate(vaddr)
        _, c2 = self.shadow_translate(vaddr)
        return c1 + c2


class SplitTLB:
    """Mechanism (b): a dedicated (smaller) shadow TLB probed in parallel."""

    lookup_cycles = 1

    def __init__(self, entries: int, shadow_entries: int,
                 page_table: PageTable) -> None:
        if entries < 1 or shadow_entries < 1:
            raise ConfigError("TLB needs at least one entry")
        self._app = _LRUArray(entries)
        self._shadow = _LRUArray(shadow_entries)
        self._pt = page_table
        self.stats = TLBStats()

    def translate(self, vaddr: int) -> Tuple[int, int]:
        self.stats.app_accesses += 1
        key = self._pt.vpn_of(vaddr)
        cycles = self.lookup_cycles
        if self._app.lookup(key):
            self.stats.app_hits += 1
        else:
            self.stats.walks += 1
            cycles += PAGE_WALK_CYCLES
            self._app.insert(key)
        paddr, _ = self._pt.translate(vaddr)
        return paddr, cycles

    def shadow_translate(self, vaddr: int) -> Tuple[int, int]:
        self.stats.shadow_accesses += 1
        key = self._pt.vpn_of(vaddr)
        cycles = self.lookup_cycles
        if self._shadow.lookup(key):
            self.stats.shadow_hits += 1
        else:
            self.stats.walks += 1
            cycles += PAGE_WALK_CYCLES
            self._shadow.insert(key)
        paddr, _ = self._pt.shadow_translate(vaddr)
        return paddr, cycles

    def access_cycles(self, vaddr: int) -> int:
        """One detected global access: the two probes run in parallel."""
        _, c1 = self.translate(vaddr)
        _, c2 = self.shadow_translate(vaddr)
        return max(c1, c2)


#: cycles to walk the page table on a TLB miss
PAGE_WALK_CYCLES = 100
