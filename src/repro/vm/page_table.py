"""GPU page table with on-demand shadow paging (paper §IV-B).

A single-level page-table model suffices for studying HAccRG's proposal:
each :class:`PageTableEntry` maps one virtual page to a physical frame and
carries the **global-space bit** — set for pages in the global memory
space, which are exactly the pages that receive shadow pages. Shadow pages
are allocated lazily, the first time the detector translates an address of
a global page (`on-demand paging for shadow memory ... allocated when
GPU's application memory pages are generated`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.bitops import is_power_of_two, log2_exact
from repro.common.errors import ConfigError, KernelError


@dataclass
class PageTableEntry:
    """One translation: virtual page -> physical frame (+ flags)."""

    vpn: int
    pfn: int
    is_global: bool = False      # the paper's 1-bit global-space field
    shadow_pfn: Optional[int] = None


class PageTable:
    """Single-level page table with a bump frame allocator."""

    def __init__(self, page_size: int = 4096) -> None:
        if not is_power_of_two(page_size):
            raise ConfigError("page size must be a power of two")
        self.page_size = page_size
        self._shift = log2_exact(page_size)
        self._entries: Dict[int, PageTableEntry] = {}
        self._next_frame = 0
        self.shadow_pages_allocated = 0
        self.app_pages_allocated = 0

    # ------------------------------------------------------------------

    def vpn_of(self, vaddr: int) -> int:
        return vaddr >> self._shift

    def offset_of(self, vaddr: int) -> int:
        return vaddr & (self.page_size - 1)

    def map_range(self, vaddr: int, nbytes: int,
                  is_global: bool = False) -> None:
        """Allocate application pages covering [vaddr, vaddr+nbytes)."""
        first = self.vpn_of(vaddr)
        last = self.vpn_of(vaddr + max(1, nbytes) - 1)
        for vpn in range(first, last + 1):
            if vpn not in self._entries:
                self._entries[vpn] = PageTableEntry(
                    vpn=vpn, pfn=self._alloc_frame(), is_global=is_global
                )
                self.app_pages_allocated += 1
            elif is_global:
                self._entries[vpn].is_global = True

    def _alloc_frame(self) -> int:
        pfn = self._next_frame
        self._next_frame += 1
        return pfn

    # ------------------------------------------------------------------

    def translate(self, vaddr: int) -> Tuple[int, PageTableEntry]:
        """Walk the table; returns (physical address, entry)."""
        entry = self._entries.get(self.vpn_of(vaddr))
        if entry is None:
            raise KernelError(f"page fault: unmapped address {vaddr:#x}")
        return (entry.pfn << self._shift) | self.offset_of(vaddr), entry

    def shadow_translate(self, vaddr: int) -> Tuple[int, PageTableEntry]:
        """Translate to the shadow page, allocating it on demand.

        Only global-space pages have shadows (§IV-B: a one-bit field in
        the page-table entry gates shadow allocation).
        """
        entry = self._entries.get(self.vpn_of(vaddr))
        if entry is None:
            raise KernelError(f"page fault: unmapped address {vaddr:#x}")
        if not entry.is_global:
            raise KernelError(
                f"address {vaddr:#x} is not in the global space; "
                "no shadow page exists"
            )
        if entry.shadow_pfn is None:
            entry.shadow_pfn = self._alloc_frame()
            self.shadow_pages_allocated += 1
        return ((entry.shadow_pfn << self._shift)
                | self.offset_of(vaddr), entry)

    # ------------------------------------------------------------------

    def entry(self, vpn: int) -> Optional[PageTableEntry]:
        return self._entries.get(vpn)

    @property
    def mapped_pages(self) -> int:
        return len(self._entries)

    def global_pages(self) -> int:
        return sum(1 for e in self._entries.values() if e.is_global)
