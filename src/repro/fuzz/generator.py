"""Seeded random program generation with optional race injection.

Race-free programs are built by construction: the global array is
partitioned into per-statement regions, write statements give every
thread a private word (or byte), shared read-after-write phases are
barrier-separated, critical sections fence before unlocking, and atomics
all target the same serialized slot. Injected programs then break exactly
one rule, so the expected outcome — race categories for the oracle and
detector, or an expected detector-side artifact label — is known.

Everything is driven by a ``random.Random(seed)``; the same seed always
yields the same program (the determinism the campaign digest asserts).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.fuzz.program import FuzzProgram

#: injection kinds -> expected race-category names (sets, because the
#: same bug may surface as RAW or WAR depending on the interleaving)
INJECTION_CATEGORIES: Dict[str, Tuple[str, ...]] = {
    "shared_missing_barrier": ("SHARED_BARRIER",),
    "tree_missing_barrier": ("SHARED_BARRIER",),
    "global_missing_barrier": ("GLOBAL_BARRIER",),
    "xblock": ("GLOBAL_FENCE", "GLOBAL_BARRIER"),
    "missing_fence": ("GLOBAL_FENCE", "GLOBAL_BARRIER"),
    # lockset bugs can also surface as intra-warp WAW (GLOBAL_BARRIER):
    # two lanes of one warp holding different/no locks enter the critical
    # section concurrently and store in the same lockstep instruction
    "naked_write": ("GLOBAL_LOCKSET", "GLOBAL_BARRIER"),
    "wrong_lock": ("GLOBAL_LOCKSET", "GLOBAL_BARRIER"),
    "atomic_mix": ("GLOBAL_BARRIER",),
}

#: artifact-only injections: race-free for the oracle, but provoke a
#: known expected-by-design detector false positive
ARTIFACT_INJECTIONS = ("byte_granularity_fp",)

_WARP = 32


@dataclass(frozen=True)
class GeneratorParams:
    """Knobs of the random generator (part of the campaign cache key)."""

    max_safe_stmts: int = 5
    inject_every: int = 2     # 1 = always inject, 2 = every other program
    max_blocks: int = 4
    allow_locks: bool = True

    def record(self) -> Dict[str, Any]:
        return {
            "max_safe_stmts": self.max_safe_stmts,
            "inject_every": self.inject_every,
            "max_blocks": self.max_blocks,
            "allow_locks": self.allow_locks,
        }

    @classmethod
    def from_record(cls, rec: Dict[str, Any]) -> "GeneratorParams":
        return cls(**{k: rec[k] for k in
                      ("max_safe_stmts", "inject_every", "max_blocks",
                       "allow_locks")})


class _Regions:
    """Hand out disjoint global-array regions; track the array size."""

    def __init__(self) -> None:
        self.next_base = 0

    def take(self, words: int) -> int:
        base = self.next_base
        self.next_base += words
        return base


def _safe_stmt(rng: random.Random, prog: Dict[str, Any],
               regions: _Regions) -> List[Dict[str, Any]]:
    """One race-free vocabulary item (possibly a multi-stmt phase)."""
    total = prog["blocks"] * prog["threads"]
    threads = prog["threads"]
    choice = rng.choice(
        ["gwrite", "gread", "gatomic", "swrite", "sshift", "tree",
         "byte", "div", "locked"])
    if choice == "gwrite":
        base = regions.take(total)
        return [{"op": "g", "kind": "write", "base": base, "stride": 1,
                 "shift": 0, "span": total, "scope": "grid"}]
    if choice == "gread":
        # read-only region: arbitrary stride/shift patterns cannot race
        base = regions.take(total)
        return [{"op": "g", "kind": "read", "base": base,
                 "stride": rng.choice([1, 2, 3]),
                 "shift": rng.randrange(total), "span": total,
                 "scope": "grid"}]
    if choice == "gatomic":
        # all threads hammer one serialized slot
        base = regions.take(1)
        return [{"op": "g", "kind": "atomic", "base": base, "stride": 0,
                 "shift": 0, "span": 1, "scope": "grid"}]
    if choice == "swrite" and prog["shared_words"] >= threads:
        return [{"op": "s", "kind": "write", "base": 0, "stride": 1,
                 "shift": 0, "span": threads}]
    if choice == "sshift" and prog["shared_words"] >= threads:
        # write own slot, barrier, read a rotated slot: safe *because*
        # of the barriers (their omission is the shared injection); the
        # trailing one orders the rotated read against later writers
        shift = rng.choice([1, _WARP, threads // 2 or 1])
        return [
            {"op": "s", "kind": "write", "base": 0, "stride": 1,
             "shift": 0, "span": threads},
            {"op": "barrier"},
            {"op": "s", "kind": "read", "base": 0, "stride": 1,
             "shift": shift, "span": threads},
            {"op": "barrier"},
        ]
    if choice == "tree" and prog["shared_words"] >= threads:
        levels = 1 + max(1, threads).bit_length()  # seed + each halving
        return [{"op": "tree", "barriers": [True] * levels}]
    if choice == "byte" and prog["byte_bytes"] >= total:
        # warp-aligned base: one byte per thread, entries never split
        return [{"op": "byte", "kind": "write", "base": 0, "shift": 0,
                 "span": total}]
    if choice == "div":
        base = regions.take(total)
        return [{"op": "div", "base": base}]
    if choice == "locked" and prog["allow_locks"] and prog["num_locks"]:
        slot = regions.take(1)
        return [{"op": "locked", "slot": slot,
                 "lock": rng.randrange(prog["num_locks"]),
                 "fence": True, "mod": 16}]
    # fallbacks when shared/byte arrays are absent
    base = regions.take(total)
    return [{"op": "g", "kind": "write", "base": base, "stride": 1,
             "shift": 0, "span": total, "scope": "grid"}]


def _injection(rng: random.Random, prog: Dict[str, Any],
               regions: _Regions) -> Tuple[str, List[Dict[str, Any]]]:
    """One deliberately racy (or artifact-provoking) phase."""
    total = prog["blocks"] * prog["threads"]
    threads = prog["threads"]
    candidates = ["missing_fence", "atomic_mix"]
    if threads > _WARP:
        # needs two warps inside one block to conflict
        candidates.append("global_missing_barrier")
        if prog["shared_words"] >= threads:
            candidates += ["shared_missing_barrier", "tree_missing_barrier"]
    if prog["blocks"] > 1:
        candidates.append("xblock")
    if prog["allow_locks"] and prog["num_locks"] >= 2:
        candidates += ["naked_write", "wrong_lock"]
    if prog["byte_bytes"] >= 2 * total + 4:
        candidates.append("byte_granularity_fp")
    kind = rng.choice(candidates)

    if kind == "shared_missing_barrier":
        return kind, [
            {"op": "s", "kind": "write", "base": 0, "stride": 1,
             "shift": 0, "span": threads},
            # no barrier: the rotated read crosses a warp boundary
            {"op": "s", "kind": "read", "base": 0, "stride": 1,
             "shift": _WARP, "span": threads},
        ]
    if kind == "tree_missing_barrier":
        # only the seed->level-1 boundary crosses warps (deeper levels
        # run entirely inside warp 0), so that is the barrier to drop
        levels = 1 + max(1, threads).bit_length()
        barriers = [True] * levels
        barriers[0] = False
        return kind, [{"op": "tree", "barriers": barriers}]
    if kind == "global_missing_barrier":
        base = regions.take(total)
        write = {"op": "g", "kind": "write", "base": base, "stride": 1,
                 "shift": 0, "span": threads, "scope": "block"}
        # cross-warp rotated read in the same block, no barrier between
        shift = _WARP if threads > _WARP else 1
        read = {"op": "g", "kind": "read", "base": base, "stride": 1,
                "shift": shift, "span": threads, "scope": "block"}
        return kind, [write, read]
    if kind == "xblock":
        base = regions.take(total)
        write = {"op": "g", "kind": "write", "base": base, "stride": 1,
                 "shift": 0, "span": total, "scope": "grid"}
        # rotated read lands in the *next block's* slots, unfenced
        read = {"op": "g", "kind": "read", "base": base, "stride": 1,
                "shift": threads, "span": total, "scope": "grid"}
        return kind, [write, read]
    if kind == "missing_fence":
        slot = regions.take(1)
        return kind, [{"op": "locked", "slot": slot, "lock": 0,
                       "fence": False, "mod": 16}]
    if kind == "naked_write":
        # one participant per warp (mod 32): a same-warp *locked*
        # participant would re-own the shadow entry right after the
        # naked access (program order) and shadow it from the
        # cross-warp conflict the oracle still sees
        slot = regions.take(1)
        naked = rng.randrange(prog["blocks"]) * threads  # a participant
        return kind, [{"op": "locked", "slot": slot, "lock": 0,
                       "fence": True, "mod": 32, "skip_tid": naked}]
    if kind == "wrong_lock":
        slot = regions.take(1)
        wrong = rng.randrange(prog["blocks"]) * threads
        return kind, [{"op": "locked", "slot": slot, "lock": 0,
                       "fence": True, "mod": 16, "wrong_lock_tid": wrong,
                       "wrong_lock": 1}]
    if kind == "atomic_mix":
        # every warp except the plain writer's atomics one slot; then a
        # single thread stores into it plainly. Excluding the writer's
        # own warp matters: divergence executes the not-taken path
        # first, so a sibling-lane atomic would re-own the entry right
        # before the write and the single-owner entry would absorb the
        # conflict instead of reporting it.
        slot = regions.take(1)
        plain_tid = rng.randrange(total)
        return kind, [
            {"op": "g", "kind": "atomic", "base": slot, "stride": 0,
             "shift": 0, "span": 1, "scope": "grid",
             "skip_warp_of": plain_tid},
            {"op": "g", "kind": "write", "base": slot, "stride": 0,
             "shift": 0, "span": 1, "scope": "grid",
             "only_tid": plain_tid},
        ]
    # byte_granularity_fp: artifact-only — byte bins whose base is not
    # entry-aligned, so one 4-byte shadow entry spans two warps: a
    # detector false WAW the byte-exact oracle rejects. The region
    # starts past the safe byte stream's [0, total) to avoid real WAWs.
    return "byte_granularity_fp", [
        {"op": "byte", "kind": "write", "base": total + 2, "shift": 0,
         "span": total}]


def generate_program(seed: int,
                     params: Optional[GeneratorParams] = None
                     ) -> FuzzProgram:
    """Deterministically generate one program from a seed."""
    params = params or GeneratorParams()
    rng = random.Random(seed)
    blocks = rng.choice([b for b in (1, 2, 4) if b <= params.max_blocks])
    threads = rng.choice([_WARP, 2 * _WARP])
    if blocks * threads <= _WARP:
        threads = 2 * _WARP  # single-warp grids cannot race at all
    total = blocks * threads
    shared_words = threads if rng.random() < 0.8 else 0
    byte_bytes = 2 * total + 8 if rng.random() < 0.5 else 0
    num_locks = 2 if params.allow_locks else 0

    prog_meta = {"blocks": blocks, "threads": threads,
                 "shared_words": shared_words, "byte_bytes": byte_bytes,
                 "num_locks": num_locks, "allow_locks": params.allow_locks}
    regions = _Regions()
    stmts: List[Dict[str, Any]] = []
    for _ in range(rng.randrange(2, params.max_safe_stmts + 1)):
        stmts.extend(_safe_stmt(rng, prog_meta, regions))
        if rng.random() < 0.3:
            sep: Dict[str, Any] = {"op": rng.choice(["barrier", "fence"])}
            # every third fence is system-scope (__threadfence_system):
            # derived from seed + position, not an rng draw, so the
            # statement stream of any legacy seed is unchanged
            if sep["op"] == "fence" and (seed + len(stmts)) % 3 == 0:
                sep["scope"] = 1
            stmts.append(sep)

    expected: Tuple[str, ...] = ()
    expected_fp: Tuple[str, ...] = ()
    note = "safe"
    if params.inject_every and seed % params.inject_every == 0:
        kind, injected = _injection(rng, prog_meta, regions)
        stmts.extend(injected)
        note = kind
        if kind in INJECTION_CATEGORIES:
            expected = INJECTION_CATEGORIES[kind]
        else:
            expected_fp = ("granularity",)

    return FuzzProgram(
        blocks=blocks, threads=threads,
        global_words=max(regions.next_base, total) + 4,
        shared_words=shared_words, byte_bytes=byte_bytes,
        num_locks=num_locks, stmts=tuple(stmts),
        expected=expected, expected_fp_labels=expected_fp, note=note)
