"""Delta-debugging minimizer for real-bug reproducers.

Classic ddmin over the program's statement list: try dropping chunks of
statements (halving chunk size down to single statements) while the
reduced program still reproduces at least one real-bug-triaged mismatch
in some detection mode. Each candidate re-runs the full differential
iteration, so minimization is exact with respect to the harness verdict
— a minimized reproducer fails CI for the same reason the original did.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.fuzz.harness import FuzzMode, iteration_has_real_bug, run_iteration
from repro.fuzz.program import FuzzProgram


def _still_buggy(program: FuzzProgram,
                 modes: Optional[Sequence[FuzzMode]]) -> bool:
    if not program.stmts:
        return False
    try:
        return iteration_has_real_bug(run_iteration(program, modes))
    except Exception:
        # a reduction that crashes the harness is not a valid reproducer
        return False


def minimize_program(program: FuzzProgram,
                     modes: Optional[Sequence[FuzzMode]] = None,
                     predicate: Optional[Callable[[FuzzProgram], bool]] = None,
                     max_rounds: int = 16) -> FuzzProgram:
    """Shrink ``program`` while ``predicate`` (default: still shows a
    real-bug mismatch) holds. Returns the smallest variant found."""
    check = predicate or (lambda p: _still_buggy(p, modes))

    def test(p: FuzzProgram) -> bool:
        try:
            return bool(check(p))
        except Exception:
            # a reduction that crashes the predicate is not a reproducer
            return False

    if not test(program):
        return program

    stmts = list(program.stmts)
    chunk = max(1, len(stmts) // 2)
    rounds = 0
    while chunk >= 1 and rounds < max_rounds:
        rounds += 1
        shrunk = False
        i = 0
        while i < len(stmts):
            candidate = stmts[:i] + stmts[i + chunk:]
            if candidate:
                reduced = program.with_stmts(candidate)
                if test(reduced):
                    stmts = candidate
                    shrunk = True
                    continue  # retry same position at this chunk size
            i += chunk
        if not shrunk:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return program.with_stmts(stmts)


def minimization_report(original: FuzzProgram,
                        minimized: FuzzProgram) -> Dict[str, int]:
    return {
        "original_stmts": len(original.stmts),
        "minimized_stmts": len(minimized.stmts),
    }
