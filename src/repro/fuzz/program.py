"""Serializable fuzz-kernel programs and their interpreter.

A :class:`FuzzProgram` is a small JSON-safe spec — launch shape, array
sizes, and a list of *statements* drawn from the paper's access-pattern
vocabulary — interpreted by one generic generator kernel. Keeping the
program declarative makes iterations content-addressable, lets the
minimizer drop statements structurally, and keeps corpus entries tiny.

Statement vocabulary (each statement is a dict with an ``op``):

``g``      global-memory stream: every thread reads/writes/atomics
           ``g[base + (idx*stride + shift) % span]`` where ``idx`` is the
           grid-wide thread id (``scope="grid"``) or the in-block thread
           id with a per-block region offset (``scope="block"``).
``s``      the same on the block's shared array.
``byte``   one-byte accesses into a byte-granularity bin array.
``tree``   shared-memory reduction tree with a per-level barrier mask.
``locked`` critical-section update of one global word: lock, load,
           store, optional __threadfence, unlock. ``mod`` thins the
           participants; ``skip_tid`` / ``wrong_lock_tid`` model the
           naked-write and wrong-lock bugs.
``div``    divergent half-warp writes (lane < 16) to private slots.
``barrier`` / ``fence``  uniform __syncthreads / __threadfence.

Safety is a *whole-program* property the generator establishes by
region-partitioning the arrays; the interpreter executes whatever it is
given.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.gpu.kernel import Kernel

#: bump when program semantics change (part of every content hash)
PROGRAM_SCHEMA = 1


@dataclass(frozen=True)
class FuzzProgram:
    """One generated kernel: launch shape, arrays, statements."""

    blocks: int
    threads: int              # per block; multiple of the warp size
    global_words: int
    shared_words: int
    byte_bytes: int           # byte-bin array length (0 = absent)
    num_locks: int
    stmts: tuple              # tuple of statement dicts
    #: expected race categories (names) when a race was injected; empty
    #: for programs that are race-free by construction
    expected: tuple = ()
    #: expected detector-only artifact labels (e.g. misaligned byte bins
    #: produce "granularity" false positives by design)
    expected_fp_labels: tuple = ()
    note: str = ""

    @property
    def total_threads(self) -> int:
        return self.blocks * self.threads

    def record(self) -> Dict[str, Any]:
        return {
            "schema": PROGRAM_SCHEMA,
            "blocks": self.blocks,
            "threads": self.threads,
            "global_words": self.global_words,
            "shared_words": self.shared_words,
            "byte_bytes": self.byte_bytes,
            "num_locks": self.num_locks,
            "stmts": [dict(s) for s in self.stmts],
            "expected": list(self.expected),
            "expected_fp_labels": list(self.expected_fp_labels),
            "note": self.note,
        }

    @classmethod
    def from_record(cls, rec: Dict[str, Any]) -> "FuzzProgram":
        return cls(
            blocks=int(rec["blocks"]),
            threads=int(rec["threads"]),
            global_words=int(rec["global_words"]),
            shared_words=int(rec["shared_words"]),
            byte_bytes=int(rec["byte_bytes"]),
            num_locks=int(rec["num_locks"]),
            stmts=tuple(dict(s) for s in rec["stmts"]),
            expected=tuple(rec.get("expected", ())),
            expected_fp_labels=tuple(rec.get("expected_fp_labels", ())),
            note=rec.get("note", ""),
        )

    def digest(self) -> str:
        payload = json.dumps(self.record(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def with_stmts(self, stmts) -> "FuzzProgram":
        """Same program with a different statement list (minimizer)."""
        return FuzzProgram(
            blocks=self.blocks, threads=self.threads,
            global_words=self.global_words, shared_words=self.shared_words,
            byte_bytes=self.byte_bytes, num_locks=self.num_locks,
            stmts=tuple(stmts), expected=self.expected,
            expected_fp_labels=self.expected_fp_labels, note=self.note)


# ---------------------------------------------------------------------------
# interpreter
# ---------------------------------------------------------------------------

def _g_index(st: Dict[str, Any], ctx, threads: int) -> int:
    span = max(1, st.get("span", 1))
    if st.get("scope", "grid") == "block":
        base = st["base"] + ctx.block_linear * threads
        idx = ctx.thread_linear
    else:
        base = st["base"]
        idx = ctx.global_tid
    return base + (idx * st.get("stride", 1) + st.get("shift", 0)) % span


def _fuzz_kernel(ctx, g, bbin, locks, program: FuzzProgram):
    sh = ctx.shared.get("sh")
    tid = ctx.thread_linear
    for st in program.stmts:
        op = st["op"]
        if op == "barrier":
            yield ctx.syncthreads()
        elif op == "fence":
            # scope 1 = system (__threadfence_system): semantically inert
            # for a single device — the intra-device detector and oracle
            # treat both scopes identically — but it exercises the scope
            # plumbing the multi-GPU model keys on (docs/MULTIGPU.md)
            if st.get("scope") == 1:
                yield ctx.threadfence_system()
            else:
                yield ctx.threadfence()
        elif op == "g":
            if "only_tid" in st and st["only_tid"] != ctx.global_tid:
                continue
            if "skip_warp_of" in st and \
                    st["skip_warp_of"] // 32 == ctx.global_tid // 32:
                continue
            i = _g_index(st, ctx, program.threads)
            kind = st.get("kind", "write")
            if kind == "write":
                yield ctx.store(g, i, float(ctx.global_tid + 1))
            elif kind == "read":
                yield ctx.load(g, i)
            else:
                yield ctx.atomic_add(g, i, 1.0)
        elif op == "s":
            if sh is None:
                continue
            span = max(1, st.get("span", 1))
            i = st["base"] + (tid * st.get("stride", 1)
                             + st.get("shift", 0)) % span
            kind = st.get("kind", "write")
            if kind == "write":
                yield ctx.store(sh, i, float(tid))
            elif kind == "read":
                yield ctx.load(sh, i)
            else:
                yield ctx.atomic_add(sh, i, 1.0)
        elif op == "byte":
            span = max(1, st.get("span", 1))
            i = st["base"] + (ctx.global_tid + st.get("shift", 0)) % span
            if st.get("kind", "write") == "write":
                yield ctx.store(bbin, i, 1.0)
            else:
                yield ctx.load(bbin, i)
        elif op == "tree":
            if sh is None:
                continue
            barriers = st.get("barriers", ())
            yield ctx.store(sh, tid, float(tid))
            if not barriers or barriers[0]:
                yield ctx.syncthreads()
            s = program.threads // 2
            level = 1
            while s > 0:
                if tid < s:
                    a = yield ctx.load(sh, tid)
                    b = yield ctx.load(sh, tid + s)
                    yield ctx.store(sh, tid, a + b)
                if level >= len(barriers) or barriers[level]:
                    yield ctx.syncthreads()
                s //= 2
                level += 1
        elif op == "locked":
            if tid % max(1, st.get("mod", 16)) != 0:
                continue
            slot = st["slot"]
            lock_idx = st.get("lock", 0)
            naked = st.get("skip_tid") == ctx.global_tid
            if st.get("wrong_lock_tid") == ctx.global_tid:
                lock_idx = st.get("wrong_lock", lock_idx)
            if not naked:
                yield ctx.lock(locks, lock_idx)
            v = yield ctx.load(g, slot)
            yield ctx.compute(1)
            yield ctx.store(g, slot, v + 1.0)
            if st.get("fence", True) and not naked:
                yield ctx.threadfence()
            if not naked:
                yield ctx.unlock(locks, lock_idx)
        elif op == "div":
            if ctx.lane < 16:
                yield ctx.store(g, st["base"] + ctx.global_tid,
                                float(ctx.lane))
            else:
                yield ctx.compute(1)
        else:
            raise ValueError(f"unknown fuzz op {op!r}")


def make_kernel(program: FuzzProgram) -> Kernel:
    """Build the generic interpreter kernel for one program."""
    def kernel_fn(ctx, g, bbin, locks):
        return _fuzz_kernel(ctx, g, bbin, locks, program)
    shared = {"sh": (program.shared_words, 4)} if program.shared_words else {}
    return Kernel(kernel_fn, name=f"fuzz_{program.digest()}", shared=shared)


@dataclass
class ProgramRun:
    """Arrays + trace of one recorded program execution."""

    events: List[Any] = field(default_factory=list)
    races: Optional[Any] = None  # RaceLog when a detector was attached


def rebuild_fuzz_launches(payload: dict, sim) -> list:
    """Shard-side launch rebuild for fuzz programs.

    Repeats :func:`run_program`'s allocation sequence on the worker-local
    simulator (same order, same sizes, so the bump-allocator addresses
    align) and returns the single launch as a spec the shard converts.
    """
    from repro.bench.common import LaunchSpec

    program = FuzzProgram.from_record(payload)
    g = sim.malloc("fuzz_g", max(1, program.global_words))
    bbin = sim.malloc("fuzz_bytes", max(1, program.byte_bytes), itemsize=1)
    locks = sim.malloc("fuzz_locks", max(1, program.num_locks))
    return [LaunchSpec(make_kernel(program), program.blocks,
                       program.threads, (g, bbin, locks))]


def run_program(program: FuzzProgram, detector_config=None,
                observers=(), gpu_config=None) -> ProgramRun:
    """Execute a program on a fresh simulator (timing off).

    ``detector_config`` attaches a live detector (used for the software
    baseline, which cannot be replayed); ``observers`` join at observer
    priority (e.g. a :class:`TraceRecorder`). ``gpu_config`` overrides the
    default scaled config — the sharded-determinism property tests use it
    to sweep ``sm_workers``. A sharded run that trips the stall watchdog
    is retried with a fresh simulator, like the benchmark runner.
    """
    from repro.common.errors import ShardTimeoutError
    from repro.harness.runner import shard_retries

    attempt = 0
    retries = shard_retries()
    while True:
        try:
            return _run_program_attempt(program, detector_config,
                                        observers, gpu_config)
        except ShardTimeoutError:
            attempt += 1
            if attempt > retries:
                raise


def _run_program_attempt(program: FuzzProgram, detector_config,
                         observers, gpu_config) -> ProgramRun:
    from repro.common.config import DetectionMode, scaled_gpu_config
    from repro.gpu.simulator import GPUSimulator
    from repro.harness.runner import make_detector

    sim = GPUSimulator(gpu_config or scaled_gpu_config(),
                       timing_enabled=False)
    sim.launch_source = ("repro.fuzz.program", "rebuild_fuzz_launches",
                         program.record())
    detector = None
    if detector_config is not None \
            and detector_config.mode != DetectionMode.OFF:
        detector = make_detector(detector_config, sim)
        sim.attach_detector(detector)
    for obs in observers:
        sim.add_observer(obs)

    g = sim.malloc("fuzz_g", max(1, program.global_words))
    bbin = sim.malloc("fuzz_bytes", max(1, program.byte_bytes), itemsize=1)
    locks = sim.malloc("fuzz_locks", max(1, program.num_locks))
    try:
        sim.launch(make_kernel(program), grid=program.blocks,
                   block=program.threads, args=(g, bbin, locks))
    finally:
        sim.close()

    run = ProgramRun()
    run.races = detector.log if detector is not None else None
    return run


def record_program(program: FuzzProgram) -> list:
    """Record one program's trace (no detector attached)."""
    from repro.harness.trace import TraceRecorder

    recorder = TraceRecorder()
    run_program(program, observers=(recorder,))
    return recorder.events
