"""Campaign-engine adapter: fuzz iterations as cached, parallel jobs.

A :class:`FuzzJob` is the content-addressed spec of one iteration —
base seed, iteration index, generator parameters, and mode names. Its
record carries ``kind: "fuzz"`` so the campaign pool dispatches it to
:func:`execute_fuzz_record` (see ``repro.campaign.jobs.JOB_EXECUTORS``),
and the campaign :class:`~repro.campaign.store.ResultStore` caches the
iteration verdicts exactly like benchmark cells: re-running a campaign
replays cached iterations instantly and a killed run resumes where it
stopped.

Per-iteration seeds are derived arithmetically (``base + index``), so a
campaign is fully determined by ``(seed, iterations, params, modes)``
and two identical invocations produce identical corpus digests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.jobs import JOB_SCHEMA, JobSpecError
from repro.fuzz.corpus import CorpusStore, corpus_digest
from repro.fuzz.generator import GeneratorParams, generate_program
from repro.fuzz.harness import ITERATION_SCHEMA, mode_by_name, run_iteration

#: results with a different fuzz schema are never served from cache
FUZZ_SCHEMA = 3


@dataclass(frozen=True)
class FuzzJob:
    """One content-addressed fuzz iteration."""

    seed: int
    index: int
    params: GeneratorParams = GeneratorParams()
    modes: Tuple[str, ...] = ()   # empty = all default modes
    #: skip the simulator when the static analyzer proves the whole
    #: program race-free (and the generator expected no race/artifact)
    static_prefilter: bool = False

    @property
    def iteration_seed(self) -> int:
        return self.seed + self.index

    def record(self) -> Dict[str, Any]:
        return {
            "schema": JOB_SCHEMA,
            "kind": "fuzz",
            "fuzz_schema": FUZZ_SCHEMA,
            "seed": self.seed,
            "index": self.index,
            "params": self.params.record(),
            "modes": list(self.modes),
            "static_prefilter": self.static_prefilter,
        }

    def key(self) -> str:
        payload = json.dumps(self.record(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "FuzzJob":
        if record.get("schema") != JOB_SCHEMA or \
                record.get("kind") != "fuzz":
            raise JobSpecError(f"not a fuzz job record: {record.get('kind')!r}")
        return cls(
            seed=int(record["seed"]),
            index=int(record["index"]),
            params=GeneratorParams.from_record(record["params"]),
            modes=tuple(record["modes"]),
            static_prefilter=bool(record.get("static_prefilter", False)),
        )

    def describe(self) -> str:
        return f"fuzz[{self.index}] seed={self.iteration_seed}"


def _prefilter_record(program, report) -> Dict[str, Any]:
    """Slim iteration record for a statically-proved-safe program.

    Shape-compatible with :func:`repro.fuzz.harness.run_iteration` so
    corpus digests, label extraction, and summaries treat prefiltered
    iterations uniformly; ``modes`` is empty because no simulation ran.
    """
    return {
        "schema": ITERATION_SCHEMA,
        "hash": program.digest(),
        "note": program.note,
        "program": program.record(),
        "oracle_races": 0,
        "oracle_categories": [],
        "expected_ok": True,
        "prefiltered": True,
        "static": {"verdicts": report["verdicts"], "contradictions": [],
                   "real_bugs": 0, "prefiltered": True},
        "modes": {},
        "real_bugs": 0,
    }


def execute_fuzz_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side entry point (see ``JOB_EXECUTORS['fuzz']``)."""
    job = FuzzJob.from_record(record)
    program = generate_program(job.iteration_seed, job.params)
    if job.static_prefilter and not program.expected \
            and not program.expected_fp_labels:
        from repro.analyze import analyze_program

        report = analyze_program(program)
        verdicts = report["verdicts"]
        if not verdicts["racy"] and not verdicts["unknown"]:
            result = _prefilter_record(program, report)
            result["index"] = job.index
            result["iteration_seed"] = job.iteration_seed
            return result
    modes = ([mode_by_name(n) for n in job.modes] if job.modes
             else None)
    result = run_iteration(program, modes)
    result["index"] = job.index
    result["iteration_seed"] = job.iteration_seed
    return result


# ---------------------------------------------------------------------------
# campaign driver
# ---------------------------------------------------------------------------

@dataclass
class FuzzCampaignResult:
    """Aggregate outcome of one fuzz campaign."""

    iterations: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[Dict[str, Any]] = field(default_factory=list)
    digest: str = ""
    cache_hits: int = 0
    real_bug_hashes: List[str] = field(default_factory=list)
    minimized: Dict[str, Any] = field(default_factory=dict)

    @property
    def real_bugs(self) -> int:
        return sum(r.get("real_bugs", 0) for r in self.iterations) \
            + len(self.failures)

    def summary(self) -> Dict[str, Any]:
        fp: Dict[str, int] = {}
        fn: Dict[str, int] = {}
        notes: Dict[str, int] = {}
        per_mode: Dict[str, Dict[str, Any]] = {}
        for rec in self.iterations:
            notes[rec.get("note", "")] = notes.get(rec.get("note", ""), 0) + 1
            for name, res in rec.get("modes", {}).items():
                slot = per_mode.setdefault(
                    name, {"fp": {}, "fn": {}, "detected": 0, "oracle": 0})
                slot["detected"] += res.get("detected", 0)
                slot["oracle"] += res.get("oracle", 0)
                for lab, n in res.get("fp", {}).items():
                    slot["fp"][lab] = slot["fp"].get(lab, 0) + n
                    fp[lab] = fp.get(lab, 0) + n
                for lab, n in res.get("fn", {}).items():
                    slot["fn"][lab] = slot["fn"].get(lab, 0) + n
                    fn[lab] = fn.get(lab, 0) + n
        return {
            "schema": FUZZ_SCHEMA,
            "iterations": len(self.iterations),
            "errors": len(self.failures),
            "digest": self.digest,
            "cache_hits": self.cache_hits,
            "prefiltered": sum(1 for r in self.iterations
                               if r.get("prefiltered")),
            "static_contradictions": sum(
                len(r.get("static", {}).get("contradictions", ()))
                for r in self.iterations),
            "real_bugs": self.real_bugs,
            "real_bug_hashes": sorted(self.real_bug_hashes),
            "minimized": self.minimized,
            "fp_by_label": fp,
            "fn_by_label": fn,
            "programs_by_note": notes,
            "modes": per_mode,
        }


def run_fuzz_campaign(seed: int, iterations: int,
                      workers: int = 1,
                      params: Optional[GeneratorParams] = None,
                      modes: Sequence[str] = (),
                      cache_dir: Optional[str] = None,
                      corpus_dir: Optional[str] = None,
                      minimize: bool = False,
                      static_prefilter: bool = False,
                      timeout: Optional[float] = None,
                      progress=None) -> FuzzCampaignResult:
    """Run a budgeted differential-fuzzing campaign.

    Iterations fan out over the campaign worker pool; the campaign
    result store makes re-runs and interrupted runs resume from cache;
    the corpus store persists interesting programs, real-bug reproducer
    traces (binary format), and the aggregate summary.
    ``static_prefilter`` skips the simulator for programs the static
    analyzer proves race-free (the flag participates in job keys, so
    prefiltered and full campaigns never share cache entries).
    """
    from repro.campaign.pool import WorkerPool
    from repro.campaign.store import ResultStore

    params = params or GeneratorParams()
    jobs = {job.key(): job for job in
            (FuzzJob(seed, i, params, tuple(modes), static_prefilter)
             for i in range(iterations))}
    store = ResultStore(cache_dir) if cache_dir else None

    result = FuzzCampaignResult()
    by_key: Dict[str, Dict[str, Any]] = {}
    to_run: Dict[str, FuzzJob] = {}
    for key, job in jobs.items():
        cached = store.get(job) if store is not None else None
        if cached is not None and cached.get("schema") == ITERATION_SCHEMA:
            by_key[key] = cached
            result.cache_hits += 1
        else:
            to_run[key] = job

    if to_run:
        pool = WorkerPool(workers=workers, timeout=timeout)

        def on_outcome(outcome) -> None:
            job = to_run[outcome.key]
            if outcome.ok:
                by_key[outcome.key] = outcome.record
                if store is not None:
                    store.put(job, outcome.record, outcome.elapsed)
            else:
                result.failures.append({
                    "index": job.index,
                    "iteration_seed": job.iteration_seed,
                    "status": outcome.status,
                    "error": outcome.error,
                })
            if progress:
                progress(job, outcome)

        pool.run(to_run, on_outcome=on_outcome)

    result.iterations = sorted(by_key.values(),
                               key=lambda r: r.get("index", 0))
    result.digest = corpus_digest(result.iterations)

    corpus = CorpusStore(corpus_dir) if corpus_dir else None
    for rec in result.iterations:
        has_mismatch = any(
            res.get("fp") or res.get("fn") or not res.get("parity_ok", True)
            for res in rec.get("modes", {}).values())
        buggy = bool(rec.get("real_bugs", 0))
        if buggy:
            result.real_bug_hashes.append(rec["hash"])
        if corpus is not None and (buggy or has_mismatch
                                   or rec.get("note") != "safe"):
            from repro.fuzz.program import FuzzProgram, record_program

            program = FuzzProgram.from_record(rec["program"])
            corpus.put_program(program)
            if buggy:
                corpus.put_trace(rec["hash"], record_program(program))
                if minimize:
                    from repro.fuzz.minimize import minimize_program

                    mode_objs = ([mode_by_name(n) for n in modes]
                                 if modes else None)
                    small = minimize_program(program, mode_objs)
                    result.minimized[rec["hash"]] = {
                        "stmts": len(small.stmts),
                        "digest": corpus.put_program(small),
                    }

    if corpus is not None:
        corpus.write_summary(result.summary())
    return result


__all__ = [
    "FUZZ_SCHEMA",
    "FuzzCampaignResult",
    "FuzzJob",
    "execute_fuzz_record",
    "run_fuzz_campaign",
]
