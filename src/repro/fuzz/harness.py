"""Differential harness: detector modes vs the exact oracle, with triage.

One iteration records a program's trace once, runs the exact
happens-before oracle over it, then replays the trace through each
hardware detection mode (and runs the software backend live, recording
its own trace concurrently). Race logs are diffed against the oracle at
``(space, entry)`` granularity. Every mismatch is triaged by *feature
ablation*: the trace is replayed with one approximation removed at a
time — byte granularity (removes entry sharing), 30-bit sync/fence IDs
(removes clock wraparound), perfect lock signatures (removes Bloom
aliasing) — and the mismatch is attributed to the first ablation that
makes it disappear (false positives) or appear (false negatives).
Whatever survives all three ablations is a **real reproduction bug**:
the detector and the oracle disagree for a reason the paper's design
does not predict.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Sequence, Set, Tuple

from repro.common.config import (DetectionMode, DetectorBackend,
                                 HAccRGConfig)
from repro.core.groundtruth import (detector_entries, oracle_entries,
                                    oracle_races)
from repro.fuzz.program import FuzzProgram, record_program, run_program
from repro.harness.trace import TraceRecorder, replay

ITERATION_SCHEMA = 2

#: triage labels — the paper's expected-by-design artifact classes
LABEL_GRANULARITY = "granularity"   # >1B entries alias distinct bytes
LABEL_CLOCK = "clock"               # 8-bit sync/fence ID wraparound
LABEL_BLOOM = "bloom"               # Bloom lock-signature aliasing
LABEL_REAL = "real-bug"             # unexplained: a reproduction bug

_WIDE_ID_BITS = 30


@dataclass(frozen=True)
class FuzzMode:
    """One detector configuration the harness diffs against the oracle."""

    name: str
    config: HAccRGConfig
    #: live=True runs the detector inside the simulation (software
    #: backends, which cannot be replayed) and records its own trace
    live: bool = False


def default_modes() -> Tuple[FuzzMode, ...]:
    word = HAccRGConfig(mode=DetectionMode.FULL, shared_granularity=4,
                        global_granularity=4)
    return (
        FuzzMode("hw-full-word", word),
        FuzzMode("hw-full-paper", HAccRGConfig(mode=DetectionMode.FULL)),
        FuzzMode("hw-shared", word.with_mode(DetectionMode.SHARED)),
        FuzzMode("hw-global", word.with_mode(DetectionMode.GLOBAL)),
        FuzzMode("software",
                 word.with_backend(DetectorBackend.SOFTWARE), live=True),
    )


def mode_by_name(name: str) -> FuzzMode:
    for m in default_modes():
        if m.name == name:
            return m
    raise KeyError(f"unknown fuzz mode {name!r}")


# ---------------------------------------------------------------------------
# ablation replays (lazy, cached per mode)
# ---------------------------------------------------------------------------

class _Ablations:
    """Replay the trace with one approximation removed at a time."""

    def __init__(self, events: Sequence, cfg: HAccRGConfig) -> None:
        self._events = events
        self._cfg = cfg
        self._cache: Dict[str, Set[Tuple[str, int]]] = {}

    def entries(self, which: str) -> Set[Tuple[str, int]]:
        if which not in self._cache:
            cfg = self._cfg
            if which == "gran1":
                log = replay(self._events,
                             replace(cfg, shared_granularity=1,
                                     global_granularity=1))
            elif which == "wide":
                log = replay(self._events,
                             replace(cfg, sync_id_bits=_WIDE_ID_BITS,
                                     fence_id_bits=_WIDE_ID_BITS))
            elif which == "perfect":
                log = replay(self._events, cfg, perfect_sigs=True)
            else:
                raise KeyError(which)
            self._cache[which] = detector_entries(
                log, cfg.mode.shared_enabled, cfg.mode.global_enabled)
        return self._cache[which]


def _granularity(cfg: HAccRGConfig, space: str) -> int:
    return (cfg.shared_granularity if space == "SHARED"
            else cfg.global_granularity)


def _byte_in_range(entries: Set[Tuple[str, int]], space: str,
                   lo: int, hi: int) -> bool:
    return any(s == space and lo <= b < hi for s, b in entries)


def triage_fp(key: Tuple[str, int], abl: _Ablations,
              cfg: HAccRGConfig) -> str:
    """Attribute a detector-only entry (detected, oracle says clean)."""
    space, entry = key
    g = _granularity(cfg, space)
    if not _byte_in_range(abl.entries("gran1"), space, entry * g,
                          (entry + 1) * g):
        return LABEL_GRANULARITY
    if key not in abl.entries("wide"):
        return LABEL_CLOCK
    if key not in abl.entries("perfect"):
        return LABEL_BLOOM
    return LABEL_REAL


def triage_fn(key: Tuple[str, int], abl: _Ablations,
              cfg: HAccRGConfig) -> str:
    """Attribute an oracle-only entry (real race the detector missed)."""
    space, entry = key
    if key in abl.entries("perfect"):
        return LABEL_BLOOM
    if key in abl.entries("wide"):
        return LABEL_CLOCK
    g = _granularity(cfg, space)
    if _byte_in_range(abl.entries("gran1"), space, entry * g,
                      (entry + 1) * g):
        return LABEL_GRANULARITY
    return LABEL_REAL


# ---------------------------------------------------------------------------
# per-mode evaluation
# ---------------------------------------------------------------------------

def _evaluate_mode(mode: FuzzMode, program: FuzzProgram,
                   events: Sequence, races) -> Dict[str, Any]:
    cfg = mode.config
    parity_ok = True
    if mode.live:
        # the software backend runs inside the simulation; record its
        # own trace concurrently so the oracle judges what it actually
        # saw, and check live-vs-replay parity on that same trace
        recorder = TraceRecorder()
        run = run_program(program, detector_config=cfg,
                          observers=(recorder,))
        events = recorder.events
        races = oracle_races(
            events, fence_check_enabled=cfg.fence_check_enabled,
            stale_l1_check_enabled=cfg.stale_l1_check_enabled)
        det = detector_entries(run.races, cfg.mode.shared_enabled,
                               cfg.mode.global_enabled)
        replayed = detector_entries(replay(events, cfg),
                                    cfg.mode.shared_enabled,
                                    cfg.mode.global_enabled)
        parity_ok = det == replayed
    else:
        det = detector_entries(replay(events, cfg),
                               cfg.mode.shared_enabled,
                               cfg.mode.global_enabled)
    orc = oracle_entries(races, cfg.shared_granularity,
                         cfg.global_granularity,
                         cfg.mode.shared_enabled, cfg.mode.global_enabled)

    abl = _Ablations(events, cfg)
    fp = {key: triage_fp(key, abl, cfg) for key in sorted(det - orc)}
    fn = {key: triage_fn(key, abl, cfg) for key in sorted(orc - det)}

    def _counts(labels: Dict[Tuple[str, int], str]) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for lab in labels.values():
            out[lab] = out.get(lab, 0) + 1
        return out

    real = [list(k) for k, lab in list(fp.items()) + list(fn.items())
            if lab == LABEL_REAL]
    return {
        "detected": len(det),
        "oracle": len(orc),
        "agree": len(det & orc),
        "fp": _counts(fp),
        "fn": _counts(fn),
        "real_keys": sorted(real),
        "parity_ok": parity_ok,
        "real_bugs": len(real) + (0 if parity_ok else 1),
    }


# ---------------------------------------------------------------------------
# one full iteration
# ---------------------------------------------------------------------------

def expected_ok(program: FuzzProgram, races) -> bool:
    """Does the oracle verdict match the generator's injection plan?"""
    cats = {r.category.name for r in races}
    if program.expected:
        return bool(cats) and cats <= set(program.expected)
    return not cats


def static_stage(program: FuzzProgram, races) -> Dict[str, Any]:
    """Third leg of the differential: the static analyzer vs the oracle.

    A static RACY region must carry a witness the oracle confirms; a
    static RACE-FREE region must be oracle-clean. Either contradiction
    is a real bug — in the analyzer, the oracle, or the simulator — so
    it fails the iteration just like an unexplained detector mismatch.
    An analyzer crash counts the same way (the differential exists to
    catch all three legs breaking).
    """
    from repro.analyze import analyze_program, cross_check

    try:
        report = analyze_program(program)
        res = cross_check(report, races)
    except Exception as exc:  # noqa: BLE001 - bug evidence, not control flow
        return {"error": f"{type(exc).__name__}: {exc}",
                "contradictions": [], "real_bugs": 1}
    return {
        "verdicts": report["verdicts"],
        "racy_confirmed": res["racy_confirmed"],
        "race_free_clean": res["race_free_clean"],
        "unknown": res["unknown"],
        "contradictions": res["contradictions"],
        "real_bugs": len(res["contradictions"]),
    }


def run_iteration(program: FuzzProgram,
                  modes: Optional[Sequence[FuzzMode]] = None
                  ) -> Dict[str, Any]:
    """Record, oracle, diff and triage one program across all modes."""
    modes = tuple(modes) if modes is not None else default_modes()
    events = record_program(program)
    races = oracle_races(events)

    ok = expected_ok(program, races)
    mode_results = {m.name: _evaluate_mode(m, program, events, races)
                    for m in modes}
    static = static_stage(program, races)
    real_bugs = sum(r["real_bugs"] for r in mode_results.values())
    real_bugs += static["real_bugs"]
    if not ok:
        real_bugs += 1

    return {
        "schema": ITERATION_SCHEMA,
        "hash": program.digest(),
        "note": program.note,
        "program": program.record(),
        "oracle_races": len(races),
        "oracle_categories": sorted({r.category.name for r in races}),
        "expected_ok": ok,
        "static": static,
        "modes": mode_results,
        "real_bugs": real_bugs,
    }


def iteration_has_real_bug(record: Dict[str, Any]) -> bool:
    return bool(record.get("real_bugs", 0))


__all__ = [
    "FuzzMode",
    "ITERATION_SCHEMA",
    "LABEL_BLOOM",
    "LABEL_CLOCK",
    "LABEL_GRANULARITY",
    "LABEL_REAL",
    "default_modes",
    "expected_ok",
    "iteration_has_real_bug",
    "mode_by_name",
    "run_iteration",
    "static_stage",
    "triage_fn",
    "triage_fp",
]
