"""On-disk fuzz corpus: programs, binary traces, campaign summary.

Layout under the corpus root::

    programs/<digest>.json   every interesting program (JSON record)
    traces/<digest>.bin      compact binary trace (real-bug reproducers)
    summary.json             last campaign's aggregate + corpus digest

"Interesting" means: injected programs, any program with a triaged
mismatch, and every real-bug reproducer (those also get their minimized
form and binary trace persisted). The campaign digest is a sha256 over
the sorted ``(hash, note, labels)`` rows — two runs with the same seed
must produce byte-identical digests, which the determinism test and the
CI smoke job assert.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Iterable, List, Optional

from repro.fuzz.program import FuzzProgram


def _labels_of(record: Dict[str, Any]) -> List[str]:
    """Flat, sorted triage labels across all modes of one iteration."""
    labels = []
    for name, res in sorted(record.get("modes", {}).items()):
        for lab, n in sorted(res.get("fp", {}).items()):
            labels.append(f"{name}:fp:{lab}:{n}")
        for lab, n in sorted(res.get("fn", {}).items()):
            labels.append(f"{name}:fn:{lab}:{n}")
        if not res.get("parity_ok", True):
            labels.append(f"{name}:parity")
    if not record.get("expected_ok", True):
        labels.append("oracle:expected-mismatch")
    static = record.get("static", {})
    if static.get("error"):
        labels.append("static:error")
    for c in static.get("contradictions", ()):
        labels.append(f"static:{c.get('type', 'contradiction')}")
    if record.get("prefiltered"):
        labels.append("static:prefiltered")
    return sorted(labels)


def corpus_digest(records: Iterable[Dict[str, Any]]) -> str:
    """Deterministic digest of a campaign's outcome."""
    rows = sorted((r["hash"], r.get("note", ""), *_labels_of(r))
                  for r in records)
    payload = json.dumps(rows, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CorpusStore:
    """Content-addressed store for fuzz programs and traces."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.programs_dir = os.path.join(root, "programs")
        self.traces_dir = os.path.join(root, "traces")

    def _ensure(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    # -- programs ------------------------------------------------------

    def put_program(self, program: FuzzProgram) -> str:
        self._ensure(self.programs_dir)
        digest = program.digest()
        path = os.path.join(self.programs_dir, f"{digest}.json")
        if not os.path.exists(path):
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(program.record(), fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
        return digest

    def get_program(self, digest: str) -> Optional[FuzzProgram]:
        path = os.path.join(self.programs_dir, f"{digest}.json")
        if not os.path.exists(path):
            return None
        with open(path, encoding="utf-8") as fh:
            return FuzzProgram.from_record(json.load(fh))

    def list_programs(self) -> List[str]:
        if not os.path.isdir(self.programs_dir):
            return []
        return sorted(p[:-5] for p in os.listdir(self.programs_dir)
                      if p.endswith(".json"))

    # -- traces --------------------------------------------------------

    def put_trace(self, digest: str, events) -> str:
        from repro.harness.trace import write_trace

        self._ensure(self.traces_dir)
        path = os.path.join(self.traces_dir, f"{digest}.bin")
        write_trace(path, events, binary=True)
        return path

    # -- summary -------------------------------------------------------

    def write_summary(self, summary: Dict[str, Any]) -> str:
        self._ensure(self.root)
        path = os.path.join(self.root, "summary.json")
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
        return path

    def read_summary(self) -> Optional[Dict[str, Any]]:
        path = os.path.join(self.root, "summary.json")
        if not os.path.exists(path):
            return None
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
