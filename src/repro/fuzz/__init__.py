"""repro.fuzz: differential kernel fuzzing against the exact oracle.

Pipeline: :mod:`generator` composes random CUDA-style kernels from the
paper's access-pattern vocabulary (optionally with deliberate races whose
expected categories are known); :mod:`harness` records each kernel's
trace, runs the exact :mod:`repro.core.groundtruth` oracle and every
requested detector mode over it, diffs the race logs, and triages each
mismatch into the expected-by-design artifact classes (Bloom aliasing,
granularity, ID-width wraparound) via feature-ablated replays — anything
left is a *real reproduction bug*; :mod:`minimize` shrinks such
reproducers with delta debugging; :mod:`corpus` persists programs,
binary traces, and the campaign summary; :mod:`worker` adapts iterations
to the campaign engine's worker pool and result cache.
"""

from repro.fuzz.corpus import CorpusStore, corpus_digest
from repro.fuzz.generator import GeneratorParams, generate_program
from repro.fuzz.harness import run_iteration
from repro.fuzz.minimize import minimize_program
from repro.fuzz.program import FuzzProgram, make_kernel, record_program
from repro.fuzz.worker import FuzzJob, execute_fuzz_record, run_fuzz_campaign

__all__ = [
    "CorpusStore",
    "FuzzJob",
    "FuzzProgram",
    "GeneratorParams",
    "corpus_digest",
    "execute_fuzz_record",
    "generate_program",
    "make_kernel",
    "minimize_program",
    "record_program",
    "run_fuzz_campaign",
    "run_iteration",
]
