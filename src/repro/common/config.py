"""Hardware and detector configuration.

:class:`GPUConfig` encodes the paper's Table I (GPGPU-Sim configured as an
NVIDIA Quadro FX5800 with Fermi-style L1/L2 caches). :class:`HAccRGConfig`
encodes the detector parameters chosen in §VI (16-byte shared tracking
granularity, 4-byte global granularity, 8-bit sync/fence IDs, 16-bit 2-bin
Bloom atomic IDs).
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict

from repro.common.bitops import is_power_of_two
from repro.common.errors import ConfigError


def default_fast_path() -> bool:
    """Default for ``fast_path`` config fields: on unless ``REPRO_FAST_PATH``
    is set to a false-y string (``0``/``false``/``no``/``off``).

    The environment hook exists so CI can run the same test suite twice —
    vectorized and scalar — without threading a flag through every
    entry point. The fast path is an execution strategy, not a semantic
    knob: results must be bit-identical either way.
    """
    value = os.environ.get("REPRO_FAST_PATH")
    if value is None:
        return True
    return value.strip().lower() not in ("0", "false", "no", "off")


def default_sm_workers() -> int:
    """Default for ``sm_workers``: 0 (inline) unless ``REPRO_SM_WORKERS``
    names a positive worker count.

    Like ``REPRO_FAST_PATH``, this is an execution-strategy hook so CI can
    run the whole suite sharded without threading a flag through every
    entry point. Sharded results are bit-identical to inline results, so
    the field is excluded from campaign config digests.
    """
    value = os.environ.get("REPRO_SM_WORKERS")
    if value is None:
        return 0
    try:
        return max(0, int(value.strip()))
    except ValueError:
        return 0


class DetectionMode(enum.IntEnum):
    """Which memory spaces race detection covers."""

    OFF = 0
    SHARED = 1         #: shared-memory RDUs only
    GLOBAL = 2         #: global-memory RDUs only
    FULL = 3           #: shared + global (the paper's combined 27% config)

    @property
    def shared_enabled(self) -> bool:
        return self in (DetectionMode.SHARED, DetectionMode.FULL)

    @property
    def global_enabled(self) -> bool:
        return self in (DetectionMode.GLOBAL, DetectionMode.FULL)


class DetectorBackend(enum.IntEnum):
    """How the detection algorithm is executed."""

    HARDWARE = 0   #: dedicated RDUs alongside the memory pipeline (HAccRG)
    SOFTWARE = 1   #: HAccRG algorithm instrumented into the kernel (§VI-B)
    GRACE = 2      #: GRace-addr style instrumentation baseline


@dataclass(frozen=True)
class GPUConfig:
    """GPU hardware parameters (paper Table I).

    All sizes are bytes, all latencies are core cycles. The defaults model
    the Quadro FX5800 configuration with Fermi-style caches used in the
    paper's evaluation.
    """

    # --- compute -----------------------------------------------------------
    num_sms: int = 30
    num_clusters: int = 10
    simd_width: int = 8
    warp_size: int = 32
    max_threads_per_sm: int = 1024
    registers_per_sm: int = 16384
    max_blocks_per_sm: int = 8

    # --- shared memory -----------------------------------------------------
    shared_mem_per_sm: int = 16 * 1024
    shared_mem_banks: int = 16
    shared_bank_width: int = 4          # bytes served per bank per access
    shared_latency: int = 1

    # --- caches ------------------------------------------------------------
    l1d_size: int = 48 * 1024
    l1d_assoc: int = 6
    l1d_line: int = 128
    l1_latency: int = 18
    l2_slice_size: int = 64 * 1024
    l2_assoc: int = 8
    l2_line: int = 128
    l2_latency: int = 60

    # --- memory system -----------------------------------------------------
    num_mem_slices: int = 8
    dram_latency: int = 220             # row-miss service latency, cycles
    dram_row_hit_latency: int = 120     # FR-FCFS row-locality discount
    dram_queue_size: int = 32
    dram_bytes_per_cycle: float = 8.0   # per-channel peak bandwidth
    dram_row_size: int = 2048

    # --- interconnect ------------------------------------------------------
    flit_size: int = 32
    icnt_latency: int = 12              # SM <-> memory slice hop latency
    icnt_extra_flit_id_bits: int = 32   # sync+fence+atomic ID payload bits

    # --- execution strategy (not hardware) ---------------------------------
    #: use the vectorized warp-batch decode/coalesce/conflict fast path;
    #: results are bit-identical to the scalar path (docs/ENGINE.md)
    fast_path: bool = field(default_factory=default_fast_path)
    #: shard the SM array across this many worker processes (0 = inline);
    #: results are bit-identical to the inline path (docs/ENGINE.md,
    #: "Epochs and sharding")
    sm_workers: int = field(default_factory=default_sm_workers)
    #: epoch window (cycles) bounding shard run-ahead between merge flushes
    epoch_cycles: int = 2048

    def __post_init__(self) -> None:
        for name in ("simd_width", "warp_size", "l1d_line", "l2_line",
                     "shared_mem_banks", "flit_size"):
            if not is_power_of_two(getattr(self, name)):
                raise ConfigError(f"{name} must be a power of two")
        if self.warp_size % self.simd_width:
            raise ConfigError("warp_size must be a multiple of simd_width")
        if self.num_sms % self.num_clusters:
            raise ConfigError("num_sms must be divisible by num_clusters")
        if self.max_threads_per_sm % self.warp_size:
            raise ConfigError("max_threads_per_sm must be a multiple of warp_size")
        if self.sm_workers < 0:
            raise ConfigError("sm_workers must be >= 0")
        if self.epoch_cycles < 1:
            raise ConfigError("epoch_cycles must be >= 1")

    @property
    def warps_per_sm(self) -> int:
        """Maximum resident warps per SM."""
        return self.max_threads_per_sm // self.warp_size

    @property
    def warp_issue_cycles(self) -> int:
        """Cycles to issue one warp instruction through the SIMD pipeline."""
        return self.warp_size // self.simd_width

    @property
    def l2_total_size(self) -> int:
        return self.l2_slice_size * self.num_mem_slices

    def slice_of(self, addr: int) -> int:
        """Map a global byte address to its memory slice (line-interleaved)."""
        return (addr // self.l2_line) % self.num_mem_slices

    def describe(self) -> Dict[str, str]:
        """Human-readable Table I rows (used by the table1 experiment)."""
        return {
            "# SMs / GPU Clusters": f"{self.num_sms} / {self.num_clusters}",
            "SIMD Pipeline Width / Warp Size": f"{self.simd_width} / {self.warp_size}",
            "# Threads / Registers per SM": f"{self.max_threads_per_sm} / {self.registers_per_sm}",
            "Warp Scheduling": "Round Robin",
            "Shared Memory per SM": f"{self.shared_mem_per_sm // 1024}KB",
            "L1 Data Cache per SM": (
                f"{self.l1d_size // 1024}KB/{self.l1d_assoc} way/{self.l1d_line}B line"
            ),
            "Unified L2 Cache": (
                f"{self.l2_slice_size // 1024}KB/Memory Slice: "
                f"{self.l2_assoc} way/{self.l2_line}B line"
            ),
            "# Memory Slices": str(self.num_mem_slices),
            "DRAM Request Queue Size": str(self.dram_queue_size),
            "Memory Controller": "Out-of-Order (FR-FCFS)",
            "Flit Size": f"{self.flit_size}B",
        }


def scaled_gpu_config(**overrides: Any) -> GPUConfig:
    """Table I configuration with caches scaled to the scaled benchmarks.

    The paper runs MB-scale inputs against a 48 KB L1 / 512 KB L2; our
    benchmark inputs are scaled ~50-100x down so a pure-Python simulation
    finishes in seconds, and keeping the paper's cache sizes would let the
    whole working set (data *and* shadow) live in L2, hiding the shadow
    traffic the global RDUs generate. This configuration shrinks the
    caches by the same factor as the inputs — 4 KB L1 per SM, 8 KB L2 per
    slice — preserving the capacity-pressure ratios that produce Fig. 7's
    overhead and Fig. 9's bandwidth shapes. Everything else is Table I.
    """
    params = dict(
        l1d_size=4 * 1024,
        l1d_assoc=4,
        l2_slice_size=8 * 1024,
    )
    params.update(overrides)
    return GPUConfig(**params)


@dataclass(frozen=True)
class HAccRGConfig:
    """Detector parameters (paper §III/IV, values chosen in §VI)."""

    mode: DetectionMode = DetectionMode.FULL
    backend: DetectorBackend = DetectorBackend.HARDWARE

    # tracking granularity: one shadow entry per this many bytes
    shared_granularity: int = 16
    global_granularity: int = 4

    # logical-clock widths (bits)
    sync_id_bits: int = 8
    fence_id_bits: int = 8

    # Bloom-filter atomic IDs
    atomic_sig_bits: int = 16
    atomic_sig_bins: int = 2

    # shadow-entry field widths (bits), for the hardware cost model
    tid_bits: int = 10
    bid_bits: int = 3
    sid_bits: int = 5

    # Fig. 8: store shared-memory shadow entries in global memory instead of
    # dedicated per-SM hardware
    shared_shadow_in_global: bool = False

    # dynamic warp re-grouping: report races regardless of warp membership
    warp_regrouping: bool = False

    # --- ablation switches (all True = the paper's design) ---------------
    #: suppress cross-warp RAW when the producer fenced since its write
    fence_check_enabled: bool = True
    #: report cross-SM RAW on an L1 hit (the stale-line coherence check)
    stale_l1_check_enabled: bool = True
    #: increment a block's sync ID at a barrier only if the block touched
    #: global memory since its previous barrier (§IV-B traffic optimization)
    sync_id_lazy_increment: bool = True
    #: only *modified* shadow entries generate write-back traffic; when
    #: False every checked entry is written back (naive RDU)
    shadow_writeback_dirty_only: bool = True

    # --- execution strategy (not part of the modeled hardware) -----------
    #: use the batched shadow-word / Bloom fast path in the detector and
    #: trace replay; results are bit-identical to the scalar path and the
    #: field is excluded from config digests (docs/ENGINE.md)
    fast_path: bool = field(default_factory=default_fast_path)

    def __post_init__(self) -> None:
        for name in ("shared_granularity", "global_granularity"):
            g = getattr(self, name)
            if not is_power_of_two(g) or g < 1:
                raise ConfigError(f"{name} must be a positive power of two")
        if self.atomic_sig_bins < 1:
            raise ConfigError("atomic_sig_bins must be >= 1")
        if self.atomic_sig_bits % self.atomic_sig_bins:
            raise ConfigError("atomic_sig_bits must divide evenly into bins")
        if not is_power_of_two(self.atomic_sig_bits // self.atomic_sig_bins):
            raise ConfigError("bits per bin must be a power of two")
        if self.sync_id_bits < 1 or self.fence_id_bits < 1:
            raise ConfigError("ID widths must be positive")

    @property
    def sync_id_mask(self) -> int:
        return (1 << self.sync_id_bits) - 1

    @property
    def fence_id_mask(self) -> int:
        return (1 << self.fence_id_bits) - 1

    @property
    def bits_per_bin(self) -> int:
        return self.atomic_sig_bits // self.atomic_sig_bins

    def with_mode(self, mode: DetectionMode) -> "HAccRGConfig":
        """Return a copy with a different detection mode."""
        return replace(self, mode=mode)

    def with_backend(self, backend: DetectorBackend) -> "HAccRGConfig":
        """Return a copy with a different execution backend."""
        return replace(self, backend=backend)

    def with_granularity(self, shared: int | None = None,
                         global_: int | None = None) -> "HAccRGConfig":
        """Return a copy with adjusted tracking granularities."""
        kwargs = {}
        if shared is not None:
            kwargs["shared_granularity"] = shared
        if global_ is not None:
            kwargs["global_granularity"] = global_
        return replace(self, **kwargs)

    def shared_entry_bits(self) -> int:
        """Bits per shared-memory shadow entry: M + S + tid (§VI-C2: 12)."""
        return 1 + 1 + self.tid_bits

    def global_entry_bits(self, with_fence: bool = True,
                          with_atomic: bool = True) -> int:
        """Bits per global shadow entry (§VI-C2: 28 basic / 36 / 52)."""
        bits = 1 + 1 + self.tid_bits + self.bid_bits + self.sid_bits + self.sync_id_bits
        if with_fence:
            bits += self.fence_id_bits
        if with_atomic:
            bits += self.atomic_sig_bits
        return bits
