"""Core typed vocabulary of the simulator and detector.

Everything that flows between the GPU model, the memory hierarchy, and the
race-detection units is expressed in terms of the types defined here:
memory spaces, access kinds, race classifications, and the per-lane /
per-warp access records that warps emit when they execute memory
instructions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple, Sequence, Tuple


class MemSpace(enum.IntEnum):
    """Which memory module an access targets (paper §II-A)."""

    SHARED = 0  #: per-SM on-chip scratchpad, banked
    GLOBAL = 1  #: off-chip device memory, cached in L1/L2
    LOCAL = 2   #: per-thread spill space in device memory


class AccessKind(enum.IntEnum):
    """The dynamic kind of one memory operation."""

    READ = 0
    WRITE = 1
    ATOMIC = 2  #: read-modify-write executed by the atomic unit


class RaceKind(enum.IntEnum):
    """Pairwise ordering classification of a detected race (Fig. 3)."""

    WAR = 0  #: write-after-read
    RAW = 1  #: read-after-write
    WAW = 2  #: write-after-write


class RaceCategory(enum.IntEnum):
    """The four reporting categories of §VI-A, plus the cross-GPU class.

    The ``XGPU_*`` members extend the paper's taxonomy for the multi-GPU
    model (``repro.multigpu``, docs/MULTIGPU.md): conflicts between
    devices on shared (peer-mapped or unified) pages, which no
    single-device shadow machinery can observe.
    """

    SHARED_BARRIER = 0   #: shared memory, incorrect barrier synchronization
    GLOBAL_BARRIER = 1   #: global memory, incorrect barrier synchronization
    GLOBAL_LOCKSET = 2   #: global memory, lack of / inconsistent critical sections
    GLOBAL_FENCE = 3     #: global memory, missing memory fence
    XGPU_SHARING = 4     #: cross-GPU concurrent conflicting writes on a shared page
    XGPU_FENCE = 5       #: cross-GPU read of a write never published system-scope


@dataclass(frozen=True)
class Dim3:
    """CUDA-style three-component dimension; y/z default to 1."""

    x: int
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if self.x < 1 or self.y < 1 or self.z < 1:
            raise ValueError(f"Dim3 components must be >= 1, got {self}")

    @property
    def count(self) -> int:
        """Total number of elements spanned by this dimension."""
        return self.x * self.y * self.z

    def linearize(self, x: int, y: int = 0, z: int = 0) -> int:
        """Flatten an (x, y, z) coordinate to a linear index."""
        return (z * self.y + y) * self.x + x

    @staticmethod
    def of(value: "Dim3 | int | Tuple[int, ...]") -> "Dim3":
        """Coerce an int or tuple into a :class:`Dim3`."""
        if isinstance(value, Dim3):
            return value
        if isinstance(value, int):
            return Dim3(value)
        return Dim3(*value)


class LaneAccess(NamedTuple):
    """One lane's contribution to a warp memory instruction.

    Addresses are byte addresses within the target space. ``size`` is the
    access width in bytes (1, 2, 4 or 8 in our benchmarks). ``sig`` is the
    issuing thread's atomic-ID Bloom signature and ``critical`` whether the
    thread was inside a critical section — the per-thread state the RDUs
    read (paper §III-B).

    A ``NamedTuple`` rather than a frozen dataclass: the simulator decodes
    one instance per lane per memory instruction, making construction cost
    part of the hot path, and tuple construction is several times cheaper
    than frozen-dataclass ``__init__`` + ``object.__setattr__``.
    """

    lane: int
    addr: int
    size: int
    kind: AccessKind
    sig: int = 0
    critical: bool = False

    def footprint(self) -> Tuple[int, int]:
        """Return the [start, end) byte range touched by this lane."""
        return (self.addr, self.addr + self.size)


@dataclass
class WarpAccess:
    """A warp-wide memory instruction: the unit the RDUs operate on.

    The detector needs to know *who* issued the access (thread/warp/block/SM
    identifiers), what synchronization state the issuer was in (sync ID,
    fence ID, atomic-ID signature, whether inside a critical section), and
    the per-lane address vector. The timing model additionally uses the
    coalesced transaction list attached by the coalescer.
    """

    space: MemSpace
    kind: AccessKind
    lanes: Sequence[LaneAccess]
    # issuer identity
    sm_id: int
    block_id: int          # global (grid-wide) linear block id
    warp_id: int           # grid-wide unique warp id
    warp_in_block: int     # warp index within its block
    base_tid: int          # grid-wide linear thread id of lane 0
    # synchronization state at issue time
    sync_id: int = 0
    fence_id: int = 0
    atomic_sig: int = 0    # Bloom-filter signature of held locks (0 = none)
    in_critical: bool = False
    # bookkeeping
    pc: int = 0            # abstract program counter (op sequence number)
    regroup: bool = False  # warp re-grouping active => ignore warp suppression

    def thread_id(self, lane: int) -> int:
        """Grid-wide linear thread id of ``lane`` in this warp."""
        return self.base_tid + lane

    @property
    def is_write(self) -> bool:
        return self.kind != AccessKind.READ


@dataclass(frozen=True)
class Transaction:
    """One coalesced memory transaction produced from a :class:`WarpAccess`."""

    addr: int        # aligned base byte address
    size: int        # transaction size in bytes (32/64/128)
    is_write: bool
    is_shadow: bool = False  # True for RDU-generated shadow-memory traffic


@dataclass
class KernelStats:
    """Dynamic instruction/access counts gathered while a kernel executes.

    Used to regenerate the paper's Table II characteristics.
    """

    instructions: int = 0
    shared_reads: int = 0
    shared_writes: int = 0
    global_reads: int = 0
    global_writes: int = 0
    atomics: int = 0
    barriers: int = 0
    fences: int = 0

    @property
    def shared_accesses(self) -> int:
        return self.shared_reads + self.shared_writes

    @property
    def global_accesses(self) -> int:
        return self.global_reads + self.global_writes

    @property
    def memory_accesses(self) -> int:
        return self.shared_accesses + self.global_accesses + self.atomics

    def frac(self, part: int) -> float:
        """Fraction of all dynamic instructions represented by ``part``."""
        return part / self.instructions if self.instructions else 0.0

    def merge(self, other: "KernelStats") -> None:
        """Accumulate another stats record into this one (in place)."""
        self.instructions += other.instructions
        self.shared_reads += other.shared_reads
        self.shared_writes += other.shared_writes
        self.global_reads += other.global_reads
        self.global_writes += other.global_writes
        self.atomics += other.atomics
        self.barriers += other.barriers
        self.fences += other.fences
