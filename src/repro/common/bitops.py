"""Small bit-manipulation and integer-math helpers.

These are used on hot paths of the simulator (address decomposition, cache
indexing, granularity mapping), so they avoid allocation and stay branch-lean.
"""

from __future__ import annotations


def is_power_of_two(x: int) -> bool:
    """Return True iff ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def log2_exact(x: int) -> int:
    """Return log2(x) for a power of two; raise ValueError otherwise."""
    if not is_power_of_two(x):
        raise ValueError(f"{x} is not a positive power of two")
    return x.bit_length() - 1


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    return -(-a // b)


def align_down(addr: int, alignment: int) -> int:
    """Round ``addr`` down to a multiple of ``alignment`` (a power of two)."""
    return addr & ~(alignment - 1)


def align_up(addr: int, alignment: int) -> int:
    """Round ``addr`` up to a multiple of ``alignment`` (a power of two)."""
    return (addr + alignment - 1) & ~(alignment - 1)


def mask_bits(value: int, nbits: int) -> int:
    """Keep only the low-order ``nbits`` bits of ``value``."""
    return value & ((1 << nbits) - 1)


def extract_bits(value: int, lo: int, nbits: int) -> int:
    """Extract ``nbits`` bits of ``value`` starting at bit ``lo``."""
    return (value >> lo) & ((1 << nbits) - 1)
