"""Exception hierarchy for the HAccRG reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """An invalid hardware or detector configuration was supplied."""


class KernelError(ReproError):
    """A kernel misused the device API (bad address, bad barrier, ...)."""


class SimulationError(ReproError):
    """The simulator reached an internally inconsistent state."""


class TraceFormatError(ReproError, ValueError):
    """A HART trace file is truncated, corrupt, or of an unknown version.

    Everything that parses traces raises this (never bare ``struct.error``
    or ``EOFError``), so callers — the replay CLI, the detection service —
    can turn malformed uploads into structured errors instead of crashes.
    Also a ``ValueError``: parsing historically raised that, and callers
    may still catch it.
    """


class DeadlockError(SimulationError):
    """No warp can make progress (e.g. divergent barrier within a block)."""


class ShardError(SimulationError):
    """Base class for epoch-sharded execution failures.

    Raised by the coordinator only: shard workers ship structured error
    records over the result queue and the coordinator re-raises them (or
    one of the subclasses below) after discarding all partial state and
    killing the remaining workers — a shard failure never hangs a run.
    """


class ShardCrashError(ShardError):
    """A shard worker process died mid-epoch (killed, segfault, OOM)."""


class ShardTimeoutError(ShardError):
    """No shard made progress within the watchdog window.

    The harness entry points (:func:`repro.harness.runner.run_benchmark_direct`,
    :func:`repro.fuzz.program.run_program`) respond by rebuilding the
    simulator and retrying the whole run a bounded number of times —
    sharded execution is deterministic, so a retry reproduces the run
    exactly.
    """
