"""Exception hierarchy for the HAccRG reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """An invalid hardware or detector configuration was supplied."""


class KernelError(ReproError):
    """A kernel misused the device API (bad address, bad barrier, ...)."""


class SimulationError(ReproError):
    """The simulator reached an internally inconsistent state."""


class TraceFormatError(ReproError, ValueError):
    """A HART trace file is truncated, corrupt, or of an unknown version.

    Everything that parses traces raises this (never bare ``struct.error``
    or ``EOFError``), so callers — the replay CLI, the detection service —
    can turn malformed uploads into structured errors instead of crashes.
    Also a ``ValueError``: parsing historically raised that, and callers
    may still catch it.
    """


class DeadlockError(SimulationError):
    """No warp can make progress (e.g. divergent barrier within a block)."""
