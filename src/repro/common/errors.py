"""Exception hierarchy for the HAccRG reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """An invalid hardware or detector configuration was supplied."""


class KernelError(ReproError):
    """A kernel misused the device API (bad address, bad barrier, ...)."""


class SimulationError(ReproError):
    """The simulator reached an internally inconsistent state."""


class DeadlockError(SimulationError):
    """No warp can make progress (e.g. divergent barrier within a block)."""
