"""Common infrastructure shared by every subsystem of the HAccRG reproduction.

This package holds the typed vocabulary of the simulator (memory spaces,
access kinds, race classifications), the hardware configuration dataclasses
encoding the paper's Table I, and small bit/math utilities used throughout.
"""

from repro.common.types import (
    AccessKind,
    MemSpace,
    RaceKind,
    RaceCategory,
    LaneAccess,
    WarpAccess,
    Dim3,
)
from repro.common.config import GPUConfig, HAccRGConfig, DetectionMode, DetectorBackend
from repro.common.errors import ReproError, ConfigError, KernelError, SimulationError
from repro.common.bitops import (
    is_power_of_two,
    ceil_div,
    log2_exact,
    align_down,
    align_up,
    mask_bits,
)

__all__ = [
    "AccessKind",
    "MemSpace",
    "RaceKind",
    "RaceCategory",
    "LaneAccess",
    "WarpAccess",
    "Dim3",
    "GPUConfig",
    "HAccRGConfig",
    "DetectionMode",
    "DetectorBackend",
    "ReproError",
    "ConfigError",
    "KernelError",
    "SimulationError",
    "is_power_of_two",
    "ceil_div",
    "log2_exact",
    "align_down",
    "align_up",
    "mask_bits",
]
