"""HAccRG reproduction: hardware-accelerated data race detection in GPUs.

A from-scratch Python reproduction of *HAccRG: Hardware-Accelerated Data
Race Detection in GPUs* (Holey, Mekkat, Zhai - ICPP 2013), including the
GPU simulator substrate the paper's evaluation depends on.

Quickstart::

    from repro import (GPUSimulator, Kernel, HAccRGDetector,
                       HAccRGConfig, DetectionMode, scaled_gpu_config)

    def kernel(ctx, data):
        tid = ctx.tid_x
        sh = ctx.shared["buf"]
        yield ctx.store(sh, tid, float(tid))
        # missing ctx.syncthreads() -> data race
        v = yield ctx.load(sh, (tid + 1) % ctx.block_dim.x)
        yield ctx.store(data, ctx.global_tid_x, v)

    sim = GPUSimulator(scaled_gpu_config())
    det = HAccRGDetector(HAccRGConfig(mode=DetectionMode.FULL), sim)
    sim.attach_detector(det)
    data = sim.malloc("data", 256)
    sim.launch(Kernel(kernel, shared={"buf": (128, 4)}),
               grid=2, block=128, args=(data,))
    for race in det.log.reports:
        print(race.describe())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.common.config import (
    DetectionMode,
    DetectorBackend,
    GPUConfig,
    HAccRGConfig,
    scaled_gpu_config,
)
from repro.common.types import (
    AccessKind,
    Dim3,
    MemSpace,
    RaceCategory,
    RaceKind,
)
from repro.core import BloomSignature, HAccRGDetector, RaceLog, RaceReport
from repro.gpu import DeviceArray, GPUSimulator, Kernel, SimulationResult
from repro.swdetect import GRaceAddrDetector, SoftwareHAccRG

__version__ = "1.0.0"

__all__ = [
    "AccessKind",
    "BloomSignature",
    "DetectionMode",
    "DetectorBackend",
    "DeviceArray",
    "Dim3",
    "GPUConfig",
    "GPUSimulator",
    "GRaceAddrDetector",
    "HAccRGConfig",
    "HAccRGDetector",
    "Kernel",
    "MemSpace",
    "RaceCategory",
    "RaceKind",
    "RaceLog",
    "RaceReport",
    "SimulationResult",
    "SoftwareHAccRG",
    "scaled_gpu_config",
    "__version__",
]
