"""The unified memory system: per-SM L1s, sliced L2, DRAM channels.

:class:`MemorySystem` is what the SMs call for every coalesced global
transaction. It implements the paper's hierarchy (§II-A / Table I):

- per-SM *non-coherent* L1 data caches; global writes are written through
  to L2 and evict the L1 copy (Fermi write-evict), so an SM can hold stale
  data another SM later overwrites — the coherence race HAccRG's L1-hit
  check targets;
- a coherent unified L2, line-interleaved across ``num_mem_slices`` slices,
  write-back with dirty eviction to DRAM;
- one DRAM channel per slice with bandwidth/occupancy accounting.

It also exposes :meth:`background_access` for HAccRG's hardware shadow
traffic: requests that consume L2 capacity and DRAM bandwidth but never
stall the issuing warp (the RDU works alongside the pipeline).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.common.config import GPUConfig
from repro.common.types import Transaction
from repro.gpu.interconnect import InterconnectModel
from repro.memory.cache import Cache
from repro.memory.dram import DRAMChannel


class MemorySystem:
    """L1 + sliced L2 + DRAM, with interconnect round-trip costs."""

    def __init__(self, config: GPUConfig, timing_enabled: bool = True) -> None:
        self.config = config
        self.timing_enabled = timing_enabled
        self.l1 = [
            Cache(config.l1d_size, config.l1d_assoc, config.l1d_line,
                  name=f"L1[{i}]")
            for i in range(config.num_sms)
        ]
        self.l2 = [
            Cache(config.l2_slice_size, config.l2_assoc, config.l2_line,
                  name=f"L2[{i}]")
            for i in range(config.num_mem_slices)
        ]
        self.dram = [
            DRAMChannel(i, config.dram_latency, config.dram_row_hit_latency,
                        config.dram_bytes_per_cycle, config.dram_row_size,
                        config.dram_queue_size)
            for i in range(config.num_mem_slices)
        ]
        self.icnt = InterconnectModel(
            flit_size=config.flit_size, hop_latency=config.icnt_latency
        )
        #: total payload bytes of shadow-tagged transactions entering the
        #: hierarchy (demand checks and background RDU traffic alike,
        #: regardless of which level satisfied them — unlike
        #: :meth:`dram_shadow_bytes`, which only sees DRAM arrivals)
        self._shadow_traffic_bytes = 0

    # ------------------------------------------------------------------

    def warp_access(self, sm_id: int, txns: Sequence[Transaction], now: int,
                    id_bits: int = 0) -> Tuple[int, List[str]]:
        """Service a warp's coalesced transactions; the warp stalls on them.

        Returns ``(latency, levels)`` where ``latency`` is the cycles until
        the slowest transaction completes and ``levels[i]`` in
        ``{"l1", "l2", "dram"}`` records where transaction ``i`` was
        satisfied.
        """
        if not txns:
            return 0, []
        worst = 0
        levels: List[str] = []
        for txn in txns:
            lat, level = self._one_transaction(sm_id, txn, now, id_bits)
            worst = max(worst, lat)
            levels.append(level)
        return worst, levels

    def background_access(self, sm_id: int, txns: Sequence[Transaction],
                          now: int, id_bits: int = 0) -> None:
        """Inject RDU shadow traffic: occupies L2/DRAM, stalls nobody."""
        for txn in txns:
            self._one_transaction(sm_id, txn, now, id_bits, bypass_l1=True)

    # ------------------------------------------------------------------

    def _one_transaction(self, sm_id: int, txn: Transaction, now: int,
                         id_bits: int, bypass_l1: bool = False) -> Tuple[int, str]:
        cfg = self.config
        l1 = self.l1[sm_id]
        if txn.is_shadow:
            self._shadow_traffic_bytes += txn.size

        # ---- L1 ----------------------------------------------------------
        if not bypass_l1:
            if txn.is_write:
                # write-through + write-evict: never allocates, invalidates
                l1.stats.accesses += 1
                l1.stats.misses += 1  # writes always go below
                l1.invalidate(txn.addr)
            else:
                hit, _, _ = l1.access(txn.addr, is_write=False, shadow=txn.is_shadow)
                if hit:
                    return (cfg.l1_latency if self.timing_enabled else 0), "l1"

        # ---- interconnect + L2 -------------------------------------------
        slice_id = cfg.slice_of(txn.addr)
        l2 = self.l2[slice_id]
        hit, writeback, wb_shadow = l2.access(txn.addr, is_write=txn.is_write,
                                   shadow=txn.is_shadow)
        # shadow-entry updates are full-word RDU writes: on an L2 miss the
        # line is write-validated in place (no DRAM fetch); only the
        # eventual dirty eviction reaches DRAM
        skip_fetch = txn.is_shadow and txn.is_write
        if not self.timing_enabled:
            if not hit and not skip_fetch:
                self.dram[slice_id].request(txn.addr, txn.size, txn.is_write,
                                            now, shadow=txn.is_shadow)
            if writeback is not None:
                self.dram[slice_id].background_request(writeback, cfg.l2_line,
                                                       now, shadow=wb_shadow)
            return 0, ("l2" if hit else "dram")

        icnt = self.icnt.round_trip_cycles(
            request_payload=txn.size if txn.is_write else 0,
            response_payload=0 if txn.is_write else txn.size,
            id_bits=id_bits,
        )
        if hit:
            return cfg.l1_latency + icnt + cfg.l2_latency, "l2"

        # ---- DRAM ---------------------------------------------------------
        dram = self.dram[slice_id]
        if skip_fetch:
            # write-validated shadow line: no fetch; its traffic is paid
            # when the dirty line is eventually evicted
            completion = now
        else:
            completion = dram.request(txn.addr, txn.size, txn.is_write, now,
                                      shadow=txn.is_shadow)
        if writeback is not None:
            # dirty evictions drain opportunistically behind demand traffic
            dram.background_request(writeback, cfg.l2_line, now,
                                    shadow=wb_shadow)
        latency = (completion - now) + cfg.l1_latency + icnt + cfg.l2_latency
        return latency, "dram"

    # ------------------------------------------------------------------
    # reporting

    def dram_utilization(self, total_cycles: int) -> float:
        """Average bus utilization across all channels (Fig. 9 metric)."""
        if not self.dram:
            return 0.0
        return sum(ch.utilization(total_cycles) for ch in self.dram) / len(self.dram)

    def dram_bytes(self) -> int:
        return sum(ch.stats.bytes_transferred for ch in self.dram)

    def dram_shadow_bytes(self) -> int:
        return sum(ch.stats.shadow_bytes for ch in self.dram)

    def shadow_traffic_bytes(self) -> int:
        """Shadow payload bytes injected into the hierarchy (all levels)."""
        return self._shadow_traffic_bytes

    def l1_stats_total(self):
        """Aggregate (accesses, hits, misses) over all L1s."""
        acc = hits = miss = 0
        for c in self.l1:
            acc += c.stats.accesses
            hits += c.stats.hits
            miss += c.stats.misses
        return acc, hits, miss

    def l2_stats_total(self):
        acc = hits = miss = 0
        for c in self.l2:
            acc += c.stats.accesses
            hits += c.stats.hits
            miss += c.stats.misses
        return acc, hits, miss
