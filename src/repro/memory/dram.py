"""GDDR3-style DRAM channel model with FR-FCFS approximation.

One :class:`DRAMChannel` backs each memory partition. The model is a
latency/bandwidth/queue abstraction rather than a per-bank state machine
(see DESIGN.md §4): a request's service latency is the row-miss latency
unless it targets the row last opened on the channel (FR-FCFS's main effect
— row-hit prioritization — is approximated by this row-locality discount);
the channel's data bus is occupied for ``size / bytes_per_cycle`` cycles per
request, and queueing delay emerges from the bus busy time. Busy-cycle and
byte counters feed the Fig. 9 bandwidth-utilization experiment.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DRAMStats:
    """Traffic and occupancy counters for one channel."""

    requests: int = 0
    reads: int = 0
    writes: int = 0
    shadow_requests: int = 0
    bytes_transferred: int = 0
    shadow_bytes: int = 0
    row_hits: int = 0
    busy_cycles: int = 0
    max_queue_delay: int = 0
    total_queue_delay: int = 0


class DRAMChannel:
    """One DRAM channel: busy-until bus model + row-locality latency."""

    def __init__(self, channel_id: int, latency: int, row_hit_latency: int,
                 bytes_per_cycle: float, row_size: int,
                 queue_size: int = 32) -> None:
        self.channel_id = channel_id
        self.latency = latency
        self.row_hit_latency = row_hit_latency
        self.bytes_per_cycle = bytes_per_cycle
        self.row_size = row_size
        self.queue_size = queue_size
        self._busy_until = 0
        self._open_row = -1
        #: cycles of low-priority (writeback/shadow) transfer not yet drained
        self._backlog = 0
        #: beyond this, low-priority work forces demand requests to wait —
        #: the write buffer is full (sized after the DRAM request queue)
        self._backlog_cap = queue_size * 16
        self.stats = DRAMStats()

    def _drain_backlog(self, now: int) -> None:
        """Drain buffered low-priority transfers into the idle gap."""
        idle = now - self._busy_until
        if idle > 0 and self._backlog > 0:
            drained = min(self._backlog, idle)
            self._backlog -= drained
            self._busy_until += drained

    def background_request(self, addr: int, size: int, now: int,
                           shadow: bool = False) -> None:
        """Enqueue a low-priority transfer (L2 writeback, shadow update).

        Memory controllers drain writebacks opportunistically: the transfer
        consumes bandwidth (it is accounted against the bus) but delays
        demand requests only once the write buffer fills.
        """
        self._drain_backlog(now)
        transfer = max(1, int(round(size / self.bytes_per_cycle)))
        self._backlog += transfer
        st = self.stats
        st.requests += 1
        st.writes += 1
        st.bytes_transferred += size
        st.busy_cycles += transfer
        if shadow:
            st.shadow_requests += 1
            st.shadow_bytes += size

    def request(self, addr: int, size: int, is_write: bool, now: int,
                shadow: bool = False) -> int:
        """Issue one request at time ``now``; return its completion time.

        The returned time includes queueing behind earlier requests
        (``busy_until``), the row-hit/row-miss access latency, and the data
        transfer time. The bus is held for the transfer duration.
        """
        self._drain_backlog(now)
        row = addr // self.row_size
        row_hit = row == self._open_row
        self._open_row = row

        access_latency = self.row_hit_latency if row_hit else self.latency
        transfer = max(1, int(round(size / self.bytes_per_cycle)))

        start = max(now, self._busy_until)
        if self._backlog > self._backlog_cap:
            # write buffer overflow: force-drain the excess ahead of us
            forced = self._backlog - self._backlog_cap
            start += forced
            self._backlog = self._backlog_cap
        queue_delay = start - now
        completion = start + access_latency + transfer
        self._busy_until = start + transfer + (0 if row_hit else access_latency // 4)

        st = self.stats
        st.requests += 1
        if is_write:
            st.writes += 1
        else:
            st.reads += 1
        st.bytes_transferred += size
        st.busy_cycles += self._busy_until - start
        st.total_queue_delay += queue_delay
        st.max_queue_delay = max(st.max_queue_delay, queue_delay)
        if row_hit:
            st.row_hits += 1
        if shadow:
            st.shadow_requests += 1
            st.shadow_bytes += size
        return completion

    def utilization(self, total_cycles: int) -> float:
        """Fraction of ``total_cycles`` the channel's bus was busy."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.busy_cycles / total_cycles)

    @property
    def busy_until(self) -> int:
        return self._busy_until
