"""Set-associative cache model with LRU replacement.

Used for both the per-SM L1 data caches (non-coherent, write-through,
write-evict on store hits — the Fermi policy the paper assumes) and the L2
slices (write-back with dirty eviction). The model tracks tags only — data
values live in the functional store — plus per-line dirty and shadow flags.
The shadow flag marks lines holding HAccRG shadow entries so that pollution
statistics can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.bitops import is_power_of_two, log2_exact
from repro.common.errors import ConfigError


@dataclass
class CacheStats:
    """Hit/miss/eviction counters, split by regular vs shadow traffic."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    shadow_accesses: int = 0
    shadow_hits: int = 0
    shadow_resident_peak: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class _Line:
    __slots__ = ("tag", "dirty", "shadow", "lru")

    def __init__(self) -> None:
        self.tag = -1
        self.dirty = False
        self.shadow = False
        self.lru = 0


class Cache:
    """One set-associative cache with true-LRU replacement.

    ``lookup``/``fill`` are split so callers can model different allocate
    policies; ``access`` is the common read path (lookup + allocate on miss,
    returning the evicted dirty line base if any).
    """

    def __init__(self, size: int, assoc: int, line_size: int,
                 name: str = "cache") -> None:
        if size % (assoc * line_size):
            raise ConfigError(
                f"{name}: size {size} not divisible by assoc*line ({assoc}x{line_size})"
            )
        if not is_power_of_two(line_size):
            raise ConfigError(f"{name}: line size must be a power of two")
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.num_sets = size // (assoc * line_size)
        self.name = name
        self._line_shift = log2_exact(line_size)
        self._sets: List[List[_Line]] = [
            [_Line() for _ in range(assoc)] for _ in range(self.num_sets)
        ]
        self._tick = 0
        self.stats = CacheStats()
        self._shadow_resident = 0

    # ------------------------------------------------------------------

    def _set_index(self, addr: int) -> Tuple[int, int]:
        block = addr >> self._line_shift
        return block % self.num_sets, block

    def probe(self, addr: int) -> bool:
        """Tag check without any state change (used for coherence checks)."""
        idx, tag = self._set_index(addr)
        return any(l.tag == tag for l in self._sets[idx])

    def access(self, addr: int, is_write: bool = False,
               shadow: bool = False, allocate: bool = True
               ) -> Tuple[bool, Optional[int], bool]:
        """Look up the line holding ``addr``.

        Returns ``(hit, writeback_addr, writeback_was_shadow)`` where
        ``writeback_addr`` is the base address of a dirty line evicted to
        make room (None otherwise) and the flag records whether that
        victim held shadow entries. On a write hit the line is marked
        dirty.
        """
        self._tick += 1
        self.stats.accesses += 1
        if shadow:
            self.stats.shadow_accesses += 1
        idx, tag = self._set_index(addr)
        lines = self._sets[idx]
        for line in lines:
            if line.tag == tag:
                self.stats.hits += 1
                if shadow:
                    self.stats.shadow_hits += 1
                line.lru = self._tick
                if is_write:
                    line.dirty = True
                return True, None, False

        self.stats.misses += 1
        if not allocate:
            return False, None, False
        victim = min(lines, key=lambda l: l.lru)
        writeback = None
        writeback_shadow = False
        if victim.tag >= 0:
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
                writeback = victim.tag << self._line_shift
                writeback_shadow = victim.shadow
            if victim.shadow:
                self._shadow_resident -= 1
        victim.tag = tag
        victim.dirty = is_write
        victim.shadow = shadow
        victim.lru = self._tick
        if shadow:
            self._shadow_resident += 1
            self.stats.shadow_resident_peak = max(
                self.stats.shadow_resident_peak, self._shadow_resident
            )
        return False, writeback, writeback_shadow

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr`` if present (write-evict L1 policy)."""
        idx, tag = self._set_index(addr)
        for line in self._sets[idx]:
            if line.tag == tag:
                if line.shadow:
                    self._shadow_resident -= 1
                line.tag = -1
                line.dirty = False
                line.shadow = False
                return True
        return False

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines dropped."""
        dirty = 0
        for s in self._sets:
            for line in s:
                if line.tag >= 0 and line.dirty:
                    dirty += 1
                line.tag = -1
                line.dirty = False
                line.shadow = False
        self._shadow_resident = 0
        return dirty

    def resident_lines(self) -> int:
        return sum(1 for s in self._sets for l in s if l.tag >= 0)
