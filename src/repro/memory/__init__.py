"""Memory hierarchy substrate: L1/L2 caches, DRAM channels, partitions.

Models the paper's Table I memory system: per-SM non-coherent write-through
L1 data caches, a coherent unified L2 cache sliced across memory partitions
(one slice + one GDDR3-style DRAM channel per partition), and line-interleaved
address-to-slice mapping. DRAM bandwidth accounting feeds the Fig. 9
experiment; L2 pollution by HAccRG shadow traffic is what produces the
global-detection overhead of Fig. 7.
"""

from repro.memory.cache import Cache, CacheStats
from repro.memory.dram import DRAMChannel
from repro.memory.system import MemorySystem

__all__ = ["Cache", "CacheStats", "DRAMChannel", "MemorySystem"]
