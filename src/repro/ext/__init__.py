"""Extensions sketched by the paper beyond the core detector.

§VII: "the same hardware support can be shared with other
functionalities. For example, hardware transactional memory in GPUs can
utilize the data race detection support to track dependence violations
among concurrent transactions." :mod:`repro.ext.htm` builds that HTM: the
RDU's per-location tracking structures (owner, modified, shared — the
shadow-entry fields) become a transactional conflict detector, with lazy
versioning (per-transaction write buffers) so aborts are free.
"""

from repro.ext.htm import Transaction, TransactionManager, TxStatus

__all__ = ["Transaction", "TransactionManager", "TxStatus"]
