"""GPU hardware transactional memory on the race-detection substrate (§VII).

The mapping from HAccRG's shadow entries to transactional conflict
tracking is direct:

| shadow entry field | HTM meaning |
|---|---|
| ``tid`` (owner) | transaction that wrote the location |
| ``M`` (modified) | an active transaction has written it |
| ``S`` (shared) + sharer list | active transactions that read it |
| granularity map | conflict-detection granularity |

Design:

- **eager conflict detection** — every transactional read/write checks the
  location's entry against the *active* transaction set, exactly like an
  RDU check; conflicts follow the race rules (RAW / WAR / WAW between
  different transactions);
- **lazy versioning** — writes go to a per-transaction write buffer
  (reads see the transaction's own buffer first), so an abort simply
  drops the buffer; commit publishes it to the backing store;
- **requester-aborts resolution** — the transaction that detects the
  conflict aborts itself and may retry, the simple policy GPU HTM
  proposals favour (no inter-SM arbitration hardware).

Committed transactions are conflict-serializable: a location conflict
between two concurrent transactions always aborts one of them, so the
commit order is a valid serial order (asserted by the property tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.common.errors import ReproError
from repro.core.granularity import GranularityMap


class TxStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TxError(ReproError):
    """Illegal transaction API usage (operating on a finished txn, ...)."""


@dataclass
class Transaction:
    """One transaction: identity, footprint, and its write buffer."""

    txid: int
    thread_id: int
    status: TxStatus = TxStatus.ACTIVE
    read_set: Set[int] = field(default_factory=set)    # entries
    write_set: Set[int] = field(default_factory=set)   # entries
    write_buffer: Dict[int, float] = field(default_factory=dict)  # addr->val
    aborts: int = 0  # times this logical transaction was retried

    @property
    def is_active(self) -> bool:
        return self.status == TxStatus.ACTIVE


@dataclass
class HTMStats:
    begins: int = 0
    commits: int = 0
    aborts: int = 0
    conflicts_raw: int = 0
    conflicts_war: int = 0
    conflicts_waw: int = 0


class TransactionManager:
    """Conflict detector + version manager over one memory region."""

    def __init__(self, region_bytes: int, granularity: int = 4) -> None:
        self.gmap = GranularityMap(granularity)
        self.n = self.gmap.num_entries(max(1, region_bytes))
        self.values: Dict[int, float] = {}            # committed state
        self._writer: Dict[int, int] = {}             # entry -> active txid
        self._readers: Dict[int, Set[int]] = {}       # entry -> active txids
        self._next_txid = 0
        self._txns: Dict[int, Transaction] = {}
        self.stats = HTMStats()

    # ------------------------------------------------------------------
    # lifecycle

    def begin(self, thread_id: int) -> Transaction:
        tx = Transaction(txid=self._next_txid, thread_id=thread_id)
        self._next_txid += 1
        self._txns[tx.txid] = tx
        self.stats.begins += 1
        return tx

    def _require_active(self, tx: Transaction) -> None:
        if not tx.is_active:
            raise TxError(f"transaction {tx.txid} is {tx.status.value}")

    def _writer_of(self, entry: int, exclude: int) -> Optional[int]:
        """Active conflicting writer of ``entry`` (None if free)."""
        w = self._writer.get(entry)
        if w is None or w == exclude:
            return None
        if self._txns[w].is_active:
            return w
        del self._writer[entry]  # lazily drop finished owners
        return None

    def _other_readers(self, entry: int, exclude: int) -> Set[int]:
        readers = self._readers.get(entry)
        if not readers:
            return set()
        live = {r for r in readers if r != exclude
                and self._txns[r].is_active}
        self._readers[entry] = {r for r in readers
                                if self._txns[r].is_active}
        return live

    # ------------------------------------------------------------------
    # transactional accesses

    def read(self, tx: Transaction, addr: int, size: int = 4) -> float:
        """Transactional load; aborts ``tx`` on a RAW conflict.

        Raises :class:`ConflictAbort` is *not* used — the call returns the
        value on success and the caller must check ``tx.is_active`` (an
        aborted read returns 0.0), mirroring the flat abort-and-retry flow
        of GPU HTM proposals.
        """
        self._require_active(tx)
        for entry in self.gmap.entries_of_range(addr, size):
            if self._writer_of(entry, tx.txid) is not None:
                self.stats.conflicts_raw += 1
                self.abort(tx)
                return 0.0
            tx.read_set.add(entry)
            self._readers.setdefault(entry, set()).add(tx.txid)
        if addr in tx.write_buffer:
            return tx.write_buffer[addr]
        return self.values.get(addr, 0.0)

    def write(self, tx: Transaction, addr: int, value: float,
              size: int = 4) -> bool:
        """Transactional store; returns False when a conflict aborted it."""
        self._require_active(tx)
        for entry in self.gmap.entries_of_range(addr, size):
            if self._writer_of(entry, tx.txid) is not None:
                self.stats.conflicts_waw += 1
                self.abort(tx)
                return False
            if self._other_readers(entry, tx.txid):
                self.stats.conflicts_war += 1
                self.abort(tx)
                return False
        for entry in self.gmap.entries_of_range(addr, size):
            self._writer[entry] = tx.txid
            tx.write_set.add(entry)
        tx.write_buffer[addr] = value
        return True

    # ------------------------------------------------------------------
    # outcome

    def commit(self, tx: Transaction) -> bool:
        """Publish the write buffer; returns False if already aborted."""
        if tx.status == TxStatus.ABORTED:
            return False
        self._require_active(tx)
        for addr, value in tx.write_buffer.items():
            self.values[addr] = value
        tx.status = TxStatus.COMMITTED
        self._release(tx)
        self.stats.commits += 1
        return True

    def abort(self, tx: Transaction) -> None:
        """Drop the write buffer and release the footprint."""
        if tx.status == TxStatus.ABORTED:
            return
        self._require_active(tx)
        tx.status = TxStatus.ABORTED
        tx.aborts += 1
        self._release(tx)
        self.stats.aborts += 1

    def _release(self, tx: Transaction) -> None:
        for entry in tx.write_set:
            if self._writer.get(entry) == tx.txid:
                del self._writer[entry]
        for entry in tx.read_set:
            readers = self._readers.get(entry)
            if readers:
                readers.discard(tx.txid)

    # ------------------------------------------------------------------
    # convenience

    def run_atomic(self, thread_id: int, body, max_retries: int = 64):
        """Retry loop: ``body(tx, read, write)`` until commit.

        ``body`` receives bound ``read(addr)`` / ``write(addr, value)``
        helpers that short-circuit once the transaction aborts; the body
        is re-executed from scratch on retry (flat nesting, as in GPU HTM
        proposals).
        """
        for _ in range(max_retries):
            tx = self.begin(thread_id)

            def read(addr: int) -> float:
                return self.read(tx, addr) if tx.is_active else 0.0

            def write(addr: int, value: float) -> None:
                if tx.is_active:
                    self.write(tx, addr, value)

            result = body(tx, read, write)
            if tx.is_active and self.commit(tx):
                return result
        raise TxError(
            f"thread {thread_id}: transaction failed after {max_retries} retries"
        )
