"""Thread-block lifecycle: thread creation, warps, barriers, shared memory.

A :class:`ThreadBlock` instantiates its threads' generators lazily when the
block is dispatched to an SM, partitions them into warps, owns the block's
shared-memory value store, and arbitrates block-wide barriers. It also
carries the block's HAccRG sync-ID logical clock (§IV-B): incremented at each
barrier, but only if the block touched global memory since its previous
barrier — the paper's traffic-limiting optimization.
"""

from __future__ import annotations

from typing import Dict, List, Optional


from repro.common.errors import SimulationError
from repro.common.types import Dim3
from repro.gpu.context import ThreadCtx
from repro.gpu.device import DeviceArray
from repro.gpu.kernel import KernelLaunch
from repro.gpu.warp import ThreadState, Warp


class ThreadBlock:
    """One CTA: warps, shared memory instance, barrier state, sync clock."""

    def __init__(self, launch: KernelLaunch, block_id: int, warp_size: int,
                 shared_capacity: int) -> None:
        self.launch = launch
        self.block_id = block_id            # grid-wide linear block id
        self.warp_size = warp_size
        self.shared_capacity = shared_capacity
        self.sm_id: Optional[int] = None
        self.warps: List[Warp] = []
        self.done = False
        # shared-memory value store (byte-address indexed, like DeviceMemory);
        # a plain list: per-element loads in the functional hot loop are
        # several times cheaper than ndarray scalar indexing
        self.shared_values: Optional[List[float]] = None
        self.shared_arrays: Dict[str, DeviceArray] = {}
        # HAccRG per-block state
        self.sync_id = 0
        self.global_accessed_since_barrier = False
        # statistics
        self.barriers_executed = 0
        self.sync_id_increments = 0

    # ------------------------------------------------------------------

    def materialize(self, sm_id: int, base_warp_id: int) -> None:
        """Create thread generators and warps when dispatched onto ``sm_id``."""
        self.sm_id = sm_id
        kernel = self.launch.kernel
        block_dim: Dim3 = self.launch.block
        grid_dim: Dim3 = self.launch.grid

        if kernel.shared:
            self.shared_values = [0.0] * self.shared_capacity
            self.shared_arrays = kernel.make_shared_arrays(self.shared_capacity)

        bx = self.block_id % grid_dim.x
        by = self.block_id // grid_dim.x

        threads: List[ThreadState] = []
        for z in range(block_dim.z):
            for y in range(block_dim.y):
                for x in range(block_dim.x):
                    ctx = ThreadCtx(
                        (x, y, z), (bx, by), block_dim, grid_dim,
                        self.warp_size, self.shared_arrays,
                    )
                    gen = kernel.fn(ctx, *self.launch.args)
                    threads.append(ThreadState(gen, ctx.global_tid))

        nthreads = len(threads)
        nwarps = (nthreads + self.warp_size - 1) // self.warp_size
        self.warps = []
        for w in range(nwarps):
            lanes = threads[w * self.warp_size:(w + 1) * self.warp_size]
            self.warps.append(Warp(base_warp_id + w, w, self, lanes))

    # ------------------------------------------------------------------

    def all_at_barrier(self) -> bool:
        """True when every unfinished warp is parked at the barrier."""
        pending = [w for w in self.warps if not w.finished]
        return bool(pending) and all(w.at_barrier for w in pending)

    def any_at_barrier(self) -> bool:
        return any(w.at_barrier for w in self.warps)

    def release_barrier(self, cycle: int, lazy_sync: bool = True) -> List[Warp]:
        """Release a completed block-wide barrier; returns released warps.

        Handles the sync-ID clock: per §IV-B, the block's sync ID is
        incremented only if the block issued global-memory accesses since
        its last barrier (``lazy_sync``; pass False to ablate the
        optimization and increment at every barrier).
        """
        if not self.all_at_barrier():
            raise SimulationError("release_barrier without full arrival")
        released = []
        for w in self.warps:
            if w.at_barrier:
                w.release_barrier()
                w.ready_at = cycle
                released.append(w)
        self.barriers_executed += 1
        if self.global_accessed_since_barrier or not lazy_sync:
            self.sync_id += 1
            self.sync_id_increments += 1
            self.global_accessed_since_barrier = False
        return released

    def check_done(self) -> bool:
        if not self.done and all(w.finished for w in self.warps):
            self.done = True
        return self.done

    # -- shared-memory value access (functional semantics) -----------------

    def shared_load(self, addr: int) -> float:
        assert self.shared_values is not None
        # stores coerce to float, so elements are always Python floats
        return self.shared_values[addr]

    def shared_store(self, addr: int, value: float) -> None:
        assert self.shared_values is not None
        self.shared_values[addr] = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThreadBlock(id={self.block_id}, sm={self.sm_id}, "
            f"warps={len(self.warps)}, done={self.done})"
        )
