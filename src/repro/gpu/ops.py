"""Device-operation protocol between kernel threads and the simulator.

Kernel threads are Python generators. Each ``yield`` hands the simulator one
*device operation* encoded as a plain tuple whose first element is an opcode
constant from this module. Tuples (rather than dataclasses) are used because
op construction sits on the hottest path of the simulator — one tuple per
dynamic instruction per lane.

Op layouts::

    (OP_LOAD,   space, addr, size)                 -> value sent back
    (OP_STORE,  space, addr, size, value)
    (OP_ATOMIC, space, addr, size, name, operand, operand2) -> old value
    (OP_COMPUTE, n)                                 # n ALU instructions
    (OP_BARRIER,)
    (OP_FENCE,)
    (OP_LOCK,   addr)                               # acquire (marker + spin)
    (OP_UNLOCK, addr)                               # release

Addresses are byte addresses in the target space; ``size`` is the access
width in bytes.
"""

from __future__ import annotations

OP_LOAD = 0
OP_STORE = 1
OP_ATOMIC = 2
OP_COMPUTE = 3
OP_BARRIER = 4
OP_FENCE = 5
OP_LOCK = 6
OP_UNLOCK = 7

#: Number of distinct opcodes (used for dispatch tables).
NUM_OPS = 8

OP_NAMES = {
    OP_LOAD: "load",
    OP_STORE: "store",
    OP_ATOMIC: "atomic",
    OP_COMPUTE: "compute",
    OP_BARRIER: "barrier",
    OP_FENCE: "fence",
    OP_LOCK: "lock",
    OP_UNLOCK: "unlock",
}

#: Supported atomic operation names and their semantics (CUDA equivalents).
ATOMIC_OPS = ("add", "sub", "inc", "dec", "exch", "cas", "min", "max", "or", "and")


def group_key(op: tuple) -> tuple:
    """Key by which divergent lane ops are grouped into issue slots.

    Lanes whose pending ops share a group key execute in the same simulated
    warp instruction; distinct keys serialize (branch divergence).
    Memory ops group by (opcode, space, size); everything else by opcode.
    """
    code = op[0]
    if code in (OP_LOAD, OP_STORE, OP_ATOMIC):
        return (code, op[1], op[3])
    return (code,)
