"""Shard worker: SM execution units for epoch-sliced simulation.

One shard process owns a subset of the SM array. Each owned SM is an
:class:`SMShard` — a :class:`~repro.gpu.sm.StreamingMultiprocessor`
subclass that runs the unmodified warp scheduler, functional core, timing
model, shared memory, and the *shared* half of detection against purely
SM-local state, but replaces every interaction with globally-visible
state by a synchronous round-trip to the coordinator
(:class:`repro.gpu.epoch.EpochScheduler`):

============================  =============================================
park kind                     coordinator-side processing
============================  =============================================
``park_global``               L2/DRAM round trip + global shadow check +
                              device-memory values for the warp's lanes
``park_lock`` / ``park_unlock``  lock-table arbitration + Bloom signatures
``park_retire``               residency-mirror update, possible next block
``park_epoch``                run-ahead bound: permission to enter the
                              next epoch window
============================  =============================================

plus two *one-way* ordered operations that ride on the next message
(``fence`` → race-register-file fence epochs, ``sync`` → sync-ID
bookkeeping). Every park and every recorded bus event consumes the same
per-SM monotone ``seq`` counter, so the coordinator can apply global state
changes and replay observer events in the exact inline interleaving
``(cycle, sm_id, seq)``.

Each owned SM runs on its own OS thread inside the shard (a park blocks
deep inside the issue path, so the SM must be suspendable mid-call-stack).
The threads share *no* mutable state — each has a private bus, recorder,
and detector half — so GIL scheduling cannot affect results. The shard's
main thread is a dispatcher: it routes coordinator commands (resume
payloads, launches, shutdown) to the SM threads.

The state contract: everything reachable from an :class:`SMShard` is
SM-local and rebuilt deterministically in the worker (kernel generators
are not picklable — instead of serializing state, the worker re-executes
the launch plan from the simulator's ``launch_source`` recipe, which
reproduces the bump-allocator address layout exactly). Device-memory
*values* never live in the shard: lane values come back with each
``park_global`` response.
"""

from __future__ import annotations

import importlib
import os
import queue
import threading
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.common.config import DetectionMode
from repro.common.errors import DeadlockError
from repro.common.types import MemSpace
from repro.events.bus import EventBus, PRIORITY_DETECTOR, PRIORITY_METRICS
from repro.events.records import (
    AccessIssued,
    BarrierReleased,
    BlockEnded,
    FenceIssued,
    KernelEnded,
    KernelStarted,
    LockIssued,
    UnlockIssued,
)
from repro.events.wire import WireRecorder
from repro.gpu import functional
from repro.gpu.block import ThreadBlock
from repro.gpu.hooks import HooksSubscriber
from repro.gpu.kernel import KernelLaunch
from repro.gpu.ops import OP_ATOMIC, OP_LOAD
from repro.gpu.sm import LOCK_RETRY_LIMIT, StreamingMultiprocessor
from repro.gpu.warp import Warp

#: env knobs used by the fault-handling tests (see tests/gpu)
STALL_FLAG_ENV = "REPRO_SHARD_STALL_FLAG"
CRASH_AFTER_ENV = "REPRO_SHARD_CRASH_AFTER"

# message kinds (shard -> coordinator)
READY = "ready"
ERROR = "error"
DONE = "done"
END_ACK = "end_ack"
PARK_GLOBAL = "park_global"
PARK_LOCK = "park_lock"
PARK_UNLOCK = "park_unlock"
PARK_RETIRE = "park_retire"
PARK_EPOCH = "park_epoch"

# one-way op kinds (ride inside a message's ops list)
OP_FENCE_NOTE = "fence"
OP_SYNC_NOTE = "sync"

# command kinds (coordinator -> shard); None on the task queue = stop
CMD_SETUP = "setup"
CMD_LAUNCH = "launch"
CMD_RESUME = "resume"
CMD_END = "end"


class SMShard(StreamingMultiprocessor):
    """An SM executing inside a shard worker.

    Subclasses the inline SM and overrides exactly the five methods that
    touch globally-visible state (global memory, the lock table, fence and
    sync-ID signatures, block retirement); everything else — warp
    scheduling, compute, shared memory, barrier release, idle advance —
    is the parent's code, bit for bit.
    """

    def __init__(self, sm_id: int, config: Any, gpu: Any, result_q: Any,
                 detector_cfg: Any) -> None:
        super().__init__(sm_id, config, gpu)
        self.result_q = result_q
        self.resume_q: "queue.Queue[Any]" = queue.Queue()
        # private bus: shared-half detector + wire recorder only
        self.bus = EventBus()
        self.half_detector = None
        self._half_log = None
        if detector_cfg is not None and detector_cfg.mode.shared_enabled:
            from repro.core.detector import HAccRGDetector
            half = HAccRGDetector(
                replace(detector_cfg, mode=DetectionMode.SHARED), gpu)
            self.bus.subscribe(HooksSubscriber(half), PRIORITY_DETECTOR)
            self.half_detector = half
            self._half_log = half.log
        self.recorder: WireRecorder = self.bus.subscribe(
            WireRecorder(self), PRIORITY_METRICS)
        self._note_fences = (detector_cfg is not None
                             and detector_cfg.mode.global_enabled)
        self._sync_lazy = (detector_cfg.sync_id_lazy_increment
                           if detector_cfg is not None else True)
        self.wire_seq = 0
        self._ops: List[Tuple[int, int, str, Any]] = []
        self.launch_idx = -1
        self._launch_obj: Optional[KernelLaunch] = None
        self.horizon = 0
        self.epoch_cycles = max(1, int(config.epoch_cycles))

    # ------------------------------------------------------------------
    # protocol plumbing

    def next_seq(self) -> int:
        s = self.wire_seq
        self.wire_seq = s + 1
        return s

    def _send(self, kind: str, cycle: int, seq: int, payload: Any) -> None:
        self.result_q.put((self.sm_id, kind, cycle, seq,
                           self._drain_ops(), self.recorder.drain(),
                           payload))

    def _drain_ops(self) -> List[Tuple[int, int, str, Any]]:
        ops = self._ops
        self._ops = []
        return ops

    def _park(self, kind: str, payload: Any) -> Any:
        seq = self.next_seq()
        self._send(kind, self.cycle, seq, payload)
        return self.resume_q.get()

    def _note(self, kind: str, payload: Any) -> None:
        self._ops.append((self.cycle, self.next_seq(), kind, payload))

    # ------------------------------------------------------------------
    # launch lifecycle (driven by the shard dispatcher)

    def begin_launch(self, launch_idx: int, launch: KernelLaunch) -> None:
        self.launch_idx = launch_idx
        self._launch_obj = launch
        self.horizon = (self.cycle // self.epoch_cycles + 1) * self.epoch_cycles
        self.bus.emit_kernel_start(
            KernelStarted(launch=launch, device_mem=self.gpu.device_mem))

    def admit_initial(self, block_ids: List[int]) -> None:
        """Admit the coordinator's initial dispatch for this launch.

        BlockStarted recording is suppressed: the inline simulator emits
        these round-robin across SMs before the run loop, an order the
        sorted merge cannot reproduce, so the coordinator synthesizes them
        in true dispatch order instead.
        """
        assert self._launch_obj is not None
        self.recorder.enabled = False
        try:
            for bid in block_ids:
                self.admit(self._make_block(bid))
        finally:
            self.recorder.enabled = True

    def _make_block(self, block_id: int) -> ThreadBlock:
        assert self._launch_obj is not None
        return ThreadBlock(self._launch_obj, block_id,
                           self.config.warp_size,
                           self.config.shared_mem_per_sm)

    def end_launch(self) -> Any:
        """Emit the kernel end and ship the shared-half race-log delta."""
        self.bus.emit_kernel_end(KernelEnded())
        log = self._half_log
        if log is None or not (log.reports or log.trip_counts
                               or log._pair_keys):
            return None
        import copy
        shipped = copy.deepcopy(log)
        log.clear()
        return shipped

    def run_loop(self) -> None:
        """The SM thread body: step until the SM drains, bounded by epochs."""
        try:
            while self.active:
                if self.cycle >= self.horizon:
                    self._park(PARK_EPOCH, None)
                    self.horizon = ((self.cycle // self.epoch_cycles + 1)
                                    * self.epoch_cycles)
                self.step()
            self._send(DONE, self.cycle, self.next_seq(), None)
        except Exception as exc:  # ship a structured error, never hang
            try:
                self._send(ERROR, self.cycle, self.wire_seq,
                           (type(exc).__name__, str(exc)))
            except Exception:
                pass

    # ------------------------------------------------------------------
    # scheduling override: stamp race-order bases per step

    def step(self) -> None:
        log = self._half_log
        if log is not None:
            log.order_base = (self.launch_idx, self.cycle, self.sm_id,
                              self.wire_seq)
        super().step()

    # ------------------------------------------------------------------
    # globally-visible interactions -> coordinator round-trips

    def _exec_global(self, warp: Warp, code: int,
                     lanes: List[Tuple[int, Any]], issue: int) -> None:
        dec = functional.decode_warp(code, lanes, self.fast_path,
                                     clean=not warp.lock_touched)
        is_write = code != OP_LOAD
        txns = self.timing.global_transactions(dec.lanes, dec.addrs,
                                               dec.size, is_write)
        access = self._make_warp_access(warp, MemSpace.GLOBAL, dec)
        if code == OP_LOAD:
            ops = None
        elif code == OP_ATOMIC:
            ops = [(t.pending[2], t.pending[4], t.pending[5], t.pending[6])
                   for _, t in lanes]
        else:
            ops = [(t.pending[2], t.pending[4]) for _, t in lanes]

        latency, lane_l1_hit, values = self._park(
            PARK_GLOBAL, (access, txns, code, ops))

        if code == OP_ATOMIC:
            latency += self.timing.atomic_serialization(dec.lanes, dec.addrs,
                                                        issue)
        effect = self.bus.emit_access(AccessIssued(
            access=access, sm_id=self.sm_id, cycle=self.cycle,
            lane_l1_hit=lane_l1_hit,
        ))
        warp.block.global_accessed_since_barrier = True

        # functional completion from the coordinator's device memory
        if code == OP_LOAD or code == OP_ATOMIC:
            for v, (_, t) in zip(values, lanes):
                warp.complete_lane(t, v)
        else:
            for _, t in lanes:
                warp.complete_lane(t)

        warp.ready_at = self.cycle + latency + effect.stall_cycles

    def _exec_lock(self, warp: Warp, lanes: List[Tuple[int, Any]],
                   issue: int) -> None:
        warp.lock_touched = True
        rows = [(t.pending[1], t.global_tid, t.lock_sig) for _, t in lanes]
        results = self._park(PARK_LOCK, rows)
        granted = 0
        for (ok, sig), (_, t) in zip(results, lanes):
            if ok:
                t.held_locks.append(t.pending[1])
                t.critical_depth += 1
                t.lock_sig = sig
                warp.complete_lane(t)
                granted += 1
        self.bus.emit_lock(LockIssued(
            warp=warp, sm_id=self.sm_id, cycle=self.cycle,
            attempts=len(lanes), granted=granted,
        ))
        if granted:
            warp.retries = 0
        else:
            warp.retries += 1
            if warp.retries > LOCK_RETRY_LIMIT:
                raise DeadlockError(
                    f"warp {warp.warp_id} exceeded lock retry budget"
                )
        warp.ready_at = self.cycle + self.timing.lock_cost(granted > 0)

    def _exec_unlock(self, warp: Warp, lanes: List[Tuple[int, Any]],
                   issue: int) -> None:
        rows = []
        for _, t in lanes:
            addr = t.pending[1]
            t.held_locks.remove(addr)
            t.critical_depth -= 1
            rows.append((addr, t.global_tid, t.lock_sig,
                         not t.held_locks))
        results = self._park(PARK_UNLOCK, rows)
        for sig, (_, t) in zip(results, lanes):
            t.lock_sig = sig
            warp.complete_lane(t)
        self.bus.emit_unlock(UnlockIssued(
            warp=warp, sm_id=self.sm_id, cycle=self.cycle, lanes=len(lanes),
        ))
        warp.ready_at = self.cycle + self.timing.unlock_cost()

    def _exec_fence(self, warp: Warp, lanes: List[Tuple[int, Any]],
                   issue: int) -> None:
        # scope rides the pending op tuple; read before execute clears it
        op = lanes[0][1].pending
        scope = op[1] if len(op) > 1 else 0
        functional.execute_fence(warp, lanes)
        if self._note_fences:
            self._note(OP_FENCE_NOTE, (warp.warp_id, warp.fence_id))
        effect = self.bus.emit_fence(FenceIssued(
            warp=warp, sm_id=self.sm_id, cycle=self.cycle, lanes=len(lanes),
            scope=scope, warp_id=warp.warp_id,
            block_id=warp.block.block_id,
        ))
        warp.ready_at = (self.cycle + self.timing.fence_cost()
                         + effect.stall_cycles)

    def _maybe_release_barrier(self, block: ThreadBlock) -> None:
        if not block.all_at_barrier():
            return
        released_lanes = sum(
            len(w.live_lanes()) for w in block.warps if w.at_barrier
        )
        effect = self.bus.emit_barrier(BarrierReleased(
            block=block, sm_id=self.sm_id, cycle=self.cycle,
            released_lanes=released_lanes,
        ))
        if self._note_fences:
            will_increment = (block.global_accessed_since_barrier
                              or not self._sync_lazy)
            self._note(OP_SYNC_NOTE,
                       block.sync_id + (1 if will_increment else 0))
        release_at = (self.cycle + self.timing.barrier_cost()
                      + effect.stall_cycles)
        block.release_barrier(release_at, lazy_sync=self.gpu.sync_id_lazy)

    def _maybe_retire(self, block: ThreadBlock) -> None:
        if not block.check_done():
            return
        self.blocks.remove(block)
        removed_before = sum(
            1 for w in self.warps[:self._rr] if w.block is block
        )
        self.warps = [w for w in self.warps if w.block is not block]
        self._rr = ((self._rr - removed_before) % len(self.warps)
                    if self.warps else 0)
        self.retired_blocks += 1
        self.bus.emit_block_end(BlockEnded(block=block, sm_id=self.sm_id))
        next_bid = self._park(PARK_RETIRE, block.block_id)
        if next_bid is not None:
            self.admit(self._make_block(next_bid))


# ---------------------------------------------------------------------------
# worker entry point
# ---------------------------------------------------------------------------


def rebuild_simulator(setup: Dict[str, Any]) -> Tuple[Any, List[KernelLaunch]]:
    """Rebuild the SM-local world from the coordinator's setup payload.

    The local simulator repeats the coordinator's allocation sequence via
    ``launch_source`` — the bump allocator is deterministic, so every
    device address (and therefore every decoded lane access) matches the
    coordinator's byte for byte. Device-memory *values* in the local copy
    are never read.
    """
    from repro.gpu.simulator import GPUSimulator

    sim = GPUSimulator(setup["config"],
                       timing_enabled=setup["timing_enabled"])
    sim.warp_regrouping = setup["warp_regrouping"]
    sim.sync_id_lazy = setup["sync_id_lazy"]
    module, func, payload = setup["launch_source"]
    specs = getattr(importlib.import_module(module), func)(payload, sim)
    launches = [
        ls if isinstance(ls, KernelLaunch) else KernelLaunch(
            ls.kernel, _dim3(ls.grid), _dim3(ls.block), tuple(ls.args))
        for ls in specs
    ]
    return sim, launches


def _dim3(value: Any) -> Any:
    from repro.common.types import Dim3
    return Dim3.of(value)


def shard_main(worker_id: int, task_q: Any, result_q: Any) -> None:
    """Shard dispatcher: build the local world, run SM threads, route cmds."""
    stall_flag = os.environ.get(STALL_FLAG_ENV)
    if stall_flag and worker_id == 0 and os.path.exists(stall_flag):
        try:
            os.remove(stall_flag)
        except OSError:
            pass
        time.sleep(3600.0)
    crash_after = int(os.environ.get(CRASH_AFTER_ENV, "0") or 0)
    resumes_seen = 0

    item = task_q.get()
    if item is None or item[0] != CMD_SETUP:
        return
    setup = item[1]
    try:
        sim, launches = rebuild_simulator(setup)
        sms = {
            sm_id: SMShard(sm_id, sim.config, sim, result_q,
                           setup["detector"])
            for sm_id in setup["sm_ids"]
        }
    except Exception as exc:
        result_q.put((-1, ERROR, 0, 0, [], [],
                      (type(exc).__name__, str(exc))))
        return
    result_q.put((-1, READY, 0, 0, [], [], None))

    threads: List[threading.Thread] = []
    while True:
        cmd = task_q.get()
        if cmd is None:
            return
        op = cmd[0]
        if op == CMD_RESUME:
            _, sm_id, resp = cmd
            if crash_after:
                resumes_seen += 1
                if resumes_seen >= crash_after:
                    os._exit(1)
            sms[sm_id].resume_q.put(resp)
        elif op == CMD_LAUNCH:
            _, launch_idx, admits = cmd
            for t in threads:
                t.join()
            threads = []
            try:
                launch = launches[launch_idx]
            except IndexError:
                result_q.put((-1, ERROR, 0, 0, [], [],
                              ("SimulationError",
                               f"launch {launch_idx} not in rebuilt plan "
                               f"({len(launches)} launches)")))
                continue
            for sm in sms.values():
                sm.begin_launch(launch_idx, launch)
            for sm_id, bids in admits:
                sms[sm_id].admit_initial(bids)
            for sm_id, bids in admits:
                if bids:
                    t = threading.Thread(target=sms[sm_id].run_loop,
                                         daemon=True)
                    threads.append(t)
                    t.start()
        elif op == CMD_END:
            logs = {}
            for sm_id in sorted(sms):
                shipped = sms[sm_id].end_launch()
                if shipped is not None:
                    logs[sm_id] = shipped
            result_q.put((-1, END_ACK, 0, 0, [], [], logs))
