"""Functional core: decode and architectural state updates, no cycles.

This module is the other half of the engine split described in
``docs/ENGINE.md``: pure per-warp decode (op tuples -> per-lane
:class:`~repro.common.types.LaneAccess` records, plus a per-warp address
list for the batched timing/detection paths) and functional execution
(moving lane values through shared/global memory and completing lanes).
Nothing here reads or writes cycle counts; :mod:`repro.gpu.timing` prices
the same decoded access independently.

The decode fast path produces, in one pass over the lanes, both the
per-lane records the event pipeline consumes and the address list the
batched coalescer/bank-conflict/shadow kernels consume (the shadow tables
lift it into an int64 vector; the warp-local timing kernels sweep it
directly — a warp is at most 32 lanes). It is bit-identical to the scalar
decode; ``DecodedAccess.addrs`` is simply ``None`` when the fast path is
off or the lane sizes are not uniform.
"""

from __future__ import annotations

from typing import Any, Iterable, List, NamedTuple, Optional, Tuple

from repro.common.types import AccessKind, LaneAccess
from repro.gpu.atomics import apply_atomic
from repro.gpu.ops import OP_LOAD, OP_STORE

#: opcode -> access kind for the three memory opcodes
_KIND_OF = {OP_LOAD: AccessKind.READ, OP_STORE: AccessKind.WRITE}


class DecodedAccess(NamedTuple):
    """One decoded warp memory op-group.

    ``addrs`` is a per-lane address list (lane order) when the warp-batch
    fast path is active and every lane has the same access size; ``size``
    is that uniform size (0 when ``addrs`` is None). ``critical_any`` is
    precomputed so the emission path does not rescan the lanes.
    """

    kind: AccessKind
    lanes: List[LaneAccess]
    addrs: Optional[List[int]]
    size: int
    critical_any: bool = False


def decode_kind(code: int) -> AccessKind:
    """Access kind of one memory opcode (groups are opcode-homogeneous)."""
    return _KIND_OF.get(code, AccessKind.ATOMIC)


def decode_lanes(code: int,
                 lanes: Iterable[Tuple[int, Any]]
                 ) -> Tuple[AccessKind, List[LaneAccess]]:
    """Scalar decode: one memory op-group -> per-lane access records."""
    kind = decode_kind(code)
    lane_accesses = [
        LaneAccess(lane_idx, t.pending[2], t.pending[3], kind,
                   t.lock_sig, t.critical_depth > 0)
        for lane_idx, t in lanes
    ]
    return kind, lane_accesses


def decode_warp(code: int, lanes: List[Tuple[int, Any]],
                fast: bool, clean: bool = False) -> DecodedAccess:
    """Decode an op-group; with ``fast`` also build the address vector.

    ``clean`` asserts no lane of the issuing warp has ever executed a
    lock-acquire (``Warp.lock_touched`` is False): every lock signature
    is 0 and no lane is inside a critical section, so the per-lane
    lock-state reads are skipped.
    """
    kind = decode_kind(code)
    lane_accesses: List[LaneAccess] = []
    append = lane_accesses.append
    # hot loop: build lane tuples through tuple.__new__ to skip the
    # generated NamedTuple constructor frame per lane
    _new: Any = tuple.__new__
    la = LaneAccess
    if clean:
        if not fast:
            for lane_idx, t in lanes:
                p = t.pending
                append(_new(la, (lane_idx, p[2], p[3], kind, 0, False)))
            return DecodedAccess(kind, lane_accesses, None, 0, False)
        addrs: List[int] = []
        addrs_append = addrs.append
        sz0 = lanes[0][1].pending[3] if lanes else 0
        same = True
        for lane_idx, t in lanes:
            p = t.pending
            addr = p[2]
            append(_new(la, (lane_idx, addr, p[3], kind, 0, False)))
            addrs_append(addr)
            if p[3] != sz0:
                same = False
        if not same or not lanes:
            return DecodedAccess(kind, lane_accesses, None, 0, False)
        return DecodedAccess(kind, lane_accesses, addrs, sz0, False)
    critical_any = False
    if not fast:
        for lane_idx, t in lanes:
            p = t.pending
            crit = t.critical_depth > 0
            if crit:
                critical_any = True
            append(_new(la, (lane_idx, p[2], p[3], kind,
                             t.lock_sig, crit)))
        return DecodedAccess(kind, lane_accesses, None, 0, critical_any)

    addr_list: List[int] = []
    addr_append = addr_list.append
    size0 = lanes[0][1].pending[3] if lanes else 0
    uniform = True
    for lane_idx, t in lanes:
        p = t.pending
        addr = p[2]
        size = p[3]
        crit = t.critical_depth > 0
        if crit:
            critical_any = True
        append(_new(la, (lane_idx, addr, size, kind,
                         t.lock_sig, crit)))
        addr_append(addr)
        if size != size0:
            uniform = False
    if not uniform or not lanes:
        return DecodedAccess(kind, lane_accesses, None, 0, critical_any)
    return DecodedAccess(kind, lane_accesses, addr_list, size0, critical_any)


# ---------------------------------------------------------------------------
# functional execution: lane values move, lanes complete
# ---------------------------------------------------------------------------

def execute_compute(warp: Any, lanes: List[Tuple[int, Any]]) -> Tuple[int, int]:
    """Complete a compute group; returns (max depth, total instructions)."""
    n = 0
    total = 0
    for _, t in lanes:
        n = max(n, t.pending[1])
        total += t.pending[1]
    for _, t in lanes:
        warp.complete_lane(t)
    return n, total


def execute_shared(warp: Any, block: Any, code: int,
                   lanes: List[Tuple[int, Any]],
                   lane_accesses: List[LaneAccess]) -> None:
    """Move values through shared memory and complete the lanes.

    Shared atomics serialize per address in lane order, matching the
    hardware's bank-conflict replay.
    """
    # hot loops: index the block's value list directly and complete lanes
    # inline (pending=None queues the lane for the warp's next refill)
    sv = block.shared_values
    if code == OP_LOAD:
        for la, (_, t) in zip(lane_accesses, lanes):
            t.pending = None
            t.send_value = sv[la[1]]
    elif code == OP_STORE:
        for _, t in lanes:
            op = t.pending
            sv[op[2]] = float(op[4])
            t.pending = None
            t.send_value = None
    else:
        for _, t in lanes:
            op = t.pending
            addr = op[2]
            old = sv[addr]
            sv[addr] = float(apply_atomic(op[4], old, op[5], op[6]))
            t.pending = None
            t.send_value = old


def execute_global(warp: Any, mem: Any, code: int,
                   lanes: List[Tuple[int, Any]],
                   lane_accesses: List[LaneAccess]) -> None:
    """Move values through device memory and complete the lanes."""
    if code == OP_LOAD:
        for la, (_, t) in zip(lane_accesses, lanes):
            warp.complete_lane(t, mem.load(la.addr))
    elif code == OP_STORE:
        for _, t in lanes:
            op = t.pending
            mem.store(op[2], op[4])
            warp.complete_lane(t)
    else:
        # serialize same-address atomics in lane order
        for _, t in lanes:
            op = t.pending
            old = mem.load(op[2])
            mem.store(op[2], apply_atomic(op[4], old, op[5], op[6]))
            warp.complete_lane(t, old)


def execute_fence(warp: Any, lanes: List[Tuple[int, Any]]) -> None:
    """Complete fence lanes and advance the warp's fence epoch."""
    for _, t in lanes:
        warp.complete_lane(t)
    warp.note_fence()
