"""Atomic operation semantics and the device lock table.

Atomic read-modify-write ops execute functionally here with CUDA semantics
(each returns the *old* value). The :class:`LockTable` backs the kernel-level
``lock``/``unlock`` markers: acquisition is an atomic-exchange spin loop in
real kernels, which we model as a grant/retry protocol serialized per lock
address.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.errors import KernelError, SimulationError


def apply_atomic(name: str, old: float, operand: float,
                 operand2: float) -> float:
    """Return the new memory value for atomic op ``name``.

    Semantics match the CUDA intrinsics:

    - ``add``/``sub``/``min``/``max``: arithmetic on the old value
    - ``inc``: ``old >= operand ? 0 : old + 1`` (``atomicInc``)
    - ``dec``: ``old == 0 or old > operand ? operand : old - 1``
    - ``exch``: new value is ``operand``
    - ``cas``: ``old == operand ? operand2 : old``
    - ``or``/``and``: bitwise on integer-valued cells
    """
    if name == "add":
        return old + operand
    if name == "sub":
        return old - operand
    if name == "inc":
        return 0.0 if old >= operand else old + 1.0
    if name == "dec":
        return operand if (old == 0.0 or old > operand) else old - 1.0
    if name == "exch":
        return operand
    if name == "cas":
        return operand2 if old == operand else old
    if name == "min":
        return min(old, operand)
    if name == "max":
        return max(old, operand)
    if name == "or":
        return float(int(old) | int(operand))
    if name == "and":
        return float(int(old) & int(operand))
    raise KernelError(f"unknown atomic op {name!r}")


class LockTable:
    """Device-wide lock ownership: lock byte-address -> holder thread id.

    ``try_acquire`` models one iteration of an ``atomicExch`` spin loop; a
    failed attempt costs the caller a retry (the SM re-issues later). Locks
    are not re-entrant across distinct ``lock`` calls by design — GPU
    spin-lock idioms are not — but a thread re-acquiring a lock it already
    holds is granted immediately (depth counted), since the benchmarks that
    use nesting rely on it.
    """

    def __init__(self) -> None:
        self._holder: Dict[int, Tuple[int, int]] = {}  # addr -> (tid, depth)
        self.acquisitions = 0
        self.contended_attempts = 0

    def try_acquire(self, addr: int, tid: int) -> bool:
        entry = self._holder.get(addr)
        if entry is None:
            self._holder[addr] = (tid, 1)
            self.acquisitions += 1
            return True
        holder, depth = entry
        if holder == tid:
            self._holder[addr] = (tid, depth + 1)
            self.acquisitions += 1
            return True
        self.contended_attempts += 1
        return False

    def release(self, addr: int, tid: int) -> None:
        entry = self._holder.get(addr)
        if entry is None or entry[0] != tid:
            raise SimulationError(
                f"thread {tid} released lock {addr:#x} it does not hold"
            )
        holder, depth = entry
        if depth == 1:
            del self._holder[addr]
        else:
            self._holder[addr] = (holder, depth - 1)

    def holder_of(self, addr: int) -> Optional[int]:
        entry = self._holder.get(addr)
        return entry[0] if entry else None

    def held_count(self) -> int:
        return len(self._holder)
