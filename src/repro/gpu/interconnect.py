"""SM <-> memory-slice interconnect cost model (paper §V).

The network carries memory request/response packets between SM clusters and
the memory partitions. Packets are serialized into flits; HAccRG attaches
sync, fence, and atomic IDs to request headers (§V: "network packets carry
sync IDs, fence IDs, and atomic IDs along with the other control
information"), which lengthens request packets slightly when detection is
enabled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import ceil_div


@dataclass
class InterconnectModel:
    """Latency/serialization model for one request/response round trip."""

    flit_size: int = 32
    hop_latency: int = 12
    header_bytes: int = 8

    def request_flits(self, payload_bytes: int, id_bits: int = 0) -> int:
        """Flits for a request carrying ``payload_bytes`` of data.

        Read requests carry no payload (header only); write requests carry
        the store data. ``id_bits`` is the HAccRG identifier overhead.
        """
        total = self.header_bytes + payload_bytes + ceil_div(id_bits, 8)
        return max(1, ceil_div(total, self.flit_size))

    def response_flits(self, payload_bytes: int) -> int:
        total = self.header_bytes + payload_bytes
        return max(1, ceil_div(total, self.flit_size))

    def round_trip_cycles(self, request_payload: int, response_payload: int,
                          id_bits: int = 0) -> int:
        """Cycles for request + response traversal including serialization."""
        flits = (self.request_flits(request_payload, id_bits)
                 + self.response_flits(response_payload))
        return 2 * self.hop_latency + flits
