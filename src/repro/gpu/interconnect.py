"""SM <-> memory-slice interconnect cost model (paper §V).

The network carries memory request/response packets between SM clusters and
the memory partitions. Packets are serialized into flits; HAccRG attaches
sync, fence, and atomic IDs to request headers (§V: "network packets carry
sync IDs, fence IDs, and atomic IDs along with the other control
information"), which lengthens request packets slightly when detection is
enabled.

The inter-GPU extension (``repro.multigpu``, docs/MULTIGPU.md) reuses the
same flit model for the peer fabric: :class:`PeerLink` prices one
directional device-to-device link (higher hop latency, link occupancy),
and :class:`PageDirectory` is the home-node directory that tracks, per
shared page, which devices have touched it — the structure the
directory-level cross-GPU detector walks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Set, Tuple

from repro.common.bitops import ceil_div


@dataclass
class InterconnectModel:
    """Latency/serialization model for one request/response round trip."""

    flit_size: int = 32
    hop_latency: int = 12
    header_bytes: int = 8

    def request_flits(self, payload_bytes: int, id_bits: int = 0) -> int:
        """Flits for a request carrying ``payload_bytes`` of data.

        Read requests carry no payload (header only); write requests carry
        the store data. ``id_bits`` is the HAccRG identifier overhead.
        """
        total = self.header_bytes + payload_bytes + ceil_div(id_bits, 8)
        return max(1, ceil_div(total, self.flit_size))

    def response_flits(self, payload_bytes: int) -> int:
        total = self.header_bytes + payload_bytes
        return max(1, ceil_div(total, self.flit_size))

    def round_trip_cycles(self, request_payload: int, response_payload: int,
                          id_bits: int = 0) -> int:
        """Cycles for request + response traversal including serialization."""
        flits = (self.request_flits(request_payload, id_bits)
                 + self.response_flits(response_payload))
        return 2 * self.hop_latency + flits


# ---------------------------------------------------------------------------
# inter-GPU peer fabric
# ---------------------------------------------------------------------------


@dataclass
class PeerLink:
    """One directional inter-GPU link (NVLink-style), flit-serialized.

    Much higher hop latency than the on-chip network and explicitly
    occupancy-tracked: transfers serialize on the link, so a burst of
    remote accesses queues. ``transfer`` is called in the deterministic
    merged-record order (docs/MULTIGPU.md), which makes the queueing —
    and therefore every derived statistic — bit-identical across
    execution modes.
    """

    src: int
    dst: int
    flit_size: int = 32
    hop_latency: int = 60
    header_bytes: int = 16
    #: cycles the link is busy serializing one flit
    flit_cycles: int = 1
    busy_until: int = 0
    transfers: int = 0
    bytes_moved: int = 0
    busy_cycles: int = 0

    def transfer_flits(self, payload_bytes: int) -> int:
        total = self.header_bytes + payload_bytes
        return max(1, ceil_div(total, self.flit_size))

    def transfer(self, payload_bytes: int, cycle: int) -> int:
        """Push one packet at ``cycle``; returns its arrival cycle."""
        serialize = self.transfer_flits(payload_bytes) * self.flit_cycles
        start = max(cycle, self.busy_until)
        self.busy_until = start + serialize
        arrival = start + serialize + self.hop_latency
        self.transfers += 1
        self.bytes_moved += payload_bytes
        self.busy_cycles += serialize
        return arrival

    def round_trip(self, request_bytes: int, response_bytes: int,
                   cycle: int) -> int:
        """Request out + response back; returns total cycles spent."""
        arrival = self.transfer(request_bytes, cycle)
        # the response is priced on the same (bidirectional) link model
        back = self.transfer_flits(response_bytes) * self.flit_cycles
        self.transfers += 1
        self.bytes_moved += response_bytes
        self.busy_cycles += back
        return (arrival - cycle) + back + self.hop_latency

    def record(self) -> Dict[str, int]:
        return {
            "src": self.src,
            "dst": self.dst,
            "transfers": int(self.transfers),
            "bytes_moved": int(self.bytes_moved),
            "busy_cycles": int(self.busy_cycles),
        }


class PeerFabric:
    """All-to-all peer links between ``num_devices`` GPUs."""

    def __init__(self, num_devices: int, flit_size: int = 32,
                 hop_latency: int = 60, header_bytes: int = 16) -> None:
        self.num_devices = num_devices
        self._links: Dict[Tuple[int, int], PeerLink] = {}
        for src in range(num_devices):
            for dst in range(num_devices):
                if src != dst:
                    self._links[(src, dst)] = PeerLink(
                        src=src, dst=dst, flit_size=flit_size,
                        hop_latency=hop_latency, header_bytes=header_bytes,
                    )

    def link(self, src: int, dst: int) -> PeerLink:
        return self._links[(src, dst)]

    def remote_access_cycles(self, src: int, home: int, payload_bytes: int,
                             is_write: bool, cycle: int) -> int:
        """Price one remote access: request to home + response back."""
        link = self._links[(src, home)]
        if is_write:
            return link.round_trip(payload_bytes, 0, cycle)
        return link.round_trip(0, payload_bytes, cycle)

    def records(self) -> List[Dict[str, int]]:
        return [self._links[key].record() for key in sorted(self._links)]

    def total_bytes(self) -> int:
        return sum(link.bytes_moved for link in self._links.values())

    def total_transfers(self) -> int:
        return sum(link.transfers for link in self._links.values())


@dataclass
class DirectoryEntry:
    """Directory state for one shared page."""

    vpn: int
    home: int
    sharers: Set[int] = field(default_factory=set)
    reads: int = 0
    writes: int = 0
    atomics: int = 0


class PageDirectory:
    """Home-node directory over the shared pages of a multi-GPU system.

    Tracks, per virtual page, the home device and the set of devices that
    have accessed it. The directory is both a coherence-traffic model
    (every remote access notionally consults the home node) and the
    work-list of the cross-GPU detector: only pages with more than one
    sharer — or a remote sharer at all — can carry cross-device races.
    """

    def __init__(self, page_size: int = 4096) -> None:
        self.page_size = page_size
        self._shift = page_size.bit_length() - 1
        self._entries: Dict[int, DirectoryEntry] = {}
        self.lookups = 0

    def register_page(self, vpn: int, home: int) -> None:
        if vpn not in self._entries:
            self._entries[vpn] = DirectoryEntry(vpn=vpn, home=home)

    def home_of(self, vpn: int) -> int:
        return self._entries[vpn].home

    def is_shared_vpn(self, vpn: int) -> bool:
        return vpn in self._entries

    def note_access(self, vpn: int, device: int, kind: Any) -> DirectoryEntry:
        """Record one access to a shared page; returns the entry."""
        self.lookups += 1
        entry = self._entries[vpn]
        entry.sharers.add(device)
        # AccessKind: READ=0 / WRITE=1 / ATOMIC=2 (int-valued enum)
        k = int(kind)
        if k == 0:
            entry.reads += 1
        elif k == 1:
            entry.writes += 1
        else:
            entry.atomics += 1
        return entry

    def entries(self) -> List[DirectoryEntry]:
        return [self._entries[vpn] for vpn in sorted(self._entries)]

    def multi_sharer_pages(self) -> List[DirectoryEntry]:
        return [e for e in self.entries() if len(e.sharers) > 1]

    def record(self) -> Dict[str, Any]:
        return {
            "pages": len(self._entries),
            "multi_sharer_pages": len(self.multi_sharer_pages()),
            "lookups": int(self.lookups),
        }
