"""Legacy detector-hook interface, bridged onto the event pipeline.

Race detectors (the hardware RDUs of :mod:`repro.core`, the software
baselines of :mod:`repro.swdetect`) implement :class:`DetectorHooks`: a
flat callback interface that predates the unified event pipeline of
:mod:`repro.events`. The execution core no longer calls these hooks
directly — every architectural event is emitted exactly once on the
simulator's :class:`~repro.events.bus.EventBus`, and an attached detector
rides the bus through the :class:`HooksSubscriber` adapter (at
:data:`~repro.events.bus.PRIORITY_DETECTOR`, so it acts before passive
observers and the metrics collector see the combined effect).

Every timed hook may return a :class:`~repro.events.effects.TimingEffect`
describing cycles the *issuing warp* must additionally stall (software
instrumentation, barrier shadow invalidation, ...). Hardware RDU shadow
traffic that does not stall the warp is injected by the detector directly
into the memory system it holds a handle to.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.types import WarpAccess
from repro.events.bus import Subscriber
from repro.events.effects import NO_EFFECT, TimingEffect
from repro.events.records import (
    AccessIssued,
    BarrierReleased,
    BlockEnded,
    BlockStarted,
    FenceIssued,
    KernelEnded,
    KernelStarted,
    LockAcquired,
    LockReleased,
)

__all__ = [
    "DetectorHooks",
    "HooksSubscriber",
    "NO_EFFECT",
    "NULL_DETECTOR",
    "TimingEffect",
]


class DetectorHooks:
    """No-op base detector: simulate with race detection disabled."""

    #: extra identifier bits attached to global memory request packets
    request_id_bits: int = 0

    def on_kernel_start(self, launch, device_mem) -> None:
        """A kernel is about to execute (allocate shadow state here)."""

    def on_kernel_end(self) -> None:
        """The kernel finished (implicit closing barrier)."""

    def on_block_start(self, block) -> None:
        """A thread block was dispatched onto an SM."""

    def on_block_end(self, block) -> None:
        """A thread block retired."""

    def on_warp_access(self, access: WarpAccess, now: int,
                       lane_l1_hit: Optional[Sequence[bool]] = None) -> TimingEffect:
        """A warp memory instruction executed (shared/global/atomic)."""
        return NO_EFFECT

    def on_barrier(self, block, now: int) -> TimingEffect:
        """A block-wide barrier completed (shadow invalidation point)."""
        return NO_EFFECT

    def on_fence(self, warp, now: int) -> TimingEffect:
        """A warp completed a memory-fence instruction."""
        return NO_EFFECT

    def on_lock_acquire(self, thread, addr: int) -> int:
        """A thread acquired the lock at ``addr``; return its new signature."""
        return thread.lock_sig

    def on_lock_release(self, thread, addr: int) -> int:
        """A thread released the lock at ``addr``; return its new signature."""
        return 0 if not thread.held_locks else thread.lock_sig


#: Singleton null detector used when detection is off.
NULL_DETECTOR = DetectorHooks()


class HooksSubscriber(Subscriber):
    """Adapter: subscribe a :class:`DetectorHooks` detector to the bus.

    Translates each typed event record into the corresponding legacy hook
    call, so existing detectors participate in the unified pipeline
    unchanged. Lock events double as signature queries: the wrapped
    detector's return value is forwarded as the chain's answer.
    """

    def __init__(self, hooks: DetectorHooks) -> None:
        self.hooks = hooks

    @property
    def request_id_bits(self) -> int:  # type: ignore[override]
        return self.hooks.request_id_bits

    def on_kernel_start(self, ev: KernelStarted) -> None:
        self.hooks.on_kernel_start(ev.launch, ev.device_mem)

    def on_kernel_end(self, ev: KernelEnded) -> None:
        self.hooks.on_kernel_end()

    def on_block_start(self, ev: BlockStarted) -> None:
        self.hooks.on_block_start(ev.block)

    def on_block_end(self, ev: BlockEnded) -> None:
        self.hooks.on_block_end(ev.block)

    def on_access(self, ev: AccessIssued) -> Optional[TimingEffect]:
        return self.hooks.on_warp_access(ev.access, ev.cycle,
                                         lane_l1_hit=ev.lane_l1_hit)

    def on_barrier(self, ev: BarrierReleased) -> Optional[TimingEffect]:
        return self.hooks.on_barrier(ev.block, ev.cycle)

    def on_fence(self, ev: FenceIssued) -> Optional[TimingEffect]:
        return self.hooks.on_fence(ev.warp, ev.cycle)

    def on_lock_acquired(self, ev: LockAcquired) -> Optional[int]:
        return self.hooks.on_lock_acquire(ev.thread, ev.addr)

    def on_lock_released(self, ev: LockReleased) -> Optional[int]:
        return self.hooks.on_lock_release(ev.thread, ev.addr)
