"""Hook interfaces through which detectors observe the GPU substrate.

The GPU package depends only on :mod:`repro.common`; race detectors (the
hardware RDUs of :mod:`repro.core`, the software baselines of
:mod:`repro.swdetect`) plug in by implementing :class:`DetectorHooks`. Every
hook may return a :class:`TimingEffect` describing cycles the *issuing warp*
must additionally stall (software instrumentation, barrier shadow
invalidation, ...). Hardware RDU shadow traffic that does not stall the warp
is injected by the detector directly into the memory system it holds a
handle to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.types import WarpAccess


@dataclass(frozen=True)
class TimingEffect:
    """Extra cost a hook imposes on the hooked event.

    ``stall_cycles`` delays the issuing warp (or, for barriers, the release
    of the whole block). ``extra_instructions`` inflates the dynamic
    instruction count (software instrumentation executes real instructions).
    """

    stall_cycles: int = 0
    extra_instructions: int = 0


NO_EFFECT = TimingEffect()


class DetectorHooks:
    """No-op base detector: simulate with race detection disabled."""

    #: extra identifier bits attached to global memory request packets
    request_id_bits: int = 0

    def on_kernel_start(self, launch, device_mem) -> None:
        """A kernel is about to execute (allocate shadow state here)."""

    def on_kernel_end(self) -> None:
        """The kernel finished (implicit closing barrier)."""

    def on_block_start(self, block) -> None:
        """A thread block was dispatched onto an SM."""

    def on_block_end(self, block) -> None:
        """A thread block retired."""

    def on_warp_access(self, access: WarpAccess, now: int,
                       lane_l1_hit: Optional[Sequence[bool]] = None) -> TimingEffect:
        """A warp memory instruction executed (shared/global/atomic)."""
        return NO_EFFECT

    def on_barrier(self, block, now: int) -> TimingEffect:
        """A block-wide barrier completed (shadow invalidation point)."""
        return NO_EFFECT

    def on_fence(self, warp, now: int) -> TimingEffect:
        """A warp completed a memory-fence instruction."""
        return NO_EFFECT

    def on_lock_acquire(self, thread, addr: int) -> int:
        """A thread acquired the lock at ``addr``; return its new signature."""
        return thread.lock_sig

    def on_lock_release(self, thread, addr: int) -> int:
        """A thread released the lock at ``addr``; return its new signature."""
        return 0 if not thread.held_locks else thread.lock_sig


#: Singleton null detector used when detection is off.
NULL_DETECTOR = DetectorHooks()
