"""Memory access coalescing (paper §II-A).

Consecutive global/local accesses from the lanes of a warp are combined into
the minimum set of aligned memory transactions, the unit the caches and DRAM
operate on. We implement the Fermi-style scheme: lanes are grouped by the
128-byte segment they touch; a segment's transaction is then shrunk to 64 or
32 bytes when the lanes only span half/quarter of it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.bitops import align_down
from repro.common.types import LaneAccess, Transaction

_SEGMENT = 128


def coalesce(lanes: Sequence[LaneAccess], is_write: bool,
             is_shadow: bool = False) -> List[Transaction]:
    """Coalesce lane accesses into aligned 32/64/128-byte transactions.

    Returns transactions ordered by base address (deterministic). Lane
    accesses that straddle a 128-byte boundary contribute to both segments,
    like hardware's replay mechanism.
    """
    segments: Dict[int, Tuple[int, int]] = {}  # seg base -> (lo, hi) touched
    for la in lanes:
        lo, hi = la.footprint()
        seg = align_down(lo, _SEGMENT)
        while seg < hi:
            s_lo = max(lo, seg)
            s_hi = min(hi, seg + _SEGMENT)
            if seg in segments:
                p_lo, p_hi = segments[seg]
                segments[seg] = (min(p_lo, s_lo), max(p_hi, s_hi))
            else:
                segments[seg] = (s_lo, s_hi)
            seg += _SEGMENT

    out: List[Transaction] = []
    for seg in sorted(segments):
        lo, hi = segments[seg]
        out.extend(_shrink(seg, lo, hi, is_write, is_shadow))
    return out


def _shrink(seg: int, lo: int, hi: int, is_write: bool,
            is_shadow: bool) -> List[Transaction]:
    """Shrink one 128B segment transaction to 64B/32B when possible."""
    # try the two 64-byte halves
    for half in (seg, seg + 64):
        if half <= lo and hi <= half + 64:
            # try the two 32-byte quarters of that half
            for quarter in (half, half + 32):
                if quarter <= lo and hi <= quarter + 32:
                    return [Transaction(quarter, 32, is_write, is_shadow)]
            return [Transaction(half, 64, is_write, is_shadow)]
    return [Transaction(seg, _SEGMENT, is_write, is_shadow)]


def transactions_for_lines(line_addrs: Sequence[int], line_size: int,
                           is_write: bool, is_shadow: bool = False) -> List[Transaction]:
    """Build one transaction per distinct cache line (used for shadow traffic)."""
    seen = sorted(set(align_down(a, line_size) for a in line_addrs))
    return [Transaction(a, line_size, is_write, is_shadow) for a in seen]
