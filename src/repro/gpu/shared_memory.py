"""Banked shared memory conflict model (paper §II-A).

Shared memory is divided into ``num_banks`` banks of ``bank_width`` bytes,
interleaved by address. A warp's shared access completes in one pass when
every lane maps to a distinct bank (or lanes reading the same word
broadcast); lanes colliding on a bank serialize into extra passes.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

from repro.common.types import LaneAccess


class SharedMemoryModel:
    """Computes bank-conflict serialization for warp shared accesses."""

    def __init__(self, num_banks: int, bank_width: int) -> None:
        self.num_banks = num_banks
        self.bank_width = bank_width

    def bank_of(self, addr: int) -> int:
        """Bank index serving byte address ``addr``."""
        return (addr // self.bank_width) % self.num_banks

    def row_of(self, addr: int) -> int:
        """Row (word line across banks) containing byte address ``addr``."""
        return addr // (self.bank_width * self.num_banks)

    def conflict_passes(self, lanes: Sequence[LaneAccess]) -> int:
        """Number of serialized passes needed to service the lane set.

        Same-word accesses broadcast (count once per bank/word pair);
        different words in the same bank serialize.
        """
        per_bank: Dict[int, Set[int]] = {}
        for la in lanes:
            word = la.addr // self.bank_width
            per_bank.setdefault(word % self.num_banks, set()).add(word)
        if not per_bank:
            return 0
        return max(len(words) for words in per_bank.values())

    def rows_touched(self, lanes: Sequence[LaneAccess]) -> Set[int]:
        """Distinct shared-memory rows a lane set touches.

        Used by the Fig. 8 experiment: when shared-memory shadow entries
        live in global memory, each distinct row can map to a distinct
        shadow cache line, multiplying the shadow fetches per access.
        """
        return {self.row_of(la.addr) for la in lanes}
