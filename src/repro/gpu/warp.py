"""Warp-lockstep execution of kernel thread generators.

A :class:`Warp` owns up to ``warp_size`` thread generators. Each scheduling
step the warp (1) advances every live lane that has no pending op, (2) groups
pending ops by :func:`repro.gpu.ops.group_key` — lanes in the same group
execute as one SIMD instruction, distinct groups serialize (branch
divergence) — and (3) hands one group to the SM for execution.

Lockstep ordering is exactly the property HAccRG's warp-aware race
suppression relies on (§III-A "Impact of Warps on Reporting Races"), so the
warp model is the fidelity-critical piece of the substrate.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.gpu.ops import (
    OP_ATOMIC,
    OP_BARRIER,
    OP_LOAD,
    OP_LOCK,
    OP_STORE,
    group_key,
)

#: opcodes whose group key includes (space, size) — see :func:`group_key`
_MEM_CODES = frozenset((OP_LOAD, OP_STORE, OP_ATOMIC))

#: Sentinel stored in ``pending`` for a finished lane.
_DONE = None


class ThreadState:
    """Execution state of one lane: its generator plus lock/critical state."""

    __slots__ = ("gen", "pending", "send_value", "done", "global_tid",
                 "lock_sig", "held_locks", "critical_depth")

    def __init__(self, gen: Generator, global_tid: int) -> None:
        self.gen = gen
        self.pending: Optional[tuple] = None
        self.send_value: Any = None
        self.done = False
        self.global_tid = global_tid
        # HAccRG atomic-ID state (maintained by the lock unit, read by RDUs)
        self.lock_sig = 0           # Bloom signature of held locks
        self.held_locks: List[int] = []
        self.critical_depth = 0

    def advance(self) -> None:
        """Resume the generator once, capturing the next yielded op."""
        try:
            self.pending = self.gen.send(self.send_value)
        except StopIteration:
            self.pending = _DONE
            self.done = True
        self.send_value = None


class Warp:
    """A warp: lockstep bundle of lanes plus its scheduling/timing state."""

    __slots__ = ("warp_id", "warp_in_block", "block", "lanes", "ready_at",
                 "at_barrier", "fence_id", "pc", "finished", "retries",
                 "lock_touched", "_pairs")

    def __init__(self, warp_id: int, warp_in_block: int, block,
                 lanes: Sequence[ThreadState]) -> None:
        self.warp_id = warp_id              # grid-wide unique
        self.warp_in_block = warp_in_block
        self.block = block
        self.lanes: List[ThreadState] = list(lanes)
        self.ready_at = 0                   # SM cycle at which issue is legal
        self.at_barrier = False
        self.fence_id = 0                   # per-warp fence epoch (§III-C)
        self.pc = 0                         # dynamic op-group counter
        self.finished = False
        self.retries = 0                    # consecutive failed lock attempts
        # sticky: set on the warp's first lock-acquire group; while False,
        # every lane has lock_sig == 0 and critical_depth == 0, so decode
        # can skip the per-lane lock-state reads
        self.lock_touched = False
        # cached live (lane, thread) pairs; lanes only die inside
        # next_group's generator pump, which rebuilds the cache
        self._pairs: Optional[List[Tuple[int, ThreadState]]] = None

    # ------------------------------------------------------------------

    def live_lanes(self) -> List[Tuple[int, ThreadState]]:
        """(lane index, state) pairs for lanes that have not finished."""
        return [(i, t) for i, t in enumerate(self.lanes) if not t.done]

    def refill(self) -> None:
        """Advance every live lane that has no pending op.

        The generator pump is inlined (rather than calling
        :meth:`ThreadState.advance` per lane) — this is the innermost loop
        of functional simulation.
        """
        for t in self.lanes:
            if not t.done and t.pending is _DONE:
                try:
                    t.pending = t.gen.send(t.send_value)
                except StopIteration:
                    t.pending = _DONE
                    t.done = True
                t.send_value = None

    def check_finished(self) -> bool:
        """Mark and report completion once every lane's generator is done."""
        if not self.finished and all(t.done for t in self.lanes):
            self.finished = True
        return self.finished

    def next_group(self) -> Optional[Tuple[tuple, List[Tuple[int, ThreadState]]]]:
        """Select the next SIMD group to issue.

        Returns ``(group_key, [(lane, thread), ...])`` or ``None`` when the
        warp has nothing issuable (finished, or all lanes parked at a
        barrier). Barrier groups are deferred until *every* live lane is at
        the barrier, matching reconvergence-before-sync semantics; among
        divergent non-barrier groups the one whose lowest lane index is
        smallest issues first (deterministic immediate-post-dominator-free
        approximation of a SIMT stack).
        """
        if self.finished:
            return None

        # Single merged sweep over the cached live pairs: pump each lane's
        # generator if it has no pending op (the refill), classify the op,
        # and track group-key homogeneity inline — one pass instead of
        # refill + check_finished + regroup + homogeneity scan. Lanes only
        # die inside this pump, so the live-pair list is reusable across
        # calls; a converged warp (the overwhelmingly common case) issues
        # the cached list itself, with no per-call tuple or list builds.
        pairs = self._pairs
        if pairs is None:
            pairs = self._pairs = [
                (i, t) for i, t in enumerate(self.lanes) if not t.done
            ]
        barrier_lanes = 0
        any_dead = False
        op0: Optional[tuple] = None
        code0 = 0
        f1 = f3 = 0
        is_mem = False
        homogeneous = True
        for pair in pairs:
            t = pair[1]
            op = t.pending
            if op is _DONE:
                try:
                    op = t.gen.send(t.send_value)
                except StopIteration:
                    t.pending = _DONE
                    t.send_value = None
                    t.done = True
                    any_dead = True
                    continue
                t.pending = op
                t.send_value = None
            if op[0] == OP_BARRIER:
                barrier_lanes += 1
                continue
            if op0 is None:
                op0 = op
                code0 = op[0]
                is_mem = code0 in _MEM_CODES
                if is_mem:
                    f1 = op[1]
                    f3 = op[3]
            elif homogeneous and (
                    op[0] != code0
                    or (is_mem and (op[1] != f1 or op[3] != f3))):
                homogeneous = False

        if any_dead:
            pairs = self._pairs = [p for p in pairs if not p[1].done]

        if op0 is None:
            if barrier_lanes > 0:
                self.at_barrier = True
            elif not pairs:
                self.finished = True
            return None

        if homogeneous and barrier_lanes == 0:
            return group_key(op0), pairs

        groups: Dict[tuple, List[Tuple[int, ThreadState]]] = {}
        for pair in pairs:
            op = pair[1].pending
            if op[0] == OP_BARRIER:
                continue
            groups.setdefault(group_key(op), []).append(pair)

        # Lock-acquire groups issue last: lanes that already hold a lock
        # must drain their critical sections before spinners retry, which
        # is how the divergent do-while spin-lock idiom behaves on real
        # SIMT hardware (the acquiring branch runs while losers loop).
        key = min(groups,
                  key=lambda k: (k[0] == OP_LOCK, groups[k][0][0]))
        return key, groups[key]

    def release_barrier(self) -> None:
        """Resume all lanes parked at a barrier (block-wide release)."""
        if not self.at_barrier:
            raise SimulationError("release_barrier on a warp not at barrier")
        for t in self.lanes:
            if not t.done and t.pending is not None and t.pending[0] == OP_BARRIER:
                t.pending = _DONE
                t.send_value = None
        self.at_barrier = False

    def complete_lane(self, t: ThreadState, result: Any = None) -> None:
        """Mark one lane's pending op as executed, queueing its result."""
        t.pending = _DONE
        t.send_value = result

    def note_fence(self) -> int:
        """Record completion of a warp-wide fence; returns the new epoch."""
        self.fence_id += 1
        return self.fence_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fin" if self.finished else ("bar" if self.at_barrier else "run")
        return f"Warp(id={self.warp_id}, blk={self.block.block_id}, {state})"
