"""Warp-lockstep execution of kernel thread generators.

A :class:`Warp` owns up to ``warp_size`` thread generators. Each scheduling
step the warp (1) advances every live lane that has no pending op, (2) groups
pending ops by :func:`repro.gpu.ops.group_key` — lanes in the same group
execute as one SIMD instruction, distinct groups serialize (branch
divergence) — and (3) hands one group to the SM for execution.

Lockstep ordering is exactly the property HAccRG's warp-aware race
suppression relies on (§III-A "Impact of Warps on Reporting Races"), so the
warp model is the fidelity-critical piece of the substrate.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.gpu.ops import (
    OP_BARRIER,
    OP_LOCK,
    group_key,
)

#: Sentinel stored in ``pending`` for a finished lane.
_DONE = None


class ThreadState:
    """Execution state of one lane: its generator plus lock/critical state."""

    __slots__ = ("gen", "pending", "send_value", "done", "global_tid",
                 "lock_sig", "held_locks", "critical_depth")

    def __init__(self, gen: Generator, global_tid: int) -> None:
        self.gen = gen
        self.pending: Optional[tuple] = None
        self.send_value: Any = None
        self.done = False
        self.global_tid = global_tid
        # HAccRG atomic-ID state (maintained by the lock unit, read by RDUs)
        self.lock_sig = 0           # Bloom signature of held locks
        self.held_locks: List[int] = []
        self.critical_depth = 0

    def advance(self) -> None:
        """Resume the generator once, capturing the next yielded op."""
        try:
            self.pending = self.gen.send(self.send_value)
        except StopIteration:
            self.pending = _DONE
            self.done = True
        self.send_value = None


class Warp:
    """A warp: lockstep bundle of lanes plus its scheduling/timing state."""

    __slots__ = ("warp_id", "warp_in_block", "block", "lanes", "ready_at",
                 "at_barrier", "fence_id", "pc", "finished", "retries")

    def __init__(self, warp_id: int, warp_in_block: int, block,
                 lanes: Sequence[ThreadState]) -> None:
        self.warp_id = warp_id              # grid-wide unique
        self.warp_in_block = warp_in_block
        self.block = block
        self.lanes: List[ThreadState] = list(lanes)
        self.ready_at = 0                   # SM cycle at which issue is legal
        self.at_barrier = False
        self.fence_id = 0                   # per-warp fence epoch (§III-C)
        self.pc = 0                         # dynamic op-group counter
        self.finished = False
        self.retries = 0                    # consecutive failed lock attempts

    # ------------------------------------------------------------------

    def live_lanes(self) -> List[Tuple[int, ThreadState]]:
        """(lane index, state) pairs for lanes that have not finished."""
        return [(i, t) for i, t in enumerate(self.lanes) if not t.done]

    def refill(self) -> None:
        """Advance every live lane that has no pending op."""
        for t in self.lanes:
            if not t.done and t.pending is _DONE:
                t.advance()

    def check_finished(self) -> bool:
        """Mark and report completion once every lane's generator is done."""
        if not self.finished and all(t.done for t in self.lanes):
            self.finished = True
        return self.finished

    def next_group(self) -> Optional[Tuple[tuple, List[Tuple[int, ThreadState]]]]:
        """Select the next SIMD group to issue.

        Returns ``(group_key, [(lane, thread), ...])`` or ``None`` when the
        warp has nothing issuable (finished, or all lanes parked at a
        barrier). Barrier groups are deferred until *every* live lane is at
        the barrier, matching reconvergence-before-sync semantics; among
        divergent non-barrier groups the one whose lowest lane index is
        smallest issues first (deterministic immediate-post-dominator-free
        approximation of a SIMT stack).
        """
        self.refill()
        if self.check_finished():
            return None

        groups: Dict[tuple, List[Tuple[int, ThreadState]]] = {}
        barrier_lanes = 0
        live = 0
        for i, t in enumerate(self.lanes):
            if t.done:
                continue
            live += 1
            op = t.pending
            if op is None:
                raise SimulationError("live lane with no pending op after refill")
            if op[0] == OP_BARRIER:
                barrier_lanes += 1
                continue
            groups.setdefault(group_key(op), []).append((i, t))

        if not groups:
            if barrier_lanes == live and live > 0:
                self.at_barrier = True
            return None

        # Lock-acquire groups issue last: lanes that already hold a lock
        # must drain their critical sections before spinners retry, which
        # is how the divergent do-while spin-lock idiom behaves on real
        # SIMT hardware (the acquiring branch runs while losers loop).
        key = min(groups,
                  key=lambda k: (k[0] == OP_LOCK, groups[k][0][0]))
        return key, groups[key]

    def release_barrier(self) -> None:
        """Resume all lanes parked at a barrier (block-wide release)."""
        if not self.at_barrier:
            raise SimulationError("release_barrier on a warp not at barrier")
        for t in self.lanes:
            if not t.done and t.pending is not None and t.pending[0] == OP_BARRIER:
                t.pending = _DONE
                t.send_value = None
        self.at_barrier = False

    def complete_lane(self, t: ThreadState, result: Any = None) -> None:
        """Mark one lane's pending op as executed, queueing its result."""
        t.pending = _DONE
        t.send_value = result

    def note_fence(self) -> int:
        """Record completion of a warp-wide fence; returns the new epoch."""
        self.fence_id += 1
        return self.fence_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fin" if self.finished else ("bar" if self.at_barrier else "run")
        return f"Warp(id={self.warp_id}, blk={self.block.block_id}, {state})"
