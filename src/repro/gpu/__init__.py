"""GPU execution substrate: a warp-lockstep, event-driven GPGPU simulator.

This package is the reproduction's stand-in for GPGPU-Sim. It provides:

- a CUDA-style kernel programming model (:mod:`repro.gpu.kernel`,
  :mod:`repro.gpu.context`): kernels are Python generator functions that
  yield device operations (loads, stores, atomics, barriers, fences, lock
  markers) and receive load results back;
- warp-lockstep execution with divergence masking (:mod:`repro.gpu.warp`);
- thread-block lifecycle and barrier semantics (:mod:`repro.gpu.block`);
- streaming multiprocessors with round-robin warp scheduling and
  event-driven timing (:mod:`repro.gpu.sm`);
- memory coalescing (:mod:`repro.gpu.coalescer`) and banked shared memory
  (:mod:`repro.gpu.shared_memory`);
- the top-level :class:`repro.gpu.simulator.GPUSimulator` that dispatches
  blocks to SMs, advances SMs in global-time order, and exposes hook points
  for the race-detection units.
"""

from repro.gpu.device import DeviceMemory, DeviceArray
from repro.gpu.kernel import Kernel, KernelLaunch
from repro.gpu.simulator import GPUSimulator, SimulationResult

__all__ = [
    "DeviceMemory",
    "DeviceArray",
    "Kernel",
    "KernelLaunch",
    "GPUSimulator",
    "SimulationResult",
]
