"""Top-level GPU simulator: block dispatch and global-time advancement.

:class:`GPUSimulator` owns the SM array, the memory system, the device
memory, the lock table, and the :class:`~repro.events.bus.EventBus` through
which everything observes the run. Kernel launches dispatch blocks
round-robin across SMs (respecting residency limits) and the run loop
always advances the SM with the smallest local cycle, keeping memory-system
arrival times near-monotonic so DRAM queueing and bandwidth accounting stay
meaningful.

Consumers attach to the bus rather than to the simulator internals: a race
detector subscribes (through the :class:`~repro.gpu.hooks.HooksSubscriber`
adapter) at detector priority via :meth:`GPUSimulator.attach_detector`;
passive observers (tracers, parity checkers, experiment probes) via
:meth:`GPUSimulator.add_observer`; and the always-present
:class:`~repro.events.metrics.MetricsCollector` rides at metrics priority
and owns every dynamic statistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.common.config import GPUConfig
from repro.common.types import Dim3, KernelStats
from repro.events import (
    EventBus,
    MetricsCollector,
    PhaseStats,
    Subscriber,
)
from repro.events.bus import PRIORITY_DETECTOR, PRIORITY_METRICS, PRIORITY_OBSERVER
from repro.gpu.atomics import LockTable
from repro.gpu.block import ThreadBlock
from repro.gpu.device import DeviceArray, DeviceMemory, device_alloc
from repro.gpu.hooks import NULL_DETECTOR, DetectorHooks, HooksSubscriber
from repro.gpu.kernel import Kernel, KernelLaunch
from repro.gpu.sm import StreamingMultiprocessor
from repro.memory.system import MemorySystem


@dataclass
class SimulationResult:
    """Outcome of one kernel launch."""

    cycles: int
    stats: KernelStats
    dram_utilization: float
    dram_bytes: int
    dram_shadow_bytes: int
    l1_hit_rate: float
    l2_hit_rate: float
    sm_cycles: List[int] = field(default_factory=list)
    blocks_run: int = 0
    phases: Optional[PhaseStats] = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationResult(cycles={self.cycles}, "
            f"instr={self.stats.instructions}, "
            f"dram_util={self.dram_utilization:.3f})"
        )


class GPUSimulator:
    """The whole GPU: SMs + memory system + event bus + device memory."""

    def __init__(self, config: Optional[GPUConfig] = None,
                 detector: Optional[DetectorHooks] = None,
                 timing_enabled: bool = True) -> None:
        self.config = config or GPUConfig()
        self.timing_enabled = timing_enabled
        self.device_mem = DeviceMemory()
        self.memory = MemorySystem(self.config, timing_enabled=timing_enabled)
        self.lock_table = LockTable()
        self.bus = EventBus()
        self.metrics = self.bus.subscribe(
            MetricsCollector(issue_width_cycles=self.config.warp_issue_cycles),
            PRIORITY_METRICS,
        )
        self.detector: DetectorHooks = NULL_DETECTOR
        self._detector_sub: Optional[HooksSubscriber] = None
        self.warp_regrouping = False
        self.sync_id_lazy = True
        if detector is not None:
            self.attach_detector(detector)
        self.sms = [
            StreamingMultiprocessor(i, self.config, self)
            for i in range(self.config.num_sms)
        ]
        self._pending_blocks: List[ThreadBlock] = []
        self._launch: Optional[KernelLaunch] = None
        self._blocks_run = 0
        #: recipe for rebuilding this simulator's launch plan in a shard
        #: worker: ``(module, function, payload)`` where
        #: ``module.function(payload, sim)`` returns the launch sequence.
        #: ``None`` (the default) keeps execution on the inline path.
        self.launch_source: Optional[Tuple[str, str, Any]] = None
        self._scheduler: Optional[Any] = None

    # ------------------------------------------------------------------
    # host API

    def malloc(self, name: str, length: int, itemsize: int = 4) -> DeviceArray:
        """``cudaMalloc``: allocate a global array and return its view."""
        return device_alloc(self.device_mem, name, length, itemsize)

    def attach_detector(self, detector: DetectorHooks) -> None:
        """Install a race detector before launching (replaces the current one).

        The detector is bridged onto the event bus at detector priority so
        it observes every event before passive observers and the metrics
        collector.
        """
        if self._detector_sub is not None:
            self.bus.unsubscribe(self._detector_sub)
        self.detector = detector
        self._detector_sub = HooksSubscriber(detector)
        self.bus.subscribe(self._detector_sub, PRIORITY_DETECTOR)
        self.warp_regrouping = getattr(
            getattr(detector, "config", None), "warp_regrouping", False
        )
        self.sync_id_lazy = getattr(
            getattr(detector, "config", None), "sync_id_lazy_increment", True
        )

    def add_observer(self, subscriber: Subscriber,
                     priority: int = PRIORITY_OBSERVER) -> Subscriber:
        """Subscribe a passive observer (tracer, probe) to the event bus."""
        return self.bus.subscribe(subscriber, priority)

    def remove_observer(self, subscriber: Subscriber) -> bool:
        """Detach a previously added observer."""
        return self.bus.unsubscribe(subscriber)

    def launch(self, kernel: Kernel, grid, block, args: Sequence[Any] = ()
               ) -> SimulationResult:
        """Run ``kernel<<<grid, block>>>(*args)`` to completion."""
        launch = KernelLaunch(kernel, Dim3.of(grid), Dim3.of(block), tuple(args))
        return self.run(launch)

    # ------------------------------------------------------------------

    def run(self, launch: KernelLaunch) -> SimulationResult:
        """Execute one kernel launch and return its simulation result.

        The scheduler is chosen once, at the first launch, and reused for
        the simulator's lifetime: the inline heap loop, or — when
        ``config.sm_workers > 0`` and the run is shard-eligible — the
        epoch-sliced sharded path (``docs/ENGINE.md``, "Epochs and
        sharding"), which is bit-identical to inline.
        """
        if self._scheduler is None:
            self._scheduler = self._select_scheduler()
        return self._scheduler.run(launch)

    def _select_scheduler(self) -> Any:
        from repro.gpu.epoch import EpochScheduler, InlineScheduler
        if self._shard_eligible():
            return EpochScheduler(self)
        return InlineScheduler(self)

    def _shard_eligible(self) -> bool:
        """Whether this simulator's runs can take the sharded path.

        Anything the shard workers cannot reproduce or the coordinator
        cannot replay falls back to the inline path silently — sharding is
        an execution strategy, never a behaviour change:

        - a ``launch_source`` recipe must exist (workers rebuild the plan
          rather than unpickle live generator state);
        - the current process must be able to spawn children (campaign /
          serve workers are daemonic and cannot);
        - the detector must be absent or a plain hardware
          :class:`~repro.core.detector.HAccRGDetector` (the Fig. 8
          shared-shadow-in-global variant stalls shared accesses through
          the *global* memory system, which is coordinator state);
        - every other bus subscriber must declare ``replay_safe``.
        """
        if self.config.sm_workers <= 0:
            return False
        if self.launch_source is None:
            return False
        import multiprocessing
        if multiprocessing.current_process().daemon:
            return False
        detector = self.detector
        if detector is not NULL_DETECTOR:
            from repro.core.detector import HAccRGDetector
            # exact type: subclasses (e.g. the software baseline) carry
            # semantics the shard-side rebuild would silently drop
            if type(detector) is not HAccRGDetector:
                return False
            if detector.config.shared_shadow_in_global:
                return False
        for sub in self.bus.subscribers:
            if sub is self.metrics or sub is self._detector_sub:
                continue
            if not getattr(sub, "replay_safe", False):
                return False
        return True

    def close(self) -> None:
        """Release scheduler resources (shard worker processes, queues)."""
        if self._scheduler is not None:
            self._scheduler.close()
            self._scheduler = None

    def on_block_retired(self, sm: StreamingMultiprocessor) -> None:
        """SM callback: a block retired; dispatch a pending one if possible."""
        if self._pending_blocks and self._launch is not None:
            if sm.can_accept(self._launch):
                sm.admit(self._pending_blocks.pop(0))
                self._blocks_run += 1

    # ------------------------------------------------------------------

    def _collect(self, launch: KernelLaunch,
                 sm_cycles: Optional[List[int]] = None,
                 blocks_run: Optional[int] = None) -> SimulationResult:
        """Assemble the launch result — the ONE aggregation code path.

        Both schedulers end here: the inline path reads SM cycles and the
        dispatch count off the live objects; the sharded path passes the
        merged per-SM cycles and the mirror's dispatch count explicitly.
        Every derived quantity (``cycles``, ``dram_utilization``,
        ``sm_cycles``, hit rates, phases) is computed from the same inputs
        by the same expressions in both modes.
        """
        stats = self.metrics.total_stats()
        if sm_cycles is None:
            sm_cycles = [sm.cycle for sm in self.sms]
        if blocks_run is None:
            blocks_run = self._blocks_run
        cycles = max(sm_cycles, default=0)
        l1_acc, l1_hit, _ = self.memory.l1_stats_total()
        l2_acc, l2_hit, _ = self.memory.l2_stats_total()
        return SimulationResult(
            cycles=cycles,
            stats=stats,
            dram_utilization=self.memory.dram_utilization(cycles),
            dram_bytes=self.memory.dram_bytes(),
            dram_shadow_bytes=self.memory.dram_shadow_bytes(),
            l1_hit_rate=l1_hit / l1_acc if l1_acc else 0.0,
            l2_hit_rate=l2_hit / l2_acc if l2_acc else 0.0,
            sm_cycles=list(sm_cycles),
            blocks_run=blocks_run,
            phases=self.metrics.snapshot(
                shadow_traffic_bytes=self.memory.shadow_traffic_bytes()
            ),
        )
