"""Kernel and launch descriptors.

A :class:`Kernel` wraps a generator function plus its declared shared-memory
arrays. A :class:`KernelLaunch` binds a kernel to a grid/block shape and
arguments — the unit the simulator executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Sequence, Tuple

from repro.common.bitops import align_up
from repro.common.errors import KernelError
from repro.common.types import Dim3, MemSpace
from repro.gpu.device import DeviceArray

#: Declaration of one shared-memory array: (element count, element size).
SharedDecl = Tuple[int, int]


@dataclass
class Kernel:
    """A device kernel: generator function + shared-memory declarations.

    ``shared`` maps array names to ``(length, itemsize)``. Every block
    executing the kernel gets its own instance of each declared array,
    laid out sequentially (16-byte aligned) in the block's shared memory.
    """

    fn: Callable[..., Any]
    name: str = ""
    shared: Dict[str, SharedDecl] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = getattr(self.fn, "__name__", "kernel")

    def shared_layout(self, shared_capacity: int) -> Dict[str, Tuple[int, int, int]]:
        """Compute {name: (offset, itemsize, length)} within block shared mem."""
        offset = 0
        layout: Dict[str, Tuple[int, int, int]] = {}
        for name, (length, itemsize) in self.shared.items():
            offset = align_up(offset, 16)
            layout[name] = (offset, itemsize, length)
            offset += length * itemsize
        if offset > shared_capacity:
            raise KernelError(
                f"kernel {self.name!r} declares {offset}B of shared memory, "
                f"SM provides {shared_capacity}B"
            )
        return layout

    def shared_bytes(self) -> int:
        """Total shared memory bytes this kernel declares per block."""
        offset = 0
        for length, itemsize in self.shared.values():
            offset = align_up(offset, 16) + length * itemsize
        return offset

    def make_shared_arrays(self, shared_capacity: int) -> Dict[str, DeviceArray]:
        """Instantiate the per-block shared arrays (shared-space views)."""
        return {
            name: DeviceArray(MemSpace.SHARED, off, itemsize, length, name=name)
            for name, (off, itemsize, length)
            in self.shared_layout(shared_capacity).items()
        }


@dataclass
class KernelLaunch:
    """One kernel invocation: ``kernel<<<grid, block>>>(*args)``."""

    kernel: Kernel
    grid: Dim3
    block: Dim3
    args: Sequence[Any] = ()

    def __post_init__(self) -> None:
        self.grid = Dim3.of(self.grid)
        self.block = Dim3.of(self.block)

    @property
    def num_blocks(self) -> int:
        return self.grid.count

    @property
    def threads_per_block(self) -> int:
        return self.block.count

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block
