"""Schedulers: the inline heap loop and the epoch-sliced sharded merge loop.

:class:`GPUSimulator.run` delegates to one of two schedulers:

- :class:`InlineScheduler` — the historical single-process path: dispatch
  blocks round-robin, then always step the SM with the smallest local
  cycle. Byte-for-byte the behaviour the repository has always had.
- :class:`EpochScheduler` — SMs are partitioned across spawned shard
  processes (:mod:`repro.gpu.shard`); each runs freely inside a bounded
  *epoch window* against SM-local state, and every interaction with
  globally-visible state parks the SM until the coordinator services it.

The coordinator replays the inline simulator's global order exactly with a
**conservative floor protocol**. For each SM it tracks a *floor*: a cycle
number below which that SM can produce no further globally-visible work —
the head of its unprocessed message queue, or (while the SM is running
ahead) the cycle of its last processed item, since a shard SM's parks and
ordered one-way operations leave it in monotone ``(cycle, seq)`` order.
The merge loop repeatedly services the item of the globally smallest
``(floor, sm_id)``; if that SM's queue is empty, the coordinator *blocks*
on the shared result queue until the laggard reports in. Epoch parks
bound run-ahead, so the laggard always reports within one epoch window.

Because the inline heap loop orders steps by ``(cycle, sm_id)`` and a
shard SM tags everything with one monotone per-SM ``seq`` counter, this
floor order *is* the inline execution order for every globally-visible
effect: L2/DRAM round trips, global shadow checks, device-memory values,
lock-table arbitration, fence/sync signature bookkeeping, and block
dispatch decisions. Recorded bus events are buffered and replayed into
the metrics collector in sorted ``(cycle, sm_id, seq)`` order once every
active SM's floor has passed them. Race reports merge by explicit
``(launch, cycle, sm_id, seq)`` order stamps
(:func:`repro.core.races.merge_ordered_logs`). The result is bit-identical
to the inline path regardless of worker count.

Fault handling is structural, never a hang: a dead worker raises
:class:`~repro.common.errors.ShardCrashError`, a silent one raises
:class:`~repro.common.errors.ShardTimeoutError` after
``REPRO_SHARD_TIMEOUT`` seconds (default 120); both kill the whole worker
fleet first. Retry-with-respawn lives in the callers (harness runner,
fuzz executor) because a deterministic re-run needs a fresh simulator.
"""

from __future__ import annotations

import heapq
import os
import queue as queue_mod
import time
from collections import deque
from dataclasses import replace
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.campaign.pool import SpawnWorker
from repro.common.errors import (
    ShardCrashError,
    ShardTimeoutError,
    SimulationError,
)
from repro.core.races import merge_ordered_logs
from repro.events.records import (
    KernelEnded,
    KernelStarted,
    LockAcquired,
    LockReleased,
)
from repro.events.wire import W_BLOCK_START, replay_entries, replay_targets
from repro.gpu.atomics import apply_atomic
from repro.gpu.block import ThreadBlock
from repro.gpu.ops import OP_ATOMIC, OP_LOAD
from repro.gpu.shard import (
    CMD_END,
    CMD_LAUNCH,
    CMD_RESUME,
    CMD_SETUP,
    DONE,
    END_ACK,
    ERROR,
    OP_FENCE_NOTE,
    OP_SYNC_NOTE,
    PARK_EPOCH,
    PARK_GLOBAL,
    PARK_LOCK,
    PARK_RETIRE,
    PARK_UNLOCK,
    READY,
    shard_main,
)
from repro.gpu.timing import lane_hit_flags

#: wall-clock seconds without any shard progress before declaring a stall
TIMEOUT_ENV = "REPRO_SHARD_TIMEOUT"
DEFAULT_TIMEOUT = 120.0

#: buffered wire entries before an early (floor-bounded) replay flush
FLUSH_THRESHOLD = 65536

_INF = float("inf")

_RUNNING = 0
_DONE = 1


class ResidencyMirror:
    """Coordinator-side mirror of per-SM block residency.

    The coordinator makes every dispatch decision (initial round-robin
    fill and retire-time refill) against this mirror, exactly as the
    inline simulator does against the live SMs. All resident blocks of
    one launch are identical, so counts suffice.
    """

    def __init__(self, config: Any) -> None:
        self.config = config
        self.count = [0] * config.num_sms

    def can_accept(self, sm_id: int, launch: Any) -> bool:
        cfg = self.config
        c = self.count[sm_id]
        if c >= cfg.max_blocks_per_sm:
            return False
        if (c + 1) * launch.threads_per_block > cfg.max_threads_per_sm:
            return False
        shared = launch.kernel.shared_bytes()
        return (c + 1) * shared <= cfg.shared_mem_per_sm

    def admit(self, sm_id: int) -> None:
        self.count[sm_id] += 1

    def retire(self, sm_id: int) -> None:
        self.count[sm_id] -= 1


class InlineScheduler:
    """The historical single-process run loop, extracted verbatim."""

    def __init__(self, sim: Any) -> None:
        self.sim = sim

    def run(self, launch: Any) -> Any:
        sim = self.sim
        if launch.threads_per_block > sim.config.max_threads_per_sm:
            raise SimulationError(
                f"block of {launch.threads_per_block} threads exceeds SM "
                f"capacity {sim.config.max_threads_per_sm}"
            )
        sim._launch = launch
        sim._blocks_run = 0
        sim.bus.emit_kernel_start(
            KernelStarted(launch=launch, device_mem=sim.device_mem)
        )

        sim._pending_blocks = [
            ThreadBlock(launch, bid, sim.config.warp_size,
                        sim.config.shared_mem_per_sm)
            for bid in range(launch.num_blocks)
        ]
        # initial dispatch: fill every SM round-robin up to residency limits
        progress = True
        while sim._pending_blocks and progress:
            progress = False
            for sm in sim.sms:
                if sim._pending_blocks and sm.can_accept(launch):
                    sm.admit(sim._pending_blocks.pop(0))
                    sim._blocks_run += 1
                    progress = True

        # global loop: always advance the laggard SM
        heap = [(sm.cycle, sm.sm_id) for sm in sim.sms if sm.active]
        heapq.heapify(heap)
        while heap:
            _, sm_id = heapq.heappop(heap)
            sm = sim.sms[sm_id]
            if not sm.active:
                continue
            sm.step()
            if sm.active:
                heapq.heappush(heap, (sm.cycle, sm_id))

        sim.bus.emit_kernel_end(KernelEnded())
        return sim._collect(launch)

    def close(self) -> None:
        """Nothing to tear down for the in-process path."""


class _ThreadProxy:
    """Stand-in thread for coordinator-side lock events.

    Carries exactly the two fields the signature chain reads: the lock
    signature *before* the event and whether the thread still holds locks
    after it (clear-on-empty release semantics).
    """

    __slots__ = ("lock_sig", "held_locks")

    def __init__(self, lock_sig: int, held_locks: List[int]) -> None:
        self.lock_sig = lock_sig
        self.held_locks = held_locks


class EpochScheduler:
    """Epoch-sliced sharded execution with a deterministic barrier merge."""

    def __init__(self, sim: Any) -> None:
        self.sim = sim
        cfg = sim.config
        self.timeout = float(os.environ.get(TIMEOUT_ENV, "")
                             or DEFAULT_TIMEOUT)
        self.n_workers = max(1, min(int(cfg.sm_workers), cfg.num_sms))
        # contiguous SM partition across the workers
        base, rem = divmod(cfg.num_sms, self.n_workers)
        self.chunks: List[List[int]] = []
        nxt = 0
        for wid in range(self.n_workers):
            size = base + (1 if wid < rem else 0)
            self.chunks.append(list(range(nxt, nxt + size)))
            nxt += size
        self.owner: Dict[int, int] = {
            sm_id: wid for wid, chunk in enumerate(self.chunks)
            for sm_id in chunk
        }
        self.workers: List[SpawnWorker] = []
        self.result_q: Any = None
        self.launch_idx = -1
        self._started = False
        self._dead = False
        self._sm_cycles: List[int] = [0] * cfg.num_sms
        self._replay_to: List[Any] = []
        # per-launch merge state
        self._pending: Dict[int, Deque[Tuple[int, int, str, Any]]] = {}
        self._status: List[int] = []
        self._last: List[int] = []
        self._buf: List[Tuple[int, int, int, tuple]] = []
        self.mirror: Optional[ResidencyMirror] = None
        self._pending_bids: List[int] = []
        self._blocks_run = 0

    # ------------------------------------------------------------------
    # fleet lifecycle

    def start(self) -> None:
        import multiprocessing

        sim = self.sim
        ctx = multiprocessing.get_context("spawn")
        self.result_q = ctx.Queue()
        self._replay_to = replay_targets(sim.bus, sim.metrics,
                                         sim._detector_sub)
        from repro.core.detector import HAccRGDetector
        det_cfg = (sim.detector.config
                   if isinstance(sim.detector, HAccRGDetector) else None)
        for wid in range(self.n_workers):
            worker = SpawnWorker(ctx, wid, self.result_q, target=shard_main)
            worker.task_q.put((CMD_SETUP, {
                "config": replace(sim.config, sm_workers=0),
                "timing_enabled": sim.timing_enabled,
                "detector": det_cfg,
                "launch_source": sim.launch_source,
                "sm_ids": self.chunks[wid],
                "warp_regrouping": sim.warp_regrouping,
                "sync_id_lazy": sim.sync_id_lazy,
            }))
            self.workers.append(worker)
        ready = 0
        while ready < self.n_workers:
            msg = self._recv()
            if msg[1] == ERROR:
                self._fail(msg[6])
            elif msg[1] == READY:
                ready += 1

    def close(self) -> None:
        for worker in self.workers:
            try:
                worker.stop()
            except Exception:
                pass
        self.workers = []
        if self.result_q is not None:
            try:
                self.result_q.close()
                self.result_q.join_thread()
            except Exception:
                pass
            self.result_q = None

    def _kill_all(self) -> None:
        self._dead = True
        for worker in self.workers:
            try:
                worker.kill()
            except Exception:
                pass

    def _fail(self, payload: Tuple[str, str]) -> None:
        """A shard reported a structured error: kill the fleet and re-raise.

        Simulation errors keep their original type (callers assert on
        ``DeadlockError`` etc.); anything unrecognized becomes a
        :class:`ShardCrashError`.
        """
        name, text = payload
        self._kill_all()
        import repro.common.errors as errors_mod
        exc_cls = getattr(errors_mod, name, None)
        if isinstance(exc_cls, type) and issubclass(exc_cls, Exception):
            raise exc_cls(text)
        raise ShardCrashError(f"shard worker failed with {name}: {text}")

    def _recv(self) -> Tuple:
        """Blocking receive with liveness checks and a stall watchdog."""
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                return self.result_q.get(timeout=0.2)
            except queue_mod.Empty:
                pass
            for worker in self.workers:
                if not worker.process.is_alive():
                    code = worker.process.exitcode
                    self._kill_all()
                    raise ShardCrashError(
                        f"shard worker {worker.worker_id} died mid-epoch "
                        f"(exit code {code}); partial epoch discarded"
                    )
            if time.monotonic() > deadline:
                self._kill_all()
                raise ShardTimeoutError(
                    f"no shard progress within {self.timeout:.1f}s "
                    f"(REPRO_SHARD_TIMEOUT)"
                )

    # ------------------------------------------------------------------
    # one launch

    def run(self, launch: Any) -> Any:
        sim = self.sim
        if launch.threads_per_block > sim.config.max_threads_per_sm:
            raise SimulationError(
                f"block of {launch.threads_per_block} threads exceeds SM "
                f"capacity {sim.config.max_threads_per_sm}"
            )
        if self._dead:
            raise ShardCrashError("shard fleet is dead; build a fresh "
                                  "simulator to retry")
        if not self._started:
            self.start()
            self._started = True
        self.launch_idx += 1
        sim._launch = launch

        det_log = getattr(sim.detector, "log", None)
        if det_log is not None:
            det_log.order_base = (self.launch_idx, -1, 0, 0)
        sim.bus.emit_kernel_start(
            KernelStarted(launch=launch, device_mem=sim.device_mem)
        )

        # dispatch against the residency mirror, exactly the inline order
        num_sms = sim.config.num_sms
        self.mirror = ResidencyMirror(sim.config)
        self._pending_bids = list(range(launch.num_blocks))
        admit_order: List[Tuple[int, int]] = []
        progress = True
        while self._pending_bids and progress:
            progress = False
            for sm_id in range(num_sms):
                if self._pending_bids and self.mirror.can_accept(sm_id,
                                                                 launch):
                    self.mirror.admit(sm_id)
                    admit_order.append((sm_id, self._pending_bids.pop(0)))
                    progress = True
        self._blocks_run = len(admit_order)

        admits_of: Dict[int, List[int]] = {s: [] for s in range(num_sms)}
        for sm_id, bid in admit_order:
            admits_of[sm_id].append(bid)
        for wid, worker in enumerate(self.workers):
            worker.task_q.put((CMD_LAUNCH, self.launch_idx,
                               [(s, admits_of[s]) for s in self.chunks[wid]]))

        # the inline path emits initial BlockStarted events round-robin
        # before the run loop; synthesize them in that exact order (shard
        # recorders suppress their own copies)
        replay_entries(
            [(0, sm_id, i, (W_BLOCK_START, bid))
             for i, (sm_id, bid) in enumerate(admit_order)],
            self._replay_to,
        )

        # per-launch merge state
        self._pending = {s: deque() for s in range(num_sms)}
        self._status = [_RUNNING if admits_of[s] else _DONE
                        for s in range(num_sms)]
        self._last = list(self._sm_cycles)
        self._buf = []

        self._merge_loop()
        self._flush(None)

        # end-of-launch handshake: collect the shared-half race log deltas
        for worker in self.workers:
            worker.task_q.put((CMD_END,))
        logs: Dict[int, Any] = {}
        acks = 0
        while acks < self.n_workers:
            msg = self._recv()
            if msg[1] == END_ACK:
                logs.update(msg[6])
                acks += 1
            elif msg[1] == ERROR:
                self._fail(msg[6])

        if det_log is not None:
            det_log.order_base = (self.launch_idx, 1 << 62, 0, 0)
        sim.bus.emit_kernel_end(KernelEnded())
        if det_log is not None and logs:
            merge_ordered_logs(det_log, [logs[k] for k in sorted(logs)])
        return sim._collect(launch, sm_cycles=list(self._sm_cycles),
                            blocks_run=self._blocks_run)

    # ------------------------------------------------------------------
    # the floor-ordered merge loop

    def _floor(self, sm_id: int) -> float:
        if self._status[sm_id] == _DONE:
            return _INF
        q = self._pending[sm_id]
        return q[0][0] if q else self._last[sm_id]

    def _min_floor(self) -> float:
        return min((self._floor(s) for s in range(len(self._status))
                    if self._status[s] != _DONE), default=_INF)

    def _merge_loop(self) -> None:
        num_sms = len(self._status)
        while True:
            best_sm = -1
            best_key: Tuple[float, int] = (_INF, num_sms)
            for sm_id in range(num_sms):
                if self._status[sm_id] == _DONE:
                    continue
                key = (self._floor(sm_id), sm_id)
                if key < best_key:
                    best_key = key
                    best_sm = sm_id
            if best_sm < 0:
                return
            q = self._pending[best_sm]
            if not q:
                # the globally smallest SM is running ahead of its last
                # report; nothing else may be processed until it checks in
                self._integrate(self._recv())
                continue
            cycle, seq, kind, payload = q.popleft()
            self._last[best_sm] = cycle
            self._process(best_sm, cycle, seq, kind, payload)
            if len(self._buf) >= FLUSH_THRESHOLD:
                self._flush(self._min_floor())

    def _integrate(self, msg: Tuple) -> None:
        sm_id, kind, cycle, seq, ops, events, payload = msg
        if kind == ERROR:
            self._fail(payload)
        if kind in (READY, END_ACK):
            return
        buf = self._buf
        for c, s, rec in events:
            buf.append((c, sm_id, s, rec))
        q = self._pending[sm_id]
        q.extend(ops)
        q.append((cycle, seq, kind, payload))

    def _process(self, sm_id: int, cycle: int, seq: int, kind: str,
                 payload: Any) -> None:
        if kind == PARK_GLOBAL:
            self._resume(sm_id, self._global_park(sm_id, cycle, seq,
                                                  payload))
        elif kind == OP_FENCE_NOTE:
            self.sim.detector.rrf.on_fence(*payload)
        elif kind == OP_SYNC_NOTE:
            det = self.sim.detector
            det.rrf.note_sync_increment(payload, det.config.sync_id_mask)
        elif kind == PARK_EPOCH:
            self._resume(sm_id, None)
        elif kind == PARK_RETIRE:
            self._resume(sm_id, self._retire_park(sm_id))
        elif kind == PARK_LOCK:
            self._resume(sm_id, self._lock_park(sm_id, cycle, payload))
        elif kind == PARK_UNLOCK:
            self._resume(sm_id, self._unlock_park(sm_id, cycle, payload))
        elif kind == DONE:
            self._status[sm_id] = _DONE
            self._sm_cycles[sm_id] = cycle
        else:  # pragma: no cover - protocol violation
            raise SimulationError(f"unknown shard message kind {kind!r}")

    def _resume(self, sm_id: int, resp: Any) -> None:
        self.workers[self.owner[sm_id]].task_q.put((CMD_RESUME, sm_id, resp))

    # -- park processors ---------------------------------------------------

    def _global_park(self, sm_id: int, cycle: int, seq: int,
                     payload: Tuple) -> Tuple:
        access, txns, code, ops = payload
        sim = self.sim
        latency, levels = sim.memory.warp_access(
            sm_id, txns, cycle, id_bits=sim.bus.request_id_bits)
        lane_l1_hit = lane_hit_flags(access.lanes, txns, levels)
        det = sim.detector
        log = getattr(det, "log", None)
        if log is not None:
            log.order_base = (self.launch_idx, cycle, sm_id, seq)
        det.on_warp_access(access, cycle, lane_l1_hit=lane_l1_hit)
        mem = sim.device_mem
        values: Optional[List[float]]
        if code == OP_LOAD:
            values = [mem.load(la.addr) for la in access.lanes]
        elif code == OP_ATOMIC:
            values = []
            for addr, atom, a5, a6 in ops:
                old = mem.load(addr)
                mem.store(addr, apply_atomic(atom, old, a5, a6))
                values.append(old)
        else:
            for addr, val in ops:
                mem.store(addr, val)
            values = None
        return (latency, lane_l1_hit, values)

    def _lock_park(self, sm_id: int, cycle: int,
                   rows: List[Tuple[int, int, int]]
                   ) -> List[Tuple[bool, int]]:
        sim = self.sim
        table = sim.lock_table
        out: List[Tuple[bool, int]] = []
        for addr, tid, sig in rows:
            if table.try_acquire(addr, tid):
                proxy = _ThreadProxy(sig, [addr])
                new_sig = sim.bus.lock_acquired(LockAcquired(
                    thread=proxy, addr=addr, sm_id=sm_id, cycle=cycle,
                ))
                out.append((True, new_sig))
            else:
                out.append((False, 0))
        return out

    def _unlock_park(self, sm_id: int, cycle: int,
                     rows: List[Tuple[int, int, int, bool]]) -> List[int]:
        sim = self.sim
        table = sim.lock_table
        out: List[int] = []
        for addr, tid, sig, empty_after in rows:
            table.release(addr, tid)
            proxy = _ThreadProxy(sig, [] if empty_after else [addr])
            out.append(sim.bus.lock_released(LockReleased(
                thread=proxy, addr=addr, sm_id=sm_id, cycle=cycle,
            )))
        return out

    def _retire_park(self, sm_id: int) -> Optional[int]:
        assert self.mirror is not None
        self.mirror.retire(sm_id)
        launch = self.sim._launch
        if self._pending_bids and self.mirror.can_accept(sm_id, launch):
            self.mirror.admit(sm_id)
            self._blocks_run += 1
            return self._pending_bids.pop(0)
        return None

    # -- replay ------------------------------------------------------------

    def _flush(self, bound: Optional[float]) -> None:
        """Replay buffered wire entries with cycle strictly below ``bound``.

        ``None`` flushes everything (launch end). The bound must be strict:
        a running SM whose floor equals ``c`` may still produce entries
        keyed at ``c``.
        """
        if not self._buf:
            return
        if bound is None or bound == _INF:
            batch = self._buf
            self._buf = []
        else:
            batch = [e for e in self._buf if e[0] < bound]
            if not batch:
                return
            self._buf = [e for e in self._buf if e[0] >= bound]
        batch.sort(key=lambda e: (e[0], e[1], e[2]))
        replay_entries(batch, self._replay_to)
