"""Streaming multiprocessor: the orchestrator over functional and timing.

One :class:`StreamingMultiprocessor` hosts up to ``max_blocks_per_sm``
resident thread blocks (bounded also by threads and shared memory). Each
scheduling step it issues one warp-instruction group from the next ready
warp in round-robin order.

The SM itself owns *neither* semantics nor prices — it composes the two
engine layers (``docs/ENGINE.md``):

1. **decode** — :func:`repro.gpu.functional.decode_warp` turns a warp
   op-group into per-lane :class:`~repro.common.types.LaneAccess` records
   (plus the warp address list when the fast path is on);
2. **timing** — :class:`repro.gpu.timing.TimingModel` prices the access:
   bank-conflict passes, coalescing, the memory-system round trip;
3. **emission** — the event is published exactly once on the simulator's
   :class:`~repro.events.bus.EventBus`; subscribers (detector, tracer,
   metrics) observe it synchronously with execution, so detection results
   are exact with respect to the simulated interleaving even though timing
   is warp-granular, and the combined
   :class:`~repro.events.effects.TimingEffect` feeds back into the warp's
   wake-up time;
4. **functional execution** — :mod:`repro.gpu.functional` moves lane
   values and advances the warp.

The SM counts nothing itself: dynamic statistics live in the bus's
:class:`~repro.events.metrics.MetricsCollector` (``self.stats`` is a view
onto this SM's slice of it).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import DeadlockError, SimulationError
from repro.common.types import KernelStats, MemSpace, WarpAccess
from repro.events.records import (
    AccessIssued,
    BarrierReleased,
    BlockEnded,
    BlockStarted,
    ComputeIssued,
    FenceIssued,
    IdleAdvanced,
    LockAcquired,
    LockIssued,
    LockReleased,
    UnlockIssued,
)
from repro.gpu import functional
from repro.gpu.block import ThreadBlock
from repro.gpu.ops import (
    OP_ATOMIC,
    OP_COMPUTE,
    OP_FENCE,
    OP_LOAD,
    OP_LOCK,
    OP_STORE,
    OP_UNLOCK,
)
from repro.gpu.timing import (  # noqa: F401  (re-exported constants)
    BARRIER_BASE_COST,
    FENCE_BASE_COST,
    LOCK_RETRY_INTERVAL,
    LOCK_RETRY_LIMIT,
    TimingModel,
    lane_hit_flags,
)
from repro.gpu.warp import Warp


class StreamingMultiprocessor:
    """One SM: resident blocks, warp scheduler, and the layer composition."""

    def __init__(self, sm_id: int, config, gpu) -> None:
        self.sm_id = sm_id
        self.config = config
        self.gpu = gpu  # GPUSimulator: memory system, event bus, lock table
        self.bus = gpu.bus
        self.cycle = 0
        self.blocks: List[ThreadBlock] = []
        self.warps: List[Warp] = []
        self._rr = 0
        self.timing = TimingModel(config)
        self.fast_path = bool(config.fast_path)
        self.idle_cycles = 0
        self.retired_blocks = 0

    @property
    def shared_model(self):
        """The banked shared-memory conflict model (owned by the timing layer)."""
        return self.timing.shared_model

    @property
    def stats(self) -> KernelStats:
        """This SM's slice of the bus-owned dynamic statistics."""
        return self.gpu.metrics.sm_stats(self.sm_id)

    # ------------------------------------------------------------------
    # residency

    def can_accept(self, launch) -> bool:
        """Check residency limits for one more block of ``launch``."""
        if len(self.blocks) >= self.config.max_blocks_per_sm:
            return False
        resident_threads = sum(
            b.launch.threads_per_block for b in self.blocks
        )
        if resident_threads + launch.threads_per_block > self.config.max_threads_per_sm:
            return False
        shared_needed = launch.kernel.shared_bytes()
        resident_shared = sum(b.launch.kernel.shared_bytes() for b in self.blocks)
        return resident_shared + shared_needed <= self.config.shared_mem_per_sm

    def admit(self, block: ThreadBlock) -> None:
        """Dispatch a block onto this SM."""
        base_warp_id = (
            block.block_id * -(-block.launch.threads_per_block // self.config.warp_size)
        )
        block.materialize(self.sm_id, base_warp_id)
        for w in block.warps:
            w.ready_at = self.cycle
        self.blocks.append(block)
        self.warps.extend(block.warps)
        self.bus.emit_block_start(BlockStarted(block=block, sm_id=self.sm_id))

    @property
    def active(self) -> bool:
        return bool(self.blocks)

    # ------------------------------------------------------------------
    # scheduling

    def step(self) -> None:
        """Make one scheduling decision and advance local time."""
        warp = self._select_warp()
        if warp is None:
            self._advance_idle()
            return
        self._issue(warp)

    def _select_warp(self) -> Optional[Warp]:
        n = len(self.warps)
        for k in range(n):
            w = self.warps[(self._rr + k) % n]
            if w.finished or w.at_barrier:
                continue
            if w.ready_at <= self.cycle:
                self._rr = (self._rr + k + 1) % n
                return w
        return None

    def _advance_idle(self) -> None:
        """No warp is ready: jump local time to the next wake-up event."""
        pending = [
            w.ready_at for w in self.warps if not w.finished and not w.at_barrier
        ]
        if pending:
            target = max(self.cycle + 1, min(pending))
            jumped = target - self.cycle
            self.idle_cycles += jumped
            self.cycle = target
            self.bus.emit_idle(IdleAdvanced(sm_id=self.sm_id, cycles=jumped))
            return
        # every unfinished warp is parked at a barrier: barriers should have
        # been released when the last warp arrived, so this is a divergent
        # barrier (a genuine kernel bug) or an internal error.
        if any(not w.finished for w in self.warps):
            raise DeadlockError(
                f"SM {self.sm_id}: all unfinished warps parked at barrier "
                "with no release possible (divergent barrier?)"
            )
        raise SimulationError(f"SM {self.sm_id}: step() with no unfinished warps")

    # ------------------------------------------------------------------
    # issue

    def _issue(self, warp: Warp) -> None:
        group = warp.next_group()
        issue = self.config.warp_issue_cycles
        if group is None:
            if warp.finished:
                self._maybe_retire(warp.block)
                return
            if warp.at_barrier:
                self._maybe_release_barrier(warp.block)
                return
            raise SimulationError("warp yielded no group but is schedulable")

        key, lanes = group
        code = key[0]

        if code == OP_COMPUTE:
            self._exec_compute(warp, lanes, issue)
        elif code in (OP_LOAD, OP_STORE, OP_ATOMIC):
            space = key[1]
            if space == MemSpace.SHARED:
                self._exec_shared(warp, code, lanes, issue)
            else:
                self._exec_global(warp, code, lanes, issue)
        elif code == OP_FENCE:
            self._exec_fence(warp, lanes, issue)
        elif code == OP_LOCK:
            self._exec_lock(warp, lanes, issue)
        elif code == OP_UNLOCK:
            self._exec_unlock(warp, lanes, issue)
        else:  # pragma: no cover - barrier never reaches here
            raise SimulationError(f"unexpected opcode {code} in issue path")

        # the PC names the op-group just executed; incrementing after the
        # dispatch keeps WarpAccess.pc (and race reports) on the racing
        # instruction rather than its successor
        warp.pc += 1
        self.cycle += issue

    def _exec_compute(self, warp: Warp, lanes, issue: int) -> None:
        # decode + functional execution
        n, total = functional.execute_compute(warp, lanes)
        # emission
        self.bus.emit_compute(ComputeIssued(
            warp=warp, sm_id=self.sm_id, cycle=self.cycle,
            lanes=len(lanes), instructions=total,
        ))
        # timing
        warp.ready_at = self.cycle + max(1, n) * issue

    # -- shared memory ---------------------------------------------------

    def _exec_shared(self, warp: Warp, code: int, lanes, issue: int) -> None:
        block = warp.block
        # decode (clean: lock-free warps skip the per-lane lock-state reads)
        dec = functional.decode_warp(code, lanes, self.fast_path,
                                     clean=not warp.lock_touched)

        # timing: bank-conflict replay passes
        cost = self.timing.shared_cost(dec.lanes, dec.addrs, issue)

        # emission
        access = self._make_warp_access(warp, MemSpace.SHARED, dec)
        effect = self.bus.emit_access(AccessIssued(
            access=access, sm_id=self.sm_id, cycle=self.cycle,
        ))
        cost += effect.stall_cycles

        # functional execution (shared atomics serialize per address in
        # lane order, matching the hardware's conflict replay)
        functional.execute_shared(warp, block, code, lanes, dec.lanes)

        warp.ready_at = self.cycle + cost

    # -- global memory -----------------------------------------------------

    def _exec_global(self, warp: Warp, code: int, lanes, issue: int) -> None:
        # decode (clean: lock-free warps skip the per-lane lock-state reads)
        dec = functional.decode_warp(code, lanes, self.fast_path,
                                     clean=not warp.lock_touched)

        # timing: coalesce and take the memory-system round trip
        is_write = code != OP_LOAD
        txns = self.timing.global_transactions(dec.lanes, dec.addrs,
                                               dec.size, is_write)
        latency, txn_levels = self.gpu.memory.warp_access(
            self.sm_id, txns, self.cycle,
            id_bits=self.bus.request_id_bits,
        )

        # per-lane L1-hit flags for the stale-read check (§IV-B)
        lane_l1_hit = lane_hit_flags(dec.lanes, txns, txn_levels)

        # atomics bypass L1 and serialize per distinct address
        if code == OP_ATOMIC:
            latency += self.timing.atomic_serialization(dec.lanes, dec.addrs,
                                                        issue)

        # emission
        access = self._make_warp_access(warp, MemSpace.GLOBAL, dec)
        effect = self.bus.emit_access(AccessIssued(
            access=access, sm_id=self.sm_id, cycle=self.cycle,
            lane_l1_hit=lane_l1_hit,
        ))
        warp.block.global_accessed_since_barrier = True

        # functional execution
        functional.execute_global(warp, self.gpu.device_mem, code, lanes,
                                  dec.lanes)

        warp.ready_at = self.cycle + latency + effect.stall_cycles

    # -- synchronization -----------------------------------------------------

    def _exec_fence(self, warp: Warp, lanes, issue: int) -> None:
        # scope rides in the op tuple's second slot ((OP_FENCE,) = device,
        # (OP_FENCE, 1) = system); read it before execute_fence clears the
        # lanes' pending ops
        op = lanes[0][1].pending
        scope = op[1] if len(op) > 1 else 0
        # functional execution
        functional.execute_fence(warp, lanes)
        # emission + timing
        effect = self.bus.emit_fence(FenceIssued(
            warp=warp, sm_id=self.sm_id, cycle=self.cycle, lanes=len(lanes),
            scope=scope, warp_id=warp.warp_id,
            block_id=warp.block.block_id,
        ))
        warp.ready_at = self.cycle + self.timing.fence_cost() + effect.stall_cycles

    def _exec_lock(self, warp: Warp, lanes, issue: int) -> None:
        warp.lock_touched = True
        table = self.gpu.lock_table
        granted = 0
        for lane_idx, t in lanes:
            addr = t.pending[1]
            if table.try_acquire(addr, t.global_tid):
                t.held_locks.append(addr)
                t.critical_depth += 1
                t.lock_sig = self.bus.lock_acquired(LockAcquired(
                    thread=t, addr=addr, sm_id=self.sm_id, cycle=self.cycle,
                ))
                warp.complete_lane(t)
                granted += 1
            # ungranted lanes keep their pending op; the warp retries
        self.bus.emit_lock(LockIssued(
            warp=warp, sm_id=self.sm_id, cycle=self.cycle,
            attempts=len(lanes), granted=granted,
        ))
        if granted:
            warp.retries = 0
        else:
            warp.retries += 1
            if warp.retries > LOCK_RETRY_LIMIT:
                raise DeadlockError(
                    f"warp {warp.warp_id} exceeded lock retry budget"
                )
        warp.ready_at = self.cycle + self.timing.lock_cost(granted > 0)

    def _exec_unlock(self, warp: Warp, lanes, issue: int) -> None:
        table = self.gpu.lock_table
        for lane_idx, t in lanes:
            addr = t.pending[1]
            table.release(addr, t.global_tid)
            t.held_locks.remove(addr)
            t.critical_depth -= 1
            t.lock_sig = self.bus.lock_released(LockReleased(
                thread=t, addr=addr, sm_id=self.sm_id, cycle=self.cycle,
            ))
            warp.complete_lane(t)
        self.bus.emit_unlock(UnlockIssued(
            warp=warp, sm_id=self.sm_id, cycle=self.cycle, lanes=len(lanes),
        ))
        warp.ready_at = self.cycle + self.timing.unlock_cost()

    # ------------------------------------------------------------------
    # barriers and retirement

    def _maybe_release_barrier(self, block: ThreadBlock) -> None:
        if not block.all_at_barrier():
            return
        # release_barrier only resets barrier state, so the lanes that will
        # be released are exactly the live lanes of the parked warps
        released_lanes = sum(
            len(w.live_lanes()) for w in block.warps if w.at_barrier
        )
        effect = self.bus.emit_barrier(BarrierReleased(
            block=block, sm_id=self.sm_id, cycle=self.cycle,
            released_lanes=released_lanes,
        ))
        release_at = self.cycle + self.timing.barrier_cost() + effect.stall_cycles
        block.release_barrier(release_at, lazy_sync=self.gpu.sync_id_lazy)

    def _maybe_retire(self, block: ThreadBlock) -> None:
        if not block.check_done():
            return
        self.blocks.remove(block)
        # remap the round-robin pointer past the removed warps: resetting
        # it to 0 would bias scheduling back to warp 0 after every block
        # retirement
        removed_before = sum(
            1 for w in self.warps[:self._rr] if w.block is block
        )
        self.warps = [w for w in self.warps if w.block is not block]
        self._rr = ((self._rr - removed_before) % len(self.warps)
                    if self.warps else 0)
        self.retired_blocks += 1
        self.bus.emit_block_end(BlockEnded(block=block, sm_id=self.sm_id))
        self.gpu.on_block_retired(self)

    # ------------------------------------------------------------------

    def _make_warp_access(self, warp: Warp, space: MemSpace,
                          dec: functional.DecodedAccess) -> WarpAccess:
        block = warp.block
        base_tid = (
            block.block_id * block.launch.threads_per_block
            + warp.warp_in_block * self.config.warp_size
        )
        return WarpAccess(
            space=space,
            kind=dec.kind,
            lanes=dec.lanes,
            sm_id=self.sm_id,
            block_id=block.block_id,
            warp_id=warp.warp_id,
            warp_in_block=warp.warp_in_block,
            base_tid=base_tid,
            sync_id=block.sync_id,
            fence_id=warp.fence_id,
            in_critical=dec.critical_any,
            pc=warp.pc,
            regroup=self.gpu.warp_regrouping,
        )
