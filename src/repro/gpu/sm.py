"""Streaming multiprocessor: round-robin warp scheduling + event timing.

One :class:`StreamingMultiprocessor` hosts up to ``max_blocks_per_sm``
resident thread blocks (bounded also by threads and shared memory). Each
scheduling step it issues one warp-instruction group from the next ready
warp in round-robin order. Timing is event-driven: warps carry a
``ready_at`` cycle; compute ops cost issue slots, memory ops cost the full
coalesced round trip through the memory hierarchy the simulator provides.

Detector hooks fire synchronously with execution, so detection results are
exact with respect to the simulated interleaving even though timing is
warp-granular rather than cycle-accurate.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.common.errors import DeadlockError, SimulationError
from repro.common.types import AccessKind, KernelStats, LaneAccess, MemSpace, WarpAccess
from repro.gpu.atomics import apply_atomic
from repro.gpu.block import ThreadBlock
from repro.gpu.coalescer import coalesce
from repro.gpu.ops import (
    OP_ATOMIC,
    OP_COMPUTE,
    OP_FENCE,
    OP_LOAD,
    OP_LOCK,
    OP_STORE,
    OP_UNLOCK,
)
from repro.gpu.shared_memory import SharedMemoryModel
from repro.gpu.warp import ThreadState, Warp

#: Cycles a warp waits before re-attempting a contended lock acquire.
LOCK_RETRY_INTERVAL = 40
#: Retry budget before the simulator declares a lock deadlock.
LOCK_RETRY_LIMIT = 1_000_000
#: Fixed barrier pipeline cost (arrival/scoreboard handshake).
BARRIER_BASE_COST = 4
#: Fence completion cost: drain outstanding stores to the L2 point of
#: coherence before the epoch advances.
FENCE_BASE_COST = 60


class StreamingMultiprocessor:
    """One SM: resident blocks, warp scheduler, and per-SM timing state."""

    def __init__(self, sm_id: int, config, gpu) -> None:
        self.sm_id = sm_id
        self.config = config
        self.gpu = gpu  # GPUSimulator: memory system, detector, lock table
        self.cycle = 0
        self.blocks: List[ThreadBlock] = []
        self.warps: List[Warp] = []
        self._rr = 0
        self.shared_model = SharedMemoryModel(
            config.shared_mem_banks, config.shared_bank_width
        )
        self.stats = KernelStats()
        self.idle_cycles = 0
        self.retired_blocks = 0

    # ------------------------------------------------------------------
    # residency

    def can_accept(self, launch) -> bool:
        """Check residency limits for one more block of ``launch``."""
        if len(self.blocks) >= self.config.max_blocks_per_sm:
            return False
        resident_threads = sum(
            b.launch.threads_per_block for b in self.blocks
        )
        if resident_threads + launch.threads_per_block > self.config.max_threads_per_sm:
            return False
        shared_needed = launch.kernel.shared_bytes()
        resident_shared = sum(b.launch.kernel.shared_bytes() for b in self.blocks)
        return resident_shared + shared_needed <= self.config.shared_mem_per_sm

    def admit(self, block: ThreadBlock) -> None:
        """Dispatch a block onto this SM."""
        base_warp_id = (
            block.block_id * -(-block.launch.threads_per_block // self.config.warp_size)
        )
        block.materialize(self.sm_id, base_warp_id)
        for w in block.warps:
            w.ready_at = self.cycle
        self.blocks.append(block)
        self.warps.extend(block.warps)
        self.gpu.detector.on_block_start(block)

    @property
    def active(self) -> bool:
        return bool(self.blocks)

    # ------------------------------------------------------------------
    # scheduling

    def step(self) -> None:
        """Make one scheduling decision and advance local time."""
        warp = self._select_warp()
        if warp is None:
            self._advance_idle()
            return
        self._issue(warp)

    def _select_warp(self) -> Optional[Warp]:
        n = len(self.warps)
        for k in range(n):
            w = self.warps[(self._rr + k) % n]
            if w.finished or w.at_barrier:
                continue
            if w.ready_at <= self.cycle:
                self._rr = (self._rr + k + 1) % n
                return w
        return None

    def _advance_idle(self) -> None:
        """No warp is ready: jump local time to the next wake-up event."""
        pending = [
            w.ready_at for w in self.warps if not w.finished and not w.at_barrier
        ]
        if pending:
            target = max(self.cycle + 1, min(pending))
            self.idle_cycles += target - self.cycle
            self.cycle = target
            return
        # every unfinished warp is parked at a barrier: barriers should have
        # been released when the last warp arrived, so this is a divergent
        # barrier (a genuine kernel bug) or an internal error.
        if any(not w.finished for w in self.warps):
            raise DeadlockError(
                f"SM {self.sm_id}: all unfinished warps parked at barrier "
                "with no release possible (divergent barrier?)"
            )
        raise SimulationError(f"SM {self.sm_id}: step() with no unfinished warps")

    # ------------------------------------------------------------------
    # issue

    def _issue(self, warp: Warp) -> None:
        group = warp.next_group()
        issue = self.config.warp_issue_cycles
        if group is None:
            if warp.finished:
                self._maybe_retire(warp.block)
                return
            if warp.at_barrier:
                self._maybe_release_barrier(warp.block)
                return
            raise SimulationError("warp yielded no group but is schedulable")

        key, lanes = group
        code = key[0]
        warp.pc += 1

        if code == OP_COMPUTE:
            self._exec_compute(warp, lanes, issue)
        elif code in (OP_LOAD, OP_STORE, OP_ATOMIC):
            space = key[1]
            if space == MemSpace.SHARED:
                self._exec_shared(warp, code, lanes, issue)
            else:
                self._exec_global(warp, code, lanes, issue)
        elif code == OP_FENCE:
            self._exec_fence(warp, lanes, issue)
        elif code == OP_LOCK:
            self._exec_lock(warp, lanes, issue)
        elif code == OP_UNLOCK:
            self._exec_unlock(warp, lanes, issue)
        else:  # pragma: no cover - barrier never reaches here
            raise SimulationError(f"unexpected opcode {code} in issue path")

        self.cycle += issue

    def _exec_compute(self, warp: Warp, lanes, issue: int) -> None:
        n = 0
        for _, t in lanes:
            n = max(n, t.pending[1])
            self.stats.instructions += t.pending[1]
            warp.complete_lane(t)
        warp.ready_at = self.cycle + max(1, n) * issue

    # -- shared memory ---------------------------------------------------

    def _exec_shared(self, warp: Warp, code: int, lanes, issue: int) -> None:
        block = warp.block
        lane_accesses = []
        kind = AccessKind.READ
        for lane_idx, t in lanes:
            op = t.pending
            if code == OP_LOAD:
                k = AccessKind.READ
            elif code == OP_STORE:
                k = AccessKind.WRITE
                kind = AccessKind.WRITE
            else:
                k = AccessKind.ATOMIC
                kind = AccessKind.ATOMIC
            lane_accesses.append(
                LaneAccess(lane_idx, op[2], op[3], k,
                           sig=t.lock_sig, critical=t.critical_depth > 0)
            )

        passes = self.shared_model.conflict_passes(lane_accesses)
        cost = self.config.shared_latency + passes * issue

        access = self._make_warp_access(warp, MemSpace.SHARED, kind, lane_accesses)
        effect = self.gpu.detector.on_warp_access(access, self.cycle)
        cost += effect.stall_cycles
        self.stats.instructions += len(lanes) + effect.extra_instructions

        # functional execution (shared atomics serialize per address in
        # lane order, matching the hardware's conflict replay)
        if code == OP_LOAD:
            self.stats.shared_reads += len(lanes)
            for la, (_, t) in zip(lane_accesses, lanes):
                warp.complete_lane(t, block.shared_load(la.addr))
        elif code == OP_STORE:
            self.stats.shared_writes += len(lanes)
            for (_, t) in lanes:
                op = t.pending
                block.shared_store(op[2], op[4])
                warp.complete_lane(t)
        else:
            self.stats.atomics += len(lanes)
            for (_, t) in lanes:
                op = t.pending
                old = block.shared_load(op[2])
                block.shared_store(op[2], apply_atomic(op[4], old, op[5], op[6]))
                warp.complete_lane(t, old)

        warp.ready_at = self.cycle + cost

    # -- global memory -----------------------------------------------------

    def _exec_global(self, warp: Warp, code: int, lanes, issue: int) -> None:
        mem = self.gpu.device_mem
        lane_accesses = []
        kind = AccessKind.READ
        for lane_idx, t in lanes:
            op = t.pending
            if code == OP_LOAD:
                k = AccessKind.READ
            elif code == OP_STORE:
                k = AccessKind.WRITE
                kind = AccessKind.WRITE
            else:
                k = AccessKind.ATOMIC
                kind = AccessKind.ATOMIC
            lane_accesses.append(
                LaneAccess(lane_idx, op[2], op[3], k,
                           sig=t.lock_sig, critical=t.critical_depth > 0)
            )

        is_write = code != OP_LOAD
        txns = coalesce(lane_accesses, is_write)
        latency, txn_levels = self.gpu.memory.warp_access(
            self.sm_id, txns, self.cycle,
            id_bits=self.gpu.detector.request_id_bits,
        )

        # per-lane L1-hit flags for the stale-read check (§IV-B)
        lane_l1_hit = self._lane_hit_flags(lane_accesses, txns, txn_levels)

        # atomics bypass L1 and serialize per distinct address
        if code == OP_ATOMIC:
            per_addr: dict = {}
            for la in lane_accesses:
                per_addr[la.addr] = per_addr.get(la.addr, 0) + 1
            latency += (max(per_addr.values()) - 1) * issue

        access = self._make_warp_access(warp, MemSpace.GLOBAL, kind, lane_accesses)
        effect = self.gpu.detector.on_warp_access(access, self.cycle,
                                                  lane_l1_hit=lane_l1_hit)
        warp.block.global_accessed_since_barrier = True
        self.stats.instructions += len(lanes) + effect.extra_instructions

        # functional execution
        if code == OP_LOAD:
            self.stats.global_reads += len(lanes)
            for la, (_, t) in zip(lane_accesses, lanes):
                warp.complete_lane(t, mem.load(la.addr))
        elif code == OP_STORE:
            self.stats.global_writes += len(lanes)
            for (_, t) in lanes:
                op = t.pending
                mem.store(op[2], op[4])
                warp.complete_lane(t)
        else:
            self.stats.atomics += len(lanes)
            # serialize same-address atomics in lane order
            for (_, t) in lanes:
                op = t.pending
                old = mem.load(op[2])
                mem.store(op[2], apply_atomic(op[4], old, op[5], op[6]))
                warp.complete_lane(t, old)

        warp.ready_at = self.cycle + latency + effect.stall_cycles

    @staticmethod
    def _lane_hit_flags(lane_accesses, txns, txn_levels) -> List[bool]:
        """Map per-transaction hit levels back to per-lane L1-hit flags."""
        flags = []
        for la in lane_accesses:
            hit = False
            for txn, level in zip(txns, txn_levels):
                if txn.addr <= la.addr < txn.addr + txn.size:
                    hit = level == "l1"
                    break
            flags.append(hit)
        return flags

    # -- synchronization -----------------------------------------------------

    def _exec_fence(self, warp: Warp, lanes, issue: int) -> None:
        for _, t in lanes:
            warp.complete_lane(t)
        warp.note_fence()
        effect = self.gpu.detector.on_fence(warp, self.cycle)
        self.stats.instructions += len(lanes) + effect.extra_instructions
        self.stats.fences += 1
        warp.ready_at = self.cycle + FENCE_BASE_COST + effect.stall_cycles

    def _exec_lock(self, warp: Warp, lanes, issue: int) -> None:
        table = self.gpu.lock_table
        granted = 0
        for lane_idx, t in lanes:
            addr = t.pending[1]
            if table.try_acquire(addr, t.global_tid):
                t.held_locks.append(addr)
                t.critical_depth += 1
                t.lock_sig = self.gpu.detector.on_lock_acquire(t, addr)
                warp.complete_lane(t)
                granted += 1
            # ungranted lanes keep their pending op; the warp retries
        self.stats.instructions += len(lanes)
        self.stats.atomics += len(lanes)  # each attempt is an atomicExch
        if granted:
            warp.retries = 0
            # atomic-exchange round trip to acquire the lock line
            warp.ready_at = self.cycle + self.config.l2_latency
        else:
            warp.retries += 1
            if warp.retries > LOCK_RETRY_LIMIT:
                raise DeadlockError(
                    f"warp {warp.warp_id} exceeded lock retry budget"
                )
            warp.ready_at = self.cycle + LOCK_RETRY_INTERVAL

    def _exec_unlock(self, warp: Warp, lanes, issue: int) -> None:
        table = self.gpu.lock_table
        for lane_idx, t in lanes:
            addr = t.pending[1]
            table.release(addr, t.global_tid)
            t.held_locks.remove(addr)
            t.critical_depth -= 1
            t.lock_sig = self.gpu.detector.on_lock_release(t, addr)
            warp.complete_lane(t)
        self.stats.instructions += len(lanes)
        self.stats.atomics += len(lanes)  # release is an atomic store
        warp.ready_at = self.cycle + self.config.l2_latency

    # ------------------------------------------------------------------
    # barriers and retirement

    def _maybe_release_barrier(self, block: ThreadBlock) -> None:
        if not block.all_at_barrier():
            return
        effect = self.gpu.detector.on_barrier(block, self.cycle)
        release_at = self.cycle + BARRIER_BASE_COST + effect.stall_cycles
        released = block.release_barrier(release_at,
                                         lazy_sync=self.gpu.sync_id_lazy)
        self.stats.barriers += sum(len(w.live_lanes()) for w in released)
        self.stats.instructions += (
            sum(len(w.live_lanes()) for w in released) + effect.extra_instructions
        )

    def _maybe_retire(self, block: ThreadBlock) -> None:
        if not block.check_done():
            return
        self.blocks.remove(block)
        self.warps = [w for w in self.warps if w.block is not block]
        self._rr = 0
        self.retired_blocks += 1
        self.gpu.detector.on_block_end(block)
        self.gpu.on_block_retired(self)

    # ------------------------------------------------------------------

    def _make_warp_access(self, warp: Warp, space: MemSpace, kind: AccessKind,
                          lane_accesses) -> WarpAccess:
        block = warp.block
        base_tid = (
            block.block_id * block.launch.threads_per_block
            + warp.warp_in_block * self.config.warp_size
        )
        return WarpAccess(
            space=space,
            kind=kind,
            lanes=lane_accesses,
            sm_id=self.sm_id,
            block_id=block.block_id,
            warp_id=warp.warp_id,
            warp_in_block=warp.warp_in_block,
            base_tid=base_tid,
            sync_id=block.sync_id,
            fence_id=warp.fence_id,
            in_critical=any(la.critical for la in lane_accesses),
            pc=warp.pc,
            regroup=self.gpu.warp_regrouping,
        )
