"""Per-thread kernel execution context (the CUDA device API surface).

A kernel is a Python generator function ``def kernel(ctx, *args)``. The
``ctx`` object exposes thread/block/grid identity (``threadIdx`` etc.) and
*op constructors*: methods that build the device-operation tuples the thread
yields to the simulator. Example::

    def copy_kernel(ctx, src, dst):
        i = ctx.global_tid_x
        if i < src.length:
            v = yield ctx.load(src, i)
            yield ctx.store(dst, i, v)

Op constructors only build tuples; all effects happen when the simulator
executes the yielded op. Load-like ops deliver their result as the value of
the ``yield`` expression.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.errors import KernelError
from repro.common.types import Dim3
from repro.gpu.device import DeviceArray
from repro.gpu.ops import (
    ATOMIC_OPS,
    OP_ATOMIC,
    OP_BARRIER,
    OP_COMPUTE,
    OP_FENCE,
    OP_LOAD,
    OP_LOCK,
    OP_STORE,
    OP_UNLOCK,
)

_BARRIER_OP = (OP_BARRIER,)
_FENCE_OP = (OP_FENCE,)
#: system-scope fence: scope flag 1 in the op tuple's second slot. Fences
#: group by opcode only, so device- and system-scope fences coalesce into
#: one warp group exactly like plain fences.
_FENCE_SYSTEM_OP = (OP_FENCE, 1)

#: fence scope constants (mirrored by :mod:`repro.events.records`)
FENCE_SCOPE_DEVICE = 0
FENCE_SCOPE_SYSTEM = 1


class ThreadCtx:
    """Identity and device-API for one kernel thread.

    Attributes mirror CUDA built-ins: ``tid_x`` is ``threadIdx.x``,
    ``block_id_x`` is ``blockIdx.x``, ``block_dim`` / ``grid_dim`` are
    launch dimensions, and ``global_tid_x`` is the usual
    ``blockIdx.x * blockDim.x + threadIdx.x``.
    """

    __slots__ = (
        "tid_x", "tid_y", "tid_z",
        "block_id_x", "block_id_y",
        "block_dim", "grid_dim",
        "block_linear", "thread_linear",
        "global_tid", "lane", "warp_in_block",
        "shared",
    )

    def __init__(self, tid: Tuple[int, int, int], block_id: Tuple[int, int],
                 block_dim: Dim3, grid_dim: Dim3, warp_size: int,
                 shared: Dict[str, DeviceArray]) -> None:
        self.tid_x, self.tid_y, self.tid_z = tid
        self.block_id_x, self.block_id_y = block_id
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.block_linear = block_id[1] * grid_dim.x + block_id[0]
        self.thread_linear = block_dim.linearize(*tid)
        self.global_tid = self.block_linear * block_dim.count + self.thread_linear
        self.lane = self.thread_linear % warp_size
        self.warp_in_block = self.thread_linear // warp_size
        self.shared = shared

    # -- convenience aliases ------------------------------------------------

    @property
    def global_tid_x(self) -> int:
        """``blockIdx.x * blockDim.x + threadIdx.x`` (1-D launches)."""
        return self.block_id_x * self.block_dim.x + self.tid_x

    @property
    def num_threads(self) -> int:
        """Total threads in the grid."""
        return self.grid_dim.count * self.block_dim.count

    # -- op constructors ------------------------------------------------

    def load(self, arr: DeviceArray, index: int) -> tuple:
        """Read element ``index`` of ``arr``; yields the stored value."""
        return (OP_LOAD, arr.space, arr.addr(index), arr.itemsize)

    def store(self, arr: DeviceArray, index: int, value: float) -> tuple:
        """Write ``value`` to element ``index`` of ``arr``."""
        return (OP_STORE, arr.space, arr.addr(index), arr.itemsize, value)

    def load_addr(self, space, addr: int, size: int = 4) -> tuple:
        """Raw-address read (used by injection and address-bug modelling)."""
        return (OP_LOAD, space, addr, size)

    def store_addr(self, space, addr: int, size: int = 4, value: float = 0.0) -> tuple:
        """Raw-address write."""
        return (OP_STORE, space, addr, size, value)

    def atomic(self, name: str, arr: DeviceArray, index: int,
               operand: float = 0.0, operand2: float = 0.0) -> tuple:
        """Atomic read-modify-write; yields the *old* value (CUDA semantics).

        ``name`` is one of ``add sub inc dec exch cas min max or and``.
        For ``cas``, ``operand`` is the compare value and ``operand2`` the
        swap value.
        """
        if name not in ATOMIC_OPS:
            raise KernelError(f"unknown atomic op {name!r}")
        return (OP_ATOMIC, arr.space, arr.addr(index), arr.itemsize,
                name, operand, operand2)

    def atomic_inc(self, arr: DeviceArray, index: int, limit: float) -> tuple:
        """``atomicInc``: old = v; v = (old >= limit) ? 0 : old + 1."""
        return self.atomic("inc", arr, index, limit)

    def atomic_add(self, arr: DeviceArray, index: int, value: float) -> tuple:
        return self.atomic("add", arr, index, value)

    def atomic_exch(self, arr: DeviceArray, index: int, value: float) -> tuple:
        return self.atomic("exch", arr, index, value)

    def atomic_cas(self, arr: DeviceArray, index: int, compare: float,
                   value: float) -> tuple:
        return self.atomic("cas", arr, index, compare, value)

    def compute(self, n: int = 1) -> tuple:
        """Account ``n`` ALU instructions (no memory effect)."""
        return (OP_COMPUTE, n)

    def syncthreads(self) -> tuple:
        """Block-wide barrier (``__syncthreads``)."""
        return _BARRIER_OP

    def threadfence(self) -> tuple:
        """Device-wide memory fence (``__threadfence``)."""
        return _FENCE_OP

    def threadfence_system(self) -> tuple:
        """System-wide memory fence (``__threadfence_system``).

        Within one device it behaves exactly like :meth:`threadfence`;
        across devices it is the only fence that publishes prior writes to
        peers (see ``docs/MULTIGPU.md``). The scope rides in the op tuple
        and on the emitted :class:`~repro.events.records.FenceIssued`.
        """
        return _FENCE_SYSTEM_OP

    def lock(self, arr: DeviceArray, index: int) -> tuple:
        """Acquire the lock stored at ``arr[index]`` (spins until granted).

        Models an atomic-exchange loop plus the HAccRG critical-section
        *marker* inserted after lock acquisition (§III-B): on success the
        lock address enters the thread's atomic-ID Bloom signature.
        """
        return (OP_LOCK, arr.addr(index))

    def unlock(self, arr: DeviceArray, index: int) -> tuple:
        """Release the lock at ``arr[index]`` (marker before release)."""
        return (OP_UNLOCK, arr.addr(index))
