"""Timing layer: prices warp instructions, owns no architectural state.

This module is one half of the engine split described in ``docs/ENGINE.md``.
The :class:`TimingModel` computes *when* things complete — bank-conflict
replay passes, coalesced transactions, memory-system round trips, lock/
fence/barrier pipeline costs — while :mod:`repro.gpu.functional` computes
*what* happens to architectural state. ``StreamingMultiprocessor`` composes
the two through the event bus.

Every method here is pure with respect to the simulation's functional
state: given the same decoded access it returns the same cost whether the
fast path is on or off. The vectorized variants (``fast_path``) are
bit-identical to the scalar ones; the golden-parity gate runs both.

Timing is computed even when the simulator's ``timing_enabled`` flag is
off: costs feed ``warp.ready_at`` and therefore the event *order*, which
detection results depend on.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Set

from repro.common.bitops import is_power_of_two, log2_exact
from repro.common.config import GPUConfig
from repro.common.types import LaneAccess, Transaction
from repro.gpu.coalescer import _shrink, coalesce
from repro.gpu.shared_memory import SharedMemoryModel

#: Cycles a warp waits before re-attempting a contended lock acquire.
LOCK_RETRY_INTERVAL = 40
#: Retry budget before the simulator declares a lock deadlock.
LOCK_RETRY_LIMIT = 1_000_000
#: Fixed barrier pipeline cost (arrival/scoreboard handshake).
BARRIER_BASE_COST = 4
#: Fence completion cost: drain outstanding stores to the L2 point of
#: coherence before the epoch advances.
FENCE_BASE_COST = 60

_SEGMENT = 128


def lane_hit_flags(lane_accesses: Sequence[LaneAccess],
                   txns: Sequence[Transaction],
                   txn_levels: Sequence[str]) -> List[bool]:
    """Map per-transaction hit levels back to per-lane L1-hit flags.

    Coalesced transactions are disjoint address intervals, so one sorted
    interval map built per warp access answers every lane with a binary
    search instead of rescanning the transaction list.
    """
    if not txns:
        return [False] * len(lane_accesses)
    intervals = sorted(
        (txn.addr, txn.addr + txn.size, level == "l1")
        for txn, level in zip(txns, txn_levels)
    )
    starts = [iv[0] for iv in intervals]
    flags: List[bool] = []
    for la in lane_accesses:
        i = bisect_right(starts, la.addr) - 1
        flags.append(i >= 0 and la.addr < intervals[i][1]
                     and intervals[i][2])
    return flags


def coalesce_fast(addrs: Sequence[int], size: int, is_write: bool,
                  lane_accesses: Sequence[LaneAccess]) -> List[Transaction]:
    """Warp-batch coalescer for the common uniform-size, non-straddling case.

    One dict-of-segments sweep over the (at most 32) lane addresses; falls
    back to the scalar :func:`repro.gpu.coalescer.coalesce` when any lane
    straddles a 128-byte segment boundary (the scalar replay-style handling
    is simpler than a batched split). Output is bit-identical: segments are
    emitted in ascending address order, same as the scalar path.
    """
    mask = ~(_SEGMENT - 1)
    segs: Dict[int, List[int]] = {}
    for a in addrs:
        b = a + size
        s = a & mask
        if b > s + _SEGMENT:
            return coalesce(lane_accesses, is_write)
        cur = segs.get(s)
        if cur is None:
            segs[s] = [a, b]
        else:
            if a < cur[0]:
                cur[0] = a
            if b > cur[1]:
                cur[1] = b
    out: List[Transaction] = []
    for s in sorted(segs):
        lo, hi = segs[s]
        out.extend(_shrink(s, lo, hi, is_write, False))
    return out


class TimingModel:
    """Per-SM timing: shared bank conflicts, global round trips, sync costs."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self.shared_model = SharedMemoryModel(
            config.shared_mem_banks, config.shared_bank_width
        )
        # the vectorized bank-conflict kernel needs shift/mask arithmetic
        self._fast = (
            config.fast_path
            and is_power_of_two(config.shared_bank_width)
            and is_power_of_two(config.shared_mem_banks)
        )
        self._bank_shift = (log2_exact(config.shared_bank_width)
                            if is_power_of_two(config.shared_bank_width) else 0)
        self._bank_mask = config.shared_mem_banks - 1

    # -- shared memory -----------------------------------------------------

    def shared_cost(self, lane_accesses: Sequence[LaneAccess],
                    addrs: Optional[Sequence[int]],
                    issue: int) -> int:
        """Cost of one shared-memory warp access (latency + replay passes)."""
        if self._fast and addrs is not None:
            passes = self._conflict_passes_fast(addrs)
        else:
            passes = self.shared_model.conflict_passes(lane_accesses)
        return self.config.shared_latency + passes * issue

    def _conflict_passes_fast(self, addrs: Sequence[int]) -> int:
        """Batched bank-conflict passes: distinct words per bank, max.

        A warp is at most 32 lanes, so a set/dict sweep beats array
        set-ops on the tiny operand; the shift/mask arithmetic still
        comes from the power-of-two geometry checked at construction.
        """
        shift = self._bank_shift
        mask = self._bank_mask
        seen: Set[int] = set()
        add = seen.add
        counts: Dict[int, int] = {}
        get = counts.get
        best = 0
        for a in addrs:
            w = a >> shift
            if w in seen:
                continue
            add(w)
            b = w & mask
            c = get(b, 0) + 1
            counts[b] = c
            if c > best:
                best = c
        return best

    # -- global memory -----------------------------------------------------

    def global_transactions(self, lane_accesses: Sequence[LaneAccess],
                            addrs: Optional[Sequence[int]],
                            size: int, is_write: bool) -> List[Transaction]:
        """Coalesce one global warp access into memory transactions."""
        if self._fast and addrs is not None and size > 0:
            return coalesce_fast(addrs, size, is_write, lane_accesses)
        return coalesce(lane_accesses, is_write)

    def atomic_serialization(self, lane_accesses: Sequence[LaneAccess],
                             addrs: Optional[Sequence[int]],
                             issue: int) -> int:
        """Extra cycles for same-address atomics (serialize in lane order)."""
        if self._fast and addrs is not None:
            if not addrs:
                return 0
            per: Dict[int, int] = {}
            best = 0
            for a in addrs:
                c = per.get(a, 0) + 1
                per[a] = c
                if c > best:
                    best = c
            return (best - 1) * issue
        per_addr: Dict[int, int] = {}
        for la in lane_accesses:
            per_addr[la.addr] = per_addr.get(la.addr, 0) + 1
        return (max(per_addr.values()) - 1) * issue

    # -- synchronization ---------------------------------------------------

    def fence_cost(self) -> int:
        return FENCE_BASE_COST

    def barrier_cost(self) -> int:
        return BARRIER_BASE_COST

    def lock_cost(self, granted: bool) -> int:
        """Lock acquire: atomic-exchange round trip, or the retry backoff."""
        return self.config.l2_latency if granted else LOCK_RETRY_INTERVAL

    def unlock_cost(self) -> int:
        return self.config.l2_latency
