"""Device memory: allocation, typed array views, and value storage.

The functional half of the simulator needs real values so that benchmarks
compute verifiable results (prefix sums, histograms, reductions...). Global
memory is backed by one numpy float64 array indexed by *byte address*; an
access of width ``w`` at address ``a`` stores/loads its value at cell ``a``.
Values are never reinterpreted at a different width in our kernels, so this
word-per-byte-address scheme is exact for them while keeping address
arithmetic (which drives coalescing, caching, and race detection) fully
faithful.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.common.bitops import align_up
from repro.common.errors import KernelError
from repro.common.types import MemSpace


class DeviceMemory:
    """The GPU's global (device) memory: a bump allocator plus value store.

    Allocations are 256-byte aligned, matching ``cudaMalloc`` alignment, so
    that coalescing behaviour of array bases is realistic.
    """

    ALLOC_ALIGN = 256

    def __init__(self, capacity: int = 1 << 26) -> None:
        self.capacity = int(capacity)
        self._next = 0
        self._app_next = 0
        self._values: Optional[np.ndarray] = None
        self._allocs: Dict[int, int] = {}  # base -> size
        self._names: Dict[int, str] = {}   # base -> allocation name

    def _ensure_backing(self) -> None:
        if self._values is None:
            self._values = np.zeros(self.capacity, dtype=np.float64)

    @property
    def values(self) -> np.ndarray:
        self._ensure_backing()
        assert self._values is not None
        return self._values

    @property
    def allocated_bytes(self) -> int:
        """High-water mark of allocated device memory."""
        return self._next

    @property
    def app_bytes(self) -> int:
        """High-water mark of *application* allocations only.

        Detector-internal reservations (``internal=True`` mallocs, e.g.
        the hardware shadow region) are excluded, so observers report the
        same application footprint whether or not a detector is attached.
        """
        return self._app_next

    def malloc(self, nbytes: int, name: str = "", *,
               internal: bool = False) -> int:
        """Allocate ``nbytes`` of device memory; return the base address.

        ``internal`` marks detector/runtime bookkeeping that should not
        count toward the application footprint (:attr:`app_bytes`).
        """
        if nbytes <= 0:
            raise KernelError(f"malloc size must be positive, got {nbytes}")
        base = self._next
        self._next = align_up(base + nbytes, self.ALLOC_ALIGN)
        if self._next > self.capacity:
            raise KernelError(
                f"device memory exhausted: need {self._next}, have {self.capacity}"
            )
        if not internal:
            self._app_next = self._next
        self._allocs[base] = nbytes
        if name:
            self._names[base] = name
        return base

    def allocations(self) -> Dict[int, int]:
        """Return a copy of the {base: size} allocation map."""
        return dict(self._allocs)

    def allocation_of(self, addr: int) -> Optional[Tuple[str, int, int]]:
        """Map a device address to its allocation: (name, base, size).

        Returns None for addresses outside every allocation (e.g. the
        shadow region gap). Used by race diagnosis to attribute races to
        the arrays kernels declared.
        """
        for base, size in self._allocs.items():
            if base <= addr < base + size:
                return (self._names.get(base, f"alloc@{base:#x}"),
                        base, size)
        return None

    # -- raw value access (functional semantics) ---------------------------

    def load(self, addr: int) -> float:
        self._ensure_backing()
        return float(self._values[addr])

    def store(self, addr: int, value: float) -> None:
        self._ensure_backing()
        self._values[addr] = value

    def fill(self, base: int, count: int, stride: int, values: np.ndarray) -> None:
        """Bulk-initialize ``count`` cells starting at ``base`` (host memcpy)."""
        self._ensure_backing()
        idx = base + stride * np.arange(count)
        self._values[idx] = values

    def read_array(self, base: int, count: int, stride: int) -> np.ndarray:
        """Bulk-read ``count`` cells (host memcpy back)."""
        self._ensure_backing()
        idx = base + stride * np.arange(count)
        return self._values[idx].copy()


class DeviceArray:
    """A typed view over a region of device or shared memory.

    Carries (space, base byte address, element size, length). Kernels index
    it logically (element index), and the op constructors translate to byte
    addresses. For shared-space arrays the address is an offset within the
    owning block's shared memory; the value store is the block's, resolved
    at execution time.
    """

    __slots__ = ("space", "base", "itemsize", "length", "name", "_mem")

    def __init__(self, space: MemSpace, base: int, itemsize: int, length: int,
                 name: str = "", mem: Optional[DeviceMemory] = None) -> None:
        self.space = space
        self.base = base
        self.itemsize = itemsize
        self.length = length
        self.name = name
        self._mem = mem

    def addr(self, index: int) -> int:
        """Byte address of element ``index`` (bounds-checked)."""
        if index < 0 or index >= self.length:
            raise KernelError(
                f"index {index} out of bounds for array {self.name!r} "
                f"of length {self.length}"
            )
        return self.base + index * self.itemsize

    @property
    def nbytes(self) -> int:
        return self.itemsize * self.length

    # -- host-side helpers (functional init / readback) --------------------

    def host_write(self, values: np.ndarray) -> None:
        """Host -> device copy into this (global-space) array."""
        if self._mem is None or self.space != MemSpace.GLOBAL:
            raise KernelError("host_write requires a global-memory array")
        values = np.asarray(values, dtype=np.float64)
        if len(values) != self.length:
            raise KernelError(
                f"host_write length mismatch: {len(values)} != {self.length}"
            )
        self._mem.fill(self.base, self.length, self.itemsize, values)

    def host_read(self) -> np.ndarray:
        """Device -> host copy of this (global-space) array."""
        if self._mem is None or self.space != MemSpace.GLOBAL:
            raise KernelError("host_read requires a global-memory array")
        return self._mem.read_array(self.base, self.length, self.itemsize)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceArray({self.name!r}, space={self.space.name}, "
            f"base={self.base:#x}, itemsize={self.itemsize}, len={self.length})"
        )


def device_alloc(mem: DeviceMemory, name: str, length: int,
                 itemsize: int = 4) -> DeviceArray:
    """Allocate a global-memory array and return its typed view."""
    base = mem.malloc(length * itemsize, name=name)
    return DeviceArray(MemSpace.GLOBAL, base, itemsize, length, name=name, mem=mem)
