"""Directory-level cross-GPU race detector.

The per-device HAccRG shadow machinery cannot see conflicts *between*
devices — each device has its own shadow state and sync/fence clocks. The
:class:`DirectoryDetector` models the hardware a home-node directory could
plausibly host: per shadow *granule* (the detector's global granularity,
not per byte), it accumulates the endpoints that touched the granule
during one host phase, and judges them at the phase barrier.

Two deliberate design points:

- **Work-list from the directory.** Only granules on pages with more than
  one sharer in the :class:`~repro.gpu.interconnect.PageDirectory` are
  evaluated — single-sharer pages cannot carry cross-device races, so the
  directory prunes them exactly like the paper's global-space bit prunes
  non-shadowed pages.
- **Phase-deferred judgment.** Whether a write was published system-scope
  is a *phase-final* property of the writing warp (a fence later in the
  same phase still publishes it), and per-device cycle counts are not
  comparable, so judging online at access time would depend on an
  arbitrary interleaving. Both this detector and the exact oracle
  (:class:`repro.core.groundtruth.MultiDeviceOracle`) defer to the phase
  flush and share :func:`repro.core.groundtruth.cross_device_verdict` —
  but they traverse structurally different state (granule endpoint sets
  vs per-byte lists), so their agreement in the differential harness is a
  genuine cross-check, not a tautology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.common.types import RaceCategory, RaceKind
from repro.core.groundtruth import DeviceEndpoint, cross_device_verdict
from repro.multigpu.memory import SharedPagePool


@dataclass(frozen=True)
class CrossGPURace:
    """One granule-level cross-device race the directory detector found."""

    entry: int            #: shadow granule index (addr // granularity)
    kind: RaceKind
    category: RaceCategory
    phase: int
    first_device: int
    second_device: int
    first_tid: int
    second_tid: int

    def describe(self) -> str:
        return (f"{self.category.name} {self.kind.name} on granule "
                f"{self.entry} (phase {self.phase}): device "
                f"{self.first_device} tid {self.first_tid} vs device "
                f"{self.second_device} tid {self.second_tid}")


#: one granule occupant: (device, wid, tid, bid, kind, fence stamp)
_Occupant = Tuple[int, int, int, int, int, int]


class DirectoryDetector:
    """Granule-granularity cross-GPU detector over the page directory."""

    def __init__(self, pool: SharedPagePool, granularity: int = 4) -> None:
        self.pool = pool
        self.granularity = granularity
        #: (device, wid) -> running system-scope fence epoch (persistent)
        self._epoch: Dict[Tuple[int, int], int] = {}
        #: (device, wid) -> epoch at the warp's last record, current phase
        self._final: Dict[Tuple[int, int], int] = {}
        #: granule entry -> {(device, wid, kind, stamp): occupant row}
        self._granules: Dict[int, Dict[Tuple[int, int, int, int],
                                       _Occupant]] = {}
        self.reports: List[CrossGPURace] = []
        self._seen: Set[Tuple[int, int, RaceKind, RaceCategory]] = set()
        self.granules_evaluated = 0
        self.granules_pruned = 0

    # ------------------------------------------------------------------
    # feed (canonical per-phase order; rows pre-filtered to shared pages)

    def on_access(self, device: int, wid: int, bid: int, kind: int,
                  base_tid: int,
                  rows: Iterable[Tuple[int, int, int]]) -> None:
        """One warp access; ``rows`` yields ``(lane, addr, size)``."""
        stamp = self._epoch.get((device, wid), 0)
        self._final[(device, wid)] = stamp
        g = self.granularity
        key = (device, wid, kind, stamp)
        for lane, addr, size in rows:
            first = addr // g
            last = (addr + max(1, size) - 1) // g
            for entry in range(first, last + 1):
                occupants = self._granules.setdefault(entry, {})
                if key not in occupants:
                    occupants[key] = (device, wid, base_tid + lane, bid,
                                      kind, stamp)

    def on_fence(self, device: int, wid: int, scope: int) -> None:
        """One fence; only system scope publishes across devices."""
        if scope:
            epoch = self._epoch.get((device, wid), 0) + 1
            self._epoch[(device, wid)] = epoch
            self._final[(device, wid)] = epoch

    # ------------------------------------------------------------------
    # phase barrier

    def flush_phase(self, phase: int) -> None:
        """Judge the phase's granules against the directory work-list."""
        for entry in sorted(self._granules):
            vpn = self.pool.vpn_of(entry * self.granularity)
            dir_entry = self.pool.directory._entries.get(vpn)
            if dir_entry is None or len(dir_entry.sharers) < 2:
                self.granules_pruned += 1
                continue
            self.granules_evaluated += 1
            endpoints = [
                self._endpoint(phase, row)
                for row in self._granules[entry].values()
            ]
            for i, a in enumerate(endpoints):
                for b in endpoints[i + 1:]:
                    verdict = cross_device_verdict(a, b)
                    if verdict is None:
                        continue
                    kind, category = verdict
                    key = (phase, entry, kind, category)
                    if key in self._seen:
                        continue
                    self._seen.add(key)
                    lo, hi = ((a, b) if a.device < b.device else (b, a))
                    self.reports.append(CrossGPURace(
                        entry=entry, kind=kind, category=category,
                        phase=phase,
                        first_device=lo.device, second_device=hi.device,
                        first_tid=lo.tid, second_tid=hi.tid))
        self._granules.clear()
        self._final.clear()

    def _endpoint(self, phase: int, row: _Occupant) -> DeviceEndpoint:
        device, wid, tid, bid, kind, stamp = row
        final = self._final.get((device, wid), stamp)
        return DeviceEndpoint(device=device, phase=phase, wid=wid, tid=tid,
                              bid=bid, kind=kind,
                              sys_fenced_after=final > stamp)

    # ------------------------------------------------------------------
    # diff surface

    def entry_keys(self) -> Set[Tuple[str, int]]:
        """Detector races as ``("XGPU", entry)`` diff keys (oracle-compatible)."""
        return {("XGPU", r.entry) for r in self.reports}

    def record(self) -> Dict[str, object]:
        """JSON-safe summary of the detector's run."""
        return {
            "races": len(self.reports),
            "granules_evaluated": int(self.granules_evaluated),
            "granules_pruned": int(self.granules_pruned),
            "by_category": _count_by(self.reports, "category"),
            "by_kind": _count_by(self.reports, "kind"),
        }


def _count_by(reports: List[CrossGPURace], attr: str) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for r in reports:
        name = getattr(r, attr).name
        counts[name] = counts.get(name, 0) + 1
    return counts
