"""Remote-traffic recorder: the per-device tap feeding the merge barrier.

Each device simulator carries one :class:`RemoteTrafficRecorder` as a bus
observer. It captures every *global-space* warp access and every fence as
plain tuples stamped ``(cycle, sm_id, seq)`` — ``seq`` is a per-SM record
counter, so the stamp is unique and the system-level canonical sort
``(phase, cycle, device, sm_id, seq)`` is a total order that does not
depend on Python's tuple-payload comparison.

The recorder is ``replay_safe``: it reads only plain event fields (never
live warp/block objects), so under epoch-sharded execution
(:mod:`repro.gpu.epoch`) the coordinator's replay of the merged wire
stream feeds it the exact inline sequence — multi-device runs stay
bit-identical for any ``sm_workers`` setting and remain shard-eligible.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common.types import MemSpace
from repro.events.bus import Subscriber
from repro.events.effects import TimingEffect
from repro.events.records import AccessIssued, FenceIssued

#: one captured record: (cycle, sm_id, seq, payload)
TrafficRecord = Tuple[int, int, int, Tuple[Any, ...]]


class RemoteTrafficRecorder(Subscriber):
    """Capture global accesses + fences as plain, mergeable tuples."""

    replay_safe = True

    def __init__(self) -> None:
        self._records: List[TrafficRecord] = []
        self._seq: Dict[int, int] = {}

    def _next_seq(self, sm_id: int) -> int:
        seq = self._seq.get(sm_id, 0)
        self._seq[sm_id] = seq + 1
        return seq

    # ------------------------------------------------------------------
    # event handlers

    def on_access(self, ev: AccessIssued) -> Optional[TimingEffect]:
        acc = ev.access
        if acc.space != MemSpace.GLOBAL:
            return None
        rows = tuple(
            (int(lane.lane), int(lane.addr), int(lane.size))
            for lane in acc.lanes
        )
        payload = ("A", int(acc.warp_id), int(acc.block_id),
                   int(acc.kind), int(acc.base_tid), rows)
        self._records.append(
            (int(ev.cycle), int(ev.sm_id), self._next_seq(ev.sm_id), payload)
        )
        return None

    def on_fence(self, ev: FenceIssued) -> Optional[TimingEffect]:
        payload = ("F", int(ev.warp_id), int(ev.scope))
        self._records.append(
            (int(ev.cycle), int(ev.sm_id), self._next_seq(ev.sm_id), payload)
        )
        return None

    # ------------------------------------------------------------------

    def drain(self) -> List[TrafficRecord]:
        """Hand over (and clear) everything captured since the last drain.

        Per-SM ``seq`` counters are *not* reset: ``(sm_id, seq)`` stays
        unique across a device's whole lifetime, which keeps the
        system-level sort key collision-free across phases.
        """
        records = self._records
        self._records = []
        return records
