"""Multi-GPU run entry points: direct runs + campaign-pool adapter.

:func:`run_mg_benchmark` is the one way anything (CLI, tests, fuzz,
campaigns) executes a registered multi-GPU benchmark: it builds the
system, installs the shard-rebuild recipe on every device (so
``sm_workers > 0`` runs take the epoch-sharded path bit-identically),
runs every phase, and finalizes into a :class:`MultiGPUResult`.

:class:`MGJob` + :func:`execute_mg_record` ride the campaign engine's
workers/cache/retry machinery under job kind ``"multigpu"`` (see
``repro.campaign.jobs.JOB_EXECUTORS``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.common.config import GPUConfig, HAccRGConfig
from repro.common.errors import ShardTimeoutError
from repro.multigpu.bench import MGAllocator, get_mg_benchmark
from repro.multigpu.system import MultiGPUResult, MultiGPUSimulator

#: bump when the result record shape changes (campaign cache fence)
MG_SCHEMA = 1


def run_mg_benchmark(name: str,
                     gpus: int = 2,
                     detector_config: Optional[HAccRGConfig] = None,
                     gpu_config: Optional[GPUConfig] = None,
                     scale: float = 1.0,
                     seed: int = 0,
                     injection: str = "",
                     timing_enabled: bool = True,
                     verify: bool = False,
                     with_oracle: bool = True,
                     tlb_entries: int = 16) -> MultiGPUResult:
    """Run one multi-GPU benchmark end to end.

    ``injection`` is an injection *name* from the benchmark's catalog
    entries (``""`` = fault-free) — names, not site objects, so the spec
    serializes into shard-rebuild payloads and campaign job records.
    Sharded runs that trip the watchdog retry once with a fresh system,
    like :func:`repro.harness.runner.run_benchmark_direct`.
    """
    from repro.harness.runner import shard_retries

    attempt = 0
    retries = shard_retries()
    while True:
        try:
            return _run_attempt(name, gpus, detector_config, gpu_config,
                                scale, seed, injection, timing_enabled,
                                verify, with_oracle, tlb_entries)
        except ShardTimeoutError:
            attempt += 1
            if attempt > retries:
                raise


def _run_attempt(name: str, gpus: int,
                 detector_config: Optional[HAccRGConfig],
                 gpu_config: Optional[GPUConfig], scale: float, seed: int,
                 injection: str, timing_enabled: bool, verify: bool,
                 with_oracle: bool, tlb_entries: int) -> MultiGPUResult:
    bench = get_mg_benchmark(name)
    mg = MultiGPUSimulator(
        num_devices=gpus, gpu_config=gpu_config,
        detector_config=detector_config, timing_enabled=timing_enabled,
        tlb_entries=tlb_entries, with_oracle=with_oracle)
    mg.set_launch_sources("repro.multigpu.bench", "rebuild_mg_launches", {
        "bench": bench.name, "gpus": gpus, "scale": scale, "seed": seed,
        "injection": injection,
    })
    alloc = MGAllocator(mg.shared_mem, mg.pool)
    plan = bench.plan(alloc, gpus=gpus, scale=scale, seed=seed,
                      injection=injection)
    try:
        for phase in plan.phases:
            mg.run_phase(phase)
    finally:
        mg.close()
    verified: Optional[bool] = None
    if verify and plan.verify is not None:
        plan.verify()  # raises on functional mismatch
        verified = True
    return mg.finalize(name=bench.name, verified=verified)


# ---------------------------------------------------------------------------
# campaign-pool adapter (job kind "multigpu")
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MGJob:
    """One content-addressed multi-GPU benchmark cell."""

    bench: str
    gpus: int = 2
    scale: float = 1.0
    seed: int = 0
    injection: str = ""
    detect: bool = True        #: attach per-device HAccRG detectors
    timing_enabled: bool = True
    verify: bool = False

    def record(self) -> Dict[str, Any]:
        from repro.campaign.jobs import JOB_SCHEMA
        return {
            "schema": JOB_SCHEMA,
            "kind": "multigpu",
            "mg_schema": MG_SCHEMA,
            "bench": self.bench,
            "gpus": self.gpus,
            "scale": self.scale,
            "seed": self.seed,
            "injection": self.injection,
            "detect": self.detect,
            "timing_enabled": self.timing_enabled,
            "verify": self.verify,
        }

    def key(self) -> str:
        payload = json.dumps(self.record(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "MGJob":
        from repro.campaign.jobs import JobSpecError
        if record.get("kind") != "multigpu":
            raise JobSpecError(
                f"not a multigpu job record: {record.get('kind')!r}")
        return cls(
            bench=str(record["bench"]),
            gpus=int(record["gpus"]),
            scale=float(record["scale"]),
            seed=int(record["seed"]),
            injection=str(record["injection"]),
            detect=bool(record["detect"]),
            timing_enabled=bool(record["timing_enabled"]),
            verify=bool(record["verify"]),
        )

    def describe(self) -> str:
        suffix = f"+{self.injection}" if self.injection else ""
        return f"{self.bench}{suffix} x{self.gpus}"


def run_mg_record(job: MGJob) -> Dict[str, Any]:
    """Execute one multi-GPU job; returns the JSON-safe result record."""
    res = run_mg_benchmark(
        job.bench, gpus=job.gpus,
        detector_config=HAccRGConfig() if job.detect else None,
        scale=job.scale, seed=job.seed, injection=job.injection,
        timing_enabled=job.timing_enabled, verify=job.verify)
    return res.record()


def execute_mg_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side entry point for ``kind: "multigpu"`` job records."""
    return run_mg_record(MGJob.from_record(record))
