"""Multi-GPU differential fuzzing: directory detector vs exact HB oracle.

The generator emits small random multi-device programs over one unified
array: per phase, each device runs a kernel made of strided reads,
writes, system atomics, and fences of either scope — the launch-placement
and fence-scope vocabulary the single-GPU fuzzer cannot express. Every
program is executed through the full :class:`MultiGPUSimulator` stack and
the run *is* the differential check: ``finalize`` diffs the granule-level
directory detector against the byte-exact
:class:`~repro.core.groundtruth.MultiDeviceOracle` at entry level, and
any disagreement is a contradiction.

All operations are whole-word on a 4-byte array and the detector granule
is 4 bytes, so byte-exact and granule-level entry sets coincide — entry
diffs are meaningful, not aliasing noise.

Programs serialize to plain JSON records; ``rebuild_mg_fuzz_launches``
rebuilds a device's flat launch list from the record, so fuzz iterations
are shard-eligible like every other multi-GPU run.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.common.config import GPUConfig, HAccRGConfig
from repro.gpu.device import DeviceArray
from repro.gpu.kernel import Kernel
from repro.gpu.simulator import GPUSimulator
from repro.multigpu.system import MGLaunch, MultiGPUSimulator

_BLOCK = 32

#: bump when program shape or judgment changes (digest fence)
#: 2: static fourth stage (scope-aware multi-device analyzer) joins the
#: differential, iteration records carry a ``static`` section, and the
#: campaign summary gains per-cell digests + prefilter accounting
MG_FUZZ_SCHEMA = 2


@dataclass(frozen=True)
class MGFuzzParams:
    """Generator knobs; part of every iteration's identity."""

    gpus: int = 2
    max_phases: int = 2
    max_stmts: int = 3
    n: int = 64                 #: unified array length (words)
    launch_prob: float = 0.85   #: chance a device launches in a phase

    def record(self) -> Dict[str, Any]:
        return {
            "gpus": self.gpus, "max_phases": self.max_phases,
            "max_stmts": self.max_stmts, "n": self.n,
            "launch_prob": self.launch_prob,
        }

    @staticmethod
    def from_record(record: Dict[str, Any]) -> "MGFuzzParams":
        return MGFuzzParams(
            gpus=int(record["gpus"]),
            max_phases=int(record["max_phases"]),
            max_stmts=int(record["max_stmts"]),
            n=int(record["n"]),
            launch_prob=float(record["launch_prob"]),
        )


def generate_mg_program(seed: int,
                        params: MGFuzzParams = MGFuzzParams()
                        ) -> Dict[str, Any]:
    """One random multi-device program as a plain JSON-able record.

    Statement vocabulary per device kernel: ``["write"|"read"|"atomic",
    start, stop]`` (strided over ``[start, stop)``) and
    ``["fence", scope]`` with scope 0 (device) or 1 (system).
    """
    rng = random.Random(seed)
    phases: List[List[Dict[str, Any]]] = []
    num_phases = rng.randint(1, params.max_phases)
    for _ in range(num_phases):
        phase: List[Dict[str, Any]] = []
        for device in range(params.gpus):
            if rng.random() > params.launch_prob:
                continue
            stmts: List[List[Any]] = []
            for _ in range(rng.randint(1, params.max_stmts)):
                op = rng.choice(["write", "read", "atomic", "fence"])
                if op == "fence":
                    stmts.append(["fence", rng.randint(0, 1)])
                else:
                    start = rng.randrange(0, params.n)
                    stop = rng.randrange(start + 1, params.n + 1)
                    stmts.append([op, start, stop])
            if stmts:
                phase.append({"device": device, "stmts": stmts})
        if phase:
            phases.append(phase)
    return {
        "schema": MG_FUZZ_SCHEMA,
        "seed": seed,
        "params": params.record(),
        "phases": phases,
    }


def mg_fuzz_kernel(ctx: Any, buf: DeviceArray, stmts: Any, n: int) -> Any:
    """Interpreter kernel for one device's statement list."""
    gtid = ctx.global_tid_x
    stride = ctx.num_threads
    for st in stmts:
        op = st[0]
        if op == "fence":
            if st[1]:
                yield ctx.threadfence_system()
            else:
                yield ctx.threadfence()
        elif op == "write":
            for i in range(st[1] + gtid, st[2], stride):
                yield ctx.store(buf, i, float(i + 1))
        elif op == "read":
            for i in range(st[1] + gtid, st[2], stride):
                yield ctx.load(buf, i)
        else:  # atomic
            for i in range(st[1] + gtid, st[2], stride):
                yield ctx.atomic_add(buf, i, 1.0)


def _program_phases(program: Dict[str, Any],
                    buf: DeviceArray) -> List[List[MGLaunch]]:
    kernel = Kernel(mg_fuzz_kernel, name="mg_fuzz")
    n = int(program["params"]["n"])
    return [
        [
            MGLaunch(int(entry["device"]), kernel, 1, _BLOCK,
                     (buf, tuple(tuple(st) for st in entry["stmts"]), n))
            for entry in phase
        ]
        for phase in program["phases"]
    ]


def rebuild_mg_fuzz_launches(payload: Dict[str, Any],
                             sim: GPUSimulator) -> List[MGLaunch]:
    """Shard-side rebuild: replay the allocation, return device launches."""
    from repro.gpu.device import device_alloc

    program = payload["program"]
    n = int(program["params"]["n"])
    buf = device_alloc(sim.device_mem, "mg_fuzz_buf", n)
    device = payload["device"]
    return [ls for phase in _program_phases(program, buf) for ls in phase
            if ls.device == device]


def mg_static_report(program: Dict[str, Any]) -> Dict[str, Any]:
    """The scope-aware static report of one mg-fuzz program record."""
    from repro.analyze.multidevice import build_mg_report, mg_fuzz_model

    return build_mg_report(mg_fuzz_model(program))


def _static_sha(report: Dict[str, Any]) -> str:
    from repro.analyze.verdict import report_json

    return hashlib.sha256(
        report_json(report).encode("utf-8")).hexdigest()


def _static_stage(program: Dict[str, Any],
                  cross_races: Any,
                  report: Optional[Dict[str, Any]] = None
                  ) -> Dict[str, Any]:
    """The fourth differential stage: static verdicts vs the oracle.

    The dynamic run already diffed the directory detector against the
    byte-exact oracle; this grades the simulation-free analyzer against
    the same oracle races, with the single-GPU differential's contract —
    racy needs a confirmed witness, race-free needs a clean byte range,
    unknown never contradicts.
    """
    from repro.analyze.multidevice import mg_cross_check

    if report is None:
        report = mg_static_report(program)
    check = mg_cross_check(report, cross_races)
    return {
        "verdicts": dict(report["verdicts"]),
        "racy_confirmed": check["racy_confirmed"],
        "race_free_clean": check["race_free_clean"],
        "unknown": check["unknown"],
        "contradictions": check["contradictions"],
        "report_sha": _static_sha(report),
    }


def run_mg_fuzz_iteration(seed: int,
                          params: MGFuzzParams = MGFuzzParams(),
                          gpu_config: Optional[GPUConfig] = None,
                          detector_config: Optional[HAccRGConfig] = None
                          ) -> Dict[str, Any]:
    """Generate + execute + differentially judge one program.

    The run digest covers only the dynamic stack (``res.digest``), so
    records stay byte-comparable with pre-static campaigns cell by cell;
    the ``static`` section rides alongside.
    """
    program = generate_mg_program(seed, params)
    mg = MultiGPUSimulator(
        num_devices=params.gpus, gpu_config=gpu_config,
        detector_config=detector_config or HAccRGConfig(),
        timing_enabled=False)
    mg.set_launch_sources(
        "repro.multigpu.fuzz", "rebuild_mg_fuzz_launches",
        {"program": program})
    buf = mg.malloc("mg_fuzz_buf", params.n, home=0, shared=True)
    try:
        for phase in _program_phases(program, buf):
            mg.run_phase(phase)
    finally:
        mg.close()
    res = mg.finalize(name=f"mg_fuzz[{seed}]")
    return {
        "seed": seed,
        "phases": res.phases,
        "events": res.events,
        "oracle_races": len(res.cross_races),
        "detector_races": len(res.detector_reports),
        "contradictions": list(res.contradictions),
        "static": _static_stage(program, res.cross_races),
        "digest": res.digest,
    }


def _prefiltered_record(seed: int, program: Dict[str, Any],
                        report: Dict[str, Any]) -> Dict[str, Any]:
    """A skipped cell: the static pass proved the program race-free.

    Shaped like a normal iteration record so summary math is uniform;
    the digest is derived from the canonical static report instead of
    the (never produced) merged event stream.
    """
    return {
        "seed": seed,
        "phases": len(program["phases"]),
        "events": 0,
        "oracle_races": 0,
        "detector_races": 0,
        "contradictions": [],
        "static": {
            "verdicts": dict(report["verdicts"]),
            "contradictions": [],
            "report_sha": _static_sha(report),
        },
        "prefiltered": True,
        "digest": "static:" + _static_sha(report),
    }


def run_mg_fuzz(seed: int, iterations: int,
                params: MGFuzzParams = MGFuzzParams(),
                gpu_config: Optional[GPUConfig] = None,
                static_prefilter: bool = False) -> Dict[str, Any]:
    """A deterministic multi-GPU fuzz campaign; returns the summary record.

    Iteration seeds derive arithmetically from the base seed, so the
    campaign digest is fully determined by ``(seed, iterations, params)``.
    With ``static_prefilter``, programs the static analyzer proves
    race-free (zero racy AND zero unknown regions) skip the multi-device
    simulation entirely; every non-skipped cell keeps its byte-identical
    dynamic digest, so prefiltered and plain campaigns remain
    cell-by-cell comparable via the summary's ``cells`` list.
    """
    results: List[Dict[str, Any]] = []
    prefiltered = 0
    for i in range(iterations):
        s = seed + i
        if static_prefilter:
            program = generate_mg_program(s, params)
            report = mg_static_report(program)
            verdicts = report["verdicts"]
            if not verdicts["racy"] and not verdicts["unknown"]:
                results.append(_prefiltered_record(s, program, report))
                prefiltered += 1
                continue
        results.append(
            run_mg_fuzz_iteration(s, params, gpu_config=gpu_config))
    contradictions = [
        f"seed {r['seed']}: {c}" for r in results
        for c in r["contradictions"]
    ]
    static_contradictions = [
        f"seed {r['seed']}: {c}" for r in results
        for c in r["static"]["contradictions"]
    ]
    h = hashlib.sha256()
    for r in results:
        h.update(r["digest"].encode("utf-8"))
    return {
        "schema": MG_FUZZ_SCHEMA,
        "seed": seed,
        "iterations": iterations,
        "params": params.record(),
        "racy_programs": sum(1 for r in results if r["oracle_races"]),
        "oracle_races": sum(r["oracle_races"] for r in results),
        "detector_races": sum(r["detector_races"] for r in results),
        "contradictions": contradictions,
        "static_contradictions": static_contradictions,
        "static_prefilter": bool(static_prefilter),
        "prefiltered": prefiltered,
        "cells": [
            {"seed": r["seed"], "digest": r["digest"],
             "prefiltered": bool(r.get("prefiltered"))}
            for r in results
        ],
        "digest": h.hexdigest(),
    }


def mg_fuzz_digest(record: Dict[str, Any]) -> str:
    """Canonical digest of a fuzz summary (for cross-run comparison)."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
