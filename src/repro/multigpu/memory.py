"""Shared-page placement: one device-memory pool, per-device translations.

A multi-GPU system here has a *single* :class:`~repro.gpu.device.DeviceMemory`
pool — the bump allocator hands out globally unique byte addresses, so a
peer-mapped array is genuinely the same storage no matter which device
touches it. What differs per device is *translation*: every device owns a
:class:`~repro.vm.PageTable` plus a :class:`~repro.vm.TaggedTLB`, and the
:class:`SharedPagePool` decides which tables an allocation lands in:

- ``shared=True`` (peer-mapped / unified): mapped into **every** device's
  page table and registered page-by-page in the home-node
  :class:`~repro.gpu.interconnect.PageDirectory` under its ``home`` device.
- ``shared=False`` (device-local): mapped into the home device's table
  only; a remote access page-faults, exactly like touching an unmapped
  peer allocation on real hardware.

The pool never looks at access streams itself — the
:class:`~repro.multigpu.system.MultiGPUSimulator` walks the canonical
merged record stream after each run and consults the pool for homes,
sharing, and TLB pricing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.gpu.device import DeviceArray, DeviceMemory, device_alloc
from repro.gpu.interconnect import PageDirectory
from repro.vm import PageTable, TaggedTLB


class SharedPagePool:
    """Placement + translation state for an N-device system."""

    def __init__(self, num_devices: int, mem: DeviceMemory,
                 page_size: int = 4096, tlb_entries: int = 16) -> None:
        if num_devices < 1:
            raise ConfigError("a multi-GPU system needs >= 1 device")
        self.num_devices = num_devices
        self.mem = mem
        self.page_size = page_size
        self._shift = page_size.bit_length() - 1
        self.page_tables: List[PageTable] = [
            PageTable(page_size) for _ in range(num_devices)
        ]
        self.tlbs: List[TaggedTLB] = [
            TaggedTLB(tlb_entries, self.page_tables[d])
            for d in range(num_devices)
        ]
        self.directory = PageDirectory(page_size)
        #: vpn -> home device, for every page the pool allocated
        self._home: Dict[int, int] = {}
        #: vpn -> True when the page is peer-visible (in every table)
        self._shared: Dict[int, bool] = {}
        self.arrays: List[DeviceArray] = []

    # ------------------------------------------------------------------
    # allocation

    def alloc(self, name: str, length: int, itemsize: int = 4,
              home: int = 0, shared: bool = False) -> DeviceArray:
        """Allocate an array on ``home``; map it per the sharing mode."""
        if not 0 <= home < self.num_devices:
            raise ConfigError(f"home device {home} out of range")
        arr = device_alloc(self.mem, name, length, itemsize)
        self.register(arr, home=home, shared=shared)
        return arr

    def register(self, arr: DeviceArray, home: int, shared: bool) -> None:
        """Record placement for an already-allocated array."""
        nbytes = arr.length * arr.itemsize
        targets = range(self.num_devices) if shared else (home,)
        for d in targets:
            self.page_tables[d].map_range(arr.base, nbytes, is_global=True)
        first = self.vpn_of(arr.base)
        last = self.vpn_of(arr.base + max(1, nbytes) - 1)
        for vpn in range(first, last + 1):
            self._home.setdefault(vpn, home)
            if shared:
                self._shared[vpn] = True
                self.directory.register_page(vpn, home)
        self.arrays.append(arr)

    # ------------------------------------------------------------------
    # placement queries

    def vpn_of(self, addr: int) -> int:
        return addr >> self._shift

    def home_of_addr(self, addr: int) -> Optional[int]:
        """Home device of the page containing ``addr`` (None: untracked)."""
        return self._home.get(self.vpn_of(addr))

    def is_shared_addr(self, addr: int) -> bool:
        """Whether ``addr`` lies on a peer-visible (shared) page."""
        return self._shared.get(self.vpn_of(addr), False)

    def tlb_record(self) -> List[Dict[str, object]]:
        """Per-device TLB statistics records (JSON-safe)."""
        return [tlb.stats.record() for tlb in self.tlbs]
