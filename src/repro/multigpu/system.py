"""The multi-GPU system: N device simulators behind a peer interconnect.

:class:`MultiGPUSimulator` composes N single-device
:class:`~repro.gpu.simulator.GPUSimulator` instances into one system:

- **One device-memory pool.** All devices share a single
  :class:`~repro.gpu.device.DeviceMemory` (installed before any
  allocation), so the bump allocator hands out globally unique addresses
  and a peer write is genuinely visible to a later peer read. Under
  epoch-sharded execution this stays correct for free: global-memory
  values live only on the coordinator (shard workers receive lane values
  with each park response and never read their local copy).
- **Host phases.** A run is a sequence of *phases*; within a phase the
  kernels launched on different devices are logically concurrent, and the
  host synchronizes every device at the phase boundary. Devices execute
  sequentially in device order inside :meth:`run_phase` — ordering is a
  *timing* fiction, not a synchronization one: cross-device race judgment
  never compares device-local cycles.
- **Deterministic merge barrier.** Each device's
  :class:`~repro.multigpu.recorder.RemoteTrafficRecorder` (replay-safe,
  so multi-device runs remain shard-eligible) is drained at the phase
  boundary and the records merged under the canonical total order
  ``(phase, cycle, device, sm_id, seq)`` — the same key for any
  ``sm_workers`` setting, so multi-device runs are bit-identical across
  inline, sharded, and fast-path execution.
- **Post-run analysis.** TLB translation (:mod:`repro.vm`), directory
  bookkeeping, peer-link pricing
  (:class:`~repro.gpu.interconnect.PeerFabric`), the directory-level
  cross-GPU detector, and the exact HB oracle all consume the canonical
  merged stream in :meth:`finalize` — never live timing effects, which
  would break inline/sharded parity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.config import DetectionMode, GPUConfig, HAccRGConfig, scaled_gpu_config
from repro.common.errors import ConfigError
from repro.core.groundtruth import (
    CrossDeviceRace,
    MultiDeviceOracle,
    cross_device_entries,
)
from repro.gpu.device import DeviceArray, DeviceMemory
from repro.gpu.interconnect import PeerFabric
from repro.gpu.kernel import Kernel
from repro.gpu.simulator import GPUSimulator, SimulationResult
from repro.multigpu.detector import CrossGPURace, DirectoryDetector
from repro.multigpu.memory import SharedPagePool
from repro.multigpu.recorder import RemoteTrafficRecorder


def mg_gpu_config(**overrides: Any) -> GPUConfig:
    """A small per-device configuration for multi-GPU runs.

    Four SMs in two clusters per device keeps an N-device system tractable
    while still exercising block distribution; overrides pass through to
    :func:`~repro.common.config.scaled_gpu_config`.
    """
    params: Dict[str, Any] = {"num_sms": 4, "num_clusters": 2}
    params.update(overrides)
    return scaled_gpu_config(**params)


@dataclass(frozen=True)
class MGLaunch:
    """One kernel launch on one device within the current phase."""

    device: int
    kernel: Kernel
    grid: Any
    block: Any
    args: Tuple[Any, ...] = ()


@dataclass
class MultiGPUResult:
    """Everything one multi-GPU run produced (JSON-safe via record())."""

    name: str
    num_devices: int
    phases: int
    events: int
    device_stats: List[Dict[str, int]]
    device_races: List[int]
    cross_races: List[CrossDeviceRace]
    detector_reports: List[CrossGPURace]
    contradictions: List[str]
    interconnect: Dict[str, Any]
    directory: Dict[str, Any]
    tlb: List[Dict[str, Any]]
    remote_cycles: List[int]
    verified: Optional[bool] = None
    digest: str = ""

    def record(self) -> Dict[str, Any]:
        """Canonical JSON-safe record (digest covers everything else)."""
        return {
            "name": self.name,
            "num_devices": self.num_devices,
            "phases": self.phases,
            "events": self.events,
            "device_stats": self.device_stats,
            "device_races": list(self.device_races),
            "cross_races": [
                {
                    "byte": r.byte, "kind": r.kind.name,
                    "category": r.category.name, "phase": r.phase,
                    "first_device": r.first_device,
                    "second_device": r.second_device,
                    "first_tid": r.first_tid, "second_tid": r.second_tid,
                }
                for r in self.cross_races
            ],
            "detector_reports": [
                {
                    "entry": r.entry, "kind": r.kind.name,
                    "category": r.category.name, "phase": r.phase,
                    "first_device": r.first_device,
                    "second_device": r.second_device,
                    "first_tid": r.first_tid, "second_tid": r.second_tid,
                }
                for r in self.detector_reports
            ],
            "contradictions": list(self.contradictions),
            "interconnect": self.interconnect,
            "directory": self.directory,
            "tlb": self.tlb,
            "remote_cycles": list(self.remote_cycles),
            "verified": self.verified,
            "digest": self.digest,
        }


#: one merged record: (phase, cycle, device, sm_id, seq, payload)
_MergedRecord = Tuple[int, int, int, int, int, Tuple[Any, ...]]


class MultiGPUSimulator:
    """N peer GPU devices + shared pages + cross-GPU race detection."""

    def __init__(self, num_devices: int = 2,
                 gpu_config: Optional[GPUConfig] = None,
                 detector_config: Optional[HAccRGConfig] = None,
                 timing_enabled: bool = True,
                 tlb_entries: int = 16,
                 with_oracle: bool = True) -> None:
        if num_devices < 2:
            raise ConfigError("a multi-GPU system needs >= 2 devices")
        self.num_devices = num_devices
        self.config = gpu_config or mg_gpu_config()
        self.detector_config = detector_config
        self.shared_mem = DeviceMemory()
        self.pool = SharedPagePool(num_devices, self.shared_mem,
                                   tlb_entries=tlb_entries)
        self.fabric = PeerFabric(num_devices)
        granularity = (detector_config.global_granularity
                       if detector_config is not None else 4)
        self.directory_detector = DirectoryDetector(self.pool,
                                                    granularity=granularity)
        self.oracle: Optional[MultiDeviceOracle] = (
            MultiDeviceOracle() if with_oracle else None)
        self.devices: List[GPUSimulator] = []
        self.recorders: List[RemoteTrafficRecorder] = []
        self.detectors: List[Any] = []
        for _ in range(num_devices):
            sim = GPUSimulator(self.config, timing_enabled=timing_enabled)
            # the shared pool must be installed before ANY allocation so
            # every device address comes from the one bump allocator
            sim.device_mem = self.shared_mem
            recorder = RemoteTrafficRecorder()
            sim.add_observer(recorder)
            detector: Any = None
            if (detector_config is not None
                    and detector_config.mode != DetectionMode.OFF):
                from repro.harness.runner import make_detector
                detector = make_detector(detector_config, sim)
                sim.attach_detector(detector)
            self.devices.append(sim)
            self.recorders.append(recorder)
            self.detectors.append(detector)
        self.phase = 0
        self._stream: List[_MergedRecord] = []
        self._last: List[Optional[SimulationResult]] = [None] * num_devices
        self.remote_cycles: List[int] = [0] * num_devices
        self._finalized = False

    # ------------------------------------------------------------------
    # host API

    def malloc(self, name: str, length: int, itemsize: int = 4,
               home: int = 0, shared: bool = False) -> DeviceArray:
        """Allocate through the shared pool (placement-aware cudaMalloc)."""
        return self.pool.alloc(name, length, itemsize=itemsize,
                               home=home, shared=shared)

    def set_launch_sources(self, module: str, func: str,
                           payload: Dict[str, Any]) -> None:
        """Install a shard-rebuild recipe on every device simulator.

        Each device receives the payload extended with its ``device``
        index; ``module.func(payload, sim)`` must return that device's
        *flat* launch list across all phases, in :meth:`run_phase` order.
        """
        for d, sim in enumerate(self.devices):
            device_payload = dict(payload)
            device_payload["device"] = d
            sim.launch_source = (module, func, device_payload)

    def run_phase(self, launches: Sequence[MGLaunch]) -> None:
        """Execute one host phase and merge the devices' record streams.

        Devices run sequentially in device order (each device's launches
        in the given order); the phase boundary is the host-wide
        synchronization point the cross-GPU detectors key on.
        """
        for d in range(self.num_devices):
            for ls in launches:
                if ls.device != d:
                    continue
                self._last[d] = self.devices[d].launch(
                    ls.kernel, ls.grid, ls.block, ls.args)
        for d in range(self.num_devices):
            for cycle, sm_id, seq, payload in self.recorders[d].drain():
                self._stream.append(
                    (self.phase, cycle, d, sm_id, seq, payload))
        self.phase += 1

    def close(self) -> None:
        """Release every device's scheduler resources (shard workers)."""
        for sim in self.devices:
            sim.close()

    # ------------------------------------------------------------------
    # analysis

    def finalize(self, name: str = "",
                 verified: Optional[bool] = None) -> MultiGPUResult:
        """Walk the canonical merged stream; price, detect, and judge."""
        if self._finalized:
            raise ConfigError("finalize() may only run once per system")
        self._finalized = True
        events = sorted(self._stream)
        current_phase = 0
        for phase, cycle, device, sm_id, seq, payload in events:
            # the stream is phase-major: flush the directory detector at
            # every phase boundary — its granule state is per-phase and
            # judgment is deferred to the host synchronization point
            while current_phase < phase:
                self.directory_detector.flush_phase(current_phase)
                current_phase += 1
            if payload[0] == "A":
                self._analyze_access(phase, cycle, device, payload)
            else:
                _, wid, scope = payload
                if self.oracle is not None:
                    self.oracle.on_fence(device, phase, wid, scope)
                self.directory_detector.on_fence(device, wid, scope)
        while current_phase < self.phase:
            self.directory_detector.flush_phase(current_phase)
            current_phase += 1
        return self._build_result(name, verified, events)

    def _analyze_access(self, phase: int, cycle: int, device: int,
                        payload: Tuple[Any, ...]) -> None:
        _, wid, bid, kind, base_tid, rows = payload
        tlb = self.pool.tlbs[device]
        shadowed = self.detector_config is not None
        remote: Dict[int, int] = {}
        vpns: Dict[int, None] = {}
        shared_rows: List[Tuple[int, int, int]] = []
        for lane, addr, size in rows:
            if shadowed:
                tlb.access_cycles(addr)
            else:
                tlb.translate(addr)
            vpn = self.pool.vpn_of(addr)
            if self.pool.is_shared_addr(addr):
                vpns[vpn] = None
                shared_rows.append((lane, addr, size))
            home = self.pool.home_of_addr(addr)
            if home is not None and home != device:
                remote[home] = remote.get(home, 0) + size
        for vpn in vpns:
            self.directory.note_access(vpn, device, kind)
        for home, nbytes in sorted(remote.items()):
            self.remote_cycles[device] += self.fabric.remote_access_cycles(
                device, home, nbytes, kind != 0, cycle)
        if shared_rows:
            if self.oracle is not None:
                self.oracle.on_access(device, phase, wid, bid, kind,
                                      base_tid, shared_rows)
            self.directory_detector.on_access(device, wid, bid, kind,
                                              base_tid, shared_rows)

    @property
    def directory(self) -> Any:
        return self.pool.directory

    def _build_result(self, name: str, verified: Optional[bool],
                      events: List[_MergedRecord]) -> MultiGPUResult:
        cross_races: List[CrossDeviceRace] = []
        if self.oracle is not None:
            cross_races = self.oracle.finish()
        contradictions = self._diff(cross_races)
        device_stats: List[Dict[str, int]] = []
        device_races: List[int] = []
        for d, sim in enumerate(self.devices):
            stats = sim.metrics.total_stats()
            last = self._last[d]
            device_stats.append({
                "cycles": int(last.cycles) if last else 0,
                "instructions": int(stats.instructions),
                "global_reads": int(stats.global_reads),
                "global_writes": int(stats.global_writes),
                "atomics": int(stats.atomics),
                "fences": int(stats.fences),
                "barriers": int(stats.barriers),
            })
            detector = self.detectors[d]
            log = getattr(detector, "log", None)
            device_races.append(len(log) if log is not None else 0)
        result = MultiGPUResult(
            name=name,
            num_devices=self.num_devices,
            phases=self.phase,
            events=len(events),
            device_stats=device_stats,
            device_races=device_races,
            cross_races=cross_races,
            detector_reports=list(self.directory_detector.reports),
            contradictions=contradictions,
            interconnect={
                "links": self.fabric.records(),
                "total_bytes": int(self.fabric.total_bytes()),
                "total_transfers": int(self.fabric.total_transfers()),
            },
            directory=self.pool.directory.record(),
            tlb=self.pool.tlb_record(),
            remote_cycles=list(self.remote_cycles),
            verified=verified,
        )
        result.digest = _digest(result, events)
        return result

    def _diff(self, cross_races: List[CrossDeviceRace]) -> List[str]:
        """Oracle-vs-directory-detector disagreements at entry level."""
        if self.oracle is None:
            return []
        oracle_keys = cross_device_entries(
            cross_races, self.directory_detector.granularity)
        detector_keys = self.directory_detector.entry_keys()
        out: List[str] = []
        for key in sorted(oracle_keys - detector_keys):
            out.append(f"oracle-only: {key[0]} entry {key[1]}")
        for key in sorted(detector_keys - oracle_keys):
            out.append(f"detector-only: {key[0]} entry {key[1]}")
        return out


def _digest(result: MultiGPUResult, events: List[_MergedRecord]) -> str:
    """Bit-identity fingerprint: canonical stream + canonical record."""
    h = hashlib.sha256()
    for ev in events:
        h.update(repr(ev).encode("utf-8"))
    record = result.record()
    record.pop("digest", None)
    h.update(json.dumps(record, sort_keys=True).encode("utf-8"))
    return h.hexdigest()
