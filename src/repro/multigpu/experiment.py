"""The multi-GPU reproduction section: suite sweep + injection matrix.

Runs every registered multi-GPU benchmark fault-free (functional verify
where the benchmark defines one) and then every catalog injection, and
renders both as the ``multigpu`` experiment table the CLI prints for
``repro experiment multigpu`` / ``repro reproduce --gpus N``. Each
injected cell cross-checks the directory detector against the extended
happens-before oracle — the rendered table shows the observed race
kinds/categories next to the catalog's expectation and any
contradictions, which must be zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.common.config import HAccRGConfig
from repro.multigpu.bench import MG_BENCHMARKS, MG_INJECTION_CATALOG
from repro.multigpu.runner import run_mg_benchmark
from repro.multigpu.system import MultiGPUResult


@dataclass
class MGRow:
    """One rendered cell of the multi-GPU study."""

    name: str
    injection: str
    expected: str            #: catalog expectation ("" for safe cells)
    phases: int
    events: int
    oracle_races: int
    detector_races: int
    observed: str            #: observed kind/category summary
    contradictions: int
    remote_cycles: int
    tlb_app_miss: float
    verified: Optional[bool]


def _observed(res: MultiGPUResult) -> str:
    kinds = sorted({r.kind.name for r in res.detector_reports})
    cats = sorted({r.category.name for r in res.detector_reports})
    if not kinds:
        return "-"
    return f"{'/'.join(kinds)} {'/'.join(cats)}"


def _row(res: MultiGPUResult, injection: str, expected: str) -> MGRow:
    tlb_acc = sum(t["app_accesses"] for t in res.tlb)
    tlb_hit = sum(t["app_hits"] for t in res.tlb)
    return MGRow(
        name=res.name,
        injection=injection,
        expected=expected,
        phases=res.phases,
        events=res.events,
        oracle_races=len(res.cross_races),
        detector_races=len(res.detector_reports),
        observed=_observed(res),
        contradictions=len(res.contradictions),
        remote_cycles=sum(res.remote_cycles),
        tlb_app_miss=(1 - tlb_hit / tlb_acc) if tlb_acc else 0.0,
        verified=res.verified,
    )


def multigpu_study(scale: float = 1.0, gpus: int = 2,
                   seed: int = 0) -> List[MGRow]:
    """Run the full multi-GPU matrix: every benchmark, every injection."""
    cfg = HAccRGConfig()
    rows: List[MGRow] = []
    for bench in MG_BENCHMARKS:
        res = run_mg_benchmark(bench.name, gpus=gpus, detector_config=cfg,
                               scale=scale, seed=seed,
                               verify=not bench.has_real_race)
        rows.append(_row(res, "", "design race" if bench.has_real_race
                         else "race-free"))
    for spec in MG_INJECTION_CATALOG:
        if not spec.injection:
            continue  # design-race specs are the fault-free rows above
        res = run_mg_benchmark(spec.bench, gpus=gpus, detector_config=cfg,
                               scale=scale, seed=seed,
                               injection=spec.injection)
        expected = (f"{'/'.join(sorted(k.name for k in spec.expected_kinds))}"
                    f" {'/'.join(sorted(c.name for c in spec.expected_categories))}")
        rows.append(_row(res, spec.injection, expected))
    return rows


def render_multigpu(rows: List[MGRow]) -> str:
    out = [
        "MULTI-GPU EXTENSION: DIRECTORY DETECTOR vs HB ORACLE "
        "(docs/MULTIGPU.md)",
        "-" * 78,
        f"{'Bench':12s} {'inject':8s} {'oracle':>6s} {'det':>5s} "
        f"{'contra':>6s} {'remote cyc':>10s} {'tlb miss':>8s}  observed",
    ]
    for r in rows:
        mark = {True: " [verified]", False: " [BROKEN]"}.get(r.verified, "")
        out.append(
            f"{r.name:12s} {r.injection or '-':8s} {r.oracle_races:>6d} "
            f"{r.detector_races:>5d} {r.contradictions:>6d} "
            f"{r.remote_cycles:>10d} {r.tlb_app_miss:>7.1%}  "
            f"{r.observed}{mark}"
        )
    total_contra = sum(r.contradictions for r in rows)
    out.append(f"cross-check: {total_contra} oracle-vs-detector "
               f"contradictions across {len(rows)} cells"
               + (" [FAIL]" if total_contra else " [ok]"))
    return "\n".join(out)


def study_record(rows: List[MGRow]) -> Dict[str, Any]:
    """JSON-safe summary of a study (CI smoke and tests assert on this)."""
    return {
        "cells": [
            {
                "name": r.name, "injection": r.injection,
                "expected": r.expected, "observed": r.observed,
                "oracle_races": r.oracle_races,
                "detector_races": r.detector_races,
                "contradictions": r.contradictions,
                "verified": r.verified,
            }
            for r in rows
        ],
        "contradictions": sum(r.contradictions for r in rows),
    }
