"""Multi-GPU simulation: peer devices, shared pages, cross-GPU detection.

The package composes N single-device :class:`~repro.gpu.simulator.GPUSimulator`
instances into one :class:`MultiGPUSimulator` (``system.py``) behind a
cycle-priced peer interconnect (:class:`~repro.gpu.interconnect.PeerFabric`)
and a home-node page directory. Device memory is a single shared pool so
peer-mapped and unified pages are real shared state; per-device page
tables + TLBs (:mod:`repro.vm`) decide locality, and a directory-level
cross-GPU detector (``detector.py``) plus an exact byte-granularity HB
oracle extension (:class:`repro.core.groundtruth.MultiDeviceOracle`) judge
cross-device races. See ``docs/MULTIGPU.md``.
"""

from repro.multigpu.bench import (
    MG_BENCHMARKS,
    MG_INJECTION_CATALOG,
    MGInjectionSpec,
    get_mg_benchmark,
    rebuild_mg_launches,
)
from repro.multigpu.detector import CrossGPURace, DirectoryDetector
from repro.multigpu.memory import SharedPagePool
from repro.multigpu.recorder import RemoteTrafficRecorder
from repro.multigpu.runner import run_mg_benchmark, run_mg_record
from repro.multigpu.system import (
    MGLaunch,
    MultiGPUResult,
    MultiGPUSimulator,
    mg_gpu_config,
)

__all__ = [
    "MG_BENCHMARKS",
    "MG_INJECTION_CATALOG",
    "MGInjectionSpec",
    "MGLaunch",
    "MultiGPUResult",
    "MultiGPUSimulator",
    "CrossGPURace",
    "DirectoryDetector",
    "RemoteTrafficRecorder",
    "SharedPagePool",
    "get_mg_benchmark",
    "mg_gpu_config",
    "rebuild_mg_launches",
    "run_mg_benchmark",
    "run_mg_record",
]
