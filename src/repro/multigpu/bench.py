"""Multi-GPU benchmarks: peer exchange, unified memory, halo patterns.

Four workloads exercise the cross-device sharing idioms the directory
detector and the extended HB oracle must judge:

- ``MG_RING`` — peer ring exchange: every device writes its neighbor's
  inbox in phase 0 and reduces its own in phase 1. Cross-phase, so safe;
  the ``overlap`` injection adds a same-phase write into the device's own
  (concurrently written) inbox → a ``XGPU_SHARING`` WAW race.
- ``MG_PRODCONS`` — unified-memory producer/consumer in *one* phase:
  device 0 writes, publishes with ``__threadfence_system``, and signals
  an atomic flag; device 1 polls the flag atomically and reads. Safe as
  written; the ``nofence`` injection downgrades the fence to device scope
  → every data byte becomes a ``XGPU_FENCE`` RAW race (the flagship
  missing-system-fence case).
- ``MG_HALO`` — same-phase halo exchange published with device-scope
  fences only: racy by design (``XGPU_FENCE``), the multi-GPU analogue of
  the paper's documented-real-race benchmarks.
- ``MG_UNIFIED`` — system-atomic reduction into unified counters: safe
  because peer atomics serialize at the home node; the ``plain``
  injection converts the last device's atomics into load+store pairs →
  ``XGPU_SHARING`` WAW and ``XGPU_FENCE`` RAW races. Functional
  verification still passes under the sequential phase execution — the
  bug is a concurrency defect only the detectors can see.

All kernels use 4-byte, word-aligned elements, so byte-exact oracle races
and granule-level detector reports cover identical entry sets (the
differential harness diffs at entry level; see ``docs/MULTIGPU.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.bench.common import Injection, NO_INJECTION, scaled
from repro.common.types import RaceCategory, RaceKind
from repro.gpu.device import DeviceArray, DeviceMemory, device_alloc
from repro.gpu.kernel import Kernel
from repro.gpu.simulator import GPUSimulator
from repro.multigpu.memory import SharedPagePool
from repro.multigpu.system import MGLaunch

_BLOCK = 32


class MGAllocator:
    """Placement-aware allocator replayed identically on shard workers.

    On the coordinator it routes through the :class:`SharedPagePool`
    (page tables, directory registration); in a shard worker's
    ``rebuild_mg_launches`` the pool is absent and only the bump-allocator
    address sequence matters — it must match the coordinator byte for
    byte, which it does because both paths allocate in build order from
    the same :class:`~repro.gpu.device.DeviceMemory` state.
    """

    def __init__(self, mem: DeviceMemory,
                 pool: Optional[SharedPagePool] = None) -> None:
        self.mem = mem
        self.pool = pool

    def alloc(self, name: str, length: int, itemsize: int = 4,
              home: int = 0, shared: bool = False) -> DeviceArray:
        if self.pool is not None:
            return self.pool.alloc(name, length, itemsize=itemsize,
                                   home=home, shared=shared)
        return device_alloc(self.mem, name, length, itemsize)


@dataclass
class MGPlan:
    """One multi-GPU run: launches grouped by host phase."""

    name: str
    phases: List[List[MGLaunch]]
    verify: Optional[Callable[[], None]] = None
    racy_by_design: bool = False
    data_bytes: int = 0


@dataclass
class MGBenchmark:
    """A registered multi-GPU benchmark: metadata + plan builder."""

    name: str
    description: str
    build: Callable[..., MGPlan]
    injection_sites: Dict[str, str] = field(default_factory=dict)
    has_real_race: bool = False

    def plan(self, alloc: MGAllocator, gpus: int, scale: float = 1.0,
             seed: int = 0, injection: str = "") -> MGPlan:
        return self.build(alloc, gpus=gpus, scale=scale, seed=seed,
                          injection=injection)


@dataclass(frozen=True)
class MGInjectionSpec:
    """One oracle-asserted cross-GPU race configuration."""

    bench: str
    injection: str           #: "" for a documented design race
    omit: Tuple[str, ...]
    emit: Tuple[str, ...]
    expected_kinds: FrozenSet[RaceKind]
    expected_categories: FrozenSet[RaceCategory]
    description: str


MG_INJECTION_CATALOG: Tuple[MGInjectionSpec, ...] = (
    MGInjectionSpec(
        bench="MG_RING", injection="overlap",
        omit=(), emit=("overlap",),
        expected_kinds=frozenset({RaceKind.WAW}),
        expected_categories=frozenset({RaceCategory.XGPU_SHARING}),
        description="same-phase write into the device's own inbox, which "
                    "its neighbor is concurrently filling",
    ),
    MGInjectionSpec(
        bench="MG_PRODCONS", injection="nofence",
        omit=("sysfence",), emit=(),
        expected_kinds=frozenset({RaceKind.RAW}),
        expected_categories=frozenset({RaceCategory.XGPU_FENCE}),
        description="producer publishes with a device-scope fence only; "
                    "the peer consumer reads unpublished data",
    ),
    MGInjectionSpec(
        bench="MG_UNIFIED", injection="plain",
        omit=("atomic",), emit=(),
        expected_kinds=frozenset({RaceKind.RAW, RaceKind.WAW}),
        expected_categories=frozenset({RaceCategory.XGPU_FENCE,
                                       RaceCategory.XGPU_SHARING}),
        description="one device updates the unified counters with plain "
                    "load+store instead of system atomics",
    ),
    MGInjectionSpec(
        bench="MG_HALO", injection="",
        omit=(), emit=(),
        expected_kinds=frozenset({RaceKind.RAW}),
        expected_categories=frozenset({RaceCategory.XGPU_FENCE}),
        description="design race: halo cells exchanged in one phase with "
                    "device-scope fences only",
    ),
)


def mg_injection(bench: str, name: str) -> Injection:
    """Resolve an injection *name* (payload-serializable) to sites."""
    if not name:
        return NO_INJECTION
    for spec in MG_INJECTION_CATALOG:
        if spec.bench == bench and spec.injection == name:
            return Injection(omit=spec.omit, emit=spec.emit)
    raise KeyError(f"unknown injection {name!r} for benchmark {bench}")


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------


def mg_ring_write(ctx: Any, dst: DeviceArray, own: DeviceArray, n: int,
                  writer: int, inj: Injection) -> Any:
    """Phase 0: fill the neighbor's inbox with writer-stamped values."""
    gtid = ctx.global_tid_x
    stride = ctx.num_threads
    for i in range(gtid, n, stride):
        yield ctx.store(dst, i, float(writer * 1000 + i))
    if inj.inject("overlap") and gtid == 0:
        # stomp on the device's OWN inbox, which its other neighbor is
        # filling in this same phase -> cross-device WAW
        yield ctx.store(own, 0, -1.0)


def mg_ring_reduce(ctx: Any, src: DeviceArray, out: DeviceArray,
                   n: int) -> Any:
    """Phase 1: per-thread strided partial sums of the device's inbox."""
    gtid = ctx.global_tid_x
    stride = ctx.num_threads
    acc = 0.0
    for i in range(gtid, n, stride):
        v = yield ctx.load(src, i)
        acc += v
    yield ctx.store(out, gtid, acc)


def mg_produce(ctx: Any, data: DeviceArray, flag: DeviceArray, n: int,
               inj: Injection) -> Any:
    """Write the payload, publish system-wide, signal the atomic flag."""
    gtid = ctx.global_tid_x
    stride = ctx.num_threads
    for i in range(gtid, n, stride):
        yield ctx.store(data, i, float(2 * i + 1))
    # every producing warp publishes its own stores; scope decides
    # whether the peer device observes the publication
    if inj.keep("sysfence"):
        yield ctx.threadfence_system()
    else:
        yield ctx.threadfence()
    if gtid == 0:
        yield ctx.atomic_exch(flag, 0, 1.0)


def mg_consume(ctx: Any, data: DeviceArray, flag: DeviceArray,
               sink: DeviceArray, n: int) -> Any:
    """Poll the flag atomically, then read the peer-produced payload."""
    gtid = ctx.global_tid_x
    stride = ctx.num_threads
    if gtid == 0:
        # cross-device flag polling must be atomic: atomic/atomic pairs
        # serialize at the home node and are race-exempt
        yield ctx.atomic_add(flag, 0, 0.0)
    acc = 0.0
    for i in range(gtid, n, stride):
        v = yield ctx.load(data, i)
        acc += v
    yield ctx.store(sink, gtid, acc)


def mg_halo_kernel(ctx: Any, left: Optional[DeviceArray],
                   right: Optional[DeviceArray], h: int, device: int,
                   out: DeviceArray) -> Any:
    """Write own halo halves, device-fence, read the neighbors' halves.

    ``left`` is the halo shared with device-1 (this device owns its upper
    half), ``right`` the halo shared with device+1 (this device owns its
    lower half). The publication fence is device-scope only — the
    same-phase neighbor reads are the documented design race.
    """
    gtid = ctx.global_tid_x
    stride = ctx.num_threads
    half = h // 2
    if right is not None:
        for i in range(gtid, half, stride):
            yield ctx.store(right, i, float(device * 100 + i))
    if left is not None:
        for i in range(gtid + half, h, stride):
            yield ctx.store(left, i, float(device * 100 + i))
    yield ctx.threadfence()  # device scope: never published to peers
    acc = 0.0
    if right is not None:
        for i in range(gtid + half, h, stride):
            v = yield ctx.load(right, i)
            acc += v
    if left is not None:
        for i in range(gtid, half, stride):
            v = yield ctx.load(left, i)
            acc += v
    yield ctx.store(out, gtid, acc)


def mg_atomic_accum(ctx: Any, counters: DeviceArray, c: int, n: int,
                    device: int, plain: bool, inj: Injection) -> Any:
    """Fold a strided slice into the unified counters."""
    gtid = ctx.global_tid_x
    stride = ctx.num_threads
    for i in range(gtid, n, stride):
        value = float(device + 1)
        if inj.keep("atomic") or not plain:
            yield ctx.atomic_add(counters, i % c, value)
        else:
            # the injected bug: one device does a plain read-modify-write
            # on unified memory, racing the peers' atomics
            v = yield ctx.load(counters, i % c)
            yield ctx.store(counters, i % c, v + value)


def mg_unified_collect(ctx: Any, counters: DeviceArray, c: int,
                       result: DeviceArray) -> Any:
    """Phase 1 on device 0: fold the counters (host-phase ordered)."""
    gtid = ctx.global_tid_x
    if gtid == 0:
        total = 0.0
        for i in range(c):
            v = yield ctx.load(counters, i)
            total += v
        yield ctx.store(result, 0, total)


# ---------------------------------------------------------------------------
# plan builders
# ---------------------------------------------------------------------------


def build_ring(alloc: MGAllocator, gpus: int, scale: float = 1.0,
               seed: int = 0, injection: str = "") -> MGPlan:
    inj = mg_injection("MG_RING", injection)
    n = scaled(256, scale, minimum=32, multiple=32)
    grid = 2
    nthreads = grid * _BLOCK
    bufs = [alloc.alloc(f"ring_buf{d}", n, home=d, shared=True)
            for d in range(gpus)]
    outs = [alloc.alloc(f"ring_out{d}", nthreads, home=d)
            for d in range(gpus)]
    kernel_w = Kernel(mg_ring_write, name="mg_ring_write")
    kernel_r = Kernel(mg_ring_reduce, name="mg_ring_reduce")
    phase0 = [
        MGLaunch(d, kernel_w, grid, _BLOCK,
                 (bufs[(d + 1) % gpus], bufs[d], n, d, inj))
        for d in range(gpus)
    ]
    phase1 = [
        MGLaunch(d, kernel_r, grid, _BLOCK, (bufs[d], outs[d], n))
        for d in range(gpus)
    ]

    def verify() -> None:
        for d in range(gpus):
            writer = (d - 1) % gpus
            want = float(sum(writer * 1000 + i for i in range(n)))
            got = float(outs[d].host_read().sum())
            assert got == want, f"ring device {d}: {got} != {want}"

    return MGPlan(name="MG_RING", phases=[phase0, phase1],
                  verify=None if injection else verify,
                  data_bytes=gpus * (n + nthreads) * 4)


def build_prodcons(alloc: MGAllocator, gpus: int, scale: float = 1.0,
                   seed: int = 0, injection: str = "") -> MGPlan:
    inj = mg_injection("MG_PRODCONS", injection)
    n = scaled(256, scale, minimum=32, multiple=32)
    grid = 2
    nthreads = grid * _BLOCK
    data = alloc.alloc("pc_data", n, home=0, shared=True)
    flag = alloc.alloc("pc_flag", 1, home=0, shared=True)
    sinks = [alloc.alloc(f"pc_sink{d}", nthreads, home=d)
             for d in range(1, gpus)]
    kernel_p = Kernel(mg_produce, name="mg_produce")
    kernel_c = Kernel(mg_consume, name="mg_consume")
    phase0 = [MGLaunch(0, kernel_p, grid, _BLOCK, (data, flag, n, inj))]
    phase0 += [
        MGLaunch(d, kernel_c, grid, _BLOCK, (data, flag, sinks[d - 1], n))
        for d in range(1, gpus)
    ]

    def verify() -> None:
        want = float(sum(2 * i + 1 for i in range(n)))
        for d in range(1, gpus):
            got = float(sinks[d - 1].host_read().sum())
            assert got == want, f"prodcons device {d}: {got} != {want}"

    return MGPlan(name="MG_PRODCONS", phases=[phase0],
                  verify=None if injection else verify,
                  data_bytes=(n + 1 + (gpus - 1) * nthreads) * 4)


def build_halo(alloc: MGAllocator, gpus: int, scale: float = 1.0,
               seed: int = 0, injection: str = "") -> MGPlan:
    mg_injection("MG_HALO", injection)  # validates the name ("" only)
    h = scaled(64, scale, minimum=16, multiple=16)
    grid = 1
    nthreads = grid * _BLOCK
    halos = [alloc.alloc(f"halo{j}", h, home=j, shared=True)
             for j in range(gpus - 1)]
    outs = [alloc.alloc(f"halo_out{d}", nthreads, home=d)
            for d in range(gpus)]
    kernel = Kernel(mg_halo_kernel, name="mg_halo")
    phase0 = [
        MGLaunch(d, kernel, grid, _BLOCK,
                 (halos[d - 1] if d > 0 else None,
                  halos[d] if d < gpus - 1 else None, h, d, outs[d]))
        for d in range(gpus)
    ]
    return MGPlan(name="MG_HALO", phases=[phase0], verify=None,
                  racy_by_design=True,
                  data_bytes=((gpus - 1) * h + gpus * nthreads) * 4)


def build_unified(alloc: MGAllocator, gpus: int, scale: float = 1.0,
                  seed: int = 0, injection: str = "") -> MGPlan:
    inj = mg_injection("MG_UNIFIED", injection)
    n = scaled(128, scale, minimum=32, multiple=32)
    c = 8
    grid = 1
    counters = alloc.alloc("uni_counters", c, home=0, shared=True)
    result = alloc.alloc("uni_result", 1, home=0)
    kernel_a = Kernel(mg_atomic_accum, name="mg_atomic_accum")
    kernel_f = Kernel(mg_unified_collect, name="mg_unified_collect")
    phase0 = [
        MGLaunch(d, kernel_a, grid, _BLOCK,
                 (counters, c, n, d, d == gpus - 1, inj))
        for d in range(gpus)
    ]
    phase1 = [MGLaunch(0, kernel_f, grid, _BLOCK, (counters, c, result))]

    def verify() -> None:
        want = float(n * sum(d + 1 for d in range(gpus)))
        got = float(result.host_read()[0])
        assert got == want, f"unified: {got} != {want}"

    return MGPlan(name="MG_UNIFIED", phases=[phase0, phase1],
                  verify=None if injection else verify,
                  data_bytes=(c + 1) * 4)


# ---------------------------------------------------------------------------
# registry + shard rebuild
# ---------------------------------------------------------------------------

MG_BENCHMARKS: Tuple[MGBenchmark, ...] = (
    MGBenchmark(
        name="MG_RING",
        description="peer ring exchange: write neighbor inbox, reduce own",
        build=build_ring,
        injection_sites={"overlap": "xgpu-waw"},
    ),
    MGBenchmark(
        name="MG_PRODCONS",
        description="unified producer/consumer: system fence + atomic flag",
        build=build_prodcons,
        injection_sites={"nofence": "xgpu-fence"},
    ),
    MGBenchmark(
        name="MG_HALO",
        description="halo exchange with device-scope fences (design race)",
        build=build_halo,
        has_real_race=True,
    ),
    MGBenchmark(
        name="MG_UNIFIED",
        description="system-atomic reduction into unified counters",
        build=build_unified,
        injection_sites={"plain": "xgpu-sharing+fence"},
    ),
)

_BY_NAME: Dict[str, MGBenchmark] = {b.name: b for b in MG_BENCHMARKS}


def get_mg_benchmark(name: str) -> MGBenchmark:
    """Look up a multi-GPU benchmark by name (case-insensitive)."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown multi-GPU benchmark {name!r}; "
            f"choose from {sorted(_BY_NAME)}"
        ) from None


def rebuild_mg_launches(payload: Dict[str, Any],
                        sim: GPUSimulator) -> List[MGLaunch]:
    """Shard-side rebuild: one device's flat launch list, run order.

    The worker replays the *entire* multi-device allocation sequence
    against its private device memory (the bump allocator is
    deterministic, so every address matches the coordinator's) and
    returns this device's launches flattened across phases — exactly the
    order :meth:`repro.multigpu.system.MultiGPUSimulator.run_phase`
    executes them in.
    """
    bench = get_mg_benchmark(payload["bench"])
    alloc = MGAllocator(sim.device_mem, pool=None)
    plan = bench.plan(alloc, gpus=payload["gpus"], scale=payload["scale"],
                      seed=payload["seed"], injection=payload["injection"])
    device = payload["device"]
    return [ls for phase in plan.phases for ls in phase
            if ls.device == device]
