"""Campaign-engine adapter: static analyses as cached, parallel jobs.

An :class:`AnalyzeJob` names one program to analyze — either a fuzz
seed (``source="fuzz"``: the program `generate_program` derives from
``seed + index``) or a benchmark model (``source="bench"``: a
:mod:`repro.analyze.benchmodels` variant) — plus whether to
differentially validate the verdicts against the ground-truth oracle
(which costs one simulator run). Records carry ``kind: "analyze"`` and
dispatch through ``repro.campaign.jobs.JOB_EXECUTORS``, so analyze
sweeps get the campaign engine's cache/resume/parallelism for free.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

from repro.campaign.jobs import JOB_SCHEMA, JobSpecError
from repro.fuzz.generator import GeneratorParams

if TYPE_CHECKING:
    from repro.fuzz.program import FuzzProgram

#: results with a different analyze schema are never served from cache
ANALYZE_SCHEMA = 1


@dataclass(frozen=True)
class AnalyzeJob:
    """One content-addressed static analysis."""

    source: str = "fuzz"          # 'fuzz' | 'bench'
    seed: int = 0
    index: int = 0
    params: GeneratorParams = GeneratorParams()
    bench: str = ""
    omit: Tuple[str, ...] = ()
    emit: Tuple[str, ...] = ()
    validate: bool = True

    @property
    def iteration_seed(self) -> int:
        return self.seed + self.index

    def record(self) -> Dict[str, Any]:
        return {
            "schema": JOB_SCHEMA,
            "kind": "analyze",
            "analyze_schema": ANALYZE_SCHEMA,
            "source": self.source,
            "seed": self.seed,
            "index": self.index,
            "params": self.params.record(),
            "bench": self.bench,
            "omit": list(self.omit),
            "emit": list(self.emit),
            "validate": self.validate,
        }

    def key(self) -> str:
        payload = json.dumps(self.record(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "AnalyzeJob":
        if record.get("schema") != JOB_SCHEMA or \
                record.get("kind") != "analyze":
            raise JobSpecError(
                f"not an analyze job record: {record.get('kind')!r}")
        return cls(
            source=str(record.get("source", "fuzz")),
            seed=int(record.get("seed", 0)),
            index=int(record.get("index", 0)),
            params=GeneratorParams.from_record(record["params"]),
            bench=str(record.get("bench", "")),
            omit=tuple(record.get("omit", ())),
            emit=tuple(record.get("emit", ())),
            validate=bool(record.get("validate", True)),
        )

    def describe(self) -> str:
        if self.source == "bench":
            tag = ",".join(self.omit + self.emit) or "safe"
            return f"analyze[{self.bench}:{tag}]"
        return f"analyze[{self.index}] seed={self.iteration_seed}"

    def program(self) -> "FuzzProgram":
        if self.source == "bench":
            from repro.analyze.benchmodels import build_model

            return build_model(self.bench, omit=self.omit, emit=self.emit)
        from repro.fuzz.generator import generate_program

        return generate_program(self.iteration_seed, self.params)


def execute_analyze_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side entry point (see ``JOB_EXECUTORS['analyze']``)."""
    from repro.analyze.validate import cross_check
    from repro.analyze.verdict import analyze_program, report_json

    job = AnalyzeJob.from_record(record)
    program = job.program()
    report = analyze_program(program)
    result: Dict[str, Any] = {
        "schema": ANALYZE_SCHEMA,
        "hash": program.digest(),
        "note": program.note,
        "index": job.index,
        "source": job.source,
        "verdicts": report["verdicts"],
        "report_sha": hashlib.sha256(
            report_json(report).encode("utf-8")).hexdigest(),
        "report": report,
    }
    if job.validate:
        from repro.core.groundtruth import oracle_races
        from repro.fuzz.program import record_program

        races = oracle_races(record_program(program))
        result["validation"] = cross_check(report, races)
    return result


# ---------------------------------------------------------------------------
# campaign driver
# ---------------------------------------------------------------------------

@dataclass
class AnalyzeCampaignResult:
    """Aggregate outcome of one analyze campaign."""

    results: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[Dict[str, Any]] = field(default_factory=list)
    cache_hits: int = 0

    @property
    def contradictions(self) -> int:
        return sum(len(r.get("validation", {}).get("contradictions", ()))
                   for r in self.results) + len(self.failures)

    def summary(self) -> Dict[str, Any]:
        from repro.analyze.validate import validation_table

        verdicts = {"racy": 0, "unknown": 0, "race_free": 0}
        for rec in self.results:
            for k in verdicts:
                verdicts[k] += rec.get("verdicts", {}).get(k, 0)
        validated = [rec["validation"] for rec in self.results
                     if "validation" in rec]
        return {
            "schema": ANALYZE_SCHEMA,
            "programs": len(self.results),
            "errors": len(self.failures),
            "cache_hits": self.cache_hits,
            "verdicts": verdicts,
            "contradictions": self.contradictions,
            "validation": validation_table(validated),
        }


def run_analyze_campaign(seed: int = 0, iterations: int = 0,
                         workers: int = 1,
                         params: Optional[GeneratorParams] = None,
                         benchmarks: bool = False,
                         injected: bool = False,
                         validate: bool = True,
                         cache_dir: Optional[str] = None,
                         timeout: Optional[float] = None,
                         progress: Optional[Callable[..., None]] = None
                         ) -> AnalyzeCampaignResult:
    """Analyze a fuzz-seed range and/or the benchmark models.

    ``benchmarks`` adds the ten race-free baseline models; ``injected``
    adds every distinct injected variant of the 41-spec catalog.
    """
    from repro.campaign.pool import WorkerPool
    from repro.campaign.store import ResultStore

    params = params or GeneratorParams()
    jobs: Dict[str, AnalyzeJob] = {}
    for i in range(iterations):
        job = AnalyzeJob(source="fuzz", seed=seed, index=i,
                         params=params, validate=validate)
        jobs[job.key()] = job
    if benchmarks:
        from repro.analyze.benchmodels import BENCHES

        for bench in BENCHES:
            job = AnalyzeJob(source="bench", bench=bench,
                             validate=validate)
            jobs[job.key()] = job
    if injected:
        from repro.bench.injection import INJECTION_CATALOG

        for spec in INJECTION_CATALOG:
            job = AnalyzeJob(source="bench", bench=spec.bench,
                             omit=spec.omit, emit=spec.emit,
                             validate=validate)
            jobs[job.key()] = job

    store = ResultStore(cache_dir) if cache_dir else None
    result = AnalyzeCampaignResult()
    by_key: Dict[str, Dict[str, Any]] = {}
    to_run: Dict[str, AnalyzeJob] = {}
    for key, job in jobs.items():
        cached = store.get(job) if store is not None else None
        if cached is not None and cached.get("schema") == ANALYZE_SCHEMA:
            by_key[key] = cached
            result.cache_hits += 1
        else:
            to_run[key] = job

    if to_run:
        pool = WorkerPool(workers=workers, timeout=timeout)

        def on_outcome(outcome: Any) -> None:
            job = to_run[outcome.key]
            if outcome.ok:
                by_key[outcome.key] = outcome.record
                if store is not None:
                    store.put(job, outcome.record, outcome.elapsed)
            else:
                result.failures.append({
                    "job": job.describe(),
                    "status": outcome.status,
                    "error": outcome.error,
                })
            if progress:
                progress(job, outcome)

        pool.run(to_run, on_outcome=on_outcome)

    result.results = sorted(
        by_key.values(),
        key=lambda r: (r.get("source", ""), r.get("index", 0),
                       r.get("note", "")))
    return result


__all__ = [
    "ANALYZE_SCHEMA",
    "AnalyzeCampaignResult",
    "AnalyzeJob",
    "execute_analyze_record",
    "run_analyze_campaign",
]
