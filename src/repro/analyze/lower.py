"""Lower a :class:`FuzzProgram` to per-warp symbolic access streams.

The static analyzer cannot reason statement-by-statement, because the
simulator's warp scheduler groups pending lane operations by
``(opcode, space, itemsize)`` only (:func:`repro.gpu.ops.group_key`):
when lanes diverge, ops *from different statements* can merge into one
warp instruction, and the pre-issue intra-warp WAW check fires on the
merged footprint. So lowering is a faithful lockstep **emulation**: a
pure mirror of the interpreter in :mod:`repro.fuzz.program` yields each
thread's operation sequence, and a mirror of
:meth:`repro.gpu.warp.Warp.next_group` folds the 32 lane streams into
the warp's instruction stream — refill, barrier parking, group selection
(lock acquisitions issue last, else lowest pending lane first), and
in-order lock grants.

The emulation is *schedule-independent per warp*: non-lock groups always
drain before lock groups, a lane's ops issue in program order, and
cross-warp lock contention only delays retries without changing group
composition. Barrier epochs are exact for the same reason — every lane
of a block passes the same uniform barriers (the IR cannot express a
lane-dependent barrier), so "number of barriers passed" is the block's
barrier epoch at each access.

Outputs per warp: the ordered list of :class:`WarpInstr` (memory
instruction groups with per-lane byte footprints, locksets, and the
barrier epoch), plus the stream positions of its ``__threadfence``
issues — which makes "may this warp fence after position p" an exact
query instead of an approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.analyze.scopes import SCOPE_DEVICE, fence_scope, publishes
from repro.common.bitops import align_up
from repro.fuzz.program import FuzzProgram

_WARP = 32
_ALIGN = 256  # DeviceMemory.ALLOC_ALIGN

#: array names used throughout the analyzer
A_GLOBAL = "fuzz_g"
A_BYTES = "fuzz_bytes"
A_SHARED = "sh"


def device_layout(program: FuzzProgram) -> Dict[str, int]:
    """Base device byte of each array, mirroring ``run_program``'s
    malloc order on the bump allocator (g, bytes, locks; align 256)."""
    g_bytes = max(1, program.global_words) * 4
    byte_base = align_up(g_bytes, _ALIGN)
    locks_base = align_up(byte_base + max(1, program.byte_bytes), _ALIGN)
    return {A_GLOBAL: 0, A_BYTES: byte_base, "fuzz_locks": locks_base,
            A_SHARED: 0}


# ---------------------------------------------------------------------------
# per-thread symbolic operation streams (mirrors program._fuzz_kernel)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SymOp:
    """One symbolic thread operation before warp grouping."""

    code: str                 # load|store|atomic|barrier|fence|lock|unlock|compute
    array: Optional[str] = None   # fuzz_g | fuzz_bytes | sh (data accesses)
    addr: int = 0             # array-local byte offset (lock index for locks)
    size: int = 0
    stmt: int = -1            # statement index in program.stmts
    tag: str = ""             # human-readable site tag for witnesses
    fenced: bool = False      # store followed by a fence inside its
    #                           critical section before the unlock
    scope: int = SCOPE_DEVICE  # fence ops: lattice point (scopes.py)


def _space_of(array: Optional[str]) -> str:
    return "S" if array == A_SHARED else "G"


def thread_ops(program: FuzzProgram, gtid: int) -> Iterator[SymOp]:
    """The exact operation sequence of one thread (mirror interpreter)."""
    threads = program.threads
    block = gtid // threads
    tid = gtid % threads           # thread_linear
    lane = tid % _WARP
    has_shared = program.shared_words > 0

    for si, st in enumerate(program.stmts):
        op = st["op"]
        if op == "barrier":
            yield SymOp("barrier", stmt=si)
        elif op == "fence":
            # scope-faithful lowering: a FUZZ_SCHEMA-3 fence statement
            # with scope 1 is a __threadfence_system, not a plain
            # device fence (mirror of program._fuzz_kernel's dispatch)
            yield SymOp("fence", stmt=si,
                        scope=fence_scope(st.get("scope")))
        elif op == "g":
            if "only_tid" in st and st["only_tid"] != gtid:
                continue
            if "skip_warp_of" in st and \
                    st["skip_warp_of"] // _WARP == gtid // _WARP:
                continue
            span = max(1, st.get("span", 1))
            if st.get("scope", "grid") == "block":
                base = st["base"] + block * threads
                idx = tid
            else:
                base = st["base"]
                idx = gtid
            i = base + (idx * st.get("stride", 1)
                        + st.get("shift", 0)) % span
            kind = st.get("kind", "write")
            code = {"write": "store", "read": "load"}.get(kind, "atomic")
            yield SymOp(code, A_GLOBAL, i * 4, 4, si, f"g:{kind}")
        elif op == "s":
            if not has_shared:
                continue
            span = max(1, st.get("span", 1))
            i = st["base"] + (tid * st.get("stride", 1)
                              + st.get("shift", 0)) % span
            kind = st.get("kind", "write")
            code = {"write": "store", "read": "load"}.get(kind, "atomic")
            yield SymOp(code, A_SHARED, i * 4, 4, si, f"s:{kind}")
        elif op == "byte":
            span = max(1, st.get("span", 1))
            i = st["base"] + (gtid + st.get("shift", 0)) % span
            if st.get("kind", "write") == "write":
                yield SymOp("store", A_BYTES, i, 1, si, "byte:write")
            else:
                yield SymOp("load", A_BYTES, i, 1, si, "byte:read")
        elif op == "tree":
            if not has_shared:
                continue
            barriers = st.get("barriers", ())
            yield SymOp("store", A_SHARED, tid * 4, 4, si, "tree:seed")
            if not barriers or barriers[0]:
                yield SymOp("barrier", stmt=si)
            s = threads // 2
            level = 1
            while s > 0:
                if tid < s:
                    yield SymOp("load", A_SHARED, tid * 4, 4, si,
                                f"tree:lvl{level}")
                    yield SymOp("load", A_SHARED, (tid + s) * 4, 4, si,
                                f"tree:lvl{level}")
                    yield SymOp("store", A_SHARED, tid * 4, 4, si,
                                f"tree:lvl{level}")
                if level >= len(barriers) or barriers[level]:
                    yield SymOp("barrier", stmt=si)
                s //= 2
                level += 1
        elif op == "locked":
            if tid % max(1, st.get("mod", 16)) != 0:
                continue
            slot = st["slot"]
            lock_idx = st.get("lock", 0)
            naked = st.get("skip_tid") == gtid
            if st.get("wrong_lock_tid") == gtid:
                lock_idx = st.get("wrong_lock", lock_idx)
            fenced = bool(st.get("fence", True)) and not naked
            if not naked:
                yield SymOp("lock", addr=lock_idx, stmt=si)
            yield SymOp("load", A_GLOBAL, slot * 4, 4, si, "crit:load")
            yield SymOp("compute", stmt=si)
            yield SymOp("store", A_GLOBAL, slot * 4, 4, si, "crit:store",
                        fenced=fenced)
            if st.get("fence", True) and not naked:
                yield SymOp("fence", stmt=si)
            if not naked:
                yield SymOp("unlock", addr=lock_idx, stmt=si)
        elif op == "div":
            if lane < 16:
                yield SymOp("store", A_GLOBAL, (st["base"] + gtid) * 4, 4,
                            si, "div:write")
            else:
                yield SymOp("compute", stmt=si)
        else:
            raise ValueError(f"unknown fuzz op {op!r}")


# ---------------------------------------------------------------------------
# warp grouping emulation (mirrors gpu.warp.Warp.next_group)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LaneAccess:
    """One lane's slice of a warp memory instruction."""

    tid: int                  # global thread id
    lane: int
    array: str
    addr: int                 # array-local byte offset
    size: int
    locks: frozenset = frozenset()
    stmt: int = -1
    tag: str = ""
    fenced: bool = False


@dataclass(frozen=True)
class WarpInstr:
    """One issued warp memory instruction (a merged lane group)."""

    pos: int                  # issue position in the warp's stream
    epoch: int                # block barrier epoch at issue
    kind: str                 # read | write | atomic
    space: str                # G | S
    lanes: Tuple[LaneAccess, ...]


@dataclass
class WarpStream:
    """Everything the passes need to know about one warp."""

    warp: int                 # grid-wide warp id (gtid // 32)
    block: int
    instrs: List[WarpInstr] = field(default_factory=list)
    #: (stream position, fence-scope lattice point) per issued fence
    fence_positions: List[Tuple[int, int]] = field(default_factory=list)

    def may_fence_after(self, pos: int, scope: int = SCOPE_DEVICE) -> bool:
        """May this warp later issue a fence publishing at ``scope``?

        Single-device rules query device scope (any IR fence
        qualifies, preserving pre-scope behavior); the cross-device
        classifier queries system scope.
        """
        return any(f > pos and publishes(s, scope)
                   for f, s in self.fence_positions)


_KIND = {"load": "read", "store": "write", "atomic": "atomic"}


def _group_key(op: SymOp) -> Tuple:
    """Mirror of gpu.ops.group_key: memory ops group by
    (opcode, space, itemsize); everything else by opcode alone."""
    if op.code in ("load", "store", "atomic"):
        return (op.code, _space_of(op.array), op.size)
    return (op.code,)


class _Lane:
    __slots__ = ("gen", "pending", "done", "tid", "lane", "locks")

    def __init__(self, gen: Iterator[SymOp], tid: int, lane: int) -> None:
        self.gen = gen
        self.pending: Optional[SymOp] = None
        self.done = False
        self.tid = tid
        self.lane = lane
        self.locks: Set[int] = set()


def _emulate_warp(program: FuzzProgram, warp: int) -> WarpStream:
    base_tid = warp * _WARP
    block = base_tid // program.threads
    lanes = [_Lane(thread_ops(program, base_tid + i), base_tid + i, i)
             for i in range(_WARP)]
    stream = WarpStream(warp=warp, block=block)
    held: Dict[int, int] = {}     # lock addr -> holding lane index
    epoch = 0
    pos = 0
    guard = 0
    while True:
        guard += 1
        if guard > 1_000_000:  # pragma: no cover - malformed program
            raise RuntimeError(f"warp {warp} emulation does not converge")
        live = 0
        for ln in lanes:
            if ln.done:
                continue
            if ln.pending is None:
                ln.pending = next(ln.gen, None)
                if ln.pending is None:
                    ln.done = True
                    continue
            live += 1
        if not live:
            break

        groups: Dict[Tuple, List[int]] = {}
        barrier_lanes = []
        for i, ln in enumerate(lanes):
            if ln.done or ln.pending is None:
                continue
            if ln.pending.code == "barrier":
                barrier_lanes.append(i)
                continue
            groups.setdefault(_group_key(ln.pending), []).append(i)

        if not groups:
            # every live lane waits at the barrier; the block releases it
            # together (barriers are uniform across the IR), epoch += 1
            epoch += 1
            for i in barrier_lanes:
                lanes[i].pending = None
            continue

        key = min(groups, key=lambda k: (k[0] == "lock", groups[k][0]))
        members = groups[key]
        code = key[0]
        if code == "lock":
            granted = False
            for i in members:
                addr = lanes[i].pending.addr
                holder = held.get(addr)
                if holder is None or holder == i:
                    held[addr] = i
                    lanes[i].locks.add(addr)
                    lanes[i].pending = None
                    granted = True
                # else: lane keeps its pending op and retries
            if not granted and len(groups) == 1:  # pragma: no cover
                raise RuntimeError(f"warp {warp} deadlocks on locks")
        elif code == "unlock":
            for i in members:
                addr = lanes[i].pending.addr
                if held.get(addr) == i:
                    del held[addr]
                lanes[i].locks.discard(addr)
                lanes[i].pending = None
        elif code == "fence":
            # lanes from different fence statements can merge into one
            # issue slot (group key is opcode-only, like the simulator);
            # the issued instruction publishes at the strongest merged
            # scope, so record the lattice join over the members
            scope = max(lanes[i].pending.scope for i in members
                        if lanes[i].pending is not None)
            stream.fence_positions.append((pos, scope))
            for i in members:
                lanes[i].pending = None
        elif code == "compute":
            for i in members:
                lanes[i].pending = None
        else:  # load / store / atomic
            accesses = []
            for i in members:
                op = lanes[i].pending
                accesses.append(LaneAccess(
                    tid=lanes[i].tid, lane=lanes[i].lane, array=op.array,
                    addr=op.addr, size=op.size,
                    locks=frozenset(lanes[i].locks),
                    stmt=op.stmt, tag=op.tag, fenced=op.fenced))
                lanes[i].pending = None
            stream.instrs.append(WarpInstr(
                pos=pos, epoch=epoch, kind=_KIND[code],
                space=key[1], lanes=tuple(accesses)))
        pos += 1
    return stream


def lower_program(program: FuzzProgram) -> List[WarpStream]:
    """Emulate every warp of the grid; deterministic for one program."""
    if program.threads % _WARP != 0:
        raise ValueError(f"threads={program.threads} is not a multiple "
                         f"of the warp size")
    n_warps = program.total_threads // _WARP
    return [_emulate_warp(program, w) for w in range(n_warps)]
