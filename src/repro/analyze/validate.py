"""Differential validation of static verdicts against the HB oracle.

The contract graded here (and enforced by the three-way stage in
:mod:`repro.fuzz.harness`):

- a **racy** region must carry a witness byte the oracle actually
  reports as racing (matching memory space and byte address);
- a **race-free** region must be oracle-clean across its whole device
  byte range;
- **unknown** regions are never contradictions — they are the analyzer
  declining to claim.

Oracle SHARED race bytes are in-block shared offsets; the fuzz kernels
declare a single shared array at offset 0, so they compare directly
against array-local shared bytes. GLOBAL race bytes are absolute device
addresses and compare against ``device_lo``/``device_hi`` from the
report's bump-allocator layout mirror.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple

RESULT_SCHEMA = 1


def _oracle_bytes(races: Iterable) -> Set[Tuple[str, int]]:
    return {(r.space.name, r.byte) for r in races}


def cross_check(report: Dict[str, Any],
                races: Iterable) -> Dict[str, Any]:
    """Grade one analysis report against the oracle's races.

    Returns a JSON-safe result with per-region outcomes and the list of
    contradictions (empty = the analyzer kept its contract).
    """
    oracle = _oracle_bytes(races)
    confirmed = clean = unknown = 0
    contradictions: List[Dict[str, Any]] = []
    for region in report["regions"]:
        status = region["status"]
        if status == "racy":
            witness = region.get("witness")
            if witness is None:
                contradictions.append({
                    "type": "missing-witness",
                    "array": region["array"],
                    "lo": region["lo"],
                    "hi": region["hi"],
                })
                continue
            key = (witness["space"], witness["byte"])
            if key in oracle:
                confirmed += 1
            else:
                contradictions.append({
                    "type": "unconfirmed-witness",
                    "array": region["array"],
                    "space": witness["space"],
                    "byte": witness["byte"],
                    "kinds": witness.get("kinds", []),
                })
        elif status == "race-free":
            space = region["space"]
            hits = sorted(
                b for (sp, b) in oracle
                if sp == space
                and region["device_lo"] <= b < region["device_hi"])
            if hits:
                contradictions.append({
                    "type": "oracle-race-in-safe-region",
                    "array": region["array"],
                    "space": space,
                    "bytes": hits[:8],
                })
            else:
                clean += 1
        else:
            unknown += 1
    return {
        "schema": RESULT_SCHEMA,
        "program": report["program"],
        "note": report.get("note", ""),
        "racy_confirmed": confirmed,
        "race_free_clean": clean,
        "unknown": unknown,
        "contradictions": contradictions,
        "ok": not contradictions,
    }


def validation_table(results: Sequence[Dict[str, Any]]
                     ) -> Dict[str, Any]:
    """Aggregate cross-check results into the EXPERIMENTS.md table row set.

    Static false positives are racy verdicts the oracle refutes, false
    negatives are race-free verdicts the oracle refutes; both count as
    contradictions. UNKNOWN is the analyzer's explicit out.
    """
    total = {"programs": len(results), "racy_confirmed": 0,
             "race_free_clean": 0, "unknown": 0,
             "static_fp": 0, "static_fn": 0, "contradictions": 0}
    for res in results:
        total["racy_confirmed"] += res["racy_confirmed"]
        total["race_free_clean"] += res["race_free_clean"]
        total["unknown"] += res["unknown"]
        for c in res["contradictions"]:
            total["contradictions"] += 1
            if c["type"] in ("unconfirmed-witness", "missing-witness"):
                total["static_fp"] += 1
            else:
                total["static_fn"] += 1
    return total
