"""Multi-device static analyses as cached, parallel campaign jobs.

The multi-device twin of :mod:`repro.analyze.worker`: an
:class:`MGAnalyzeJob` names one multi-device program — a benchmark model
(``source="bench"``: a :func:`repro.analyze.benchmodels.build_mg_model`
variant) or an mg-fuzz seed (``source="mgfuzz"``) — plus whether to
differentially validate the static verdicts against the
:class:`~repro.core.groundtruth.MultiDeviceOracle` (which costs one
multi-device simulation). Records carry ``kind: "mganalyze"`` and
dispatch through ``repro.campaign.jobs.JOB_EXECUTORS``, so multi-device
analyze sweeps get the campaign engine's cache/resume/parallelism for
free, exactly like the single-device sweeps.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.campaign.jobs import JOB_SCHEMA, JobSpecError

#: results with a different schema are never served from cache
MGANALYZE_SCHEMA = 1


@dataclass(frozen=True)
class MGAnalyzeJob:
    """One content-addressed multi-device static analysis."""

    source: str = "bench"         # 'bench' | 'mgfuzz'
    bench: str = "MG_RING"
    injection: str = ""
    seed: int = 0                 #: mgfuzz iteration seed
    gpus: int = 2
    scale: float = 1.0
    validate: bool = True

    def record(self) -> Dict[str, Any]:
        return {
            "schema": JOB_SCHEMA,
            "kind": "mganalyze",
            "mganalyze_schema": MGANALYZE_SCHEMA,
            "source": self.source,
            "bench": self.bench,
            "injection": self.injection,
            "seed": self.seed,
            "gpus": self.gpus,
            "scale": self.scale,
            "validate": self.validate,
        }

    def key(self) -> str:
        payload = json.dumps(self.record(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "MGAnalyzeJob":
        if record.get("schema") != JOB_SCHEMA or \
                record.get("kind") != "mganalyze":
            raise JobSpecError(
                f"not an mganalyze job record: {record.get('kind')!r}")
        return cls(
            source=str(record.get("source", "bench")),
            bench=str(record.get("bench", "MG_RING")),
            injection=str(record.get("injection", "")),
            seed=int(record.get("seed", 0)),
            gpus=int(record.get("gpus", 2)),
            scale=float(record.get("scale", 1.0)),
            validate=bool(record.get("validate", True)),
        )

    def describe(self) -> str:
        if self.source == "mgfuzz":
            return f"mganalyze[mgfuzz] seed={self.seed} x{self.gpus}"
        suffix = f"+{self.injection}" if self.injection else ""
        return f"mganalyze[{self.bench}{suffix}] x{self.gpus}"


def _check_expected(check: Dict[str, Any], expected: Any,
                    report: Dict[str, Any]) -> Dict[str, Any]:
    """Model-level FN guard: every expected category must surface racy."""
    racy_categories = {c for r in report["regions"]
                       if r["status"] == "racy"
                       for c in r["categories"]}
    missing = sorted(c for c in expected if c not in racy_categories)
    if missing:
        check["contradictions"] = list(check["contradictions"]) + [{
            "type": "expected-category-missing",
            "categories": missing,
        }]
        check["ok"] = False
    return check


def execute_mg_analyze_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side entry point (see ``JOB_EXECUTORS['mganalyze']``)."""
    from repro.analyze.multidevice import build_mg_report, mg_cross_check
    from repro.analyze.verdict import report_json

    job = MGAnalyzeJob.from_record(record)
    if job.source == "mgfuzz":
        return _execute_mgfuzz(job)
    from repro.analyze.benchmodels import build_mg_model

    program = build_mg_model(job.bench, gpus=job.gpus, scale=job.scale,
                             injection=job.injection)
    report = build_mg_report(program)
    result: Dict[str, Any] = {
        "schema": MGANALYZE_SCHEMA,
        "hash": program.digest(),
        "note": program.note,
        "source": job.source,
        "gpus": job.gpus,
        "verdicts": dict(report["verdicts"]),
        "report_sha": hashlib.sha256(
            report_json(report).encode("utf-8")).hexdigest(),
        "report": report,
    }
    if job.validate:
        from repro.multigpu.runner import run_mg_benchmark

        res = run_mg_benchmark(
            job.bench, gpus=job.gpus, scale=job.scale,
            injection=job.injection, timing_enabled=False,
            detector_config=None)
        result["validation"] = _check_expected(
            mg_cross_check(report, res.cross_races), program.expected,
            report)
    return result


def _execute_mgfuzz(job: MGAnalyzeJob) -> Dict[str, Any]:
    from repro.analyze.multidevice import build_mg_report, mg_fuzz_model
    from repro.analyze.verdict import report_json
    from repro.multigpu.fuzz import (
        MGFuzzParams,
        generate_mg_program,
        run_mg_fuzz_iteration,
    )

    params = MGFuzzParams(gpus=job.gpus)
    record = generate_mg_program(job.seed, params)
    program = mg_fuzz_model(record)
    report = build_mg_report(program)
    result: Dict[str, Any] = {
        "schema": MGANALYZE_SCHEMA,
        "hash": program.digest(),
        "note": program.note,
        "source": job.source,
        "gpus": job.gpus,
        "verdicts": dict(report["verdicts"]),
        "report_sha": hashlib.sha256(
            report_json(report).encode("utf-8")).hexdigest(),
        "report": report,
    }
    if job.validate:
        iteration = run_mg_fuzz_iteration(job.seed, params)
        static = iteration["static"]
        result["validation"] = {
            "schema": MGANALYZE_SCHEMA,
            "program": report["program"],
            "note": program.note,
            "racy_confirmed": static["racy_confirmed"],
            "race_free_clean": static["race_free_clean"],
            "unknown": static["unknown"],
            "contradictions": static["contradictions"],
            "ok": not static["contradictions"],
        }
    return result


# ---------------------------------------------------------------------------
# campaign driver
# ---------------------------------------------------------------------------


@dataclass
class MGAnalyzeCampaignResult:
    """Aggregate outcome of one multi-device analyze campaign."""

    results: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[Dict[str, Any]] = field(default_factory=list)
    cache_hits: int = 0

    @property
    def contradictions(self) -> int:
        return sum(len(r.get("validation", {}).get("contradictions", ()))
                   for r in self.results) + len(self.failures)

    def summary(self) -> Dict[str, Any]:
        from repro.analyze.multidevice import mg_validation_table

        verdicts = {"racy": 0, "unknown": 0, "race_free": 0}
        for rec in self.results:
            for k in verdicts:
                verdicts[k] += rec.get("verdicts", {}).get(k, 0)
        validated = [rec["validation"] for rec in self.results
                     if "validation" in rec]
        return {
            "schema": MGANALYZE_SCHEMA,
            "programs": len(self.results),
            "errors": len(self.failures),
            "cache_hits": self.cache_hits,
            "verdicts": verdicts,
            "contradictions": self.contradictions,
            "validation": mg_validation_table(validated),
        }


def run_mg_analyze_campaign(gpus: int = 2,
                            seed: int = 0, iterations: int = 0,
                            workers: int = 1,
                            scale: float = 1.0,
                            benchmarks: bool = True,
                            injected: bool = False,
                            validate: bool = True,
                            cache_dir: Optional[str] = None,
                            timeout: Optional[float] = None,
                            progress: Optional[Callable[..., None]] = None
                            ) -> MGAnalyzeCampaignResult:
    """Analyze the MG benchmark models and/or an mg-fuzz seed range.

    ``benchmarks`` adds the four baseline models (``MG_HALO``'s design
    race included — expected racy); ``injected`` adds every
    ``MG_INJECTION_CATALOG`` variant.
    """
    from repro.campaign.pool import WorkerPool
    from repro.campaign.store import ResultStore

    jobs: Dict[str, MGAnalyzeJob] = {}
    if benchmarks:
        from repro.analyze.benchmodels import MG_BENCHES

        for bench in MG_BENCHES:
            job = MGAnalyzeJob(source="bench", bench=bench, gpus=gpus,
                               scale=scale, validate=validate)
            jobs[job.key()] = job
    if injected:
        from repro.multigpu.bench import MG_INJECTION_CATALOG

        for spec in MG_INJECTION_CATALOG:
            job = MGAnalyzeJob(source="bench", bench=spec.bench,
                               injection=spec.injection, gpus=gpus,
                               scale=scale, validate=validate)
            jobs[job.key()] = job
    for i in range(iterations):
        job = MGAnalyzeJob(source="mgfuzz", seed=seed + i, gpus=gpus,
                           validate=validate)
        jobs[job.key()] = job

    store = ResultStore(cache_dir) if cache_dir else None
    result = MGAnalyzeCampaignResult()
    by_key: Dict[str, Dict[str, Any]] = {}
    to_run: Dict[str, MGAnalyzeJob] = {}
    for key, job in jobs.items():
        cached = store.get(job) if store is not None else None
        if cached is not None and \
                cached.get("schema") == MGANALYZE_SCHEMA:
            by_key[key] = cached
            result.cache_hits += 1
        else:
            to_run[key] = job

    if to_run:
        pool = WorkerPool(workers=workers, timeout=timeout)

        def on_outcome(outcome: Any) -> None:
            job = to_run[outcome.key]
            if outcome.ok:
                by_key[outcome.key] = outcome.record
                if store is not None:
                    store.put(job, outcome.record, outcome.elapsed)
            else:
                result.failures.append({
                    "job": job.describe(),
                    "status": outcome.status,
                    "error": outcome.error,
                })
            if progress:
                progress(job, outcome)

        pool.run(to_run, on_outcome=on_outcome)

    result.results = sorted(
        by_key.values(),
        key=lambda r: (str(r.get("source", "")), str(r.get("note", ""))))
    return result


__all__ = [
    "MGANALYZE_SCHEMA",
    "MGAnalyzeCampaignResult",
    "MGAnalyzeJob",
    "execute_mg_analyze_record",
    "run_mg_analyze_campaign",
]
