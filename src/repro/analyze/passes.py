"""Static race classification over lowered warp streams.

The analyzer's soundness contract: its verdicts must hold for **every**
legal interleaving, while the ground-truth oracle it is graded against
observes exactly **one** deterministic schedule. So each potentially
conflicting pair of endpoints is evaluated *twice* — once with each
endpoint as the earlier access — through a mirror of the oracle's
pairwise dispatch (:meth:`repro.core.groundtruth.GroundTruthOracle._pair`):

- both orders race        -> the byte is RACY (witness pair attached);
- both orders are ordered -> SAFE, with the proof that ordered them;
- mixed / fence-dependent -> UNKNOWN (never claimed either way).

Fences are the main source of UNKNOWN: ``__threadfence`` suppresses a
RAW pair only when it lands between the write and the read *in the
observed schedule*, which a static pass cannot pin down — except in two
robust cases. A producer that provably never fences after its write
races in both orders; and a critical-section store fenced before its
unlock is ordered ahead of any reader that must acquire the same lock
(the paper's Fig. 2(b) protocol, and the oracle's common-lock rule).
The stale-L1 check can only *add* races to unordered pairs, so it never
invalidates a SAFE claim — those rest on warp lockstep, barrier-interval
separation, or lockset rules, all of which the oracle applies before
its stale check.

Two extra passes close the gaps pairwise reasoning leaves:

- **intra-warp WAW**: overlapping lane footprints inside one emulated
  instruction group (the pre-issue associative check; global atomics
  exempt, shared atomics not);
- **lockset coupling**: pairwise RAW under a common lock is
  asymmetric (the WAR order is lock-ordered), but when two warps each
  run an *unfenced* read-modify-write section under the same lock,
  whichever runs second reads the other's unfenced store — a guaranteed
  RAW race in every schedule (the ``missing_fence`` bug class).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analyze.lower import (
    A_SHARED,
    LaneAccess,
    WarpInstr,
    WarpStream,
)

#: verdict levels, in aggregation priority order
RACY, UNKNOWN, SAFE = "racy", "unknown", "race-free"


@dataclass(frozen=True)
class Endpoint:
    """One deduplicated byte-level access endpoint (static mirror of the
    oracle's ``_Endpoint``)."""

    tid: int
    warp: int
    block: int
    epoch: int
    locks: FrozenSet[int]
    atomic: bool
    is_write: bool
    pos: int                  # warp-stream position (fence queries)
    stmt: int
    tag: str
    fenced: bool              # fenced inside its critical section


@dataclass
class ByteFinding:
    """Classification of one (array, byte) cell."""

    array: str
    byte: int
    status: str               # RACY | UNKNOWN | SAFE
    kinds: Tuple[str, ...] = ()
    categories: Tuple[str, ...] = ()
    proofs: Tuple[str, ...] = ()
    reasons: Tuple[str, ...] = ()
    witness: Optional[Tuple[Endpoint, Endpoint]] = None


@dataclass
class _ByteAccesses:
    writers: List[Endpoint] = field(default_factory=list)
    readers: List[Endpoint] = field(default_factory=list)


class AnalysisContext:
    """Per-program facts the pair rules query."""

    def __init__(self, streams: Sequence[WarpStream]) -> None:
        self._streams = {s.warp: s for s in streams}
        #: (warp, array, byte) present when that warp atomics that byte
        self.warp_atomic_bytes: Set[Tuple[int, str, int]] = set()
        for s in streams:
            for ins in s.instrs:
                if ins.kind != "atomic":
                    continue
                for la in ins.lanes:
                    for b in range(la.addr, la.addr + la.size):
                        self.warp_atomic_bytes.add((s.warp, la.array, b))

    def may_fence_after(self, ep: Endpoint) -> bool:
        return self._streams[ep.warp].may_fence_after(ep.pos)


def collect_endpoints(streams: Sequence[WarpStream]
                      ) -> Dict[Tuple[str, int, int], _ByteAccesses]:
    """Per-byte endpoints, deduplicated exactly like the oracle's shadow.

    Keys are ``(array, block, byte)`` for shared memory (each block has
    its own shared array and oracle shadow) and ``(array, -1, byte)``
    for global arrays. Within a byte, writers dedup on
    ``(warp, epoch, locks, atomic)`` and readers on
    ``(warp, epoch, locks)``, keeping the latest stream position — the
    oracle's "latest same-key endpoint dominates" rule.
    """
    bytes_map: Dict[Tuple[str, int, int], _ByteAccesses] = {}
    w_keys: Dict[Tuple[str, int, int], Dict[tuple, int]] = {}
    r_keys: Dict[Tuple[str, int, int], Dict[tuple, int]] = {}
    for s in streams:
        for ins in s.instrs:
            for la in ins.lanes:
                ep = Endpoint(
                    tid=la.tid, warp=s.warp, block=s.block,
                    epoch=ins.epoch, locks=la.locks,
                    atomic=ins.kind == "atomic",
                    is_write=ins.kind != "read", pos=ins.pos,
                    stmt=la.stmt, tag=la.tag, fenced=la.fenced)
                blk = s.block if la.array == A_SHARED else -1
                for b in range(la.addr, la.addr + la.size):
                    cell_key = (la.array, blk, b)
                    cell = bytes_map.setdefault(cell_key, _ByteAccesses())
                    if ep.is_write:
                        dedup = (ep.warp, ep.epoch, ep.locks, ep.atomic)
                        slots, lst = w_keys, cell.writers
                    else:
                        dedup = (ep.warp, ep.epoch, ep.locks)
                        slots, lst = r_keys, cell.readers
                    seen = slots.setdefault(cell_key, {})
                    if dedup in seen:
                        lst[seen[dedup]] = ep   # latest pos dominates
                    else:
                        seen[dedup] = len(lst)
                        lst.append(ep)
    return bytes_map


# ---------------------------------------------------------------------------
# pairwise dispatch (two-order mirror of the oracle's _pair)
# ---------------------------------------------------------------------------

_RACE, _NONE, _DEPENDS = "race", "none", "depends"


def _kind_of(prev: Endpoint, cur: Endpoint) -> str:
    if prev.is_write and not cur.is_write:
        return "RAW"
    if not prev.is_write:
        return "WAR"
    return "WAW"


def _order_outcome(prev: Endpoint, cur: Endpoint, array: str,
                   byte: int, ctx: AnalysisContext) -> Tuple[str, str, str]:
    """Oracle outcome for one fixed order, robust across schedules.

    Returns ``(verdict, detail, category)`` with verdict one of
    ``race`` / ``none`` / ``depends``; detail is a kind for races and a
    proof/reason otherwise.
    """
    kind = _kind_of(prev, cur)
    if array == A_SHARED:
        # shared shadow: pure happens-before per barrier interval,
        # cross-warp conflicts race unconditionally (no fences, no
        # atomic exemption)
        return _RACE, kind, "SHARED_BARRIER"

    raw = kind == "RAW"
    if prev.locks or cur.locks:
        if prev.locks and cur.locks:
            if prev.locks & cur.locks:
                if not raw:
                    return _NONE, "consistent lockset", ""
                if prev.fenced:
                    return (_NONE, "consistent lockset; producer fences "
                                   "before unlock", "")
                if not ctx.may_fence_after(prev):
                    return _RACE, "RAW", "GLOBAL_FENCE"
                return (_DEPENDS, "common-lock RAW depends on a later "
                                  "fence landing in time", "")
            return _RACE, kind, "GLOBAL_LOCKSET"
        return _RACE, kind, "GLOBAL_LOCKSET"

    if prev.atomic and cur.atomic:
        return _NONE, "atomic RMWs serialize in the memory partition", ""
    if prev.atomic and (cur.warp, array, byte) in ctx.warp_atomic_bytes:
        # the consumer's warp also atomics this byte: the RMW chain may
        # order the pair, depending on the serialization order
        return (_DEPENDS, "atomic-chain ordering is "
                          "schedule-dependent", "")
    if raw:
        if not ctx.may_fence_after(prev):
            category = ("GLOBAL_BARRIER" if prev.block == cur.block
                        else "GLOBAL_FENCE")
            return _RACE, "RAW", category
        return (_DEPENDS, "RAW outcome depends on fence timing", "")
    return _RACE, kind, "GLOBAL_BARRIER"


def classify_pair(a: Endpoint, b: Endpoint, array: str, byte: int,
                  ctx: AnalysisContext) -> Tuple[str, Tuple[str, ...],
                                                 Tuple[str, ...]]:
    """Both-order classification of one conflicting endpoint pair.

    Returns ``(status, kinds_or_proofs, categories)``.
    """
    if a.warp == b.warp:
        return SAFE, ("warp-lockstep ordering",), ()
    if a.block == b.block and a.epoch != b.epoch:
        return SAFE, ("barrier-interval separation",), ()
    o1 = _order_outcome(a, b, array, byte, ctx)
    o2 = _order_outcome(b, a, array, byte, ctx)
    verdicts = {o1[0], o2[0]}
    if verdicts == {_RACE}:
        kinds = tuple(sorted({o1[1], o2[1]}))
        cats = tuple(sorted({c for c in (o1[2], o2[2]) if c}))
        return RACY, kinds, cats
    if verdicts == {_NONE}:
        return SAFE, tuple(sorted({o1[1], o2[1]})), ()
    reasons = tuple(sorted({o[1] for o in (o1, o2)
                            if o[0] == _DEPENDS}))
    return UNKNOWN, reasons or ("order-dependent outcome",), ()


# ---------------------------------------------------------------------------
# whole-byte classification
# ---------------------------------------------------------------------------

def _lockset_coupling(cell: _ByteAccesses, ctx: AnalysisContext
                      ) -> Optional[Tuple[Endpoint, Endpoint]]:
    """Cross-warp unfenced RMW sections under one common lock.

    Each qualifying warp both writes (unfenced, and provably never
    fences later) and reads the byte while holding lock L. With two or
    more such warps, the section that runs second reads the first's
    unfenced store in *every* schedule: a robust RAW race the pairwise
    two-order rule cannot see (its WAR order is lock-ordered).
    """
    writers_by_lock: Dict[int, Dict[int, Endpoint]] = {}
    readers_by_lock: Dict[int, Dict[int, Endpoint]] = {}
    for w in cell.writers:
        if w.locks and not w.fenced and not ctx.may_fence_after(w):
            for lk in w.locks:
                writers_by_lock.setdefault(lk, {}).setdefault(w.warp, w)
    for r in cell.readers:
        if r.locks:
            for lk in r.locks:
                readers_by_lock.setdefault(lk, {}).setdefault(r.warp, r)
    for lk, writers in sorted(writers_by_lock.items()):
        readers = readers_by_lock.get(lk, {})
        warps = sorted(set(writers) & set(readers))
        if len(warps) >= 2:
            return writers[warps[0]], readers[warps[1]]
    return None


def classify_byte(array: str, byte: int, cell: _ByteAccesses,
                  ctx: AnalysisContext) -> ByteFinding:
    """Fold every conflicting pair of one byte into a finding."""
    kinds: Set[str] = set()
    categories: Set[str] = set()
    proofs: Set[str] = set()
    reasons: Set[str] = set()
    witness: Optional[Tuple[Endpoint, Endpoint]] = None
    status = SAFE

    def _sort_key(ep: Endpoint) -> tuple:
        return (ep.stmt, ep.tid, ep.pos)

    def _merge(st: str, info: Tuple[str, ...], cats: Tuple[str, ...],
               pair: Tuple[Endpoint, Endpoint]) -> None:
        nonlocal status, witness
        if st == RACY:
            kinds.update(info)
            categories.update(cats)
            cand = tuple(sorted(pair, key=_sort_key))
            if status != RACY or witness is None \
                    or tuple(map(_sort_key, cand)) < \
                    tuple(map(_sort_key, witness)):
                witness = cand  # deterministic: smallest witness wins
            status = RACY
        elif st == UNKNOWN:
            reasons.update(info)
            if status == SAFE:
                status = UNKNOWN
        else:
            proofs.update(info)

    pairs = [(w, o) for i, w in enumerate(cell.writers)
             for o in cell.writers[i + 1:]]
    pairs += [(w, r) for w in cell.writers for r in cell.readers]
    for a, b in pairs:
        st, info, cats = classify_pair(a, b, array, byte, ctx)
        _merge(st, info, cats, (a, b))

    coupled = _lockset_coupling(cell, ctx)
    if coupled is not None:
        _merge(RACY, ("RAW",), ("GLOBAL_FENCE",), coupled)

    if not pairs and coupled is None:
        if not cell.writers:
            proofs.add("read-only bytes cannot race")
        else:
            proofs.add("thread-private indexing")

    return ByteFinding(
        array=array, byte=byte, status=status,
        kinds=tuple(sorted(kinds)),
        categories=tuple(sorted(categories)),
        proofs=tuple(sorted(proofs)),
        reasons=tuple(sorted(reasons)),
        witness=witness)


def intra_warp_findings(streams: Sequence[WarpStream]
                        ) -> List[ByteFinding]:
    """Same-instruction overlapping writes of one warp (pre-issue check).

    Emulated groups are deterministic per warp, so these races are
    robust. Global atomics serialize and are exempt; shared atomics are
    not (the shared RDU has no atomic exemption).
    """
    found: Dict[Tuple[str, int], ByteFinding] = {}
    for s in streams:
        for ins in s.instrs:
            if ins.kind == "read":
                continue
            if ins.kind == "atomic" and ins.space == "G":
                continue
            first: Dict[Tuple[str, int], object] = {}
            for la in ins.lanes:
                for b in range(la.addr, la.addr + la.size):
                    key = (la.array, b)
                    prev = first.setdefault(key, la)
                    if prev is la or key in found:
                        continue
                    category = ("SHARED_BARRIER" if ins.space == "S"
                                else "GLOBAL_BARRIER")
                    found[key] = ByteFinding(
                        array=la.array, byte=b, status=RACY,
                        kinds=("WAW",), categories=(category,),
                        witness=(_lane_endpoint(s, ins, prev),
                                 _lane_endpoint(s, ins, la)))
    return [found[k] for k in sorted(found)]


def _lane_endpoint(stream: WarpStream, ins: WarpInstr,
                   acc: LaneAccess) -> Endpoint:
    return Endpoint(
        tid=acc.tid, warp=stream.warp, block=stream.block,
        epoch=ins.epoch, locks=acc.locks, atomic=ins.kind == "atomic",
        is_write=True, pos=ins.pos, stmt=acc.stmt, tag=acc.tag,
        fenced=acc.fenced)


def classify_program(streams: Sequence[WarpStream]
                     ) -> Dict[Tuple[str, int], ByteFinding]:
    """All byte findings of a lowered program, keyed ``(array, byte)``.

    Shared findings collapse the per-block dimension (every block runs
    the same code on its own copy; a racy byte in any block is racy for
    the array region).
    """
    ctx = AnalysisContext(streams)
    cells = collect_endpoints(streams)
    findings: Dict[Tuple[str, int], ByteFinding] = {}
    rank = {RACY: 2, UNKNOWN: 1, SAFE: 0}
    for (array, _blk, byte), cell in sorted(cells.items()):
        f = classify_byte(array, byte, cell, ctx)
        old = findings.get((array, byte))
        if old is None or rank[f.status] > rank[old.status]:
            findings[(array, byte)] = f
    for f in intra_warp_findings(streams):
        old = findings.get((f.array, f.byte))
        if old is None or rank[old.status] < 2:
            findings[(f.array, f.byte)] = f
        elif old.status == RACY and old.witness is not None:
            findings[(f.array, f.byte)] = ByteFinding(
                array=f.array, byte=f.byte, status=RACY,
                kinds=tuple(sorted(set(old.kinds) | set(f.kinds))),
                categories=tuple(sorted(set(old.categories)
                                        | set(f.categories))),
                proofs=old.proofs, reasons=old.reasons,
                witness=old.witness)
    return findings
