"""Symbolic index sets for the fuzz-program access vocabulary.

Every data-access statement in :mod:`repro.fuzz.program` indexes an
array with an affine-modular map ``base + (idx*stride + shift) % span``
where ``idx`` ranges over a thread population (grid-wide or per-block).
This module reasons about those maps symbolically:

- the **interval hull** of a map (which bytes it can touch at all);
- its **residue class**: every reachable offset is congruent to
  ``shift (mod gcd(stride, span))``, so two maps over the same window
  are disjoint when their residues differ modulo the gcd of their
  periods — the classic gcd test for affine array accesses;
- the **self-collision period**: two distinct ``idx`` values alias iff
  they differ by ``span // gcd(stride, span)``, which proves
  thread-privacy when the population diameter stays below the period.

The analyzer uses these facts to *explain* RACE-FREE verdicts (proof
sketches). Ground truth for the verdict itself comes from exhaustive
enumeration of the (small, bounded) thread population in
:mod:`repro.analyze.lower` — symbolic reasoning here never overrules it.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Optional, Tuple


@dataclass(frozen=True)
class AffineMap:
    """``elem = base + (idx*stride + shift) % span`` over ``idx`` values.

    ``span == 0`` encodes the un-wrapped map ``base + idx`` (the ``div``
    statement's direct indexing). ``idx_lo``/``idx_hi`` bound the thread
    population (inclusive). Element units, not bytes; multiply by the
    array's itemsize to talk about bytes.
    """

    base: int
    stride: int
    shift: int
    span: int
    idx_lo: int
    idx_hi: int
    itemsize: int = 4

    def value(self, idx: int) -> int:
        if self.span <= 0:
            return self.base + idx
        return self.base + (idx * self.stride + self.shift) % self.span

    def hull(self) -> Tuple[int, int]:
        """Half-open byte interval covering every reachable element."""
        if self.span <= 0:
            lo, hi = self.base + self.idx_lo, self.base + self.idx_hi + 1
        else:
            lo, hi = self.base, self.base + self.span
        return lo * self.itemsize, hi * self.itemsize

    def residue(self) -> Optional[Tuple[int, int]]:
        """``(g, r)`` with every reachable element ``≡ base + r (mod g)``.

        ``g = gcd(stride, span)`` divides ``span``, and
        ``(idx*stride + shift) % span ≡ shift (mod g)`` for every idx.
        Unavailable for un-wrapped maps (they are injective instead).
        """
        if self.span <= 0:
            return None
        g = gcd(self.stride % self.span if self.stride else 0, self.span)
        if g <= 1:
            return None
        return g, self.shift % g

    def collision_period(self) -> Optional[int]:
        """Smallest ``d > 0`` with ``value(i) == value(i+d)`` for all i.

        ``None`` means no two distinct indices can alias (injective map
        over the population).
        """
        if self.span <= 0:
            return None  # base + idx is injective
        if self.stride % self.span == 0:
            return 1     # constant map: everyone aliases
        period = self.span // gcd(self.stride, self.span)
        if period > self.idx_hi - self.idx_lo:
            return None  # population too narrow to wrap around
        return period

    def is_injective(self) -> bool:
        return self.collision_period() is None


def disjoint_proof(a: AffineMap, b: AffineMap) -> Optional[str]:
    """A human-readable proof that two maps touch disjoint bytes.

    Returns ``None`` when disjointness cannot be established
    symbolically (the enumeration-based analysis decides then).
    """
    a_lo, a_hi = a.hull()
    b_lo, b_hi = b.hull()
    if a_hi <= b_lo or b_hi <= a_lo:
        return (f"disjoint intervals [{a_lo},{a_hi}) and [{b_lo},{b_hi})")
    ra, rb = a.residue(), b.residue()
    if ra is not None and rb is not None and a.base == b.base \
            and a.itemsize == b.itemsize:
        (ga, xa), (gb, xb) = ra, rb
        d = gcd(ga, gb)
        if d > 1 and (xa - xb) % d != 0:
            return (f"residues {xa} (mod {ga}) and {xb} (mod {gb}) "
                    f"never meet (gcd {d})")
    return None


def privacy_proof(m: AffineMap) -> Optional[str]:
    """Proof that no two indices of the population share an element."""
    if m.span <= 0:
        return "direct indexing base+idx is injective"
    period = m.collision_period()
    if period is None:
        g = gcd(m.stride % m.span if m.stride else 0, m.span) or m.span
        return (f"stride {m.stride} over span {m.span} wraps only every "
                f"{m.span // g} indices > population width "
                f"{m.idx_hi - m.idx_lo}")
    return None


def map_of_stmt(st: dict, blocks: int, threads: int) -> Optional[AffineMap]:
    """The affine map of one data-access statement (``None``: no map).

    ``scope="block"`` global streams get one map per block; this returns
    the block-0 map (every block's map is a translate, so privacy and
    residue facts transfer).
    """
    total = blocks * threads
    op = st.get("op")
    if op == "g":
        span = max(1, st.get("span", 1))
        if st.get("scope", "grid") == "block":
            return AffineMap(base=st["base"], stride=st.get("stride", 1),
                             shift=st.get("shift", 0), span=span,
                             idx_lo=0, idx_hi=threads - 1)
        return AffineMap(base=st["base"], stride=st.get("stride", 1),
                         shift=st.get("shift", 0), span=span,
                         idx_lo=0, idx_hi=total - 1)
    if op == "s":
        span = max(1, st.get("span", 1))
        return AffineMap(base=st["base"], stride=st.get("stride", 1),
                         shift=st.get("shift", 0), span=span,
                         idx_lo=0, idx_hi=threads - 1)
    if op == "byte":
        span = max(1, st.get("span", 1))
        return AffineMap(base=st["base"], stride=1,
                         shift=st.get("shift", 0), span=span,
                         idx_lo=0, idx_hi=total - 1, itemsize=1)
    if op == "div":
        return AffineMap(base=st["base"], stride=1, shift=0, span=0,
                         idx_lo=0, idx_hi=total - 1)
    return None
