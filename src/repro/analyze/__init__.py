"""Static race analysis over fuzz-kernel programs.

Lowers a :class:`repro.fuzz.program.FuzzProgram` to per-warp lockstep
instruction streams, classifies every byte-level access pair across
*all* legal schedules, and reports one verdict per array region:
``race-free`` (with a proof sketch), ``racy`` (with a witness pair the
ground-truth oracle can confirm), or ``unknown``. See docs/ANALYSIS.md.
"""

from repro.analyze.benchmodels import (
    BENCHES,
    build_model,
    catalog_models,
    model_for,
    safe_model,
)
from repro.analyze.indexset import (
    AffineMap,
    disjoint_proof,
    map_of_stmt,
    privacy_proof,
)
from repro.analyze.lower import device_layout, lower_program
from repro.analyze.passes import classify_program
from repro.analyze.validate import cross_check, validation_table
from repro.analyze.verdict import (
    REPORT_SCHEMA,
    analyze_program,
    build_report,
    report_json,
)
from repro.analyze.worker import (
    ANALYZE_SCHEMA,
    AnalyzeCampaignResult,
    AnalyzeJob,
    execute_analyze_record,
    run_analyze_campaign,
)

__all__ = [
    "ANALYZE_SCHEMA",
    "AffineMap",
    "AnalyzeCampaignResult",
    "AnalyzeJob",
    "BENCHES",
    "REPORT_SCHEMA",
    "analyze_program",
    "build_model",
    "build_report",
    "catalog_models",
    "classify_program",
    "cross_check",
    "device_layout",
    "disjoint_proof",
    "execute_analyze_record",
    "lower_program",
    "map_of_stmt",
    "model_for",
    "privacy_proof",
    "report_json",
    "run_analyze_campaign",
    "safe_model",
    "validation_table",
]
