"""Static race analysis over fuzz-kernel programs.

Lowers a :class:`repro.fuzz.program.FuzzProgram` to per-warp lockstep
instruction streams, classifies every byte-level access pair across
*all* legal schedules, and reports one verdict per array region:
``race-free`` (with a proof sketch), ``racy`` (with a witness pair the
ground-truth oracle can confirm), or ``unknown``. See docs/ANALYSIS.md.

The multi-device extension (:mod:`repro.analyze.multidevice`) lifts the
same contract to the cross-GPU race class: a fence-scope lattice
(:mod:`repro.analyze.scopes`), a placement pass mirroring
``SharedPagePool`` semantics, and a pairwise classifier that defers to
:func:`repro.core.groundtruth.cross_device_verdict` — validated
differentially against the :class:`MultiDeviceOracle`.
"""

from repro.analyze.benchmodels import (
    BENCHES,
    MG_BENCHES,
    build_mg_model,
    build_model,
    catalog_models,
    mg_catalog_models,
    mg_safe_models,
    model_for,
    safe_model,
)
from repro.analyze.indexset import (
    AffineMap,
    disjoint_proof,
    map_of_stmt,
    privacy_proof,
)
from repro.analyze.lower import device_layout, lower_program
from repro.analyze.mgworker import (
    MGANALYZE_SCHEMA,
    MGAnalyzeCampaignResult,
    MGAnalyzeJob,
    execute_mg_analyze_record,
    run_mg_analyze_campaign,
)
from repro.analyze.multidevice import (
    MG_REPORT_SCHEMA,
    MGArray,
    MGKernel,
    MGProgram,
    analyze_mg_program,
    build_mg_report,
    mg_cross_check,
    mg_device_layout,
    mg_fuzz_model,
    mg_validation_table,
    placement_summary,
)
from repro.analyze.passes import classify_program
from repro.analyze.scopes import (
    SCOPE_BLOCK,
    SCOPE_DEVICE,
    SCOPE_NONE,
    SCOPE_SYSTEM,
    fence_scope,
    publishes,
    scope_join,
    scope_meet,
    scope_name,
)
from repro.analyze.validate import cross_check, validation_table
from repro.analyze.verdict import (
    REPORT_SCHEMA,
    analyze_program,
    build_report,
    report_json,
)
from repro.analyze.worker import (
    ANALYZE_SCHEMA,
    AnalyzeCampaignResult,
    AnalyzeJob,
    execute_analyze_record,
    run_analyze_campaign,
)

__all__ = [
    "ANALYZE_SCHEMA",
    "AffineMap",
    "AnalyzeCampaignResult",
    "AnalyzeJob",
    "BENCHES",
    "MGANALYZE_SCHEMA",
    "MGAnalyzeCampaignResult",
    "MGAnalyzeJob",
    "MGArray",
    "MGKernel",
    "MGProgram",
    "MG_BENCHES",
    "MG_REPORT_SCHEMA",
    "REPORT_SCHEMA",
    "SCOPE_BLOCK",
    "SCOPE_DEVICE",
    "SCOPE_NONE",
    "SCOPE_SYSTEM",
    "analyze_mg_program",
    "analyze_program",
    "build_mg_model",
    "build_mg_report",
    "build_model",
    "build_report",
    "catalog_models",
    "classify_program",
    "cross_check",
    "device_layout",
    "disjoint_proof",
    "execute_analyze_record",
    "execute_mg_analyze_record",
    "fence_scope",
    "lower_program",
    "map_of_stmt",
    "mg_catalog_models",
    "mg_cross_check",
    "mg_device_layout",
    "mg_fuzz_model",
    "mg_safe_models",
    "mg_validation_table",
    "model_for",
    "placement_summary",
    "privacy_proof",
    "publishes",
    "report_json",
    "run_analyze_campaign",
    "run_mg_analyze_campaign",
    "safe_model",
    "scope_join",
    "scope_meet",
    "scope_name",
    "validation_table",
]
