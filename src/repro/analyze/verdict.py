"""Region-level verdicts and the deterministic analysis report.

Byte findings from :mod:`repro.analyze.passes` are aggregated into
per-array **regions**: maximal unions of overlapping statement
footprints. Each region gets one verdict (``racy`` dominates
``unknown`` dominates ``race-free``), the union of proof sketches /
reasons of its bytes, symbolic proof sketches from
:mod:`repro.analyze.indexset` where the access maps allow them, and —
for racy regions — one concrete witness pair the ground-truth oracle
can confirm (chosen deterministically: the lowest racing byte, then the
lexicographically smallest ``(stmt, tid)`` pair on that byte).

``report_json`` serializes a report with sorted keys and compact
separators, so the same program always yields byte-identical JSON.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.analyze.indexset import map_of_stmt, privacy_proof
from repro.analyze.lower import (
    A_SHARED,
    WarpStream,
    device_layout,
    lower_program,
)
from repro.analyze.passes import (
    RACY,
    SAFE,
    UNKNOWN,
    ByteFinding,
    Endpoint,
    classify_program,
)
from repro.fuzz.program import FuzzProgram

REPORT_SCHEMA = 1

_RANK = {SAFE: 0, UNKNOWN: 1, RACY: 2}


def _footprints(streams: List[WarpStream]
                ) -> Dict[str, Dict[int, Tuple[int, int]]]:
    """Per-array, per-statement half-open byte intervals actually touched."""
    foot: Dict[str, Dict[int, Tuple[int, int]]] = {}
    for s in streams:
        for ins in s.instrs:
            for la in ins.lanes:
                per = foot.setdefault(la.array, {})
                lo, hi = per.get(la.stmt, (la.addr, la.addr + la.size))
                per[la.stmt] = (min(lo, la.addr),
                                max(hi, la.addr + la.size))
    return foot


def _merge_regions(per_stmt: Dict[int, Tuple[int, int]]
                   ) -> List[Tuple[int, int, Tuple[int, ...]]]:
    """Merge overlapping statement footprints into ``(lo, hi, stmts)``."""
    items = sorted((lo, hi, stmt) for stmt, (lo, hi) in per_stmt.items())
    regions: List[Tuple[int, int, List[int]]] = []
    for lo, hi, stmt in items:
        if regions and lo < regions[-1][1]:
            last = regions[-1]
            regions[-1] = (last[0], max(last[1], hi), last[2] + [stmt])
        else:
            regions.append((lo, hi, [stmt]))
    return [(lo, hi, tuple(sorted(set(stmts))))
            for lo, hi, stmts in regions]


def _endpoint_dict(ep: Endpoint) -> Dict[str, object]:
    return {
        "tid": ep.tid,
        "block": ep.block,
        "stmt": ep.stmt,
        "tag": ep.tag,
        "write": ep.is_write,
        "atomic": ep.atomic,
    }


def _witness_dict(array: str, finding: ByteFinding,
                  layout: Dict[str, int]) -> Dict[str, object]:
    first, second = finding.witness  # type: ignore[misc]
    shared = array == A_SHARED
    byte = finding.byte if shared else layout[array] + finding.byte
    return {
        "space": "SHARED" if shared else "GLOBAL",
        "byte": byte,
        "array_byte": finding.byte,
        "kinds": list(finding.kinds),
        "categories": list(finding.categories),
        "first": _endpoint_dict(first),
        "second": _endpoint_dict(second),
    }


def _region_record(program: FuzzProgram, array: str,
                   lo: int, hi: int,
                   stmts: Tuple[int, ...],
                   findings: Dict[Tuple[str, int], ByteFinding],
                   layout: Dict[str, int]) -> Dict[str, object]:
    status = SAFE
    kinds: set = set()
    categories: set = set()
    proofs: set = set()
    reasons: set = set()
    witness_finding: Optional[ByteFinding] = None
    for byte in range(lo, hi):
        f = findings.get((array, byte))
        if f is None:
            continue
        if _RANK[f.status] > _RANK[status]:
            status = f.status
        kinds.update(f.kinds)
        categories.update(f.categories)
        proofs.update(f.proofs)
        reasons.update(f.reasons)
        if f.status == RACY and f.witness is not None \
                and witness_finding is None:
            witness_finding = f  # findings scan in byte order: lowest wins
    if status == SAFE:
        for stmt in stmts:
            st = program.stmts[stmt]
            m = map_of_stmt(st, program.blocks, program.threads)
            if m is not None:
                p = privacy_proof(m)
                if p is not None:
                    proofs.add(f"stmt {stmt}: {p}")
    shared = array == A_SHARED
    record: Dict[str, object] = {
        "array": array,
        "space": "SHARED" if shared else "GLOBAL",
        "lo": lo,
        "hi": hi,
        "device_lo": lo if shared else layout[array] + lo,
        "device_hi": hi if shared else layout[array] + hi,
        "stmts": list(stmts),
        "status": status,
        "kinds": sorted(kinds),
        "categories": sorted(categories),
        "proofs": sorted(proofs),
        "reasons": sorted(reasons),
    }
    if witness_finding is not None:
        record["witness"] = _witness_dict(array, witness_finding, layout)
    return record


def build_report(program: FuzzProgram,
                 streams: Optional[List[WarpStream]] = None
                 ) -> Dict[str, object]:
    """Full analysis report of one program (plain JSON-safe dict)."""
    if streams is None:
        streams = lower_program(program)
    layout = device_layout(program)
    findings = classify_program(streams)
    regions: List[Dict[str, object]] = []
    foot = _footprints(streams)
    for array in sorted(foot):
        for lo, hi, stmts in _merge_regions(foot[array]):
            regions.append(_region_record(
                program, array, lo, hi, stmts, findings, layout))
    counts = {RACY: 0, UNKNOWN: 0, SAFE: 0}
    for r in regions:
        counts[str(r["status"])] += 1
    return {
        "schema": REPORT_SCHEMA,
        "program": program.digest(),
        "note": program.note,
        "blocks": program.blocks,
        "threads": program.threads,
        "layout": {k: v for k, v in sorted(layout.items())},
        "verdicts": {
            "racy": counts[RACY],
            "unknown": counts[UNKNOWN],
            "race_free": counts[SAFE],
        },
        "regions": regions,
    }


def analyze_program(program: FuzzProgram) -> Dict[str, object]:
    """Lower, classify, and report — the analyzer's main entry point."""
    return build_report(program)


def report_json(report: Dict[str, object]) -> str:
    """Canonical serialization: same program, byte-identical JSON."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))
