"""Per-benchmark IR summaries for the static analyzer.

The benchmark suite's kernels are generator-based Python; the analyzer
consumes the declarative :class:`repro.fuzz.program.FuzzProgram` IR. So
each benchmark gets a small *model*: a FuzzProgram capturing the
sharing pattern each injection site of
:data:`repro.bench.injection.INJECTION_CATALOG` perturbs — the
shared-memory phase whose barrier the ``barrier:*`` site removes, the
critical-section update whose ``__threadfence`` the ``fence`` site
drops, the lock protocol the ``critical:*`` dummies violate, and a
cross-block producer/consumer pair for the ``xblock`` dummies.

Models are keyed by ``(bench, omit, emit)``: seed/scale overrides of a
spec change data values, not the sharing structure, so they collapse to
one model. ``xblock`` models always launch two blocks (the injected
access crosses block boundaries even when the host benchmark is forced
to one block) and carry no critical sections — a fenced critical
section after a cross-block write would leave the RAW direction
fence-dependent, which is exactly the UNKNOWN the models exist to
avoid.

Every model is a real runnable program, so the same
oracle-differential that grades fuzz verdicts grades these:
``analyze_program(model)`` vs ``oracle_races(record_program(model))``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.bench.injection import INJECTION_CATALOG, InjectionSpec
from repro.fuzz.program import FuzzProgram

if TYPE_CHECKING:
    from repro.analyze.multidevice import MGProgram

#: verdict the injected variant must reach (oracle category names)
MODEL_EXPECTED = {
    "barrier": ("SHARED_BARRIER",),
    "xblock": ("GLOBAL_BARRIER", "GLOBAL_FENCE"),
    "fence": ("GLOBAL_FENCE",),
    "critical": ("GLOBAL_LOCKSET",),
}

BENCHES = ("MCARLO", "SCAN", "FWALSH", "HIST", "SORTNW",
           "REDUCE", "PSUM", "OFFT", "KMEANS", "HASH")


class _Alloc:
    """Bump allocator over the model's global words."""

    def __init__(self) -> None:
        self.next = 0

    def take(self, words: int) -> int:
        base = self.next
        self.next += words
        return base


def _shared_phase(stmts: List[dict], span: int, shift: int,
                  site: str, omit: Tuple[str, ...]) -> None:
    """write / [barrier site] / shifted read / barrier on shared memory."""
    stmts.append({"op": "s", "kind": "write", "base": 0,
                  "stride": 1, "shift": 0, "span": span})
    if site not in omit:
        stmts.append({"op": "barrier"})
    stmts.append({"op": "s", "kind": "read", "base": 0,
                  "stride": 1, "shift": shift, "span": span})
    stmts.append({"op": "barrier"})


def _locked_stmt(slot: int, fenced: bool, **extra: object) -> dict:
    st: Dict[str, object] = {"op": "locked", "slot": slot, "lock": 0,
                             "mod": 16, "fence": bool(fenced)}
    st.update(extra)
    return st


def _xblock_pair(stmts: List[dict], alloc: _Alloc, blocks: int,
                 threads: int) -> None:
    total = blocks * threads
    base = alloc.take(total)
    stmts.append({"op": "g", "kind": "write", "base": base, "stride": 1,
                  "shift": 0, "span": total, "scope": "grid"})
    stmts.append({"op": "g", "kind": "read", "base": base, "stride": 1,
                  "shift": threads, "span": total, "scope": "grid"})


def _private_write(stmts: List[dict], alloc: _Alloc, total: int) -> None:
    base = alloc.take(total)
    stmts.append({"op": "g", "kind": "write", "base": base, "stride": 1,
                  "shift": 0, "span": total, "scope": "grid"})


#: per-benchmark shared-phase sites: site name -> read shift
_SHARED_SITES: Dict[str, Tuple[Tuple[str, int], ...]] = {
    "SCAN": tuple((f"barrier:step{k}", 2 ** k) for k in range(7)),
    "SORTNW": tuple((f"barrier:step{k}", 2 ** (k - 1))
                    for k in range(1, 7)),
    "FWALSH": (("barrier:store", 1), ("barrier:stage5", 32),
               ("barrier:stage6", 64)),
    "MCARLO": (("barrier:store", 32),),
    "HIST": (("barrier:merge", 32),),
    "PSUM": (("barrier:final", 32),),
    "OFFT": (("barrier:fft0", 32),),
}

#: (blocks, threads) per benchmark model (xblock models override)
_SHAPES: Dict[str, Tuple[int, int]] = {
    "SCAN": (1, 128), "SORTNW": (1, 128), "FWALSH": (1, 128),
    "OFFT": (1, 128), "REDUCE": (2, 128), "MCARLO": (2, 64),
    "HIST": (2, 64), "PSUM": (2, 64), "KMEANS": (2, 64),
    "HASH": (2, 64),
}

#: benchmarks whose model carries a fenced critical-section update
#: (the three fence-removal sites live here)
_FENCE_BENCHES = ("REDUCE", "PSUM", "KMEANS")


def build_model(bench: str, omit: Tuple[str, ...] = (),
                emit: Tuple[str, ...] = ()) -> FuzzProgram:
    """The model program of ``bench`` with the given injection applied."""
    if bench not in _SHAPES:
        raise ValueError(f"no model for benchmark {bench!r}")
    xblock = "xblock" in emit
    blocks, threads = (2, 64) if xblock else _SHAPES[bench]
    total = blocks * threads
    alloc = _Alloc()
    stmts: List[dict] = []
    shared_words = 0
    num_locks = 1
    category = ""

    if xblock:
        # structure-preserving safe prefix, then the cross-block dummy
        shared_words = threads
        _shared_phase(stmts, threads, 32, "barrier:keep", omit)
        _private_write(stmts, alloc, total)
        _xblock_pair(stmts, alloc, blocks, threads)
        category = "xblock"
    else:
        if bench == "HIST":
            # global atomic histogram bins: RMWs serialize, race-free
            bins = alloc.take(8)
            stmts.append({"op": "g", "kind": "atomic", "base": bins,
                          "stride": 1, "shift": 0, "span": 8,
                          "scope": "grid"})
        if bench == "KMEANS":
            _private_write(stmts, alloc, total)
        if bench == "REDUCE":
            # tree reduction: barriers[0] = post-load, [1] = level 0
            levels = 1
            s = threads // 2
            while s > 0:
                levels += 1
                s //= 2
            barriers = [True] * levels
            barriers[0] = "barrier:load" not in omit
            barriers[1] = "barrier:tree0" not in omit
            shared_words = threads
            stmts.append({"op": "tree", "barriers": barriers})
        for site, shift in _SHARED_SITES.get(bench, ()):
            shared_words = threads
            _shared_phase(stmts, threads, shift, site, omit)
        if bench in _FENCE_BENCHES:
            slot = alloc.take(1)
            stmts.append(_locked_stmt(slot, "fence" not in omit))
        if bench == "HASH":
            slot = alloc.take(1)
            stmts.append(_locked_stmt(slot, True))
            num_locks = 2
            if "critical:naked-write" in emit:
                naked = alloc.take(1)
                stmts.append(_locked_stmt(naked, True, mod=32,
                                          skip_tid=0))
                category = "critical"
            if "critical:wrong-lock" in emit:
                slot2 = alloc.take(1)
                stmts.append(_locked_stmt(slot2, True, wrong_lock_tid=0,
                                          wrong_lock=1))
                category = "critical"
        if any(s.startswith("barrier:") for s in omit):
            category = "barrier"
        elif "fence" in omit:
            category = "fence"

    expected = MODEL_EXPECTED.get(category, ())
    tag = ",".join(sorted(omit) + sorted(emit)) or "safe"
    return FuzzProgram(
        blocks=blocks, threads=threads,
        global_words=max(alloc.next, total) + 4,
        shared_words=shared_words, byte_bytes=0, num_locks=num_locks,
        stmts=tuple(stmts), expected=expected,
        note=f"bench:{bench}:{tag}")


def model_for(spec: InjectionSpec) -> FuzzProgram:
    """The model variant of one injection-catalog spec."""
    return build_model(spec.bench, omit=spec.omit, emit=spec.emit)


def safe_model(bench: str) -> FuzzProgram:
    """The race-free baseline model of one benchmark."""
    return build_model(bench)


def catalog_models() -> List[Tuple[InjectionSpec, FuzzProgram]]:
    """Every catalog spec with its model (seed variants share models)."""
    return [(spec, model_for(spec)) for spec in INJECTION_CATALOG]


# ---------------------------------------------------------------------------
# multi-GPU benchmark models (repro.multigpu.bench mirrors)
# ---------------------------------------------------------------------------
#
# Each of the four multi-GPU benchmarks gets an :class:`MGProgram` that
# mirrors its plan builder statement for statement: same allocation
# *order* (the bump allocator makes order determine every absolute
# device address), same grids, same strided loops, same fence scopes,
# same injection sites. Because the static layout replays the same
# 256-byte-aligned bump allocation the coordinator performs, region
# byte ranges line up with the oracle's absolute race bytes and the
# differential cross-check is byte-exact, not just shape-exact.

MG_BENCHES = ("MG_RING", "MG_PRODCONS", "MG_HALO", "MG_UNIFIED")

_MG_BLOCK = 32


def _mg_scaled(base: int, scale: float, minimum: int,
               multiple: int) -> int:
    """Mirror of :func:`repro.bench.common.scaled` (import-light)."""
    from repro.bench.common import scaled

    return scaled(base, scale, minimum=minimum, multiple=multiple)


def _mg_ring_model(gpus: int, scale: float,
                   injection: str) -> "MGProgram":
    from repro.analyze.multidevice import MGArray, MGKernel, MGProgram

    n = _mg_scaled(256, scale, 32, 32)
    grid = 2
    nthreads = grid * _MG_BLOCK
    arrays = [MGArray(f"ring_buf{d}", n, home=d, shared=True)
              for d in range(gpus)]
    arrays += [MGArray(f"ring_out{d}", nthreads, home=d)
               for d in range(gpus)]
    phase0 = []
    for d in range(gpus):
        stmts = [{"op": "write", "array": f"ring_buf{(d + 1) % gpus}",
                  "start": 0, "stop": n}]
        if injection == "overlap":
            # stomp the device's OWN inbox while the neighbor fills it
            stmts.append({"op": "write", "array": f"ring_buf{d}",
                          "start": 0, "stop": 1, "only_tid": 0})
        phase0.append(MGKernel(device=d, grid=grid, stmts=tuple(stmts)))
    phase1 = [
        MGKernel(device=d, grid=grid, stmts=(
            {"op": "read", "array": f"ring_buf{d}", "start": 0, "stop": n},
            {"op": "write", "array": f"ring_out{d}",
             "start": 0, "stop": nthreads},
        ))
        for d in range(gpus)
    ]
    return MGProgram(
        gpus=gpus, arrays=tuple(arrays),
        phases=(tuple(phase0), tuple(phase1)),
        note=f"mgbench:MG_RING:{injection or 'safe'}",
        expected=("XGPU_SHARING",) if injection == "overlap" else ())


def _mg_prodcons_model(gpus: int, scale: float,
                       injection: str) -> "MGProgram":
    from repro.analyze.multidevice import MGArray, MGKernel, MGProgram

    n = _mg_scaled(256, scale, 32, 32)
    grid = 2
    nthreads = grid * _MG_BLOCK
    arrays = [MGArray("pc_data", n, home=0, shared=True),
              MGArray("pc_flag", 1, home=0, shared=True)]
    arrays += [MGArray(f"pc_sink{d}", nthreads, home=d)
               for d in range(1, gpus)]
    producer = MGKernel(device=0, grid=grid, stmts=(
        {"op": "write", "array": "pc_data", "start": 0, "stop": n},
        # the flagship scope site: system publication unless injected
        {"op": "fence", "scope": 0 if injection == "nofence" else 1},
        {"op": "atomic", "array": "pc_flag", "start": 0, "stop": 1,
         "only_tid": 0},
    ))
    consumers = [
        MGKernel(device=d, grid=grid, stmts=(
            {"op": "atomic", "array": "pc_flag", "start": 0, "stop": 1,
             "only_tid": 0},
            {"op": "read", "array": "pc_data", "start": 0, "stop": n},
            {"op": "write", "array": f"pc_sink{d}",
             "start": 0, "stop": nthreads},
        ))
        for d in range(1, gpus)
    ]
    return MGProgram(
        gpus=gpus, arrays=tuple(arrays),
        phases=(tuple([producer] + consumers),),
        note=f"mgbench:MG_PRODCONS:{injection or 'safe'}",
        expected=("XGPU_FENCE",) if injection == "nofence" else ())


def _mg_halo_model(gpus: int, scale: float,
                   injection: str) -> "MGProgram":
    from repro.analyze.multidevice import MGArray, MGKernel, MGProgram

    h = _mg_scaled(64, scale, 16, 16)
    half = h // 2
    nthreads = _MG_BLOCK
    arrays = [MGArray(f"halo{j}", h, home=j, shared=True)
              for j in range(gpus - 1)]
    arrays += [MGArray(f"halo_out{d}", nthreads, home=d)
               for d in range(gpus)]
    phase0 = []
    for d in range(gpus):
        left = f"halo{d - 1}" if d > 0 else None
        right = f"halo{d}" if d < gpus - 1 else None
        stmts: List[dict] = []
        if right is not None:
            stmts.append({"op": "write", "array": right,
                          "start": 0, "stop": half})
        if left is not None:
            stmts.append({"op": "write", "array": left,
                          "start": half, "stop": h})
        # device scope only: the design race — peers never observe it
        stmts.append({"op": "fence", "scope": 0})
        if right is not None:
            stmts.append({"op": "read", "array": right,
                          "start": half, "stop": h})
        if left is not None:
            stmts.append({"op": "read", "array": left,
                          "start": 0, "stop": half})
        stmts.append({"op": "write", "array": f"halo_out{d}",
                      "start": 0, "stop": nthreads})
        phase0.append(MGKernel(device=d, stmts=tuple(stmts)))
    return MGProgram(
        gpus=gpus, arrays=tuple(arrays), phases=(tuple(phase0),),
        note="mgbench:MG_HALO:design-race",
        expected=("XGPU_FENCE",))


def _mg_unified_model(gpus: int, scale: float,
                      injection: str) -> "MGProgram":
    from repro.analyze.multidevice import MGArray, MGKernel, MGProgram

    n = _mg_scaled(128, scale, 32, 32)
    c = 8
    arrays = (MGArray("uni_counters", c, home=0, shared=True),
              MGArray("uni_result", 1, home=0))
    phase0 = []
    for d in range(gpus):
        if injection == "plain" and d == gpus - 1:
            # injected: plain read-modify-write racing the peers' atomics
            stmts: Tuple[dict, ...] = (
                {"op": "read", "array": "uni_counters",
                 "start": 0, "stop": n, "mod": c},
                {"op": "write", "array": "uni_counters",
                 "start": 0, "stop": n, "mod": c},
            )
        else:
            stmts = ({"op": "atomic", "array": "uni_counters",
                      "start": 0, "stop": n, "mod": c},)
        phase0.append(MGKernel(device=d, stmts=stmts))
    phase1 = (MGKernel(device=0, stmts=(
        {"op": "read", "array": "uni_counters", "start": 0, "stop": c,
         "only_tid": 0, "each": True},
        {"op": "write", "array": "uni_result", "start": 0, "stop": 1,
         "only_tid": 0},
    )),)
    return MGProgram(
        gpus=gpus, arrays=arrays, phases=(tuple(phase0), phase1),
        note=f"mgbench:MG_UNIFIED:{injection or 'safe'}",
        expected=("XGPU_FENCE", "XGPU_SHARING")
        if injection == "plain" else ())


_MG_BUILDERS = {
    "MG_RING": _mg_ring_model,
    "MG_PRODCONS": _mg_prodcons_model,
    "MG_HALO": _mg_halo_model,
    "MG_UNIFIED": _mg_unified_model,
}


def build_mg_model(bench: str, gpus: int = 2, scale: float = 1.0,
                   injection: str = "") -> "MGProgram":
    """The multi-device model of one MG benchmark configuration."""
    try:
        builder = _MG_BUILDERS[bench.upper()]
    except KeyError:
        raise ValueError(f"no multi-GPU model for benchmark {bench!r}; "
                         f"choose from {sorted(_MG_BUILDERS)}") from None
    return builder(gpus, scale, injection)


def mg_catalog_models(gpus: int = 2, scale: float = 1.0
                      ) -> "List[Tuple[object, MGProgram]]":
    """Every MG injection spec paired with its static model."""
    from repro.multigpu.bench import MG_INJECTION_CATALOG

    return [(spec, build_mg_model(spec.bench, gpus=gpus, scale=scale,
                                  injection=spec.injection))
            for spec in MG_INJECTION_CATALOG]


def mg_safe_models(gpus: int = 2, scale: float = 1.0
                   ) -> "List[Tuple[str, MGProgram]]":
    """Baseline (uninjected) model of every MG benchmark.

    ``MG_HALO`` has a design race even uninjected — its baseline model
    is expected racy, exactly like the dynamic benchmark's
    ``racy_by_design`` flag.
    """
    return [(name, build_mg_model(name, gpus=gpus, scale=scale))
            for name in MG_BENCHES]
