"""Per-benchmark IR summaries for the static analyzer.

The benchmark suite's kernels are generator-based Python; the analyzer
consumes the declarative :class:`repro.fuzz.program.FuzzProgram` IR. So
each benchmark gets a small *model*: a FuzzProgram capturing the
sharing pattern each injection site of
:data:`repro.bench.injection.INJECTION_CATALOG` perturbs — the
shared-memory phase whose barrier the ``barrier:*`` site removes, the
critical-section update whose ``__threadfence`` the ``fence`` site
drops, the lock protocol the ``critical:*`` dummies violate, and a
cross-block producer/consumer pair for the ``xblock`` dummies.

Models are keyed by ``(bench, omit, emit)``: seed/scale overrides of a
spec change data values, not the sharing structure, so they collapse to
one model. ``xblock`` models always launch two blocks (the injected
access crosses block boundaries even when the host benchmark is forced
to one block) and carry no critical sections — a fenced critical
section after a cross-block write would leave the RAW direction
fence-dependent, which is exactly the UNKNOWN the models exist to
avoid.

Every model is a real runnable program, so the same
oracle-differential that grades fuzz verdicts grades these:
``analyze_program(model)`` vs ``oracle_races(record_program(model))``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.injection import INJECTION_CATALOG, InjectionSpec
from repro.fuzz.program import FuzzProgram

#: verdict the injected variant must reach (oracle category names)
MODEL_EXPECTED = {
    "barrier": ("SHARED_BARRIER",),
    "xblock": ("GLOBAL_BARRIER", "GLOBAL_FENCE"),
    "fence": ("GLOBAL_FENCE",),
    "critical": ("GLOBAL_LOCKSET",),
}

BENCHES = ("MCARLO", "SCAN", "FWALSH", "HIST", "SORTNW",
           "REDUCE", "PSUM", "OFFT", "KMEANS", "HASH")


class _Alloc:
    """Bump allocator over the model's global words."""

    def __init__(self) -> None:
        self.next = 0

    def take(self, words: int) -> int:
        base = self.next
        self.next += words
        return base


def _shared_phase(stmts: List[dict], span: int, shift: int,
                  site: str, omit: Tuple[str, ...]) -> None:
    """write / [barrier site] / shifted read / barrier on shared memory."""
    stmts.append({"op": "s", "kind": "write", "base": 0,
                  "stride": 1, "shift": 0, "span": span})
    if site not in omit:
        stmts.append({"op": "barrier"})
    stmts.append({"op": "s", "kind": "read", "base": 0,
                  "stride": 1, "shift": shift, "span": span})
    stmts.append({"op": "barrier"})


def _locked_stmt(slot: int, fenced: bool, **extra: object) -> dict:
    st: Dict[str, object] = {"op": "locked", "slot": slot, "lock": 0,
                             "mod": 16, "fence": bool(fenced)}
    st.update(extra)
    return st


def _xblock_pair(stmts: List[dict], alloc: _Alloc, blocks: int,
                 threads: int) -> None:
    total = blocks * threads
    base = alloc.take(total)
    stmts.append({"op": "g", "kind": "write", "base": base, "stride": 1,
                  "shift": 0, "span": total, "scope": "grid"})
    stmts.append({"op": "g", "kind": "read", "base": base, "stride": 1,
                  "shift": threads, "span": total, "scope": "grid"})


def _private_write(stmts: List[dict], alloc: _Alloc, total: int) -> None:
    base = alloc.take(total)
    stmts.append({"op": "g", "kind": "write", "base": base, "stride": 1,
                  "shift": 0, "span": total, "scope": "grid"})


#: per-benchmark shared-phase sites: site name -> read shift
_SHARED_SITES: Dict[str, Tuple[Tuple[str, int], ...]] = {
    "SCAN": tuple((f"barrier:step{k}", 2 ** k) for k in range(7)),
    "SORTNW": tuple((f"barrier:step{k}", 2 ** (k - 1))
                    for k in range(1, 7)),
    "FWALSH": (("barrier:store", 1), ("barrier:stage5", 32),
               ("barrier:stage6", 64)),
    "MCARLO": (("barrier:store", 32),),
    "HIST": (("barrier:merge", 32),),
    "PSUM": (("barrier:final", 32),),
    "OFFT": (("barrier:fft0", 32),),
}

#: (blocks, threads) per benchmark model (xblock models override)
_SHAPES: Dict[str, Tuple[int, int]] = {
    "SCAN": (1, 128), "SORTNW": (1, 128), "FWALSH": (1, 128),
    "OFFT": (1, 128), "REDUCE": (2, 128), "MCARLO": (2, 64),
    "HIST": (2, 64), "PSUM": (2, 64), "KMEANS": (2, 64),
    "HASH": (2, 64),
}

#: benchmarks whose model carries a fenced critical-section update
#: (the three fence-removal sites live here)
_FENCE_BENCHES = ("REDUCE", "PSUM", "KMEANS")


def build_model(bench: str, omit: Tuple[str, ...] = (),
                emit: Tuple[str, ...] = ()) -> FuzzProgram:
    """The model program of ``bench`` with the given injection applied."""
    if bench not in _SHAPES:
        raise ValueError(f"no model for benchmark {bench!r}")
    xblock = "xblock" in emit
    blocks, threads = (2, 64) if xblock else _SHAPES[bench]
    total = blocks * threads
    alloc = _Alloc()
    stmts: List[dict] = []
    shared_words = 0
    num_locks = 1
    category = ""

    if xblock:
        # structure-preserving safe prefix, then the cross-block dummy
        shared_words = threads
        _shared_phase(stmts, threads, 32, "barrier:keep", omit)
        _private_write(stmts, alloc, total)
        _xblock_pair(stmts, alloc, blocks, threads)
        category = "xblock"
    else:
        if bench == "HIST":
            # global atomic histogram bins: RMWs serialize, race-free
            bins = alloc.take(8)
            stmts.append({"op": "g", "kind": "atomic", "base": bins,
                          "stride": 1, "shift": 0, "span": 8,
                          "scope": "grid"})
        if bench == "KMEANS":
            _private_write(stmts, alloc, total)
        if bench == "REDUCE":
            # tree reduction: barriers[0] = post-load, [1] = level 0
            levels = 1
            s = threads // 2
            while s > 0:
                levels += 1
                s //= 2
            barriers = [True] * levels
            barriers[0] = "barrier:load" not in omit
            barriers[1] = "barrier:tree0" not in omit
            shared_words = threads
            stmts.append({"op": "tree", "barriers": barriers})
        for site, shift in _SHARED_SITES.get(bench, ()):
            shared_words = threads
            _shared_phase(stmts, threads, shift, site, omit)
        if bench in _FENCE_BENCHES:
            slot = alloc.take(1)
            stmts.append(_locked_stmt(slot, "fence" not in omit))
        if bench == "HASH":
            slot = alloc.take(1)
            stmts.append(_locked_stmt(slot, True))
            num_locks = 2
            if "critical:naked-write" in emit:
                naked = alloc.take(1)
                stmts.append(_locked_stmt(naked, True, mod=32,
                                          skip_tid=0))
                category = "critical"
            if "critical:wrong-lock" in emit:
                slot2 = alloc.take(1)
                stmts.append(_locked_stmt(slot2, True, wrong_lock_tid=0,
                                          wrong_lock=1))
                category = "critical"
        if any(s.startswith("barrier:") for s in omit):
            category = "barrier"
        elif "fence" in omit:
            category = "fence"

    expected = MODEL_EXPECTED.get(category, ())
    tag = ",".join(sorted(omit) + sorted(emit)) or "safe"
    return FuzzProgram(
        blocks=blocks, threads=threads,
        global_words=max(alloc.next, total) + 4,
        shared_words=shared_words, byte_bytes=0, num_locks=num_locks,
        stmts=tuple(stmts), expected=expected,
        note=f"bench:{bench}:{tag}")


def model_for(spec: InjectionSpec) -> FuzzProgram:
    """The model variant of one injection-catalog spec."""
    return build_model(spec.bench, omit=spec.omit, emit=spec.emit)


def safe_model(bench: str) -> FuzzProgram:
    """The race-free baseline model of one benchmark."""
    return build_model(bench)


def catalog_models() -> List[Tuple[InjectionSpec, FuzzProgram]]:
    """Every catalog spec with its model (seed variants share models)."""
    return [(spec, model_for(spec)) for spec in INJECTION_CATALOG]
