"""Scope-aware multi-device static race analysis (the XGPU race class).

PR 9's dynamic stack judges cross-GPU races twice — the byte-exact
:class:`~repro.core.groundtruth.MultiDeviceOracle` and the granule-level
directory detector — but both need a full multi-device simulation. This
module is the simulation-free third leg: a declarative multi-device IR
(:class:`MGProgram`), a placement pass mirroring
:class:`~repro.multigpu.memory.SharedPagePool` semantics, and a
cross-device pairwise classifier that emits ``racy`` (with a concrete
witness the oracle can confirm), ``race-free`` (with a proof sketch), or
``unknown`` (the analyzer declining to claim) per array region.

The soundness architecture mirrors the single-device analyzer
(:mod:`repro.analyze.passes`) one level up:

- **exact enumeration over bounded populations.** Thread populations and
  index ranges are small, so element footprints are enumerated, never
  approximated; symbolic reasoning only *explains* verdicts.
- **the pair rule exists once.** Static endpoint pairs are judged by
  calling :func:`repro.core.groundtruth.cross_device_verdict` itself on
  reconstructed :class:`~repro.core.groundtruth.DeviceEndpoint` rows —
  system atomics exempt, W/W always races in-phase, W/R suppressed only
  by a **system-scope** fence after the write (device-scope fences
  publish nothing to peers; see :mod:`repro.analyze.scopes`). The static
  layer's only claim of its own is the *endpoint reconstruction*: which
  bytes each warp touches, and whether its writes are provably published.
- **placement is a verdict dimension.** Only ``shared=True`` arrays are
  peer-visible (mapped in every device's page table and registered in
  the home-node directory); a device-local array is race-free for the
  cross-device class by placement alone, exactly like directory pruning
  of single-sharer pages.
- **unknown is honest.** Statements and fences marked ``maybe`` (the IR's
  conditional-execution escape hatch) poison dependent verdicts to
  ``unknown`` instead of guessing.

Reports serialize canonically (sorted keys, compact separators) through
:func:`repro.analyze.verdict.report_json`, so the same program always
yields byte-identical JSON; :func:`mg_cross_check` grades a report
against the oracle's :class:`~repro.core.groundtruth.CrossDeviceRace`
list with the same contract as the single-device validator.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analyze.scopes import (
    SCOPE_SYSTEM,
    fence_scope,
    publishes,
    scope_name,
)
from repro.common.bitops import align_up
from repro.common.types import AccessKind

#: bump when the IR, the pair rule, or the report shape changes
MG_REPORT_SCHEMA = 1

_WARP = 32
_ALIGN = 256          #: DeviceMemory.ALLOC_ALIGN, mirrored
_PAGE = 4096          #: SharedPagePool default page size, mirrored

_READ = int(AccessKind.READ)
_WRITE = int(AccessKind.WRITE)
_ATOMIC = int(AccessKind.ATOMIC)

_KINDS = {"read": _READ, "write": _WRITE, "atomic": _ATOMIC}

RACY, UNKNOWN, SAFE = "racy", "unknown", "race-free"
_RANK = {SAFE: 0, UNKNOWN: 1, RACY: 2}


# ---------------------------------------------------------------------------
# the multi-device IR
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MGArray:
    """One allocation, in program order (the order *is* the layout)."""

    name: str
    length: int               #: elements
    itemsize: int = 4
    home: int = 0
    shared: bool = False      #: peer-mapped/unified vs device-local

    def record(self) -> Dict[str, Any]:
        return {"name": self.name, "length": self.length,
                "itemsize": self.itemsize, "home": self.home,
                "shared": self.shared}

    @staticmethod
    def from_record(record: Dict[str, Any]) -> "MGArray":
        return MGArray(name=str(record["name"]),
                       length=int(record["length"]),
                       itemsize=int(record.get("itemsize", 4)),
                       home=int(record.get("home", 0)),
                       shared=bool(record.get("shared", False)))


@dataclass(frozen=True)
class MGKernel:
    """One kernel launch of one device within a phase.

    Statement vocabulary (plain dicts, JSON-able):

    - ``{"op": "read"|"write"|"atomic", "array": name, "start": s,
      "stop": e}`` — each thread ``gtid`` touches elements
      ``range(s + gtid, e, nthreads)`` (the canonical strided loop);
      optional ``"mod": m`` folds every element through ``% m``
      (histogram-style wrapping), ``"only_tid": t`` restricts the
      statement to one thread, ``"each": true`` makes each
      participating thread walk the whole ``[s, e)`` range serially,
      and ``"maybe": true`` marks conditional execution the analyzer
      must not assume either way;
    - ``{"op": "fence", "scope": 0|1}`` — wire encoding 0 = device
      scope, 1 = system scope (``maybe`` supported here too: a
      conditional publication poisons dependent verdicts to unknown).
    """

    device: int
    stmts: Tuple[Dict[str, Any], ...]
    grid: int = 1
    block: int = _WARP

    @property
    def nthreads(self) -> int:
        return self.grid * self.block

    def record(self) -> Dict[str, Any]:
        return {"device": self.device, "grid": self.grid,
                "block": self.block, "stmts": [dict(s) for s in self.stmts]}

    @staticmethod
    def from_record(record: Dict[str, Any]) -> "MGKernel":
        return MGKernel(device=int(record["device"]),
                        grid=int(record.get("grid", 1)),
                        block=int(record.get("block", _WARP)),
                        stmts=tuple(dict(s) for s in record["stmts"]))


@dataclass(frozen=True)
class MGProgram:
    """A declarative multi-device program: allocations + phased launches."""

    gpus: int
    arrays: Tuple[MGArray, ...]
    phases: Tuple[Tuple[MGKernel, ...], ...]
    note: str = ""
    #: expected oracle categories of the injected defect ("" = none)
    expected: Tuple[str, ...] = ()

    def record(self) -> Dict[str, Any]:
        return {
            "schema": MG_REPORT_SCHEMA,
            "gpus": self.gpus,
            "arrays": [a.record() for a in self.arrays],
            "phases": [[k.record() for k in phase]
                       for phase in self.phases],
            "note": self.note,
            "expected": list(self.expected),
        }

    @staticmethod
    def from_record(record: Dict[str, Any]) -> "MGProgram":
        return MGProgram(
            gpus=int(record["gpus"]),
            arrays=tuple(MGArray.from_record(a)
                         for a in record["arrays"]),
            phases=tuple(tuple(MGKernel.from_record(k) for k in phase)
                         for phase in record["phases"]),
            note=str(record.get("note", "")),
            expected=tuple(record.get("expected", ())),
        )

    def digest(self) -> str:
        payload = json.dumps(self.record(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def array(self, name: str) -> MGArray:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(f"program has no array {name!r}")


def mg_fuzz_model(program: Dict[str, Any]) -> MGProgram:
    """The :class:`MGProgram` of one mg-fuzz JSON record.

    The generator's vocabulary maps 1:1: every statement targets the
    single unified array (``shared=True``, home 0), launched as one
    32-thread block per device per phase
    (:func:`repro.multigpu.fuzz.generate_mg_program`).
    """
    params = program["params"]
    n = int(params["n"])
    gpus = int(params["gpus"])
    phases: List[Tuple[MGKernel, ...]] = []
    for phase in program["phases"]:
        kernels: List[MGKernel] = []
        for entry in phase:
            stmts: List[Dict[str, Any]] = []
            for st in entry["stmts"]:
                if st[0] == "fence":
                    stmts.append({"op": "fence", "scope": int(st[1])})
                else:
                    stmts.append({"op": str(st[0]),
                                  "array": "mg_fuzz_buf",
                                  "start": int(st[1]),
                                  "stop": int(st[2])})
            kernels.append(MGKernel(device=int(entry["device"]),
                                    stmts=tuple(stmts)))
        phases.append(tuple(kernels))
    return MGProgram(
        gpus=gpus,
        arrays=(MGArray("mg_fuzz_buf", n, home=0, shared=True),),
        phases=tuple(phases),
        note=f"mgfuzz:{program.get('seed', '?')}")


# ---------------------------------------------------------------------------
# placement pass (SharedPagePool mirror)
# ---------------------------------------------------------------------------


def mg_device_layout(program: MGProgram) -> Dict[str, int]:
    """Base device byte of every array: the bump allocator replayed.

    Multi-GPU systems share one :class:`~repro.gpu.device.DeviceMemory`
    pool, so addresses are globally unique and allocation order fully
    determines them (align 256, like the single-device layout mirror).
    """
    layout: Dict[str, int] = {}
    cursor = 0
    for a in program.arrays:
        layout[a.name] = cursor
        cursor = align_up(cursor + a.length * a.itemsize, _ALIGN)
    return layout


def placement_summary(program: MGProgram,
                      layout: Optional[Dict[str, int]] = None
                      ) -> Dict[str, Any]:
    """Per-device placement view, mirroring ``SharedPagePool`` mapping.

    A ``shared=True`` array lands in **every** device's page table and
    its pages register in the home-node directory; a device-local array
    maps on its home only (remote access would page-fault). The summary
    is what ``repro analyze --gpus N --json`` exposes per device.
    """
    if layout is None:
        layout = mg_device_layout(program)
    devices: List[Dict[str, Any]] = []
    shared_vpns: Set[int] = set()
    for a in program.arrays:
        if a.shared:
            base = layout[a.name]
            nbytes = max(1, a.length * a.itemsize)
            shared_vpns.update(range(base // _PAGE,
                                     (base + nbytes - 1) // _PAGE + 1))
    for d in range(program.gpus):
        local = [a for a in program.arrays if not a.shared and a.home == d]
        home_shared = [a for a in program.arrays
                       if a.shared and a.home == d]
        shared = [a for a in program.arrays if a.shared]
        devices.append({
            "device": d,
            "local_arrays": sorted(a.name for a in local),
            "home_shared_arrays": sorted(a.name for a in home_shared),
            "visible_shared_arrays": sorted(a.name for a in shared),
            "local_bytes": sum(a.length * a.itemsize for a in local),
            "shared_bytes": sum(a.length * a.itemsize for a in shared),
        })
    return {
        "page_size": _PAGE,
        "shared_pages": len(shared_vpns),
        "devices": devices,
    }


# ---------------------------------------------------------------------------
# endpoint reconstruction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MGSite:
    """One static cross-device access endpoint (pre-verdict)."""

    device: int
    phase: int
    wid: int                  #: device-local warp id
    tid: int                  #: device-local grid thread id
    bid: int
    kind: int                 #: AccessKind int
    sys_fenced_after: bool    #: provably published at system scope
    conditional: bool         #: endpoint may not execute (``maybe``)
    publish_unknown: bool     #: publication depends on a ``maybe`` fence
    stmt: int                 #: flat statement index (witness text)


def _stmt_elements(st: Dict[str, Any], gtid: int,
                   nthreads: int) -> Iterable[int]:
    """Exact element set one thread touches under one statement."""
    if st.get("only_tid") is not None and gtid != int(st["only_tid"]):
        return ()
    start, stop = int(st["start"]), int(st["stop"])
    if st.get("each"):
        elems: Iterable[int] = range(start, stop)
    else:
        elems = range(start + gtid, stop, nthreads)
    mod = st.get("mod")
    if mod:
        return sorted({e % int(mod) for e in elems})
    return elems


@dataclass
class _CellSites:
    sites: List[MGSite] = field(default_factory=list)
    #: dedup mirror of the oracle's interchangeable-endpoint rule:
    #: same (device, wid, kind, publication) rows judge identically
    seen: Set[Tuple[int, int, int, bool, bool, bool]] = \
        field(default_factory=set)

    def add(self, site: MGSite) -> None:
        key = (site.device, site.wid, site.kind, site.sys_fenced_after,
               site.conditional, site.publish_unknown)
        if key not in self.seen:
            self.seen.add(key)
            self.sites.append(site)


def collect_sites(program: MGProgram, layout: Dict[str, int]
                  ) -> Dict[Tuple[int, int], _CellSites]:
    """Per ``(phase, absolute device byte)`` endpoint sites.

    Mirrors what the dynamic stack feeds the oracle: only shared-array
    accesses are peer-visible, warps are 32-thread slices of a kernel's
    grid, and a write counts as published iff a system-scope fence
    later in the *same warp's* statement stream within the phase is
    certain to issue (``maybe`` fences yield ``publish_unknown``).
    """
    arrays = {a.name: a for a in program.arrays}
    cells: Dict[Tuple[int, int], _CellSites] = {}
    flat_stmt = 0
    for phase_idx, phase in enumerate(program.phases):
        # concatenate same-device kernels in launch order: run_phase
        # executes them back to back, so one warp's stream spans them
        per_device: Dict[int, List[MGKernel]] = {}
        for kernel in phase:
            per_device.setdefault(kernel.device, []).append(kernel)
        for device in sorted(per_device):
            kernels = per_device[device]
            stmts: List[Tuple[int, MGKernel, Dict[str, Any]]] = []
            for kernel in kernels:
                for st in kernel.stmts:
                    stmts.append((flat_stmt, kernel, st))
                    flat_stmt += 1
            # per-WARP publication horizon: warp ids restart per launch,
            # so warp w's in-phase stream spans every kernel with more
            # than w warps — a fence publishes only for warps its own
            # kernel actually runs (mirrors the oracle's (device, wid)
            # phase-final epochs)
            max_warps = max((k.nthreads + _WARP - 1) // _WARP
                            for k in kernels)
            last_sure = [-1] * max_warps
            last_maybe = [-1] * max_warps
            for pos, (_, kernel, st) in enumerate(stmts):
                if st.get("op") != "fence" or not publishes(
                        fence_scope(st.get("scope")), SCOPE_SYSTEM):
                    continue
                kernel_warps = (kernel.nthreads + _WARP - 1) // _WARP
                horizon = last_maybe if st.get("maybe") else last_sure
                for w in range(kernel_warps):
                    horizon[w] = pos
            for pos, (sid, kernel, st) in enumerate(stmts):
                op = str(st.get("op"))
                if op == "fence":
                    continue
                arr = arrays[str(st["array"])]
                if not arr.shared:
                    continue  # device-local: never peer-visible
                kind = _KINDS[op]
                base = layout[arr.name]
                conditional = bool(st.get("maybe"))
                for gtid in range(kernel.nthreads):
                    elems = _stmt_elements(st, gtid, kernel.nthreads)
                    if not elems:
                        continue
                    wid = gtid // _WARP
                    fenced = kind != _READ and pos < last_sure[wid]
                    publish_unknown = (kind != _READ and not fenced
                                       and pos < last_maybe[wid])
                    site_proto = MGSite(
                        device=device, phase=phase_idx,
                        wid=wid, tid=gtid,
                        bid=gtid // kernel.block, kind=kind,
                        sys_fenced_after=fenced,
                        conditional=conditional,
                        publish_unknown=publish_unknown, stmt=sid)
                    for e in elems:
                        for b in range(base + e * arr.itemsize,
                                       base + (e + 1) * arr.itemsize):
                            cells.setdefault(
                                (phase_idx, b), _CellSites()).add(site_proto)
    return cells


# ---------------------------------------------------------------------------
# the cross-device pairwise classifier
# ---------------------------------------------------------------------------


def _to_device_endpoint(site: MGSite, fenced: Optional[bool] = None
                        ) -> "Any":
    from repro.core.groundtruth import DeviceEndpoint

    return DeviceEndpoint(
        device=site.device, phase=site.phase, wid=site.wid, tid=site.tid,
        bid=site.bid, kind=site.kind,
        sys_fenced_after=site.sys_fenced_after if fenced is None
        else fenced)


def classify_site_pair(a: MGSite, b: MGSite
                       ) -> Tuple[str, Optional[Tuple[str, str]], str]:
    """Judge one static endpoint pair for the XGPU race class.

    Returns ``(status, (kind, category) | None, detail)``. The verdict
    is :func:`~repro.core.groundtruth.cross_device_verdict` applied to
    the reconstructed endpoints — the cross-GPU race rule is never
    re-implemented here. ``unknown`` arises only from the static
    layer's own uncertainty: conditional execution or conditional
    publication, evaluated by running the exact rule under *both*
    resolutions and reporting when they disagree.
    """
    from repro.core.groundtruth import cross_device_verdict

    if a.device == b.device:
        return SAFE, None, "same-device accesses are outside the " \
                           "cross-device race class"
    if a.phase != b.phase:
        return SAFE, None, "cross-phase: the host synchronize orders " \
                           "all devices at the phase boundary"
    outcomes = set()
    for a_fenced in ((True, False) if a.publish_unknown
                     else (a.sys_fenced_after,)):
        for b_fenced in ((True, False) if b.publish_unknown
                         else (b.sys_fenced_after,)):
            outcomes.add(cross_device_verdict(
                _to_device_endpoint(a, a_fenced),
                _to_device_endpoint(b, b_fenced)))
    if len(outcomes) > 1:
        return UNKNOWN, None, "publication depends on a conditional " \
                              "system-scope fence"
    verdict = outcomes.pop()
    if verdict is None:
        if not (a.kind != _READ or b.kind != _READ):
            return SAFE, None, "read/read pairs never conflict"
        if a.kind == _ATOMIC and b.kind == _ATOMIC:
            return SAFE, None, "system atomics serialize at the " \
                               "home node"
        return SAFE, None, "writer publishes with a system-scope " \
                           "fence within the phase"
    if a.conditional or b.conditional:
        return UNKNOWN, None, "conflicting access is conditional " \
                              "(may not execute)"
    kind, category = verdict
    return RACY, (kind.name, category.name), ""


@dataclass
class MGByteFinding:
    """Classification of one absolute device byte (XGPU class)."""

    byte: int
    status: str
    kinds: Tuple[str, ...] = ()
    categories: Tuple[str, ...] = ()
    proofs: Tuple[str, ...] = ()
    reasons: Tuple[str, ...] = ()
    witness: Optional[Tuple[int, MGSite, MGSite]] = None  # (phase, a, b)


def classify_mg_byte(byte: int,
                     by_phase: Dict[int, _CellSites]) -> MGByteFinding:
    """Fold every same-phase cross-device pair of one byte."""
    status = SAFE
    kinds: Set[str] = set()
    categories: Set[str] = set()
    proofs: Set[str] = set()
    reasons: Set[str] = set()
    witness: Optional[Tuple[int, MGSite, MGSite]] = None

    def _wkey(w: Tuple[int, MGSite, MGSite]) -> Tuple[int, ...]:
        phase, a, b = w
        return (phase, a.device, b.device, a.tid, b.tid, a.stmt, b.stmt)

    for phase in sorted(by_phase):
        sites = by_phase[phase].sites
        devices = {s.device for s in sites}
        if len(devices) < 2:
            proofs.add("single-device sharer within the phase")
            continue
        for i, a in enumerate(sites):
            for b in sites[i + 1:]:
                st, info, detail = classify_site_pair(a, b)
                if st == RACY and info is not None:
                    kinds.add(info[0])
                    categories.add(info[1])
                    lo, hi = ((a, b) if a.device <= b.device else (b, a))
                    cand = (phase, lo, hi)
                    if status != RACY or witness is None \
                            or _wkey(cand) < _wkey(witness):
                        witness = cand
                    status = RACY
                elif st == UNKNOWN:
                    reasons.add(detail)
                    if status == SAFE:
                        status = UNKNOWN
                elif detail:
                    proofs.add(detail)
    return MGByteFinding(
        byte=byte, status=status, kinds=tuple(sorted(kinds)),
        categories=tuple(sorted(categories)),
        proofs=tuple(sorted(proofs)), reasons=tuple(sorted(reasons)),
        witness=witness)


def classify_mg_program(program: MGProgram,
                        layout: Optional[Dict[str, int]] = None
                        ) -> Dict[int, MGByteFinding]:
    """All byte findings, keyed by absolute device byte."""
    if layout is None:
        layout = mg_device_layout(program)
    cells = collect_sites(program, layout)
    by_byte: Dict[int, Dict[int, _CellSites]] = {}
    for (phase, byte), cell in cells.items():
        by_byte.setdefault(byte, {})[phase] = cell
    return {byte: classify_mg_byte(byte, phases)
            for byte, phases in sorted(by_byte.items())}


# ---------------------------------------------------------------------------
# region verdicts + the canonical report
# ---------------------------------------------------------------------------


def _array_footprints(program: MGProgram
                      ) -> Dict[str, List[Tuple[int, int]]]:
    """Merged half-open element-byte intervals touched per array."""
    arrays = {a.name: a for a in program.arrays}
    raw: Dict[str, List[Tuple[int, int]]] = {}
    for phase in program.phases:
        for kernel in phase:
            for st in kernel.stmts:
                if st.get("op") == "fence":
                    continue
                arr = arrays[str(st["array"])]
                lo_e: Optional[int] = None
                hi_e: Optional[int] = None
                for gtid in range(kernel.nthreads):
                    for e in _stmt_elements(st, gtid, kernel.nthreads):
                        lo_e = e if lo_e is None else min(lo_e, e)
                        hi_e = e + 1 if hi_e is None else max(hi_e, e + 1)
                if lo_e is None or hi_e is None:
                    continue
                raw.setdefault(arr.name, []).append(
                    (lo_e * arr.itemsize, hi_e * arr.itemsize))
    merged: Dict[str, List[Tuple[int, int]]] = {}
    for name, spans in raw.items():
        out: List[Tuple[int, int]] = []
        for lo, hi in sorted(spans):
            if out and lo <= out[-1][1]:
                out[-1] = (out[-1][0], max(out[-1][1], hi))
            else:
                out.append((lo, hi))
        merged[name] = out
    return merged


def _witness_record(witness: Tuple[int, MGSite, MGSite],
                    kinds: Sequence[str],
                    categories: Sequence[str],
                    byte: int) -> Dict[str, Any]:
    phase, a, b = witness
    return {
        "byte": byte,
        "phase": phase,
        "kinds": list(kinds),
        "categories": list(categories),
        "first_device": a.device,
        "second_device": b.device,
        "first_tid": a.tid,
        "second_tid": b.tid,
        "first_stmt": a.stmt,
        "second_stmt": b.stmt,
    }


def build_mg_report(program: MGProgram) -> Dict[str, Any]:
    """Full multi-device analysis report (plain JSON-safe dict)."""
    layout = mg_device_layout(program)
    findings = classify_mg_program(program, layout)
    regions: List[Dict[str, Any]] = []
    foot = _array_footprints(program)
    for a in program.arrays:
        base = layout[a.name]
        for lo, hi in foot.get(a.name, ()):
            status = SAFE
            kinds: Set[str] = set()
            categories: Set[str] = set()
            proofs: Set[str] = set()
            reasons: Set[str] = set()
            witness: Optional[Dict[str, Any]] = None
            if not a.shared:
                proofs.add("device-local placement: the page maps on "
                           "one device only (remote access faults)")
            for byte in range(base + lo, base + hi):
                f = findings.get(byte)
                if f is None:
                    continue
                if _RANK[f.status] > _RANK[status]:
                    status = f.status
                kinds.update(f.kinds)
                categories.update(f.categories)
                proofs.update(f.proofs)
                reasons.update(f.reasons)
                if f.status == RACY and f.witness is not None \
                        and witness is None:
                    witness = _witness_record(f.witness, sorted(f.kinds),
                                              sorted(f.categories), byte)
            record: Dict[str, Any] = {
                "array": a.name,
                "home": a.home,
                "shared": a.shared,
                "space": "GLOBAL",
                "lo": lo,
                "hi": hi,
                "device_lo": base + lo,
                "device_hi": base + hi,
                "status": status,
                "kinds": sorted(kinds),
                "categories": sorted(categories),
                "proofs": sorted(proofs),
                "reasons": sorted(reasons),
            }
            if witness is not None:
                record["witness"] = witness
            regions.append(record)
    counts = {RACY: 0, UNKNOWN: 0, SAFE: 0}
    for r in regions:
        counts[str(r["status"])] += 1
    return {
        "schema": MG_REPORT_SCHEMA,
        "kind": "multidevice",
        "program": program.digest(),
        "note": program.note,
        "gpus": program.gpus,
        "layout": {k: v for k, v in sorted(layout.items())},
        "placement": placement_summary(program, layout),
        "verdicts": {
            "racy": counts[RACY],
            "unknown": counts[UNKNOWN],
            "race_free": counts[SAFE],
        },
        "regions": regions,
    }


def analyze_mg_program(program: MGProgram) -> Dict[str, Any]:
    """Lower, classify, and report — the multi-device entry point."""
    return build_mg_report(program)


# ---------------------------------------------------------------------------
# differential validation against the MultiDeviceOracle
# ---------------------------------------------------------------------------


def _oracle_keys(races: Iterable[Any]) -> Set[Tuple[int, int, str, str]]:
    return {(int(r.phase), int(r.byte), r.kind.name, r.category.name)
            for r in races}


def mg_cross_check(report: Dict[str, Any],
                   races: Iterable[Any]) -> Dict[str, Any]:
    """Grade one multi-device report against the oracle's cross races.

    Same contract as the single-device validator: a ``racy`` region
    must carry a witness the oracle confirms at
    ``(phase, byte, kind, category)`` precision, a ``race-free`` region
    must be oracle-clean across its absolute byte range, and
    ``unknown`` never contradicts.
    """
    oracle = _oracle_keys(races)
    oracle_bytes = {(byte, phase) for phase, byte, _, _ in oracle}
    confirmed = clean = unknown = 0
    contradictions: List[Dict[str, Any]] = []
    for region in report["regions"]:
        status = region["status"]
        if status == RACY:
            witness = region.get("witness")
            if witness is None:
                contradictions.append({
                    "type": "missing-witness",
                    "array": region["array"],
                    "lo": region["lo"],
                    "hi": region["hi"],
                })
                continue
            keys = {(int(witness["phase"]), int(witness["byte"]), k, c)
                    for k in witness["kinds"]
                    for c in witness["categories"]}
            if keys & oracle:
                confirmed += 1
            else:
                contradictions.append({
                    "type": "unconfirmed-witness",
                    "array": region["array"],
                    "byte": witness["byte"],
                    "phase": witness["phase"],
                    "kinds": list(witness["kinds"]),
                    "categories": list(witness["categories"]),
                })
        elif status == SAFE:
            hits = sorted(
                byte for (byte, _phase) in oracle_bytes
                if region["device_lo"] <= byte < region["device_hi"])
            if hits:
                contradictions.append({
                    "type": "oracle-race-in-safe-region",
                    "array": region["array"],
                    "bytes": hits[:8],
                })
            else:
                clean += 1
        else:
            unknown += 1
    return {
        "schema": MG_REPORT_SCHEMA,
        "program": report["program"],
        "note": report.get("note", ""),
        "racy_confirmed": confirmed,
        "race_free_clean": clean,
        "unknown": unknown,
        "contradictions": contradictions,
        "ok": not contradictions,
    }


def mg_validation_table(results: Sequence[Dict[str, Any]]
                        ) -> Dict[str, Any]:
    """Aggregate cross-check results (the EXPERIMENTS.md XGPU table)."""
    total = {"programs": len(results), "racy_confirmed": 0,
             "race_free_clean": 0, "unknown": 0,
             "static_fp": 0, "static_fn": 0, "contradictions": 0}
    for res in results:
        total["racy_confirmed"] += int(res["racy_confirmed"])
        total["race_free_clean"] += int(res["race_free_clean"])
        total["unknown"] += int(res["unknown"])
        for c in res["contradictions"]:
            total["contradictions"] += 1
            if c["type"] in ("unconfirmed-witness", "missing-witness"):
                total["static_fp"] += 1
            else:
                total["static_fn"] += 1
    return total


__all__ = [
    "MG_REPORT_SCHEMA",
    "MGArray",
    "MGByteFinding",
    "MGKernel",
    "MGProgram",
    "MGSite",
    "analyze_mg_program",
    "build_mg_report",
    "classify_mg_byte",
    "classify_mg_program",
    "classify_site_pair",
    "collect_sites",
    "mg_cross_check",
    "mg_device_layout",
    "mg_fuzz_model",
    "mg_validation_table",
    "placement_summary",
    "scope_name",
]
