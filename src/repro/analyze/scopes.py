"""The fence-scope lattice: none < block < device < system.

Synchronization scope is what separates precise race verdicts from
barrier-only false positives (*Towards an Accurate GPU Data Race
Detector*, PAPERS.md): a ``__threadfence_block`` publishes stores to the
issuing block, ``__threadfence`` to the issuing device, and only
``__threadfence_system`` to peer devices over shared or unified pages.
The static analyzer threads this four-point chain through every fence
query instead of treating "fence" as one flavor:

- the single-device pair rules (:mod:`repro.analyze.passes`) ask for
  publication at **device** scope — any IR fence qualifies, so
  single-device verdicts are unchanged by scope threading;
- the cross-device classifier (:mod:`repro.analyze.multidevice`) asks
  for **system** scope, mirroring
  :func:`repro.core.groundtruth.cross_device_verdict`: a device-scope
  fence after a write publishes nothing to peers.

The chain is a total order, so ``join``/``meet`` are ``max``/``min`` and
*monotonicity* holds by construction: strengthening a fence's scope can
only turn "unpublished" into "published", never the reverse — which is
exactly the property the scope lattice property suite asserts end to
end against the oracle.
"""

from __future__ import annotations

from typing import Optional

#: the four lattice points, bottom to top
SCOPE_NONE = 0    #: no fence at all
SCOPE_BLOCK = 1   #: ``__threadfence_block``
SCOPE_DEVICE = 2  #: ``__threadfence``
SCOPE_SYSTEM = 3  #: ``__threadfence_system``

SCOPE_NAMES = {
    SCOPE_NONE: "none",
    SCOPE_BLOCK: "block",
    SCOPE_DEVICE: "device",
    SCOPE_SYSTEM: "system",
}

_ALL_SCOPES = (SCOPE_NONE, SCOPE_BLOCK, SCOPE_DEVICE, SCOPE_SYSTEM)

#: wire encoding used by the fuzz IRs and the event stream: fence
#: statements carry ``scope`` 0 (device) or 1 (system); absent means
#: device scope (a plain ``__threadfence``)
_WIRE_SCOPES = {0: SCOPE_DEVICE, 1: SCOPE_SYSTEM}


def fence_scope(wire: Optional[int]) -> int:
    """Lattice point of one IR/event fence-scope field.

    The runtime encodes ``__threadfence`` as scope 0 and
    ``__threadfence_system`` as scope 1 (see
    :meth:`repro.core.groundtruth.MultiDeviceOracle.on_fence`); a fence
    statement without a scope field is a plain device fence.
    """
    if wire is None:
        return SCOPE_DEVICE
    try:
        return _WIRE_SCOPES[int(wire)]
    except (KeyError, ValueError):
        raise ValueError(f"unknown fence scope encoding {wire!r}") from None


def scope_name(scope: int) -> str:
    """Human-readable lattice point name (report/witness text)."""
    try:
        return SCOPE_NAMES[scope]
    except KeyError:
        raise ValueError(f"not a lattice point: {scope!r}") from None


def publishes(scope: int, required: int) -> bool:
    """Whether a fence of ``scope`` publishes at ``required`` scope.

    The chain is total, so publication is plain dominance: a system
    fence publishes at every scope, a device fence at device scope and
    below, and so on. This single predicate is every pass's fence query.
    """
    return scope >= required


def scope_join(a: int, b: int) -> int:
    """Least upper bound (the stronger scope)."""
    return max(a, b)


def scope_meet(a: int, b: int) -> int:
    """Greatest lower bound (the weaker scope)."""
    return min(a, b)


def all_scopes() -> tuple:
    """The lattice points bottom-to-top (property-test enumeration)."""
    return _ALL_SCOPES


__all__ = [
    "SCOPE_BLOCK",
    "SCOPE_DEVICE",
    "SCOPE_NAMES",
    "SCOPE_NONE",
    "SCOPE_SYSTEM",
    "all_scopes",
    "fence_scope",
    "publishes",
    "scope_join",
    "scope_meet",
    "scope_name",
]
