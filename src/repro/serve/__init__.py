"""repro.serve — async detection-as-a-service over HART traces.

An asyncio HTTP service (stdlib only) that accepts recorded trace
uploads, content-digests them, shards replay jobs across a persistent
worker pool (reusing the campaign engine's spawn workers, timeout,
retry, and crash isolation), replays each trace through any registered
detector backend, and serves canonical-JSON verdicts from a
digest-keyed cache — repeat submissions never replay.

Entry points: ``repro serve`` boots the service, ``repro submit`` is
the client CLI, :class:`ServerThread` embeds a live endpoint in-process
(tests, benchmarks). See docs/SERVICE.md.
"""

from repro.serve.app import ServerThread, Service, ServiceConfig
from repro.serve.backends import (
    BACKENDS,
    Backend,
    BackendError,
    backend_names,
    canonical_json,
    get_backend,
    trace_digest,
    verdict_bytes,
    verdict_key,
    verdict_record,
)
from repro.serve.client import JobFailed, ServiceClient, ServiceError
from repro.serve.scheduler import (
    Backpressure,
    RateLimited,
    Scheduler,
    ShardedWorkerPool,
    TokenBucket,
)
from repro.serve.traces import TraceStore
from repro.serve.verdicts import VerdictCache
from repro.serve.worker import ReplayJob, execute_replay_record

__all__ = [
    "BACKENDS",
    "Backend",
    "BackendError",
    "Backpressure",
    "JobFailed",
    "RateLimited",
    "ReplayJob",
    "Scheduler",
    "ServerThread",
    "Service",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ShardedWorkerPool",
    "TokenBucket",
    "TraceStore",
    "VerdictCache",
    "backend_names",
    "canonical_json",
    "execute_replay_record",
    "get_backend",
    "trace_digest",
    "verdict_bytes",
    "verdict_key",
    "verdict_record",
]
