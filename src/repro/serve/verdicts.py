"""Digest-keyed verdict cache over the campaign result store.

Verdicts are cached in a :class:`repro.campaign.store.ResultStore` under
the replay job's content key — SHA-256 over ``(trace digest, backend,
config digest, program)``. Repeat submissions of a trace the service has
already judged are served straight from disk, no worker replay; the
store's corruption semantics carry over (a bad entry is evicted and the
job recomputes).

``get_by_key`` serves ``GET /verdicts/{digest}`` lookups where only the
key is known; it applies the same validation as the keyed read.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.campaign.store import STORE_SCHEMA, ResultStore
from repro.serve.backends import verdict_bytes
from repro.serve.worker import REPLAY_JOB_SCHEMA, ReplayJob


class VerdictCache:
    """Content-addressed verdict records keyed by replay-job hash."""

    def __init__(self, root: os.PathLike | str) -> None:
        self.store = ResultStore(root)

    # ------------------------------------------------------------------

    def get(self, job: ReplayJob) -> Optional[Dict[str, Any]]:
        return self._get_key(job.key())

    def put(self, job: ReplayJob, verdict: Dict[str, Any],
            elapsed: Optional[float] = None) -> None:
        self.store.put(_Keyed(job), verdict, elapsed=elapsed)

    def get_by_key(self, key: str) -> Optional[Dict[str, Any]]:
        """Lookup by bare verdict key (the public /verdicts/{digest})."""
        return self._get_key(key)

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The canonical wire bytes of a cached verdict, or None."""
        record = self._get_key(key)
        return verdict_bytes(record) if record is not None else None

    # ------------------------------------------------------------------

    def _get_key(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.store.path_for(key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
            if entry["key"] != key or entry["schema"] != STORE_SCHEMA \
                    or entry["job"]["schema"] != REPLAY_JOB_SCHEMA \
                    or entry["job"].get("kind") != "replay":
                raise ValueError("stale or mismatched verdict entry")
            result = entry["result"]
            if not isinstance(result, dict):
                raise ValueError("malformed verdict record")
        except FileNotFoundError:
            self.store.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            self.store.evictions += 1
            self.store.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.store.hits += 1
        return result

    def stats(self) -> Dict[str, int]:
        return self.store.stats()

    def __len__(self) -> int:
        return len(self.store)


class _Keyed:
    """Adapter giving ResultStore.put the Job interface for a ReplayJob."""

    def __init__(self, job: ReplayJob) -> None:
        self._job = job

    def key(self) -> str:
        return self._job.key()

    def record(self) -> Dict[str, Any]:
        return self._job.record()
