"""Job scheduling: sharded worker pool, backpressure, rate limiting.

Three layers, mirroring the campaign engine's fault semantics but shaped
for a long-running service instead of a batch run:

- :class:`ShardedWorkerPool` keeps N persistent ``spawn`` worker
  processes alive (reusing :mod:`repro.campaign.pool`'s worker loop) and
  streams jobs to them as they arrive. Jobs shard by trace digest, so
  all verdicts for one trace land on one worker — deterministic
  affinity, no two workers ever replaying the same upload concurrently.
  The supervisor thread enforces per-job wall-clock timeouts (kill +
  respawn), bounded retries, and crash isolation: a worker that dies
  mid-job fails that job, never the service. ``workers=0`` degrades to
  an in-process thread executor with the same retry semantics (no
  timeout kill or crash isolation without a process boundary).

- :class:`TokenBucket` is the per-client rate limiter: ``rate`` tokens
  per second, ``burst`` capacity; an empty bucket yields 429 with a
  Retry-After telling the client when one token will be back.

- :class:`Scheduler` is the asyncio-facing layer the HTTP app talks to:
  it checks the verdict cache first (cache hits never touch the pool),
  coalesces concurrent identical submissions onto one in-flight replay,
  applies backpressure past a high-water mark of queued work (429, the
  job is *rejected*, never silently dropped), and tracks every accepted
  job's lifecycle for ``GET /jobs/{id}``.
"""

from __future__ import annotations

import asyncio
import itertools
import queue as stdqueue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.jobs import execute_record
from repro.campaign.pool import (
    CRASHED,
    ERROR,
    OK,
    TIMEOUT,
    JobOutcome,
    SpawnWorker,
)
from repro.common.errors import ReproError
from repro.serve.verdicts import VerdictCache
from repro.serve.worker import ReplayJob

#: job lifecycle states (terminal states match pool outcome statuses)
QUEUED, RUNNING, DONE = "queued", "running", "done"


class Backpressure(ReproError):
    """The service is at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class RateLimited(Backpressure):
    """This client exceeded its token budget."""


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = time.monotonic()

    def try_acquire(self, now: Optional[float] = None) -> float:
        """Take one token. Returns 0.0 on success, else seconds to wait."""
        now = time.monotonic() if now is None else now
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        if self.rate <= 0:
            return 60.0
        return (1.0 - self._tokens) / self.rate


# ---------------------------------------------------------------------------
# worker pool
# ---------------------------------------------------------------------------

@dataclass
class _Task:
    key: str
    record: Dict[str, Any]
    shard: int
    future: Future
    attempts: int = 0
    last_elapsed: float = 0.0


class ShardedWorkerPool:
    """Persistent spawn workers with shard-by-digest dispatch."""

    def __init__(self, workers: int = 2,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 start_method: str = "spawn") -> None:
        self.workers = max(0, int(workers))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.start_method = start_method
        self._inbox: "stdqueue.Queue[Optional[_Task]]" = stdqueue.Queue()
        self._depth = 0
        self._depth_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self.stats = {"completed": 0, "errors": 0, "timeouts": 0,
                      "crashes": 0, "retries": 0, "respawns": 0}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self.workers == 0:
            self._executor = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="serve-inline")
            return
        self._thread = threading.Thread(target=self._supervise,
                                        name="serve-pool", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._thread is not None:
            self._stop.set()
            self._inbox.put(None)
            self._thread.join(timeout=30)
            self._thread = None

    # -- submission ----------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._depth_lock:
            return self._depth

    def submit(self, key: str, record: Dict[str, Any],
               shard_hint: str) -> "Future[JobOutcome]":
        """Enqueue one job record; the future resolves to its outcome."""
        if self._stop.is_set():
            raise RuntimeError("worker pool is stopped")
        future: "Future[JobOutcome]" = Future()
        with self._depth_lock:
            self._depth += 1
        future.add_done_callback(self._on_done)
        if self._executor is not None:
            self._executor.submit(self._run_inline, key, record, future)
        else:
            shard = int(shard_hint[:16] or "0", 16) if shard_hint else 0
            self._inbox.put(_Task(key, record, shard, future))
        return future

    def _on_done(self, future: "Future[JobOutcome]") -> None:
        with self._depth_lock:
            self._depth -= 1
        try:
            outcome = future.result()
        except Exception:
            self.stats["errors"] += 1
            return
        if outcome.ok:
            self.stats["completed"] += 1
        elif outcome.status == TIMEOUT:
            self.stats["timeouts"] += 1
        elif outcome.status == CRASHED:
            self.stats["crashes"] += 1
        else:
            self.stats["errors"] += 1

    # -- inline mode (workers == 0) ------------------------------------

    def _run_inline(self, key: str, record: Dict[str, Any],
                    future: "Future[JobOutcome]") -> None:
        attempts = 0
        while True:
            attempts += 1
            start = time.perf_counter()
            try:
                result = execute_record(record)
                future.set_result(JobOutcome(
                    key, OK, result, None, attempts,
                    time.perf_counter() - start))
                return
            except Exception as exc:  # noqa: BLE001 - crash isolation
                if attempts <= self.retries:
                    self.stats["retries"] += 1
                    continue
                future.set_result(JobOutcome(
                    key, ERROR, None, f"{type(exc).__name__}: {exc}",
                    attempts, time.perf_counter() - start))
                return

    # -- process mode supervisor ---------------------------------------

    def _supervise(self) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context(self.start_method)
        result_q = ctx.Queue()
        pool: List[SpawnWorker] = [SpawnWorker(ctx, wid, result_q)
                               for wid in range(self.workers)]
        backlog: List[List[_Task]] = [[] for _ in range(self.workers)]
        active: Dict[int, _Task] = {}

        def settle(wid: int, task: _Task, status: str, record, error,
                   elapsed: float) -> None:
            task.last_elapsed = elapsed
            if status != OK and task.attempts <= self.retries:
                self.stats["retries"] += 1
                backlog[task.shard % self.workers].append(task)
                return
            task.future.set_result(JobOutcome(
                task.key, status, record, error, task.attempts, elapsed))

        def respawn(i: int) -> None:
            dead = pool[i]
            dead.kill()
            replacement = SpawnWorker(ctx, dead.worker_id, result_q)
            replacement.busy_seconds = dead.busy_seconds
            pool[i] = replacement
            self.stats["respawns"] += 1

        try:
            while not self._stop.is_set():
                # 1. pull new submissions into their shard's backlog
                try:
                    item = self._inbox.get(timeout=0.02)
                    while item is not None:
                        backlog[item.shard % self.workers].append(item)
                        item = self._inbox.get_nowait()
                except stdqueue.Empty:
                    pass

                # 2. dispatch to idle workers
                for i, worker in enumerate(pool):
                    if worker.current is None and backlog[i]:
                        task = backlog[i].pop(0)
                        task.attempts += 1
                        active[i] = task
                        worker.dispatch(task.key, task.record, self.timeout)

                # 3. drain results
                try:
                    wid, key, status, record, error, elapsed = \
                        result_q.get(timeout=0.02)
                except stdqueue.Empty:
                    pass
                else:
                    idx = next((i for i, w in enumerate(pool)
                                if w.worker_id == wid), None)
                    if idx is not None and pool[idx].current == key:
                        task = active.pop(idx)
                        pool[idx].finish()
                        settle(wid, task, status, record, error, elapsed)
                    continue  # drain before health checks

                # 4. health: hung or dead workers
                for i, worker in enumerate(pool):
                    if worker.current is None:
                        continue
                    task = active.get(i)
                    if task is None:  # pragma: no cover - defensive
                        continue
                    if worker.timed_out():
                        worker.finish()
                        respawn(i)
                        active.pop(i, None)
                        settle(i, task, TIMEOUT, None,
                               f"timed out after {self.timeout:.1f}s",
                               self.timeout or 0.0)
                    elif not worker.process.is_alive():
                        exitcode = worker.process.exitcode
                        worker.finish()
                        respawn(i)
                        active.pop(i, None)
                        settle(i, task, CRASHED, None,
                               f"worker process died (exit code {exitcode})",
                               0.0)
        finally:
            for worker in pool:
                worker.stop()
            # fail anything still owed an answer: futures must resolve
            leftovers = list(active.values())
            for shard_tasks in backlog:
                leftovers.extend(shard_tasks)
            while True:
                try:
                    item = self._inbox.get_nowait()
                except stdqueue.Empty:
                    break
                if item is not None:
                    leftovers.append(item)
            for task in leftovers:
                if not task.future.done():
                    task.future.set_result(JobOutcome(
                        task.key, ERROR, None, "service shutting down",
                        task.attempts, 0.0))
            result_q.close()
            result_q.join_thread()


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------

@dataclass
class JobState:
    """Lifecycle of one accepted submission."""

    id: str
    key: str                       # verdict cache key
    trace: str
    backend: str
    status: str = QUEUED           # queued|running|done|error|timeout|crashed
    cached: bool = False
    coalesced: bool = False
    attempts: int = 0
    error: Optional[str] = None
    elapsed: float = 0.0
    created: float = field(default_factory=time.time)
    finished: Optional[float] = None

    def describe(self) -> Dict[str, Any]:
        out = {
            "job": self.id,
            "verdict": self.key,
            "trace": self.trace,
            "backend": self.backend,
            "status": self.status,
            "cached": self.cached,
            "coalesced": self.coalesced,
        }
        if self.status not in (QUEUED, RUNNING):
            out["attempts"] = self.attempts
            out["elapsed"] = round(self.elapsed, 6)
        if self.error is not None:
            out["error"] = self.error
        return out


class Scheduler:
    """Async facade: cache, coalescing, backpressure, job tracking."""

    #: retain at most this many finished job states
    MAX_JOBS = 4096

    def __init__(self, pool: ShardedWorkerPool, cache: VerdictCache,
                 high_water: int = 64,
                 rate: float = 50.0, burst: float = 100.0) -> None:
        self.pool = pool
        self.cache = cache
        self.high_water = max(1, int(high_water))
        self.rate = rate
        self.burst = burst
        self._jobs: Dict[str, JobState] = {}
        self._inflight: Dict[str, Tuple["Future", List[JobState]]] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._ids = itertools.count(1)
        self.metrics = {
            "submitted": 0, "cache_hits": 0, "coalesced": 0,
            "accepted": 0, "rejected_backpressure": 0,
            "rejected_rate_limit": 0, "replays": 0, "failed": 0,
        }

    # ------------------------------------------------------------------

    def _next_id(self) -> str:
        return f"j{next(self._ids):08d}"

    def job(self, job_id: str) -> JobState:
        return self._jobs[job_id]    # KeyError -> 404 upstream

    @property
    def inflight(self) -> int:
        return sum(len(states) for _, states in self._inflight.values())

    def _check_rate(self, client: str) -> None:
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(self.rate,
                                                         self.burst)
            if len(self._buckets) > 4096:  # bound per-client state
                self._buckets.pop(next(iter(self._buckets)))
        wait = bucket.try_acquire()
        if wait > 0.0:
            self.metrics["rejected_rate_limit"] += 1
            raise RateLimited(
                f"client {client!r} exceeded {self.rate:g} requests/s "
                f"(burst {self.burst:g})", retry_after=wait)

    def _prune_jobs(self) -> None:
        if len(self._jobs) <= self.MAX_JOBS:
            return
        finished = [j for j in self._jobs.values()
                    if j.status not in (QUEUED, RUNNING)]
        finished.sort(key=lambda j: j.finished or j.created)
        for state in finished[: len(self._jobs) - self.MAX_JOBS]:
            self._jobs.pop(state.id, None)

    # ------------------------------------------------------------------

    def submit(self, client: str, job: ReplayJob) -> JobState:
        """Accept, reject (429), or instantly serve one submission.

        Must run on the event-loop thread. Returns the new job's state:
        ``done`` + ``cached`` when the verdict cache already has it,
        ``queued`` otherwise (poll ``GET /jobs/{id}``).
        """
        self.metrics["submitted"] += 1
        self._check_rate(client)
        key = job.key()
        state = JobState(id=self._next_id(), key=key, trace=job.trace,
                         backend=job.backend)

        # cache hit: served without touching the pool
        if self.cache.get_by_key(key) is not None:
            self.metrics["cache_hits"] += 1
            state.status = DONE
            state.cached = True
            state.finished = time.time()
            self._jobs[state.id] = state
            self._prune_jobs()
            return state

        # coalesce onto an identical in-flight replay
        entry = self._inflight.get(key)
        if entry is not None:
            self.metrics["coalesced"] += 1
            state.status = RUNNING
            state.coalesced = True
            entry[1].append(state)
            self._jobs[state.id] = state
            return state

        # backpressure past the high-water mark
        depth = self.pool.queue_depth
        if depth >= self.high_water:
            self.metrics["rejected_backpressure"] += 1
            raise Backpressure(
                f"queue depth {depth} at high-water mark "
                f"{self.high_water}; retry later",
                retry_after=max(1.0, depth * 0.05))

        self.metrics["accepted"] += 1
        self.metrics["replays"] += 1
        future = self.pool.submit(key, job.record(), shard_hint=job.trace)
        self._inflight[key] = (future, [state])
        state.status = RUNNING
        self._jobs[state.id] = state
        loop = asyncio.get_running_loop()
        wrapped = asyncio.wrap_future(future, loop=loop)
        wrapped.add_done_callback(
            lambda fut, key=key, job=job: self._finish(key, job, fut))
        return state

    def _finish(self, key: str, job: ReplayJob, fut: "asyncio.Future"
                ) -> None:
        future, states = self._inflight.pop(key, (None, []))
        try:
            outcome: JobOutcome = fut.result()
        except Exception as exc:  # noqa: BLE001 - shutdown-time cancellation
            outcome = JobOutcome(key, ERROR, None,
                                 f"{type(exc).__name__}: {exc}", 0, 0.0)
        if outcome.ok and outcome.record is not None:
            self.cache.put(job, outcome.record, elapsed=outcome.elapsed)
        else:
            self.metrics["failed"] += 1
        now = time.time()
        for state in states:
            state.status = DONE if outcome.ok else outcome.status
            state.attempts = outcome.attempts
            state.error = outcome.error
            state.elapsed = outcome.elapsed
            state.finished = now
        self._prune_jobs()

    # ------------------------------------------------------------------

    async def drain(self, timeout: float = 60.0) -> None:
        """Wait for all in-flight work to settle (shutdown helper)."""
        deadline = time.monotonic() + timeout
        while self._inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
