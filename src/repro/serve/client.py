"""Blocking HTTP client for the detection service (stdlib only).

Drives the full upload → job → verdict lifecycle; ``repro submit`` and
the integration tests are thin wrappers over this. 429 responses are
retried with the server-supplied Retry-After (bounded), so a polite
client rides out backpressure instead of failing.
"""

from __future__ import annotations

import http.client
import json
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import urlsplit

from repro.common.errors import ReproError

#: terminal job states the waiter accepts
_TERMINAL = {"done", "error", "timeout", "crashed"}


class ServiceError(ReproError):
    """A non-2xx response (after any 429 retries were exhausted)."""

    def __init__(self, status: int, payload: Any) -> None:
        message = payload.get("message") if isinstance(payload, dict) \
            else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class JobFailed(ReproError):
    """A job reached a terminal non-``done`` state."""

    def __init__(self, state: Dict[str, Any]) -> None:
        super().__init__(f"job {state.get('job')} "
                         f"{state.get('status')}: {state.get('error')}")
        self.state = state


class ServiceClient:
    """One service endpoint; safe to use from multiple threads serially."""

    def __init__(self, base_url: str, client_id: Optional[str] = None,
                 timeout: float = 60.0, max_429_retries: int = 20) -> None:
        split = urlsplit(base_url)
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {split.scheme!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.client_id = client_id
        self.timeout = timeout
        self.max_429_retries = max_429_retries

    # -- wire ----------------------------------------------------------

    def request(self, method: str, path: str,
                body: Optional[bytes] = None,
                retry_429: bool = False) -> Tuple[int, Dict[str, str],
                                                  bytes]:
        """One request (optionally retrying 429s); returns the raw triple."""
        attempts = 0
        while True:
            status, headers, payload = self._request_once(method, path,
                                                          body)
            if status != 429 or not retry_429 \
                    or attempts >= self.max_429_retries:
                return status, headers, payload
            attempts += 1
            retry_after = min(2.0, float(headers.get("retry-after", 0.05))
                              or 0.05)
            time.sleep(retry_after)

    def _request_once(self, method: str, path: str,
                      body: Optional[bytes]) -> Tuple[int, Dict[str, str],
                                                      bytes]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        headers = {}
        if self.client_id:
            headers["X-Client"] = self.client_id
        try:
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            payload = resp.read()
            return (resp.status,
                    {k.lower(): v for k, v in resp.getheaders()}, payload)
        finally:
            conn.close()

    def _json(self, method: str, path: str, body: Optional[bytes] = None,
              retry_429: bool = False) -> Dict[str, Any]:
        status, _, payload = self.request(method, path, body,
                                          retry_429=retry_429)
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            decoded = {"message": payload.decode("utf-8", "replace")}
        if status >= 400:
            raise ServiceError(status, decoded)
        return decoded

    # -- API -----------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> Dict[str, float]:
        status, _, payload = self.request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, payload.decode("utf-8", "replace"))
        out: Dict[str, float] = {}
        for line in payload.decode("utf-8").splitlines():
            name, _, value = line.partition(" ")
            if name:
                out[name] = float(value)
        return out

    def backends(self) -> Dict[str, Any]:
        return self._json("GET", "/backends")

    def upload(self, trace: Union[bytes, str, Path]) -> Dict[str, Any]:
        """Upload trace bytes or a trace file; returns the receipt."""
        data = trace if isinstance(trace, bytes) \
            else Path(trace).read_bytes()
        return self._json("POST", "/traces", body=data)

    def submit(self, trace_digest: str, backend: str,
               program: Optional[Dict[str, Any]] = None,
               retry_429: bool = True) -> Dict[str, Any]:
        """Submit one job; returns its (possibly already-done) state."""
        job: Dict[str, Any] = {"trace": trace_digest, "backend": backend}
        if program is not None:
            job["program"] = program
        return self._json("POST", "/jobs",
                          body=json.dumps(job).encode("utf-8"),
                          retry_429=retry_429)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.02) -> Dict[str, Any]:
        """Poll until the job settles; raises JobFailed on failure."""
        deadline = time.monotonic() + timeout
        while True:
            state = self.job(job_id)
            if state.get("status") in _TERMINAL:
                if state["status"] != "done":
                    raise JobFailed(state)
                return state
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {state.get('status')} after "
                    f"{timeout:.0f}s")
            time.sleep(poll)

    def verdict_bytes(self, key: str) -> bytes:
        status, _, payload = self.request("GET", f"/verdicts/{key}")
        if status != 200:
            try:
                decoded = json.loads(payload.decode("utf-8"))
            except ValueError:
                decoded = payload.decode("utf-8", "replace")
            raise ServiceError(status, decoded)
        return payload

    def verdict(self, key: str) -> Dict[str, Any]:
        return json.loads(self.verdict_bytes(key).decode("utf-8"))

    # -- conveniences --------------------------------------------------

    def detect(self, trace: Union[bytes, str, Path], backend: str,
               program: Optional[Dict[str, Any]] = None,
               timeout: float = 300.0) -> Dict[str, Any]:
        """Upload + submit + wait + fetch: one call, one verdict record."""
        receipt = self.upload(trace)
        state = self.submit(receipt["digest"], backend, program=program)
        if state["status"] not in _TERMINAL:
            state = self.wait(state["job"], timeout=timeout)
        elif state["status"] != "done":
            raise JobFailed(state)
        return self.verdict(state["verdict"])
