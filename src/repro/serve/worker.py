"""Worker-side execution of service replay jobs.

A :class:`ReplayJob` is the service's unit of work: replay one stored
trace through one backend. Like every campaign job kind it is plain
data with a canonical ``record()`` and a content-hash ``key()`` — the
key is the verdict-cache key, so a job's identity *is* its verdict's
identity: ``(trace digest, backend, config digest, program)``. The
trace's on-disk path rides along in the record (workers are separate
``spawn`` processes and need to find the bytes) but never participates
in the hash — keys are host-independent.

``execute_replay_record`` is registered under job kind ``"replay"`` in
:data:`repro.campaign.jobs.JOB_EXECUTORS`, so service jobs run on the
exact same worker machinery (timeout, retry, crash isolation) as
campaign cells.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from repro.common.errors import TraceFormatError
from repro.serve.backends import (
    canonical_json,
    get_backend,
    verdict_key,
    verdict_record,
)

REPLAY_JOB_SCHEMA = 1


@dataclass(frozen=True)
class ReplayJob:
    """One (trace, backend[, program]) replay request."""

    trace: str                               # content digest of the trace
    backend: str                             # resolved backend name
    trace_path: str                          # where the worker reads bytes
    program: Optional[str] = None            # canonical JSON program record

    @classmethod
    def create(cls, trace_digest: str, backend_name: str,
               trace_path: os.PathLike | str,
               program_record: Optional[Dict[str, Any]] = None
               ) -> "ReplayJob":
        backend = get_backend(backend_name)   # raises BackendError early
        return cls(
            trace=trace_digest,
            backend=backend.name,
            trace_path=str(trace_path),
            program=(canonical_json(program_record)
                     if program_record is not None else None),
        )

    def program_record(self) -> Optional[Dict[str, Any]]:
        import json
        return json.loads(self.program) if self.program is not None else None

    def record(self) -> Dict[str, Any]:
        return {
            "kind": "replay",
            "schema": REPLAY_JOB_SCHEMA,
            "trace": self.trace,
            "backend": self.backend,
            "program": self.program,
            "trace_path": self.trace_path,
        }

    def key(self) -> str:
        """The verdict-cache key (trace_path intentionally excluded)."""
        return verdict_key(self.trace, get_backend(self.backend),
                           self.program_record())

    def describe(self) -> str:
        return f"{self.backend}@{self.trace[:12]}"


def execute_replay_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side entry point for job kind ``replay``.

    Reads the trace bytes, verifies they still hash to the requested
    digest (a corrupted store must surface as an error, not a wrong
    verdict), replays, and returns the canonical verdict record.
    """
    from repro.harness.trace import parse_trace
    from repro.serve.backends import trace_digest as digest_of

    if record.get("schema") != REPLAY_JOB_SCHEMA:
        raise ValueError(
            f"replay job schema {record.get('schema')!r} != "
            f"{REPLAY_JOB_SCHEMA}")
    backend = get_backend(record["backend"])
    path = Path(record["trace_path"])
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise TraceFormatError(f"trace file unreadable: {exc}") from exc
    events = parse_trace(data)
    actual = digest_of(events)
    if actual != record["trace"]:
        raise TraceFormatError(
            f"stored trace digest mismatch: expected {record['trace'][:12]} "
            f"got {actual[:12]} (corrupted store entry)")
    program = record.get("program")
    import json
    program_record = json.loads(program) if program is not None else None
    return verdict_record(record["trace"], backend, events, program_record)
