"""Content-addressed store for uploaded HART traces.

Uploads are parsed (rejecting corrupt/truncated files with
:class:`~repro.common.errors.TraceFormatError`), re-encoded to the
canonical binary form, and stored under their SHA-256 digest:
``root/<digest[:2]>/<digest>.hart`` plus a ``.meta.json`` sidecar with
the event count and byte size. Re-encoding makes the digest independent
of the upload format — JSON-lines and binary uploads of the same logical
trace share one entry — and guarantees every stored file is loadable.

Writes are atomic (temp + rename); a concurrent identical upload simply
wins the rename race with identical bytes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple

from repro.harness.trace import TraceEvent, dump_binary, parse_trace
from repro.serve.backends import sha256_hex


class TraceStore:
    """Digest-keyed trace files with parse-on-ingest validation."""

    def __init__(self, root: os.PathLike | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.hart"

    def _meta_path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.meta.json"

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def put_bytes(self, data: bytes) -> Dict[str, Any]:
        """Validate, canonicalize, and store one uploaded trace.

        Returns the upload receipt: digest, event count, stored bytes.
        Raises :class:`TraceFormatError` if the upload does not parse.
        """
        events = parse_trace(data)
        canonical = dump_binary(events)
        digest = sha256_hex(canonical)
        path = self.path_for(digest)
        meta = {"digest": digest, "events": len(events),
                "bytes": len(canonical)}
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            self._atomic_write(path, canonical)
            self._atomic_write(
                self._meta_path(digest),
                json.dumps(meta, sort_keys=True).encode("utf-8"))
        return meta

    def put_events(self, events: List[TraceEvent]) -> Dict[str, Any]:
        """Store an already-parsed trace (recording-side convenience)."""
        return self.put_bytes(dump_binary(events))

    def get(self, digest: str) -> List[TraceEvent]:
        """Load and parse one stored trace; KeyError if absent."""
        path = self.path_for(digest)
        if not path.exists():
            raise KeyError(digest)
        return parse_trace(path.read_bytes())

    def meta(self, digest: str) -> Dict[str, Any]:
        """The upload receipt for one stored trace; KeyError if absent."""
        meta_path = self._meta_path(digest)
        if meta_path.exists():
            try:
                loaded = json.loads(meta_path.read_text(encoding="utf-8"))
                if loaded.get("digest") == digest:
                    return loaded
            except (ValueError, OSError):
                pass
        path = self.path_for(digest)
        if not path.exists():
            raise KeyError(digest)
        data = path.read_bytes()
        return {"digest": digest, "events": len(parse_trace(data)),
                "bytes": len(data)}

    # ------------------------------------------------------------------

    def entries(self) -> Iterator[Tuple[str, Path]]:
        for sub in sorted(self.root.iterdir()) if self.root.exists() else []:
            if not sub.is_dir():
                continue
            for path in sorted(sub.glob("*.hart")):
                yield path.stem, path

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)
