"""Detector backends the service replays uploaded traces through.

Each :class:`Backend` names one differentially-validated way to turn a
recorded HART trace into a race verdict:

- ``replay`` backends feed the trace through the HAccRG detection
  structures (:func:`repro.harness.trace.replay`) — the exact structures
  a live :class:`~repro.core.detector.HAccRGDetector` drives from the
  EventBus, so replayed verdicts are bit-identical to live runs. The
  registry exposes the paper configuration with recorded Bloom lock
  signatures (``haccrg-bloom``), the same configuration with exact
  one-bit-per-lock signatures reconstructed from the trace's lock
  markers (``haccrg-full``), word-granularity and single-space variants,
  and the software-HAccRG algorithm (``swdetect`` — same detection
  state, software cost model; live-vs-replay parity is gated by the
  fuzz harness);
- the ``oracle`` backend runs the exact happens-before ground truth
  (:func:`repro.core.groundtruth.oracle_races`);
- the ``static`` backend runs the :mod:`repro.analyze` analyzer over a
  program spec accompanying the trace and cross-checks its verdicts
  against the oracle.

Verdicts are canonical JSON (sorted keys, minimal separators): the same
``(trace, backend, program)`` triple always produces byte-identical
output, whether computed by the service, a pool worker, or the
``repro trace replay --backend`` CLI. That byte-equality is what lets
the verdict cache be keyed by content digest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.common.config import (
    DetectionMode,
    DetectorBackend,
    HAccRGConfig,
)
from repro.common.errors import ReproError

#: bump whenever verdict payloads change shape (invalidates cached verdicts)
VERDICT_SCHEMA = 1


class BackendError(ReproError):
    """A job names an unknown backend or misses a required input."""


def canonical_json(obj: Any) -> str:
    """The repo-wide canonical JSON form: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def trace_digest(events: Sequence) -> str:
    """Content digest of a trace: SHA-256 of its canonical binary form.

    Digesting the re-encoded binary (not the uploaded bytes) makes the
    digest format-independent: the same logical trace uploaded as
    JSON-lines or binary lands on one cache entry.
    """
    from repro.harness.trace import dump_binary
    return sha256_hex(dump_binary(events))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def _config_record(cfg: HAccRGConfig) -> Dict[str, Any]:
    import dataclasses
    import enum
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(cfg):
        if f.name == "fast_path":
            # execution strategy, not detector semantics: verdicts are
            # bit-identical either way, so the digest must not depend on it
            continue
        value = getattr(cfg, f.name)
        out[f.name] = value.name if isinstance(value, enum.Enum) else value
    return out


@dataclass(frozen=True)
class Backend:
    """One named detector configuration the service can run."""

    name: str
    kind: str                 # "replay" | "oracle" | "static"
    description: str
    config: Optional[HAccRGConfig] = None
    perfect_sigs: bool = False

    def config_record(self) -> Optional[Dict[str, Any]]:
        """JSON-safe detector configuration (enums by name), or None."""
        if self.config is None:
            return None
        rec = _config_record(self.config)
        rec["perfect_sigs"] = self.perfect_sigs
        return rec

    def config_digest(self) -> str:
        """Digest of everything that determines this backend's verdicts."""
        payload = canonical_json({
            "schema": VERDICT_SCHEMA,
            "kind": self.kind,
            "config": self.config_record(),
        })
        return sha256_hex(payload.encode("utf-8"))

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "config": self.config_record(),
            "config_digest": self.config_digest(),
            "needs_program": self.kind == "static",
        }


_PAPER = HAccRGConfig(mode=DetectionMode.FULL)
_WORD = HAccRGConfig(mode=DetectionMode.FULL, shared_granularity=4,
                     global_granularity=4)

BACKENDS: Dict[str, Backend] = {b.name: b for b in (
    Backend("haccrg-bloom", "replay",
            "paper HAccRG: FULL mode, 16B/4B granularity, recorded Bloom "
            "lock signatures", _PAPER),
    Backend("haccrg-full", "replay",
            "paper HAccRG with exact one-bit-per-lock signatures "
            "reconstructed from trace lock markers (Bloom aliasing "
            "removed)", _PAPER, perfect_sigs=True),
    Backend("haccrg-word", "replay",
            "HAccRG at word granularity (4B/4B) — the fuzz harness's "
            "hw-full-word configuration", _WORD),
    Backend("haccrg-shared", "replay",
            "shared-memory RDUs only, word granularity",
            _WORD.with_mode(DetectionMode.SHARED)),
    Backend("haccrg-global", "replay",
            "global-memory RDUs only, word granularity",
            _WORD.with_mode(DetectionMode.GLOBAL)),
    Backend("swdetect", "replay",
            "software HAccRG (§VI-B): same detection structures replayed "
            "under the software backend configuration",
            _WORD.with_backend(DetectorBackend.SOFTWARE)),
    Backend("oracle", "oracle",
            "exact byte-granularity happens-before ground truth"),
    Backend("static", "static",
            "repro.analyze static analyzer over an accompanying program "
            "spec, cross-checked against the oracle"),
)}

#: convenience aliases accepted anywhere a backend name is
ALIASES = {"haccrg": "haccrg-bloom"}


def backend_names() -> List[str]:
    return sorted(BACKENDS)


def get_backend(name: str) -> Backend:
    """Resolve a backend name or alias; raises :class:`BackendError`."""
    key = ALIASES.get(name, name)
    try:
        return BACKENDS[key]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r} (known: "
            f"{', '.join(backend_names())})") from None


# ---------------------------------------------------------------------------
# verdict computation
# ---------------------------------------------------------------------------

def _race_log_payload(log) -> Dict[str, Any]:
    from repro.harness.export import race_log_record
    return {
        "races": race_log_record(log),
        "distinct": len(log),
        "distinct_pairs": log.distinct_pairs(),
        "trips": log.total_trips(),
        "by_category": {c.name: n for c, n in log.by_category().items()},
        "by_kind": {k.name: n for k, n in log.by_kind().items()},
    }


def _oracle_payload(races) -> Dict[str, Any]:
    records = [
        {
            "space": r.space.name,
            "byte": int(r.byte),
            "kind": r.kind.name,
            "category": r.category.name,
            "first_tid": int(r.first_tid),
            "second_tid": int(r.second_tid),
            "first_block": int(r.first_block),
            "second_block": int(r.second_block),
            "stale_l1": bool(r.stale_l1),
        }
        for r in races
    ]
    records.sort(key=lambda d: (d["space"], d["byte"], d["kind"],
                                d["category"], d["first_tid"],
                                d["second_tid"]))
    return {
        "races": records,
        "count": len(records),
        "by_category": _count_by(records, "category"),
        "by_kind": _count_by(records, "kind"),
    }


def _count_by(records: List[Dict[str, Any]], field: str) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for r in records:
        out[r[field]] = out.get(r[field], 0) + 1
    return out


def _static_payload(events, program_record: Dict[str, Any]
                    ) -> Dict[str, Any]:
    from repro.analyze import analyze_program, cross_check
    from repro.core.groundtruth import oracle_races
    from repro.fuzz.program import FuzzProgram

    program = FuzzProgram.from_record(program_record)
    report = analyze_program(program)
    races = oracle_races(events)
    check = cross_check(report, races)
    return {
        "verdicts": report["verdicts"],
        "regions": report["regions"],
        "cross_check": {
            "racy_confirmed": check["racy_confirmed"],
            "race_free_clean": check["race_free_clean"],
            "unknown": check["unknown"],
            "contradictions": check["contradictions"],
        },
    }


def run_backend(backend: Backend, events: Sequence,
                program_record: Optional[Dict[str, Any]] = None
                ) -> Dict[str, Any]:
    """Produce one backend's verdict payload for a parsed trace."""
    if backend.kind == "replay":
        from repro.harness.trace import replay
        log = replay(events, backend.config,
                     perfect_sigs=backend.perfect_sigs)
        return _race_log_payload(log)
    if backend.kind == "oracle":
        from repro.core.groundtruth import oracle_races
        return _oracle_payload(oracle_races(events))
    if backend.kind == "static":
        if program_record is None:
            raise BackendError(
                "backend 'static' requires a program spec alongside the "
                "trace (job field 'program')")
        return _static_payload(events, program_record)
    raise BackendError(f"backend kind {backend.kind!r} not executable")


def verdict_record(digest: str, backend: Backend, events: Sequence,
                   program_record: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """The full canonical verdict for one (trace, backend, program)."""
    return {
        "schema": VERDICT_SCHEMA,
        "trace": digest,
        "backend": backend.name,
        "kind": backend.kind,
        "config": backend.config_record(),
        "config_digest": backend.config_digest(),
        "events": len(events),
        "result": run_backend(backend, events, program_record),
    }


def verdict_bytes(record: Dict[str, Any]) -> bytes:
    """The canonical wire form of a verdict (what digests are taken of)."""
    return canonical_json(record).encode("utf-8")


def verdict_key(digest: str, backend: Backend,
                program_record: Optional[Dict[str, Any]] = None) -> str:
    """Cache key: SHA-256 over (trace digest, backend, config digest).

    The program spec participates for static jobs — two different
    programs over one trace are distinct verdicts.
    """
    payload = canonical_json({
        "schema": VERDICT_SCHEMA,
        "trace": digest,
        "backend": backend.name,
        "config_digest": backend.config_digest(),
        "program": program_record,
    })
    return sha256_hex(payload.encode("utf-8"))
