"""The detection service: routes, wiring, and embedding helpers.

Endpoints (see docs/SERVICE.md for the full reference):

- ``POST /traces``       upload a HART trace (binary or JSON-lines body);
  returns its content digest. Corrupt uploads get a structured 400.
- ``POST /jobs``         submit ``{"trace": digest, "backend": name}``
  (plus ``"program"`` for the static backend); 200 with a done state on
  a verdict-cache hit, 202 queued otherwise, 429 + Retry-After under
  backpressure or rate limiting.
- ``GET /jobs/{id}``     poll a job's lifecycle state.
- ``GET /verdicts/{key}`` the canonical verdict bytes — byte-identical
  to ``repro trace replay --backend <name> --json`` on the same trace.
- ``GET /traces/{digest}`` upload receipt for a stored trace.
- ``GET /backends``      the detector-backend registry.
- ``GET /healthz``       liveness + worker/queue snapshot.
- ``GET /metrics``       plain-text counters (``name value`` lines).

The service owns a :class:`TraceStore`, a :class:`VerdictCache`, and a
:class:`Scheduler` over a :class:`ShardedWorkerPool`; all state lives
under one ``--store`` root, so restarting the service keeps every trace
and verdict it ever computed.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import TraceFormatError
from repro.serve.backends import (
    BackendError,
    backend_names,
    get_backend,
)
from repro.serve.httpd import (
    DEFAULT_MAX_BODY,
    HTTPServer,
    Request,
    Response,
    error_response,
    json_response,
)
from repro.serve.scheduler import (
    Backpressure,
    RateLimited,
    Scheduler,
    ShardedWorkerPool,
)
from repro.serve.traces import TraceStore
from repro.serve.verdicts import VerdictCache

SERVICE_NAME = "repro-serve"
SERVICE_VERSION = 1


@dataclass(frozen=True)
class ServiceConfig:
    """Everything `repro serve` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 8037
    store: str = ".serve-store"
    workers: int = 2
    timeout: Optional[float] = 120.0
    retries: int = 1
    high_water: int = 64
    rate: float = 50.0           # requests/s per client
    burst: float = 100.0
    max_body: int = DEFAULT_MAX_BODY


class Service:
    """One service instance: stores + scheduler + HTTP front end."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        root = Path(config.store)
        self.traces = TraceStore(root / "traces")
        self.cache = VerdictCache(root / "verdicts")
        self.pool = ShardedWorkerPool(
            workers=config.workers, timeout=config.timeout,
            retries=config.retries)
        self.scheduler = Scheduler(
            self.pool, self.cache, high_water=config.high_water,
            rate=config.rate, burst=config.burst)
        self.http = HTTPServer(self.handle, config.host, config.port,
                               max_body=config.max_body)
        self.started = time.time()
        self.metrics: Dict[str, int] = {"uploads": 0, "bad_uploads": 0,
                                        "requests": 0}

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        self.pool.start()
        return await self.http.start()

    async def stop(self) -> None:
        await self.http.stop()
        await self.scheduler.drain(timeout=10.0)
        self.pool.stop()

    # -- routing -------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        self.metrics["requests"] += 1
        method, path = request.method, request.path.rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]

        if method == "GET":
            if path == "/healthz":
                return self._healthz()
            if path == "/metrics":
                return self._metrics_text()
            if path == "/backends":
                return json_response(
                    {"backends": [get_backend(n).describe()
                                  for n in backend_names()]})
            if len(parts) == 2 and parts[0] == "jobs":
                return self._get_job(parts[1])
            if len(parts) == 2 and parts[0] == "verdicts":
                return self._get_verdict(parts[1])
            if len(parts) == 2 and parts[0] == "traces":
                return self._get_trace(parts[1])
            return error_response(404, "not-found",
                                  f"no route for GET {path}")
        if method == "POST":
            if path == "/traces":
                return self._post_trace(request)
            if path == "/jobs":
                return self._post_job(request)
            return error_response(404, "not-found",
                                  f"no route for POST {path}")
        return error_response(405, "method-not-allowed",
                              f"{method} is not supported")

    # -- handlers ------------------------------------------------------

    def _post_trace(self, request: Request) -> Response:
        if not request.body:
            return error_response(400, "empty-upload",
                                  "POST /traces expects the trace bytes "
                                  "as the request body")
        try:
            receipt = self.traces.put_bytes(request.body)
        except TraceFormatError as exc:
            self.metrics["bad_uploads"] += 1
            return error_response(400, "trace-format", str(exc))
        self.metrics["uploads"] += 1
        return json_response(receipt, status=201)

    def _post_job(self, request: Request) -> Response:
        from repro.serve.worker import ReplayJob

        payload = request.json()
        if not isinstance(payload, dict):
            return error_response(400, "bad-job",
                                  "POST /jobs expects a JSON object")
        digest = payload.get("trace")
        backend_name = payload.get("backend")
        program = payload.get("program")
        if not isinstance(digest, str) or not isinstance(backend_name, str):
            return error_response(
                400, "bad-job",
                "job must carry string fields 'trace' and 'backend'")
        if program is not None and not isinstance(program, dict):
            return error_response(400, "bad-job",
                                  "'program' must be an object when given")
        try:
            backend = get_backend(backend_name)
        except BackendError as exc:
            return error_response(400, "unknown-backend", str(exc))
        if digest not in self.traces:
            return error_response(
                404, "unknown-trace",
                f"trace {digest[:16]}... has not been uploaded")
        if backend.kind == "static" and program is None:
            return error_response(
                400, "program-required",
                "backend 'static' requires a 'program' spec in the job")

        job = ReplayJob.create(digest, backend.name,
                               self.traces.path_for(digest), program)
        client = request.headers.get("x-client", request.client or "?")
        try:
            state = self.scheduler.submit(client, job)
        except RateLimited as exc:
            return error_response(
                429, "rate-limited", str(exc),
                headers={"retry-after": f"{exc.retry_after:.3f}"})
        except Backpressure as exc:
            return error_response(
                429, "backpressure", str(exc),
                headers={"retry-after": f"{exc.retry_after:.3f}"})
        status = 200 if state.cached else 202
        return json_response(state.describe(), status=status)

    def _get_job(self, job_id: str) -> Response:
        try:
            state = self.scheduler.job(job_id)
        except KeyError:
            return error_response(404, "unknown-job",
                                  f"no job {job_id!r}")
        return json_response(state.describe())

    def _get_verdict(self, key: str) -> Response:
        body = self.cache.get_bytes(key)
        if body is None:
            return error_response(
                404, "unknown-verdict",
                f"no verdict {key[:16]}... (not computed, or evicted)")
        return Response(status=200, body=body)

    def _get_trace(self, digest: str) -> Response:
        try:
            meta = self.traces.meta(digest)
        except KeyError:
            return error_response(404, "unknown-trace",
                                  f"trace {digest[:16]}... is not stored")
        return json_response(meta)

    def _healthz(self) -> Response:
        return json_response({
            "status": "ok",
            "service": SERVICE_NAME,
            "version": SERVICE_VERSION,
            "workers": self.pool.workers,
            "queue_depth": self.pool.queue_depth,
            "high_water": self.scheduler.high_water,
            "uptime": round(time.time() - self.started, 3),
        })

    def _metrics_text(self) -> Response:
        counters: Dict[str, Any] = {}
        for name, value in self.metrics.items():
            counters[f"serve_{name}"] = value
        for name, value in self.scheduler.metrics.items():
            counters[f"jobs_{name}"] = value
        for name, value in self.pool.stats.items():
            counters[f"pool_{name}"] = value
        for name, value in self.cache.stats().items():
            counters[f"verdicts_{name}"] = value
        counters["queue_depth"] = self.pool.queue_depth
        counters["workers"] = self.pool.workers
        counters["traces_stored"] = len(self.traces)
        body = "".join(f"{name} {counters[name]}\n"
                       for name in sorted(counters))
        return Response(status=200, body=body.encode("utf-8"),
                        content_type="text/plain; charset=utf-8")


# ---------------------------------------------------------------------------
# embedding / running
# ---------------------------------------------------------------------------

async def run_service(config: ServiceConfig,
                      ready: Optional["asyncio.Event"] = None) -> None:
    """Run until cancelled (the `repro serve` main loop)."""
    service = Service(config)
    host, port = await service.start()
    print(f"{SERVICE_NAME}: listening on http://{host}:{port} "
          f"({config.workers} workers, store {config.store})")
    if ready is not None:
        ready.set()
    try:
        while True:
            await asyncio.sleep(3600)
    except asyncio.CancelledError:
        pass
    finally:
        await service.stop()


class ServerThread:
    """A service running in a dedicated thread + event loop.

    The embedding used by tests, `repro bench-perf`, and anything else
    that wants a live HTTP endpoint without owning an event loop::

        with ServerThread(ServiceConfig(port=0, workers=0)) as server:
            client = ServiceClient(server.url)
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.service: Optional[Service] = None
        self.host = config.host
        self.port = config.port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="serve-thread", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("service did not start within 30s")
        if self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error}")
        return self

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._thread = None
        self._loop = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self.service = Service(self.config)
            self.host, self.port = loop.run_until_complete(
                self.service.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to starter
            self._error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.service.stop())
            loop.close()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
