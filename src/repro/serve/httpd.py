"""Minimal asyncio HTTP/1.1 layer (stdlib only, no new dependencies).

Just enough protocol for the detection service: request-line + header
parsing, Content-Length bodies with a configurable cap, keep-alive,
canonical-JSON responses, and hard limits that turn malformed or
oversized input into 4xx responses instead of resource exhaustion.
Handlers are ``async (Request) -> Response`` callables; an exception
escaping a handler becomes a structured 500.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.serve.backends import canonical_json

#: header-block and default body caps
MAX_HEADER_BYTES = 64 * 1024
DEFAULT_MAX_BODY = 64 * 1024 * 1024

REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    client: str = ""

    def json(self):
        import json
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") \
                from exc


@dataclass
class Response:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


class BadRequest(Exception):
    """Raised by handlers/parsers for malformed requests (-> 400)."""


def json_response(obj, status: int = 200,
                  headers: Optional[Dict[str, str]] = None) -> Response:
    """Canonical-JSON response: deterministic bytes for identical data."""
    return Response(status=status,
                    body=canonical_json(obj).encode("utf-8"),
                    headers=dict(headers or {}))


def error_response(status: int, error: str, message: str,
                   headers: Optional[Dict[str, str]] = None) -> Response:
    """The service's structured error shape."""
    return json_response({"error": error, "message": message,
                          "status": status}, status=status, headers=headers)


Handler = Callable[[Request], Awaitable[Response]]


async def read_request(reader: asyncio.StreamReader, client: str,
                       max_body: int = DEFAULT_MAX_BODY
                       ) -> Optional[Request]:
    """Parse one request; None on clean EOF; BadRequest on bad syntax."""
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None        # connection closed between requests
        raise BadRequest("truncated request header") from None
    except asyncio.LimitOverrunError:
        raise BadRequest("request header too large") from None
    if len(header_block) > MAX_HEADER_BYTES:
        raise BadRequest("request header too large")

    lines = header_block.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    path = unquote(split.path) or "/"
    query = dict(parse_qsl(split.query))

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
            if length < 0:
                raise ValueError
        except ValueError:
            raise BadRequest("invalid Content-Length") from None
        if length > max_body:
            raise BadRequest(f"body of {length} bytes exceeds the "
                             f"{max_body}-byte limit")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise BadRequest("truncated request body") from None
    elif "chunked" in headers.get("transfer-encoding", "").lower():
        raise BadRequest("chunked transfer encoding is not supported")

    return Request(method=method, path=path, query=query, headers=headers,
                   body=body, client=client)


def serialize_response(resp: Response, keep_alive: bool) -> bytes:
    reason = REASONS.get(resp.status, "Unknown")
    headers = {
        "content-type": resp.content_type,
        "content-length": str(len(resp.body)),
        "connection": "keep-alive" if keep_alive else "close",
    }
    headers.update({k.lower(): v for k, v in resp.headers.items()})
    head = [f"HTTP/1.1 {resp.status} {reason}"]
    head.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + resp.body


class HTTPServer:
    """asyncio stream server feeding requests to one async handler."""

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0, max_body: int = DEFAULT_MAX_BODY) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self.max_body = max_body
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port,
            limit=MAX_HEADER_BYTES)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # keep-alive handlers still parked on a read: cancel them cleanly
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        self._connections.clear()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) else str(peer or "?")
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await read_request(reader, client,
                                                 self.max_body)
                except BadRequest as exc:
                    resp = error_response(400, "bad-request", str(exc))
                    writer.write(serialize_response(resp, keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                keep_alive = (
                    request.headers.get("connection", "keep-alive").lower()
                    != "close")
                try:
                    resp = await self.handler(request)
                except BadRequest as exc:
                    resp = error_response(400, "bad-request", str(exc))
                except Exception as exc:  # noqa: BLE001 - isolation per req
                    resp = error_response(
                        500, "internal-error",
                        f"{type(exc).__name__}: {exc}")
                writer.write(serialize_response(resp, keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
