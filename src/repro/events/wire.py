"""Record/replay for the event bus: a shard's output as a wire stream.

Epoch-sharded execution (docs/ENGINE.md, "Epochs and sharding") runs each
SM inside a worker process against a private :class:`~repro.events.bus.EventBus`
whose only observer is a :class:`WireRecorder`. The recorder turns every
emission into a small serializable *wire entry*; entries ship to the
coordinator with the shard's protocol messages, are merged across SMs in
``(cycle, sm_id, seq)`` order — exactly the order the inline heap loop
would have emitted them — and are replayed by :func:`replay_entries` into
the merge-side subscribers (the metrics collector plus any
``replay_safe`` observers).

Three details make the merge order *identical* to inline emission, not
just equivalent:

- every entry is keyed at the cycle its scheduling step *started* (an
  :class:`~repro.events.records.IdleAdvanced` is emitted after the jump,
  so the recorder keys it at ``sm.cycle - ev.cycles``);
- the per-SM ``seq`` counter is shared with the shard's coordinator
  round-trips, so entries interleave with globally-applied state changes
  in true program order;
- ``on_effect`` notifications become their own entries (barrier/fence
  always, access only when the combined effect is non-trivial — matching
  the bus's hot-path skip), replayed against the event entry immediately
  preceding them.

Replayed events are real record instances with ``None`` in the live-object
fields (``warp``, ``block``, ``thread``): subscribers declared
``replay_safe`` never read those by contract, and ``isinstance`` dispatch
(e.g. :meth:`MetricsCollector.on_effect`) keeps working.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.events.bus import Subscriber
from repro.events.effects import TimingEffect
from repro.events.records import (
    AccessIssued,
    BarrierReleased,
    BlockEnded,
    BlockStarted,
    ComputeIssued,
    FenceIssued,
    IdleAdvanced,
    LockIssued,
    UnlockIssued,
)

#: wire entry codes (first element of every entry payload)
W_COMPUTE = 0
W_ACCESS = 1
W_BARRIER = 2
W_FENCE = 3
W_LOCK = 4
W_UNLOCK = 5
W_IDLE = 6
W_BLOCK_START = 7
W_BLOCK_END = 8
W_EFFECT = 9

#: a recorded entry: (cycle, seq, payload) with payload = (code, *fields)
WireEntry = Tuple[int, int, tuple]
#: a merged entry: (cycle, sm_id, seq, payload)
MergedEntry = Tuple[int, int, int, tuple]


class WireRecorder(Subscriber):
    """Captures one shard SM's bus output as serializable wire entries.

    The recorder borrows the owning SM's cycle counter and unified ``seq``
    counter (shared with the shard protocol round-trips). ``enabled`` is
    cleared around initial block admits: the coordinator synthesizes those
    ``BlockStarted`` entries itself, in cross-SM dispatch order, because
    the inline simulator emits them round-robin *before* the run loop —
    an order a per-SM sorted merge cannot reproduce.
    """

    def __init__(self, sm: Any) -> None:
        self.sm = sm
        self.entries: List[WireEntry] = []
        self.enabled = True

    def drain(self) -> List[WireEntry]:
        """Return and clear the captured entries."""
        out = self.entries
        self.entries = []
        return out

    def _put(self, payload: tuple) -> None:
        sm = self.sm
        self.entries.append((sm.cycle, sm.next_seq(), payload))

    # ------------------------------------------------------------------

    def on_compute(self, ev: ComputeIssued) -> None:
        self._put((W_COMPUTE, ev.lanes, ev.instructions))

    def on_access(self, ev: AccessIssued) -> None:
        self._put((W_ACCESS, ev.access, ev.lane_l1_hit))
        return None

    def on_barrier(self, ev: BarrierReleased) -> None:
        self._put((W_BARRIER, ev.released_lanes, ev.block.block_id))
        return None

    def on_fence(self, ev: FenceIssued) -> None:
        self._put((W_FENCE, ev.lanes, ev.scope, ev.warp_id, ev.block_id))
        return None

    def on_lock(self, ev: LockIssued) -> None:
        self._put((W_LOCK, ev.attempts, ev.granted))

    def on_unlock(self, ev: UnlockIssued) -> None:
        self._put((W_UNLOCK, ev.lanes))

    def on_idle(self, ev: IdleAdvanced) -> None:
        # emitted after the jump; key at the cycle the step began so the
        # merged stream sorts in inline emission order
        sm = self.sm
        self.entries.append((sm.cycle - ev.cycles, sm.next_seq(),
                             (W_IDLE, ev.cycles)))

    def on_block_start(self, ev: BlockStarted) -> None:
        if self.enabled:
            self._put((W_BLOCK_START, ev.block.block_id))

    def on_block_end(self, ev: BlockEnded) -> None:
        self._put((W_BLOCK_END, ev.block.block_id))

    def on_effect(self, ev: Any, effect: TimingEffect) -> None:
        # the bus only sweeps access effects when they are non-trivial;
        # barrier/fence sweeps always run (even with a zero effect), and
        # the replay must reproduce both behaviours exactly
        self._put((W_EFFECT, effect.stall_cycles, effect.extra_instructions))


class BlockRef:
    """Stand-in for a live ThreadBlock in replayed block events."""

    __slots__ = ("block_id",)

    def __init__(self, block_id: int) -> None:
        self.block_id = block_id


def replay_entries(batch: Iterable[MergedEntry],
                   targets: Sequence[Subscriber]) -> None:
    """Replay merged wire entries into ``targets`` in the given order.

    ``batch`` must already be sorted by ``(cycle, sm_id, seq)`` (the merge
    side does a stable sort over each flush window). Effect entries apply
    to the event entry that directly precedes them — the shared ``seq``
    counter guarantees adjacency survives the sort.
    """
    last_ev: Any = None
    for cycle, sm_id, _seq, rec in batch:
        code = rec[0]
        if code == W_ACCESS:
            ev: Any = AccessIssued(access=rec[1], sm_id=sm_id, cycle=cycle,
                                   lane_l1_hit=rec[2])
            for t in targets:
                t.on_access(ev)
            last_ev = ev
        elif code == W_COMPUTE:
            ev = ComputeIssued(warp=None, sm_id=sm_id, cycle=cycle,
                               lanes=rec[1], instructions=rec[2])
            for t in targets:
                t.on_compute(ev)
            last_ev = ev
        elif code == W_IDLE:
            ev = IdleAdvanced(sm_id=sm_id, cycles=rec[1])
            for t in targets:
                t.on_idle(ev)
            last_ev = ev
        elif code == W_EFFECT:
            effect = TimingEffect(stall_cycles=rec[1],
                                  extra_instructions=rec[2])
            for t in targets:
                t.on_effect(last_ev, effect)
        elif code == W_BARRIER:
            ev = BarrierReleased(block=BlockRef(rec[2]), sm_id=sm_id,
                                 cycle=cycle, released_lanes=rec[1])
            for t in targets:
                t.on_barrier(ev)
            last_ev = ev
        elif code == W_FENCE:
            ev = FenceIssued(warp=None, sm_id=sm_id, cycle=cycle,
                             lanes=rec[1], scope=rec[2], warp_id=rec[3],
                             block_id=rec[4])
            for t in targets:
                t.on_fence(ev)
            last_ev = ev
        elif code == W_LOCK:
            ev = LockIssued(warp=None, sm_id=sm_id, cycle=cycle,
                            attempts=rec[1], granted=rec[2])
            for t in targets:
                t.on_lock(ev)
            last_ev = ev
        elif code == W_UNLOCK:
            ev = UnlockIssued(warp=None, sm_id=sm_id, cycle=cycle,
                              lanes=rec[1])
            for t in targets:
                t.on_unlock(ev)
            last_ev = ev
        elif code == W_BLOCK_START:
            ev = BlockStarted(block=BlockRef(rec[1]), sm_id=sm_id)
            for t in targets:
                t.on_block_start(ev)
            last_ev = ev
        elif code == W_BLOCK_END:
            ev = BlockEnded(block=BlockRef(rec[1]), sm_id=sm_id)
            for t in targets:
                t.on_block_end(ev)
            last_ev = ev


def replay_targets(bus: Any, metrics: Subscriber,
                   detector_sub: Optional[Subscriber]) -> List[Subscriber]:
    """The coordinator-bus subscribers fed from the merged wire stream.

    The detector subscriber is excluded — the coordinator invokes the
    detector explicitly during shard round-trips (global checks, lock
    signatures) and the shared half runs shard-side; feeding it replayed
    events as well would double-count. Everything else must be the metrics
    collector or declare ``replay_safe``; eligibility is checked before
    the sharded path is ever taken.
    """
    out: List[Subscriber] = []
    for sub in bus.subscribers:
        if sub is detector_sub:
            continue
        if sub is metrics or getattr(sub, "replay_safe", False):
            out.append(sub)
    return out
