"""Typed event records emitted by the execution core.

Each record is emitted exactly once, at the point in the decomposed SM
issue path where the corresponding architectural event is committed. The
records reference live simulator objects (warps, blocks, threads) rather
than copies — subscribers observe the run as it happens and must not
mutate what they are handed (detection is passive; only the returned
:class:`~repro.events.effects.TimingEffect` feeds back into timing).

``cycle`` is always the issuing SM's local cycle at emission time and
``sm_id`` the emitting SM, so subscribers never need to reach back into
the simulator to attribute an event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.common.types import WarpAccess


@dataclass(slots=True)
class KernelStarted:
    """A kernel launch is about to execute (allocate shadow state here)."""

    launch: Any
    device_mem: Any


@dataclass(slots=True)
class KernelEnded:
    """The kernel finished (implicit closing barrier)."""


@dataclass(slots=True)
class BlockStarted:
    """A thread block was dispatched onto an SM."""

    block: Any
    sm_id: int


@dataclass(slots=True)
class BlockEnded:
    """A thread block retired from its SM."""

    block: Any
    sm_id: int


@dataclass(slots=True)
class ComputeIssued:
    """A warp compute group executed (``instructions`` dynamic instrs)."""

    warp: Any
    sm_id: int
    cycle: int
    lanes: int
    instructions: int


@dataclass(slots=True)
class AccessIssued:
    """A warp memory instruction executed (shared/global load/store/atomic).

    ``lane_l1_hit`` is only populated for global accesses: per-lane flags
    marking lanes satisfied from the (non-coherent) L1, the input of the
    stale-read coherence check (paper §IV-B).
    """

    access: WarpAccess
    sm_id: int
    cycle: int
    lane_l1_hit: Optional[Sequence[bool]] = None


@dataclass(slots=True)
class BarrierReleased:
    """A block-wide barrier completed (shadow invalidation point)."""

    block: Any
    sm_id: int
    cycle: int
    released_lanes: int


#: fence scopes carried on :class:`FenceIssued` (CUDA ``__threadfence``
#: vs ``__threadfence_system``; device scope is the historical default)
FENCE_SCOPE_DEVICE = 0
FENCE_SCOPE_SYSTEM = 1


@dataclass(slots=True)
class FenceIssued:
    """A warp completed a memory-fence instruction.

    ``scope`` distinguishes device-scope from system-scope fences
    (``FENCE_SCOPE_*``); within one device they behave identically, so
    single-device consumers may ignore it. ``warp_id`` / ``block_id``
    carry the issuer identity so replayed events (where ``warp`` is
    ``None``) still attribute the fence — ``-1`` means unknown, which
    only pre-extension wire producers emit.
    """

    warp: Any
    sm_id: int
    cycle: int
    lanes: int
    scope: int = FENCE_SCOPE_DEVICE
    warp_id: int = -1
    block_id: int = -1


@dataclass(slots=True)
class LockIssued:
    """A warp lock-acquire group executed (``granted`` of ``attempts``)."""

    warp: Any
    sm_id: int
    cycle: int
    attempts: int
    granted: int


@dataclass(slots=True)
class UnlockIssued:
    """A warp lock-release group executed."""

    warp: Any
    sm_id: int
    cycle: int
    lanes: int


@dataclass(slots=True)
class LockAcquired:
    """One thread acquired the lock at ``addr`` (signature update point)."""

    thread: Any
    addr: int
    sm_id: int
    cycle: int


@dataclass(slots=True)
class LockReleased:
    """One thread released the lock at ``addr`` (signature update point)."""

    thread: Any
    addr: int
    sm_id: int
    cycle: int


@dataclass(slots=True)
class IdleAdvanced:
    """An SM had no ready warp and jumped ``cycles`` to the next wake-up."""

    sm_id: int
    cycles: int
