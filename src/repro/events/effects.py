"""Composable timing effects returned by event subscribers.

A subscriber that models work riding on an observed event (software
instrumentation, shadow fetches, barrier invalidation) returns a
:class:`TimingEffect`; the event bus combines the effects of every
subscriber in the chain into one, which the SM applies to the issuing
warp (or, for barriers, to the whole block's release).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimingEffect:
    """Extra cost an observer imposes on the observed event.

    ``stall_cycles`` delays the issuing warp (or, for barriers, the release
    of the whole block). ``extra_instructions`` inflates the dynamic
    instruction count (software instrumentation executes real instructions).
    """

    stall_cycles: int = 0
    extra_instructions: int = 0

    def combine(self, other: "TimingEffect | None") -> "TimingEffect":
        """Compose two effects: costs from independent observers add."""
        if other is None or other is NO_EFFECT:
            return self
        if self is NO_EFFECT:
            return other
        return TimingEffect(
            stall_cycles=self.stall_cycles + other.stall_cycles,
            extra_instructions=(self.extra_instructions
                                + other.extra_instructions),
        )

    def __add__(self, other: "TimingEffect") -> "TimingEffect":
        return self.combine(other)

    def __bool__(self) -> bool:
        return bool(self.stall_cycles or self.extra_instructions)


#: Singleton "free" effect; subscribers may also return ``None``.
NO_EFFECT = TimingEffect()
