"""Metrics collection as an event subscriber.

The execution core no longer counts anything itself: the
:class:`MetricsCollector` rides the event bus and owns every dynamic
statistic — the per-SM :class:`~repro.common.types.KernelStats` the paper's
Table II is built from, plus the per-phase cycle breakdown (issue slots,
idle jumps, detector-induced stalls by event kind) that the seed simulator
never surfaced.

The collector is deliberately cumulative across kernel launches of one
simulator, exactly like the cache/DRAM statistics: a multi-launch
benchmark's final snapshot aggregates the whole run (see
:func:`repro.harness.runner.run_benchmark_direct`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.common.types import AccessKind, KernelStats, MemSpace
from repro.events.bus import Subscriber
from repro.events.effects import TimingEffect
from repro.events.records import (
    AccessIssued,
    BarrierReleased,
    ComputeIssued,
    FenceIssued,
    IdleAdvanced,
    LockIssued,
    UnlockIssued,
)


@dataclass
class PhaseStats:
    """Where the cycles and the detector overhead went.

    ``issue_cycles`` is time the SMs spent issuing warp instructions
    (slots x pipeline issue width), ``idle_cycles`` time jumped over with
    no ready warp. The three stall counters split the detector-induced
    cycles by the event that imposed them; ``shadow_traffic_bytes`` is the
    total shadow-memory payload the detection hardware moved through the
    memory system (L1/L2/DRAM, demand and background).
    """

    issue_slots: int = 0
    issue_cycles: int = 0
    idle_cycles: int = 0
    access_stall_cycles: int = 0
    barrier_stall_cycles: int = 0
    fence_stall_cycles: int = 0
    shadow_traffic_bytes: int = 0

    @property
    def detector_stall_cycles(self) -> int:
        """Total warp-stall cycles imposed by subscribers."""
        return (self.access_stall_cycles + self.barrier_stall_cycles
                + self.fence_stall_cycles)


class MetricsCollector(Subscriber):
    """Subscriber that owns KernelStats and the phase-cycle breakdown."""

    def __init__(self, issue_width_cycles: int = 1) -> None:
        self._issue_width = issue_width_cycles
        self._per_sm: Dict[int, KernelStats] = {}
        self.phase = PhaseStats()
        #: TLB statistics record (repro.vm TLBStats.record() shape), set
        #: via note_tlb by runs that model address translation — the
        #: multi-GPU simulator and the vm_tlb experiment; None otherwise
        self.tlb: Optional[Dict[str, Any]] = None

    def note_tlb(self, record: Dict[str, Any]) -> None:
        """Attach (or replace) the run's TLB statistics record."""
        self.tlb = dict(record)

    # ------------------------------------------------------------------
    # stats access

    def sm_stats(self, sm_id: int) -> KernelStats:
        """The (live, mutable) stats record for one SM."""
        stats = self._per_sm.get(sm_id)
        if stats is None:
            stats = self._per_sm[sm_id] = KernelStats()
        return stats

    def total_stats(self) -> KernelStats:
        """Aggregate stats over every SM (a fresh record)."""
        total = KernelStats()
        for stats in self._per_sm.values():
            total.merge(stats)
        return total

    def snapshot(self, shadow_traffic_bytes: int = 0) -> PhaseStats:
        """A copy of the phase counters, with shadow traffic attributed."""
        return PhaseStats(
            issue_slots=self.phase.issue_slots,
            issue_cycles=self.phase.issue_cycles,
            idle_cycles=self.phase.idle_cycles,
            access_stall_cycles=self.phase.access_stall_cycles,
            barrier_stall_cycles=self.phase.barrier_stall_cycles,
            fence_stall_cycles=self.phase.fence_stall_cycles,
            shadow_traffic_bytes=shadow_traffic_bytes,
        )

    # ------------------------------------------------------------------
    # event handlers

    def _issued(self) -> None:
        self.phase.issue_slots += 1
        self.phase.issue_cycles += self._issue_width

    def on_compute(self, ev: ComputeIssued) -> None:
        self.sm_stats(ev.sm_id).instructions += ev.instructions
        self._issued()

    def on_access(self, ev: AccessIssued) -> None:
        stats = self.sm_stats(ev.sm_id)
        n = len(ev.access.lanes)
        stats.instructions += n
        if ev.access.kind == AccessKind.ATOMIC:
            stats.atomics += n
        elif ev.access.space == MemSpace.SHARED:
            if ev.access.kind == AccessKind.READ:
                stats.shared_reads += n
            else:
                stats.shared_writes += n
        else:
            if ev.access.kind == AccessKind.READ:
                stats.global_reads += n
            else:
                stats.global_writes += n
        self._issued()
        return None

    def on_barrier(self, ev: BarrierReleased) -> None:
        stats = self.sm_stats(ev.sm_id)
        stats.barriers += ev.released_lanes
        stats.instructions += ev.released_lanes
        return None

    def on_fence(self, ev: FenceIssued) -> None:
        stats = self.sm_stats(ev.sm_id)
        stats.fences += 1
        stats.instructions += ev.lanes
        self._issued()
        return None

    def on_lock(self, ev: LockIssued) -> None:
        stats = self.sm_stats(ev.sm_id)
        # each attempt, granted or not, is an atomicExch instruction
        stats.instructions += ev.attempts
        stats.atomics += ev.attempts
        self._issued()

    def on_unlock(self, ev: UnlockIssued) -> None:
        stats = self.sm_stats(ev.sm_id)
        stats.instructions += ev.lanes
        stats.atomics += ev.lanes  # release is an atomic store
        self._issued()

    def on_idle(self, ev: IdleAdvanced) -> None:
        self.phase.idle_cycles += ev.cycles

    def on_effect(self, ev, effect: TimingEffect) -> None:
        if not effect:
            return
        self.sm_stats(ev.sm_id).instructions += effect.extra_instructions
        if isinstance(ev, AccessIssued):
            self.phase.access_stall_cycles += effect.stall_cycles
        elif isinstance(ev, BarrierReleased):
            self.phase.barrier_stall_cycles += effect.stall_cycles
        elif isinstance(ev, FenceIssued):
            self.phase.fence_stall_cycles += effect.stall_cycles
