"""The event bus: deterministic fan-out of execution events to subscribers.

One :class:`EventBus` per simulator. The execution core emits each event
exactly once; the bus forwards it to every subscriber in deterministic
order — ascending ``priority``, then subscription order — and combines the
:class:`~repro.events.effects.TimingEffect`\\ s returned by timed handlers
(access, barrier, fence) into a single effect the SM applies to the
issuing warp.

Priorities group subscribers into conventional bands (all optional):
detectors at :data:`PRIORITY_DETECTOR` (they create the effects), passive
observers like tracers at :data:`PRIORITY_OBSERVER`, and the metrics
collector at :data:`PRIORITY_METRICS` so it can see events after detection
has acted on them. Within a band, first subscribed fires first.

Lock acquire/release are *queries* as well as events: the thread's new
atomic-ID Bloom signature comes from the first subscriber that returns a
non-``None`` value (detectors maintain signatures; pure observers return
``None``). With no signature provider the bus applies the hardware default:
acquisition leaves the signature unchanged, release clears it once the
thread holds no locks (clear-on-empty, paper §III-B).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.events.effects import NO_EFFECT, TimingEffect
from repro.events.records import (
    AccessIssued,
    BarrierReleased,
    BlockEnded,
    BlockStarted,
    ComputeIssued,
    FenceIssued,
    IdleAdvanced,
    KernelEnded,
    KernelStarted,
    LockAcquired,
    LockIssued,
    LockReleased,
    UnlockIssued,
)

#: conventional subscription bands (lower fires first)
PRIORITY_DETECTOR = 0
PRIORITY_OBSERVER = 50
PRIORITY_METRICS = 100


class Subscriber:
    """Base event subscriber: observe everything, affect nothing.

    Override the handlers you care about. ``on_access``, ``on_barrier``
    and ``on_fence`` may return a :class:`TimingEffect` (or ``None`` for
    no effect); ``on_lock_acquired`` / ``on_lock_released`` may return the
    thread's new lock signature (or ``None`` to abstain); every other
    handler is a pure observation. ``on_effect`` fires after a timed
    event's effects are combined, with the final effect the SM will apply.
    """

    #: extra identifier bits this subscriber needs attached to global
    #: memory request packets (the bus advertises the chain's maximum)
    request_id_bits: int = 0

    #: declares that this subscriber only reads the *plain* fields of each
    #: event (ints, WarpAccess records — never the live warp/block/thread
    #: objects) and is therefore safe to feed from a recorded wire stream
    #: (:mod:`repro.events.wire`). Epoch-sharded execution falls back to
    #: the inline path when any observer on the bus is not replay-safe.
    replay_safe: bool = False

    def on_kernel_start(self, ev: KernelStarted) -> None:
        """A kernel is about to execute."""

    def on_kernel_end(self, ev: KernelEnded) -> None:
        """The kernel finished."""

    def on_block_start(self, ev: BlockStarted) -> None:
        """A thread block was dispatched onto an SM."""

    def on_block_end(self, ev: BlockEnded) -> None:
        """A thread block retired."""

    def on_compute(self, ev: ComputeIssued) -> None:
        """A warp compute group executed."""

    def on_access(self, ev: AccessIssued) -> Optional[TimingEffect]:
        """A warp memory instruction executed."""
        return None

    def on_barrier(self, ev: BarrierReleased) -> Optional[TimingEffect]:
        """A block-wide barrier completed."""
        return None

    def on_fence(self, ev: FenceIssued) -> Optional[TimingEffect]:
        """A warp completed a memory fence."""
        return None

    def on_lock(self, ev: LockIssued) -> None:
        """A warp lock-acquire group executed (granted or not)."""

    def on_unlock(self, ev: UnlockIssued) -> None:
        """A warp lock-release group executed."""

    def on_lock_acquired(self, ev: LockAcquired) -> Optional[int]:
        """A thread acquired a lock; return its new signature (or None)."""
        return None

    def on_lock_released(self, ev: LockReleased) -> Optional[int]:
        """A thread released a lock; return its new signature (or None)."""
        return None

    def on_idle(self, ev: IdleAdvanced) -> None:
        """An SM jumped over idle cycles."""

    def on_effect(self, ev, effect: TimingEffect) -> None:
        """A timed event's combined effect, after the whole chain ran."""


class EventBus:
    """Deterministic single-emission fan-out to an ordered subscriber chain."""

    def __init__(self) -> None:
        self._entries: List[Tuple[int, int, Subscriber]] = []
        self._subs: List[Subscriber] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # chain management

    def subscribe(self, sub: Subscriber,
                  priority: int = PRIORITY_OBSERVER) -> Subscriber:
        """Add ``sub`` to the chain; returns it for chaining convenience."""
        self._entries.append((priority, self._seq, sub))
        self._seq += 1
        self._entries.sort(key=lambda e: (e[0], e[1]))
        self._subs = [e[2] for e in self._entries]
        return sub

    def unsubscribe(self, sub: Subscriber) -> bool:
        """Remove ``sub``; returns whether it was subscribed."""
        before = len(self._entries)
        self._entries = [e for e in self._entries if e[2] is not sub]
        self._subs = [e[2] for e in self._entries]
        return len(self._entries) != before

    @property
    def subscribers(self) -> List[Subscriber]:
        """The chain in fan-out order (a copy)."""
        return list(self._subs)

    @property
    def request_id_bits(self) -> int:
        """Identifier payload bits demanded by the chain (its maximum)."""
        return max((s.request_id_bits for s in self._subs), default=0)

    # ------------------------------------------------------------------
    # lifecycle events

    def emit_kernel_start(self, ev: KernelStarted) -> None:
        for s in self._subs:
            s.on_kernel_start(ev)

    def emit_kernel_end(self, ev: KernelEnded) -> None:
        for s in self._subs:
            s.on_kernel_end(ev)

    def emit_block_start(self, ev: BlockStarted) -> None:
        for s in self._subs:
            s.on_block_start(ev)

    def emit_block_end(self, ev: BlockEnded) -> None:
        for s in self._subs:
            s.on_block_end(ev)

    # ------------------------------------------------------------------
    # timed events: fan out, combine effects, report the combination

    def emit_access(self, ev: AccessIssued) -> TimingEffect:
        effect = NO_EFFECT
        for s in self._subs:
            effect = effect.combine(s.on_access(ev))
        # a free combined effect carries no information — skip the
        # notification sweep on the per-access hot path (observers treat
        # zero effects as no-ops by contract)
        if effect is not NO_EFFECT:
            for s in self._subs:
                s.on_effect(ev, effect)
        return effect

    def emit_barrier(self, ev: BarrierReleased) -> TimingEffect:
        effect = NO_EFFECT
        for s in self._subs:
            effect = effect.combine(s.on_barrier(ev))
        for s in self._subs:
            s.on_effect(ev, effect)
        return effect

    def emit_fence(self, ev: FenceIssued) -> TimingEffect:
        effect = NO_EFFECT
        for s in self._subs:
            effect = effect.combine(s.on_fence(ev))
        for s in self._subs:
            s.on_effect(ev, effect)
        return effect

    # ------------------------------------------------------------------
    # untimed issue events

    def emit_compute(self, ev: ComputeIssued) -> None:
        for s in self._subs:
            s.on_compute(ev)

    def emit_lock(self, ev: LockIssued) -> None:
        for s in self._subs:
            s.on_lock(ev)

    def emit_unlock(self, ev: UnlockIssued) -> None:
        for s in self._subs:
            s.on_unlock(ev)

    def emit_idle(self, ev: IdleAdvanced) -> None:
        for s in self._subs:
            s.on_idle(ev)

    # ------------------------------------------------------------------
    # lock-signature queries (events that also answer)

    def lock_acquired(self, ev: LockAcquired) -> int:
        """Emit a lock acquisition; returns the thread's new signature."""
        sig: Optional[int] = None
        for s in self._subs:
            r = s.on_lock_acquired(ev)
            if sig is None and r is not None:
                sig = r
        if sig is None:
            sig = ev.thread.lock_sig
        return sig

    def lock_released(self, ev: LockReleased) -> int:
        """Emit a lock release; returns the thread's new signature."""
        sig: Optional[int] = None
        for s in self._subs:
            r = s.on_lock_released(ev)
            if sig is None and r is not None:
                sig = r
        if sig is None:
            sig = 0 if not ev.thread.held_locks else ev.thread.lock_sig
        return sig
