"""Unified access-event pipeline for the execution core.

Everything that happens inside the GPU model that an observer could care
about — warp memory accesses, barriers, fences, lock transfers, block and
kernel lifecycle, idle time — is emitted exactly once as a typed event
record (:mod:`repro.events.records`) on the simulator's
:class:`~repro.events.bus.EventBus`. Consumers subscribe to the bus:

- the hardware detector (:class:`repro.core.detector.HAccRGDetector`) and
  the software baselines (:mod:`repro.swdetect`) return
  :class:`~repro.events.effects.TimingEffect`\\ s that stall the issuing
  warp;
- :class:`repro.harness.trace.TraceRecorder` captures replayable traces;
- :class:`repro.events.metrics.MetricsCollector` owns the dynamic
  instruction statistics (:class:`~repro.common.types.KernelStats`) and
  the per-phase cycle breakdown.

Any number of subscribers observe the same live run; fan-out order is
deterministic (priority, then subscription order) and effects compose by
summation. See ``docs/EVENTS.md`` for the taxonomy and the subscriber
contract.
"""

from repro.events.bus import EventBus, Subscriber
from repro.events.effects import NO_EFFECT, TimingEffect
from repro.events.metrics import MetricsCollector, PhaseStats
from repro.events.records import (
    AccessIssued,
    BarrierReleased,
    BlockEnded,
    BlockStarted,
    ComputeIssued,
    FenceIssued,
    IdleAdvanced,
    KernelEnded,
    KernelStarted,
    LockAcquired,
    LockIssued,
    LockReleased,
    UnlockIssued,
)

__all__ = [
    "AccessIssued",
    "BarrierReleased",
    "BlockEnded",
    "BlockStarted",
    "ComputeIssued",
    "EventBus",
    "FenceIssued",
    "IdleAdvanced",
    "KernelEnded",
    "KernelStarted",
    "LockAcquired",
    "LockIssued",
    "LockReleased",
    "MetricsCollector",
    "NO_EFFECT",
    "PhaseStats",
    "Subscriber",
    "TimingEffect",
    "UnlockIssued",
]
