"""Offline log-based detection baseline (paper §VII related work).

The earliest GPU race detectors instrument the kernel to append *every*
memory access to a log buffer in device memory and analyze the log
offline after the kernel finishes. The paper cites this approach as
"orders of magnitude slower than the un-instrumented version" with memory
overhead proportional to the dynamic access count — the motivating
strawman for both GRace and HAccRG.

This implementation captures both costs:

- online: every tracked lane access executes logging instructions and an
  append (a synchronous global-memory store) — the warp stalls for it;
- offline: at kernel end the full log is sorted per location and scanned
  for cross-warp conflicting pairs within each synchronization interval
  (the analysis is exact, like HAccRG at the same granularity, but the
  log grows with execution length rather than data size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import HAccRGConfig
from repro.common.types import (
    AccessKind,
    MemSpace,
    RaceCategory,
    RaceKind,
    Transaction,
    WarpAccess,
)
from repro.core.granularity import GranularityMap
from repro.core.races import RaceLog, RaceReport
from repro.gpu.hooks import NO_EFFECT, DetectorHooks, TimingEffect

#: instructions per logged access (pointer bump, record packing, bounds check)
LOG_INSTRUCTIONS = 6
#: bytes per log record (addr, tid, kind, interval)
LOG_RECORD_BYTES = 16


@dataclass(frozen=True)
class _Record:
    entry: int
    warp: int
    tid: int
    block: int
    is_write: bool
    interval: int
    space: MemSpace
    addr: int


class OfflineLogDetector(DetectorHooks):
    """Log-everything-then-analyze baseline."""

    def __init__(self, config: HAccRGConfig, sim) -> None:
        self.config = config
        self.sim = sim
        self.log = RaceLog()
        self._shared_gmap = GranularityMap(config.shared_granularity)
        self._global_gmap = GranularityMap(config.global_granularity)
        self._records: List[_Record] = []
        self._interval: Dict[int, int] = {}  # block_id -> barrier interval
        self._log_base: Optional[int] = None
        self._cursor = 0
        self.instrumentation_instructions = 0
        self.analysis_comparisons = 0

    # ------------------------------------------------------------------

    def on_kernel_start(self, launch, device_mem) -> None:
        self._records.clear()
        self._interval.clear()
        self._cursor = 0
        # reserve a log region: proportional to expected accesses, the
        # approach's defining memory cost (we size it generously and let
        # the append wrap — the analysis uses the in-model record list)
        self._log_base = device_mem.malloc(1 << 20)

    def on_block_start(self, block) -> None:
        self._interval[block.block_id] = 0

    def on_barrier(self, block, now: int) -> TimingEffect:
        self._interval[block.block_id] = \
            self._interval.get(block.block_id, 0) + 1
        return NO_EFFECT

    def on_warp_access(self, access: WarpAccess, now: int,
                       lane_l1_hit: Optional[Sequence[bool]] = None
                       ) -> TimingEffect:
        gmap = (self._shared_gmap if access.space == MemSpace.SHARED
                else self._global_gmap)
        interval = self._interval.get(access.block_id, 0)
        logged = 0
        addrs: List[int] = []
        for la in access.lanes:
            for entry in gmap.entries_of_range(la.addr, la.size):
                self._records.append(_Record(
                    entry=entry,
                    warp=access.warp_id,
                    tid=access.thread_id(la.lane),
                    block=access.block_id,
                    is_write=la.kind != AccessKind.READ,
                    interval=interval,
                    space=access.space,
                    addr=la.addr,
                ))
                addrs.append(self._log_base
                             + (self._cursor % (1 << 16)) * LOG_RECORD_BYTES)
                self._cursor += 1
                logged += 1

        issue = self.sim.config.warp_issue_cycles
        instr = logged * LOG_INSTRUCTIONS
        stall = LOG_INSTRUCTIONS * issue
        if addrs and self.sim.timing_enabled:
            line = self.sim.config.l2_line
            txns = [Transaction(a, line, is_write=True, is_shadow=True)
                    for a in sorted({x // line * line for x in addrs})]
            lat, _ = self.sim.memory.warp_access(access.sm_id, txns, now)
            stall += lat
        instr += logged
        self.instrumentation_instructions += instr
        return TimingEffect(stall_cycles=stall, extra_instructions=instr)

    # ------------------------------------------------------------------

    def on_kernel_end(self) -> None:
        """The offline pass: per-location interval scan of the log."""
        by_loc: Dict[Tuple[MemSpace, int], List[_Record]] = {}
        for rec in self._records:
            by_loc.setdefault((rec.space, rec.entry), []).append(rec)

        for (space, entry), recs in by_loc.items():
            for i, a in enumerate(recs):
                for b in recs[i + 1:]:
                    self.analysis_comparisons += 1
                    if a.warp == b.warp:
                        continue
                    if not (a.is_write or b.is_write):
                        continue
                    # same-block accesses in different intervals are
                    # barrier-ordered
                    if a.block == b.block and a.interval != b.interval:
                        continue
                    kind = (RaceKind.WAW if a.is_write and b.is_write
                            else (RaceKind.RAW if a.is_write
                                  else RaceKind.WAR))
                    category = (RaceCategory.SHARED_BARRIER
                                if space == MemSpace.SHARED
                                else RaceCategory.GLOBAL_BARRIER)
                    self.log.report(RaceReport(
                        category=category, kind=kind, space=space,
                        entry=entry, addr=a.addr,
                        owner_tid=a.tid, access_tid=b.tid,
                        owner_block=a.block, access_block=b.block,
                    ))
        self._records.clear()

    @property
    def log_bytes(self) -> int:
        """Device memory the log consumed (the approach's memory cost)."""
        return self._cursor * LOG_RECORD_BYTES
