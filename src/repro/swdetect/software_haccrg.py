"""Software implementation of the HAccRG algorithm (paper §VI-B).

Same detection algorithm, same shadow state, same race reports as the
hardware detector — but executed as kernel instrumentation. The differences
are purely in where the work happens:

- every tracked lane access executes a check/update instruction sequence on
  the SM pipeline (``extra_instructions``) and the issuing warp stalls for
  it (instructions * issue cycles);
- the shadow-table read-modify-writes are ordinary synchronous memory
  accesses through L1/L2/DRAM: the warp waits for them (unlike the hardware
  RDUs' fire-and-forget background traffic);
- the shared-memory shadow table also lives in device memory (there is no
  hardware row extension), so even shared-only detection pays global-memory
  latencies.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.config import HAccRGConfig
from repro.common.types import Transaction, WarpAccess
from repro.core.detector import HAccRGDetector
from repro.gpu.hooks import NO_EFFECT, TimingEffect
from repro.swdetect.instrumentation import SOFTWARE_HACCRG_COST


class SoftwareHAccRG(HAccRGDetector):
    """HAccRG detection executed as kernel instrumentation."""

    def __init__(self, config: HAccRGConfig, sim) -> None:
        super().__init__(config, sim)
        self.cost = SOFTWARE_HACCRG_COST
        self._shared_sw_shadow_base: Optional[int] = None
        self.instrumentation_instructions = 0
        self.instrumentation_stall_cycles = 0

    # identifiers ride in registers, not packets, in the software scheme
    @property
    def request_id_bits(self) -> int:
        return 0

    def on_kernel_start(self, launch, device_mem) -> None:
        super().on_kernel_start(launch, device_mem)
        if self.config.mode.shared_enabled:
            # one software shadow region reused by all blocks' shared memory
            entries = -(-self.sim.config.shared_mem_per_sm
                        // self.config.shared_granularity)
            entry_bytes = -(-self.config.shared_entry_bits() // 8)
            self._shared_sw_shadow_base = device_mem.malloc(
                max(1, entries * entry_bytes * self.sim.config.num_sms)
            )

    # ------------------------------------------------------------------

    def _instrumentation_effect(self, access: WarpAccess, now: int,
                                shadow_addrs: Sequence[int],
                                atomic_update: bool) -> TimingEffect:
        """Stall the warp for the instrumented check + shadow RMW.

        The check sequence executes as warp-wide SIMD instructions: the
        stall is the sequence length times the issue slot, not per lane
        (every lane runs its own copy in parallel). The per-lane count
        still lands in the dynamic instruction statistics.
        """
        issue = self.sim.config.warp_issue_cycles
        lanes = len(access.lanes)
        instr = lanes * self.cost.lane_cost(atomic_update)
        stall = self.cost.lane_cost(atomic_update) * issue
        # lanes spread over several shadow lines serialize the table update
        stall += max(0, len(shadow_addrs) - 1) * issue

        if shadow_addrs and self.sim.timing_enabled:
            line = self.sim.config.l2_line
            lines = sorted({a // line * line for a in shadow_addrs})
            # the check reads the shadow words synchronously (L1-cached);
            # the update store retires through the write buffer and only
            # costs bandwidth, like any other store
            reads = [Transaction(a, line, is_write=False, is_shadow=True)
                     for a in lines]
            writes = [Transaction(a, line, is_write=True, is_shadow=True)
                      for a in lines]
            lat_r, _ = self.sim.memory.warp_access(access.sm_id, reads, now)
            self.sim.memory.background_access(access.sm_id, writes,
                                              now + lat_r)
            stall += lat_r
        instr += 2 * max(1, len(shadow_addrs))
        self.instrumentation_instructions += instr
        self.instrumentation_stall_cycles += stall
        return TimingEffect(stall_cycles=stall, extra_instructions=instr)

    # ------------------------------------------------------------------

    def _on_shared(self, access: WarpAccess, now: int) -> TimingEffect:
        if not self.config.mode.shared_enabled:
            return NO_EFFECT
        rdu = self._shared_rdu(access.sm_id)
        rdu.check_access(access)
        table = rdu.table_for(access.block_id)
        if table is None or self._shared_sw_shadow_base is None:
            return NO_EFFECT
        entry_bytes = -(-self.config.shared_entry_bits() // 8)
        sm_region = self._shared_sw_shadow_base + access.sm_id * table.n * entry_bytes
        addrs = sorted({
            sm_region + e * entry_bytes
            for la in access.lanes
            for e in table.gmap.entries_of_range(la.addr, la.size)
        })
        # shared table is SM-private: plain (non-atomic) updates suffice
        return self._instrumentation_effect(access, now, addrs,
                                            atomic_update=False)

    def _on_global(self, access: WarpAccess, now: int,
                   lane_l1_hit: Optional[Sequence[bool]]) -> TimingEffect:
        if not self.config.mode.global_enabled:
            return NO_EFFECT
        shadow = self.global_rdu.shadow
        if shadow is None:
            return NO_EFFECT
        entries = shadow.check(access, lane_l1_hit=lane_l1_hit)
        addrs = [shadow.shadow_addr_of_entry(e) for e in entries]
        # the global table is shared across blocks: atomic RMW required
        return self._instrumentation_effect(access, now, addrs,
                                            atomic_update=True)

    # ------------------------------------------------------------------

    def on_barrier(self, block, now: int) -> TimingEffect:
        base = super().on_barrier(block, now)
        if not self.config.mode.shared_enabled or block.sm_id is None:
            return base
        rdu = self._shared_rdu(block.sm_id)
        table = rdu.table_for(block.block_id)
        if table is None:
            return base
        # software invalidation: a memset loop over the block's shadow
        # region executed by the block's threads
        issue = self.sim.config.warp_issue_cycles
        warps = max(1, len(block.warps))
        instr = self.cost.barrier_instructions * warps + table.n
        stall = (table.n // warps + self.cost.barrier_instructions) * issue
        self.instrumentation_instructions += instr
        return TimingEffect(
            stall_cycles=base.stall_cycles + stall,
            extra_instructions=base.extra_instructions + instr,
        )
