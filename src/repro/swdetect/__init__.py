"""Software race-detection baselines (paper §VI-B comparison).

- :class:`repro.swdetect.software_haccrg.SoftwareHAccRG` — the HAccRG
  algorithm executed as kernel instrumentation instead of dedicated RDUs:
  every tracked access additionally runs check/update code on the SM and
  performs its shadow-table accesses synchronously through the memory
  hierarchy. Detection results are identical to the hardware detector;
  only the cost differs (the paper reports 6.6x / 12.4x / 18.1x on
  SCAN / HIST / KMEANS).
- :class:`repro.swdetect.grace.GRaceAddrDetector` — a re-implementation of
  the GRace-addr mechanism: per-warp access bookkeeping tables in device
  memory plus inter-warp table scans at synchronization points; about two
  orders of magnitude slower than software HAccRG and covering shared
  memory only.
"""

from repro.swdetect.software_haccrg import SoftwareHAccRG
from repro.swdetect.grace import GRaceAddrDetector
from repro.swdetect.offline_log import OfflineLogDetector

__all__ = ["SoftwareHAccRG", "GRaceAddrDetector", "OfflineLogDetector"]
