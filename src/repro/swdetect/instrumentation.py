"""Instrumentation cost model shared by the software baselines.

When race detection runs as kernel code rather than hardware, every tracked
memory access expands into a sequence of real instructions executed by the
SM pipeline: address-to-entry arithmetic, a shadow-table load, the state
comparison, the table update store, and (for the global table, which other
thread blocks update concurrently) an atomic to make the read-modify-write
of the shadow word safe. The constants below size those sequences; they are
deliberately conservative (a hand-tuned PTX sequence) so that the software
baseline is a strong one, as in the paper where software HAccRG still beats
GRace by two orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InstrumentationCost:
    """Per-event instruction counts for instrumented detection."""

    #: ALU instructions per checked lane access (entry index computation,
    #: field extraction and masking, the state-machine compare/branch
    #: ladder, update re-packing, and the divergence overhead of the
    #: branchy check sequence)
    check_instructions: int = 26
    #: shadow-table accesses per checked lane access (one RMW = load+store)
    shadow_accesses: int = 2
    #: extra instructions when the update must be atomic (global table):
    #: a CAS retry loop around the packed shadow word
    atomic_update_instructions: int = 14
    #: instructions per warp per barrier for table maintenance
    barrier_instructions: int = 8

    def lane_cost(self, atomic_update: bool) -> int:
        n = self.check_instructions
        if atomic_update:
            n += self.atomic_update_instructions
        return n


#: Cost profile for the software HAccRG implementation.
SOFTWARE_HACCRG_COST = InstrumentationCost()

#: GRace-addr cost profile: logging is cheaper per access (append to a
#: bookkeeping table) but every barrier triggers inter-warp table scans.
GRACE_LOG_INSTRUCTIONS = 8
GRACE_SCAN_INSTRUCTIONS_PER_PAIR = 4
