"""GRace-addr baseline: instrumentation-based shared-memory race detection.

Re-implementation of the *mechanism* of GRace's address-based variant
(GRace-addr), the faster/less-accurate configuration the paper compares
against:

- every shared-memory access is *logged*: the instrumented kernel appends
  (warp, entry, kind) to per-warp bookkeeping tables that live in device
  memory — each log append is a real global-memory write plus bookkeeping
  instructions executed on the SM;
- at every synchronization point (barrier, and kernel end) the instrumented
  kernel *scans* the tables: each warp's logged accesses are compared
  against every other warp's, pairwise, and conflicting (read-write or
  write-write to the same entry from different warps) pairs are reported;
  the scan cost is instructions proportional to warps x entries-per-warp,
  again executed inline;
- only shared memory is covered (as in GRace); global accesses run
  uninstrumented.

The pairwise-scan structure is exactly why the approach is two orders of
magnitude slower than the software HAccRG's per-access constant-time shadow
check, and why its memory overhead grows with the access count rather than
with the data size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.config import HAccRGConfig
from repro.common.types import (
    AccessKind,
    MemSpace,
    RaceCategory,
    RaceKind,
    Transaction,
    WarpAccess,
)
from repro.core.granularity import GranularityMap
from repro.core.races import RaceLog, RaceReport
from repro.gpu.hooks import NO_EFFECT, DetectorHooks, TimingEffect
from repro.swdetect.instrumentation import (
    GRACE_LOG_INSTRUCTIONS,
    GRACE_SCAN_INSTRUCTIONS_PER_PAIR,
)


class _BlockTables:
    """Per-warp access tables for one thread block's current interval."""

    __slots__ = ("reads", "writes", "log_entries")

    def __init__(self) -> None:
        # warp_in_block -> {(entry, representative tid)}
        self.reads: Dict[int, Dict[int, int]] = {}
        self.writes: Dict[int, Dict[int, int]] = {}
        self.log_entries = 0

    def record(self, warp: int, entry: int, tid: int, is_write: bool) -> None:
        table = self.writes if is_write else self.reads
        table.setdefault(warp, {}).setdefault(entry, tid)
        self.log_entries += 1

    def clear(self) -> None:
        self.reads.clear()
        self.writes.clear()


class GRaceAddrDetector(DetectorHooks):
    """GRace-addr style detector (shared memory, barrier intervals)."""

    def __init__(self, config: HAccRGConfig, sim) -> None:
        self.config = config
        self.sim = sim
        self.log = RaceLog()
        self.gmap = GranularityMap(config.shared_granularity)
        self._tables: Dict[int, _BlockTables] = {}  # block_id -> tables
        self._table_base: Dict[int, int] = {}
        self.instrumentation_instructions = 0
        self.instrumentation_stall_cycles = 0
        self.peak_table_entries = 0
        self.scan_pairs = 0

    # ------------------------------------------------------------------

    def on_kernel_start(self, launch, device_mem) -> None:
        self._tables.clear()
        self._table_base.clear()
        # bookkeeping tables: reserve space proportional to potential
        # accesses per interval (GRace's per-warp tables in device memory)
        self._device_mem = device_mem

    def on_block_start(self, block) -> None:
        self._tables[block.block_id] = _BlockTables()
        # one table region per resident block
        self._table_base[block.block_id] = self._device_mem.malloc(64 * 1024)

    def on_block_end(self, block) -> None:
        self._finish_interval(block, block.sm_id or 0, now=0)
        self._tables.pop(block.block_id, None)
        self._table_base.pop(block.block_id, None)

    def on_kernel_end(self) -> None:
        self._tables.clear()

    # ------------------------------------------------------------------

    def on_warp_access(self, access: WarpAccess, now: int,
                       lane_l1_hit: Optional[Sequence[bool]] = None
                       ) -> TimingEffect:
        if access.space != MemSpace.SHARED:
            return NO_EFFECT  # GRace does not instrument global memory
        tables = self._tables.get(access.block_id)
        if tables is None:
            return NO_EFFECT

        logged = 0
        log_addrs: List[int] = []
        base = self._table_base.get(access.block_id, 0)
        for la in access.lanes:
            is_write = la.kind != AccessKind.READ
            for entry in self.gmap.entries_of_range(la.addr, la.size):
                tables.record(access.warp_in_block, entry,
                              access.thread_id(la.lane), is_write)
                log_addrs.append(base + (tables.log_entries % 8192) * 8)
                logged += 1
        self.peak_table_entries = max(self.peak_table_entries,
                                      tables.log_entries)

        # cost: bookkeeping instructions + one device-memory append per
        # logged record, synchronous
        issue = self.sim.config.warp_issue_cycles
        instr = logged * GRACE_LOG_INSTRUCTIONS
        stall = instr * issue
        if log_addrs and self.sim.timing_enabled:
            line = self.sim.config.l2_line
            lines = sorted({a // line * line for a in log_addrs})
            txns = [Transaction(a, line, is_write=True, is_shadow=True)
                    for a in lines]
            lat, _ = self.sim.memory.warp_access(access.sm_id, txns, now)
            stall += lat
        instr += logged
        self.instrumentation_instructions += instr
        self.instrumentation_stall_cycles += stall
        return TimingEffect(stall_cycles=stall, extra_instructions=instr)

    # ------------------------------------------------------------------

    def on_barrier(self, block, now: int) -> TimingEffect:
        return self._finish_interval(block, block.sm_id or 0, now)

    def _finish_interval(self, block, sm_id: int, now: int) -> TimingEffect:
        """Inter-warp table scan at a synchronization point."""
        tables = self._tables.get(block.block_id)
        if tables is None or tables.log_entries == 0:
            return NO_EFFECT

        pairs = 0
        warps = sorted(set(tables.reads) | set(tables.writes))
        for i, wa in enumerate(warps):
            wa_writes = tables.writes.get(wa, {})
            wa_reads = tables.reads.get(wa, {})
            for wb in warps[i + 1:]:
                wb_writes = tables.writes.get(wb, {})
                wb_reads = tables.reads.get(wb, {})
                pairs += (len(wa_writes) + len(wa_reads)) * max(
                    1, len(wb_writes) + len(wb_reads)
                )
                self._conflicts(wa_writes, wb_writes, RaceKind.WAW, block)
                self._conflicts(wa_writes, wb_reads, RaceKind.RAW, block)
                self._conflicts(wa_reads, wb_writes, RaceKind.WAR, block)
        self.scan_pairs += pairs
        tables.clear()

        issue = self.sim.config.warp_issue_cycles
        instr = pairs * GRACE_SCAN_INSTRUCTIONS_PER_PAIR
        # the scan reads the tables back from device memory; approximate
        # one global line read per 16 comparison pairs
        stall = instr * issue
        if self.sim.timing_enabled and pairs:
            line = self.sim.config.l2_line
            base = self._table_base.get(block.block_id, 0)
            nlines = max(1, pairs // 16)
            txns = [Transaction(base + (k % 512) * line, line,
                                is_write=False, is_shadow=True)
                    for k in range(min(nlines, 256))]
            lat, _ = self.sim.memory.warp_access(sm_id, txns, now)
            stall += lat * max(1, nlines // max(1, len(txns)))
        self.instrumentation_instructions += instr
        self.instrumentation_stall_cycles += stall
        return TimingEffect(stall_cycles=stall, extra_instructions=instr)

    def _conflicts(self, table_a: Dict[int, int], table_b: Dict[int, int],
                   kind: RaceKind, block) -> None:
        smaller, larger = (
            (table_a, table_b) if len(table_a) <= len(table_b)
            else (table_b, table_a)
        )
        for entry, tid in smaller.items():
            other = larger.get(entry)
            if other is not None:
                self.log.report(RaceReport(
                    category=RaceCategory.SHARED_BARRIER,
                    kind=kind,
                    space=MemSpace.SHARED,
                    entry=entry,
                    addr=self.gmap.base_addr(entry),
                    owner_tid=tid,
                    access_tid=other,
                    owner_block=block.block_id,
                    access_block=block.block_id,
                ))
