"""Shared-memory shadow table: the Fig. 3 state machine.

Each shared-memory shadow entry holds ``(tid, M, S)``:

- **State 1** ``M=1, S=1`` — virgin (no access since the last barrier);
- **State 2** ``M=0, S=0`` — read by exactly the thread in ``tid``;
- **State 3** ``M=1, S=0`` — written (at least once) by ``tid``;
- **State 4** ``M=0, S=1`` — read by threads of more than one warp.

Races are reported only between threads of *different warps* (threads of a
warp execute in lockstep and cannot race across instructions), except that
same-instruction WAW between lanes of one warp is caught before issue
(:meth:`SharedShadowTable.intra_warp_waw`). When dynamic warp re-grouping is
enabled, warp membership is unstable and comparisons fall back to thread
identity (§III-A).

Barriers reset every entry of the block to virgin. Fences and locksets are
evaluated only for global memory (§VI-C2), so this table is the pure
happens-before detector.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from repro.common.config import default_fast_path
from repro.common.types import (
    AccessKind,
    MemSpace,
    RaceCategory,
    RaceKind,
    WarpAccess,
)
from repro.core.granularity import GranularityMap
from repro.core.races import RaceLog


def _overlapping_write(seen: dict, entry: int,
                       la: Any) -> Optional[object]:
    """Register write lane ``la`` under ``entry``; return a previously
    registered lane whose byte footprint overlaps it (None otherwise)."""
    lo, hi = la.footprint()
    bucket = seen.setdefault(entry, [])
    for prev in bucket:
        p_lo, p_hi = prev.footprint()
        if lo < p_hi and p_lo < hi:
            return prev
    bucket.append(la)
    return None


class SharedShadowTable:
    """Shadow entries for one thread block's shared memory."""

    def __init__(self, region_bytes: int, granularity: int,
                 log: RaceLog, regroup: bool = False,
                 fast_path: Optional[bool] = None) -> None:
        self.gmap = GranularityMap(granularity)
        self.n = self.gmap.num_entries(region_bytes)
        self.log = log
        self.regroup = regroup
        # the batched kernel compares owners by warp id; under re-grouping
        # ownership is per-thread and every duplicate-entry access would
        # fall back anyway, so run the scalar state machine throughout
        self.fast_path = ((default_fast_path() if fast_path is None
                           else fast_path) and not regroup)
        # entry fields; virgin encoded as M=1, S=1
        self.tid = np.full(self.n, -1, dtype=np.int64)
        self.wid = np.full(self.n, -1, dtype=np.int64)
        self.M = np.ones(self.n, dtype=bool)
        self.S = np.ones(self.n, dtype=bool)
        self.resets = 0

    # ------------------------------------------------------------------

    def barrier_reset(self) -> int:
        """Invalidate all entries at a barrier; returns entries reset."""
        self.M[:] = True
        self.S[:] = True
        self.tid[:] = -1
        self.wid[:] = -1
        self.resets += 1
        return self.n

    # ------------------------------------------------------------------

    def intra_warp_waw(self, access: WarpAccess) -> int:
        """Same-instruction WAW: two lanes of one warp write one *location*.

        The RDU checks simultaneous requests to the same location
        associatively before issue (§III-A / §IV-B). The comparison is on
        byte footprints, not shadow entries: a warp whose lanes write
        successive addresses covered by one coarse entry is implicitly
        synchronized and must not be reported (§VI-A1). Returns the number
        of distinct new races reported.
        """
        if access.kind == AccessKind.READ:
            return 0
        seen: dict = {}
        new = 0
        for entry, la in self.gmap.lanes_to_entries(access.lanes):
            if la.kind == AccessKind.READ:
                continue
            prev = _overlapping_write(seen, entry, la)
            if prev is None:
                continue
            if self.log.trip(
                RaceCategory.SHARED_BARRIER, RaceKind.WAW, MemSpace.SHARED,
                entry, la.addr,
                owner_tid=access.thread_id(prev.lane),
                access_tid=access.thread_id(la.lane),
                owner_block=access.block_id,
                access_block=access.block_id,
                pc=access.pc,
            ):
                new += 1
        return new

    def check(self, access: WarpAccess) -> int:
        """Run the state machine for every (entry, lane) of a warp access.

        Returns the number of distinct new races reported. With the fast
        path enabled the warp's lanes are classified in one vectorized
        pass and only race-candidate lanes run the scalar state machine;
        results are bit-identical (see :meth:`_check_batch`).
        """
        if self.fast_path and access.lanes:
            fast = self._check_batch(access)
            if fast is not None:
                return fast
        return self._check_scalar(access)

    def _check_scalar(self, access: WarpAccess) -> int:
        """Reference per-(entry, lane) state machine walk."""
        new = self.intra_warp_waw(access)
        for entry, la in self.gmap.lanes_to_entries(access.lanes):
            tid = access.thread_id(la.lane)
            race = self._check_one(
                entry, tid, access.warp_id,
                is_write=la.kind != AccessKind.READ,
            )
            if race is not None:
                if self.log.trip(
                    RaceCategory.SHARED_BARRIER, race, MemSpace.SHARED,
                    entry, la.addr,
                    owner_tid=int(self.tid[entry]),
                    access_tid=tid,
                    owner_block=access.block_id,
                    access_block=access.block_id,
                    pc=access.pc,
                ):
                    new += 1
                # after reporting, a write takes ownership so later
                # conflicts are still observable
                if la.kind != AccessKind.READ:
                    self._take_ownership(entry, tid, access.warp_id, True)
        return new

    # ------------------------------------------------------------------
    # batched fast path

    def _lane_arrays(self, access: WarpAccess
                     ) -> Optional[Tuple["np.ndarray[Any, Any]",
                                         "np.ndarray[Any, Any]",
                                         "np.ndarray[Any, Any]"]]:
        """Columnize a warp access for the batched kernel.

        Returns ``(entries, tids, lanes_idx)`` or None when the access does
        not meet the fast-path preconditions: uniform lane kind matching
        the warp kind, and every lane covered by exactly one shadow entry.
        """
        lanes = access.lanes
        cols: List[Tuple[Any, ...]] = list(zip(*lanes))
        lane_col, addr_col, size_col, kind_col = cols[0], cols[1], cols[2], cols[3]
        if any(k != access.kind for k in kind_col):
            return None
        addrs = np.array(addr_col, dtype=np.int64)
        shift = self.gmap._shift
        entries = addrs >> shift
        if len(set(size_col)) == 1:
            last = (addrs + (size_col[0] - 1)) >> shift
        else:
            last = (addrs + (np.array(size_col, dtype=np.int64) - 1)) >> shift
        if bool(np.any(entries != last)):
            return None
        tids = np.array(lane_col, dtype=np.int64) + access.base_tid
        return entries, tids, addrs

    def _check_batch(self, access: WarpAccess) -> Optional[int]:
        """Vectorized warp check; None when preconditions are unmet.

        Classification is by *pre-access* entry state, which is sound
        because the only transitions a warp's own lanes can chain through
        an entry stay inside the warp's ownership (same ``wid``): once the
        first lane of this warp owns an entry, later lanes of the same
        access are same-owner updates. Conflicting lanes (entry owned by a
        different warp) are handled by :meth:`_trip_conflicts`, which
        reproduces the scalar walk's reports, trip counts and ownership
        hand-offs exactly from the pre-state masks.
        """
        arrays = self._lane_arrays(access)
        if arrays is None:
            return None
        entries, tids, addrs = arrays
        is_write = access.kind != AccessKind.READ
        wid = access.warp_id

        has_dup = len(np.unique(entries)) != len(entries)
        new = 0
        if is_write and has_dup:
            # overlap detection needs same-entry lane pairs; with unique
            # entries the associative check can never fire
            new += self.intra_warp_waw(access)

        m = self.M[entries]
        s = self.S[entries]
        wid_eq = self.wid[entries] == wid

        # lanes whose scalar transition would report: entry owned by a
        # different warp and conflicting with this access kind
        if is_write:
            good = (m & s) | (~s & wid_eq)
        else:
            good = ~(m & ~s & ~wid_eq)
        bad = ~good

        if bool(bad.any()):
            new += self._trip_conflicts(access, entries[bad], tids[bad],
                                        addrs[bad], m[bad], is_write, wid,
                                        has_dup)

        if is_write:
            # virgin + same-warp state 2/3 all end written-by-this-warp
            # with the *last* writing lane as owner thread
            if bool(good.any()):
                sub_e = entries[good]
                sub_t = tids[good]
                if has_dup:
                    rev = sub_e[::-1]
                    uniq, ridx = np.unique(rev, return_index=True)
                    sel = sub_t[::-1][ridx]
                    sub_e, sub_t = uniq, sel
                self.tid[sub_e] = sub_t
                self.wid[sub_e] = wid
                self.M[sub_e] = True
                self.S[sub_e] = False
        else:
            virgin = m & s
            if bool(virgin.any()):
                # first reading lane becomes the recorded reader
                sub_e = entries[virgin]
                sub_t = tids[virgin]
                if has_dup:
                    uniq, fidx = np.unique(sub_e, return_index=True)
                    sub_e, sub_t = uniq, sub_t[fidx]
                self.tid[sub_e] = sub_t
                self.wid[sub_e] = wid
                self.M[sub_e] = False
                self.S[sub_e] = False
            other_reader = ~m & ~s & ~wid_eq
            if bool(other_reader.any()):
                self.S[entries[other_reader]] = True
        return new

    def _trip_conflicts(self, access: WarpAccess,
                        sub_e: "np.ndarray[Any, Any]",
                        sub_t: "np.ndarray[Any, Any]",
                        sub_a: "np.ndarray[Any, Any]",
                        sub_m: "np.ndarray[Any, Any]",
                        is_write: bool, wid: int, has_dup: bool) -> int:
        """Report the conflicting lanes of a batched check; returns new races.

        Reproduces the scalar walk exactly. For a *write*, only the first
        lane per entry trips (state 2/3 owned elsewhere -> WAR/WAW, state 4
        -> WAR) and then takes ownership, turning later same-entry lanes
        into silent latest-writer updates; the recorded owner thread ends
        as the last lane. For a *read*, every conflicting lane is a RAW
        trip against an unchanged state-3 entry, so the trip count is the
        lane multiplicity and each lane contributes a thread-pair key.
        """
        log = self.log
        e_list = sub_e.tolist()
        t_list = sub_t.tolist()
        owners = self.tid[sub_e].tolist()

        if not has_dup:
            # one trip per lane, each lane its own entry, report in lane
            # order — the common fully-diverged warp
            a_list = sub_a.tolist()
            if is_write:
                rows = [(e, RaceKind.WAW if mm else RaceKind.WAR, a, o, t, 1)
                        for e, mm, a, o, t in zip(e_list, sub_m.tolist(),
                                                  a_list, owners, t_list)]
            else:
                rows = [(e, RaceKind.RAW, a, o, t, 1)
                        for e, a, o, t in zip(e_list, a_list, owners, t_list)]
            new = log.trip_batch(
                RaceCategory.SHARED_BARRIER, MemSpace.SHARED, rows,
                owner_block=access.block_id, access_block=access.block_id,
                pc=access.pc)
            if is_write:
                self.tid[sub_e] = sub_t
                self.wid[sub_e] = wid
                self.M[sub_e] = True
                self.S[sub_e] = False
            return new

        uniq, first, dup_counts = np.unique(sub_e, return_index=True,
                                            return_counts=True)
        order = np.argsort(first, kind="stable")
        rows = []
        for k in order.tolist():
            i = int(first[k])
            entry = int(uniq[k])
            if is_write:
                kind = RaceKind.WAW if bool(sub_m[i]) else RaceKind.WAR
                trips = 1
            else:
                kind = RaceKind.RAW
                trips = int(dup_counts[k])
            rows.append((entry, kind, int(sub_a[i]), owners[i],
                         t_list[i], trips))
        new = log.trip_batch(
            RaceCategory.SHARED_BARRIER, MemSpace.SHARED, rows,
            owner_block=access.block_id, access_block=access.block_id,
            pc=access.pc)
        if is_write:
            # after reporting, the warp owns the entry; the last writing
            # lane per entry is the recorded thread (latest-writer rule)
            rev_e = sub_e[::-1]
            u2, ridx = np.unique(rev_e, return_index=True)
            self.tid[u2] = sub_t[::-1][ridx]
            self.wid[u2] = wid
            self.M[u2] = True
            self.S[u2] = False
        else:
            # reads leave the entry untouched but every lane's thread pair
            # is a distinct observable conflict
            log.note_pairs(
                RaceCategory.SHARED_BARRIER, RaceKind.RAW, MemSpace.SHARED,
                zip(e_list, owners, t_list))
        return new

    # ------------------------------------------------------------------

    def _same_owner(self, entry: int, tid: int, wid: int) -> bool:
        """Owner comparison: by warp normally, by thread under re-grouping."""
        if self.regroup:
            return self.tid[entry] == tid
        return self.wid[entry] == wid

    def _take_ownership(self, entry: int, tid: int, wid: int,
                        is_write: bool) -> None:
        self.tid[entry] = tid
        self.wid[entry] = wid
        self.M[entry] = is_write
        self.S[entry] = False

    def _check_one(self, entry: int, tid: int, wid: int,
                   is_write: bool) -> Optional[RaceKind]:
        m = self.M[entry]
        s = self.S[entry]

        if m and s:  # State 1: virgin
            self._take_ownership(entry, tid, wid, is_write)
            return None

        if not m and not s:  # State 2: single reader
            if not is_write:
                if not self._same_owner(entry, tid, wid):
                    self.S[entry] = True
                return None
            if self._same_owner(entry, tid, wid):
                # same warp's ordered write upgrades the entry
                self._take_ownership(entry, tid, wid, True)
                return None
            return RaceKind.WAR

        if m and not s:  # State 3: written by owner
            if self._same_owner(entry, tid, wid):
                if is_write:
                    self.tid[entry] = tid  # latest writer
                return None
            return RaceKind.RAW if not is_write else RaceKind.WAW

        # State 4: read by multiple warps
        if not is_write:
            return None
        return RaceKind.WAR
