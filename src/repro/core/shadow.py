"""Shared-memory shadow table: the Fig. 3 state machine.

Each shared-memory shadow entry holds ``(tid, M, S)``:

- **State 1** ``M=1, S=1`` — virgin (no access since the last barrier);
- **State 2** ``M=0, S=0`` — read by exactly the thread in ``tid``;
- **State 3** ``M=1, S=0`` — written (at least once) by ``tid``;
- **State 4** ``M=0, S=1`` — read by threads of more than one warp.

Races are reported only between threads of *different warps* (threads of a
warp execute in lockstep and cannot race across instructions), except that
same-instruction WAW between lanes of one warp is caught before issue
(:meth:`SharedShadowTable.intra_warp_waw`). When dynamic warp re-grouping is
enabled, warp membership is unstable and comparisons fall back to thread
identity (§III-A).

Barriers reset every entry of the block to virgin. Fences and locksets are
evaluated only for global memory (§VI-C2), so this table is the pure
happens-before detector.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.common.types import (
    AccessKind,
    MemSpace,
    RaceCategory,
    RaceKind,
    WarpAccess,
)
from repro.core.granularity import GranularityMap
from repro.core.races import RaceLog, RaceReport


def _overlapping_write(seen: dict, entry: int,
                       la: Any) -> Optional[object]:
    """Register write lane ``la`` under ``entry``; return a previously
    registered lane whose byte footprint overlaps it (None otherwise)."""
    lo, hi = la.footprint()
    bucket = seen.setdefault(entry, [])
    for prev in bucket:
        p_lo, p_hi = prev.footprint()
        if lo < p_hi and p_lo < hi:
            return prev
    bucket.append(la)
    return None


class SharedShadowTable:
    """Shadow entries for one thread block's shared memory."""

    def __init__(self, region_bytes: int, granularity: int,
                 log: RaceLog, regroup: bool = False) -> None:
        self.gmap = GranularityMap(granularity)
        self.n = self.gmap.num_entries(region_bytes)
        self.log = log
        self.regroup = regroup
        # entry fields; virgin encoded as M=1, S=1
        self.tid = np.full(self.n, -1, dtype=np.int64)
        self.wid = np.full(self.n, -1, dtype=np.int64)
        self.M = np.ones(self.n, dtype=bool)
        self.S = np.ones(self.n, dtype=bool)
        self.resets = 0

    # ------------------------------------------------------------------

    def barrier_reset(self) -> int:
        """Invalidate all entries at a barrier; returns entries reset."""
        self.M[:] = True
        self.S[:] = True
        self.tid[:] = -1
        self.wid[:] = -1
        self.resets += 1
        return self.n

    # ------------------------------------------------------------------

    def intra_warp_waw(self, access: WarpAccess) -> int:
        """Same-instruction WAW: two lanes of one warp write one *location*.

        The RDU checks simultaneous requests to the same location
        associatively before issue (§III-A / §IV-B). The comparison is on
        byte footprints, not shadow entries: a warp whose lanes write
        successive addresses covered by one coarse entry is implicitly
        synchronized and must not be reported (§VI-A1). Returns the number
        of distinct new races reported.
        """
        if access.kind == AccessKind.READ:
            return 0
        seen: dict = {}
        new = 0
        for entry, la in self.gmap.lanes_to_entries(access.lanes):
            if la.kind == AccessKind.READ:
                continue
            prev = _overlapping_write(seen, entry, la)
            if prev is None:
                continue
            if self.log.report(RaceReport(
                category=RaceCategory.SHARED_BARRIER,
                kind=RaceKind.WAW,
                space=MemSpace.SHARED,
                entry=entry,
                addr=la.addr,
                owner_tid=access.thread_id(prev.lane),
                access_tid=access.thread_id(la.lane),
                owner_block=access.block_id,
                access_block=access.block_id,
                pc=access.pc,
            )):
                new += 1
        return new

    def check(self, access: WarpAccess) -> int:
        """Run the state machine for every (entry, lane) of a warp access.

        Returns the number of distinct new races reported.
        """
        new = self.intra_warp_waw(access)
        for entry, la in self.gmap.lanes_to_entries(access.lanes):
            tid = access.thread_id(la.lane)
            race = self._check_one(
                entry, tid, access.warp_id,
                is_write=la.kind != AccessKind.READ,
            )
            if race is not None:
                if self.log.report(RaceReport(
                    category=RaceCategory.SHARED_BARRIER,
                    kind=race,
                    space=MemSpace.SHARED,
                    entry=entry,
                    addr=la.addr,
                    owner_tid=int(self.tid[entry]),
                    access_tid=tid,
                    owner_block=access.block_id,
                    access_block=access.block_id,
                    pc=access.pc,
                )):
                    new += 1
                # after reporting, a write takes ownership so later
                # conflicts are still observable
                if la.kind != AccessKind.READ:
                    self._take_ownership(entry, tid, access.warp_id, True)
        return new

    # ------------------------------------------------------------------

    def _same_owner(self, entry: int, tid: int, wid: int) -> bool:
        """Owner comparison: by warp normally, by thread under re-grouping."""
        if self.regroup:
            return self.tid[entry] == tid
        return self.wid[entry] == wid

    def _take_ownership(self, entry: int, tid: int, wid: int,
                        is_write: bool) -> None:
        self.tid[entry] = tid
        self.wid[entry] = wid
        self.M[entry] = is_write
        self.S[entry] = False

    def _check_one(self, entry: int, tid: int, wid: int,
                   is_write: bool) -> Optional[RaceKind]:
        m = self.M[entry]
        s = self.S[entry]

        if m and s:  # State 1: virgin
            self._take_ownership(entry, tid, wid, is_write)
            return None

        if not m and not s:  # State 2: single reader
            if not is_write:
                if not self._same_owner(entry, tid, wid):
                    self.S[entry] = True
                return None
            if self._same_owner(entry, tid, wid):
                # same warp's ordered write upgrades the entry
                self._take_ownership(entry, tid, wid, True)
                return None
            return RaceKind.WAR

        if m and not s:  # State 3: written by owner
            if self._same_owner(entry, tid, wid):
                if is_write:
                    self.tid[entry] = tid  # latest writer
                return None
            return RaceKind.RAW if not is_write else RaceKind.WAW

        # State 4: read by multiple warps
        if not is_write:
            return None
        return RaceKind.WAR
