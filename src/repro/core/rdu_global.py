"""Global-memory Race Detection Unit (paper §IV-B, Fig. 6).

One global RDU sits in every memory slice. Functionally the RDUs share the
global shadow memory (entries are partitioned by address exactly like the
L2 slices), so this module models them as a single checker plus a traffic
generator: for every global warp access the RDU

1. race-checks the touched shadow entries against the access (using the
   replicated race register file for owner fence IDs), and
2. issues the shadow-memory read-modify-write traffic into the memory
   system as *background* requests — they consume L2 capacity and DRAM
   bandwidth but never stall the issuing warp, which is precisely why the
   hardware detector's overhead is contention-only.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.config import GPUConfig, HAccRGConfig
from repro.common.types import Transaction, WarpAccess
from repro.core.clocks import RaceRegisterFile
from repro.core.races import RaceLog
from repro.core.shadow_memory import GlobalShadowMemory


class GlobalRDU:
    """The global-memory race checker + shadow traffic generator."""

    def __init__(self, gpu_config: GPUConfig, config: HAccRGConfig,
                 log: RaceLog, rrf: RaceRegisterFile) -> None:
        self.gpu_config = gpu_config
        self.config = config
        self.log = log
        self.rrf = rrf
        self.shadow: Optional[GlobalShadowMemory] = None
        self.shadow_transactions = 0

    # ------------------------------------------------------------------

    def kernel_started(self, region_bytes: int, shadow_base: int) -> None:
        """Allocate shadow entries covering the kernel's device data."""
        self.shadow = GlobalShadowMemory(
            region_bytes, self.config, self.log, self.rrf,
            shadow_base=shadow_base,
        )

    def kernel_ended(self) -> None:
        if self.shadow is not None:
            self.shadow.invalidate()

    # ------------------------------------------------------------------

    def check_access(self, access: WarpAccess,
                     lane_l1_hit: Optional[Sequence[bool]] = None
                     ) -> List[Transaction]:
        """Race-check one access; returns the shadow RMW transactions.

        Each distinct touched shadow entry becomes part of a shadow-line
        read-modify-write; distinct lines become one write-allocating
        transaction each (the RDU's L2 access pattern).
        """
        if self.shadow is None:
            return []
        entries = self.shadow.check(access, lane_l1_hit=lane_l1_hit)
        line = self.gpu_config.l2_line
        lines = sorted({
            self.shadow.shadow_addr_of_entry(e) // line * line
            for e in entries
        })
        txns = [Transaction(a, line, is_write=True, is_shadow=True)
                for a in lines]
        self.shadow_transactions += len(txns)
        return txns

    # ------------------------------------------------------------------

    @property
    def id_bits(self) -> int:
        """Identifier bits carried by request packets (§V): sync + fence +
        atomic IDs travel with every global request when detection is on."""
        c = self.config
        return c.sync_id_bits + c.fence_id_bits + c.atomic_sig_bits
