"""HAccRG detector: the hook implementation that wires RDUs into the GPU.

:class:`HAccRGDetector` implements :class:`repro.gpu.hooks.DetectorHooks`:

- a :class:`SharedRDU` per SM (created lazily), holding per-block shared
  shadow tables; barrier invalidation stalls the releasing block for the
  parallel-reset cycles;
- one :class:`GlobalRDU` (functionally; physically per memory slice) whose
  shadow read-modify-writes are injected into the memory system as
  non-stalling background traffic — global detection overhead is pure L2
  pollution and DRAM contention, as in the hardware proposal;
- the race register file of warp fence epochs;
- Bloom-signature maintenance of per-thread atomic IDs on lock markers;
- the Fig. 8 ``shared_shadow_in_global`` split: shared shadow entries are
  fetched through the L1 and *do* stall the access on misses.

Usage::

    cfg = HAccRGConfig(mode=DetectionMode.FULL)
    sim = GPUSimulator(GPUConfig())
    det = HAccRGDetector(cfg, sim)
    sim.attach_detector(det)
    sim.launch(kernel, grid, block, args)
    print(det.log.reports)
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.common.config import HAccRGConfig
from repro.common.types import MemSpace, Transaction, WarpAccess
from repro.core.bloom import BloomSignature
from repro.core.clocks import RaceRegisterFile
from repro.core.races import RaceLog
from repro.core.rdu_global import GlobalRDU
from repro.core.rdu_shared import SharedRDU
from repro.gpu.hooks import NO_EFFECT, DetectorHooks, TimingEffect


class HAccRGDetector(DetectorHooks):
    """The hardware-accelerated race detector of the paper."""

    def __init__(self, config: HAccRGConfig, sim: Any) -> None:
        self.config = config
        self.sim = sim
        self.log = RaceLog()
        self.rrf = RaceRegisterFile(config.fence_id_bits)
        self.bloom = BloomSignature(config.atomic_sig_bits,
                                    config.atomic_sig_bins)
        self.shared_rdus: Dict[int, SharedRDU] = {}
        self.global_rdu = GlobalRDU(sim.config, config, self.log, self.rrf)
        self._shared_shadow_regions: Dict[int, int] = {}  # block_id -> base
        #: (tracked region bytes, shadow base) — reserved at first launch
        self._global_shadow_region: Optional[tuple] = None
        self._active = False
        # Fig. 8 instrumentation counters
        self.shared_shadow_stall_cycles = 0
        self.shared_shadow_misses = 0

    # ------------------------------------------------------------------

    @property
    def request_id_bits(self) -> int:
        if self.config.mode.global_enabled:
            return self.global_rdu.id_bits
        return 0

    def _shared_rdu(self, sm_id: int) -> SharedRDU:
        rdu = self.shared_rdus.get(sm_id)
        if rdu is None:
            rdu = SharedRDU(sm_id, self.sim.config, self.config, self.log)
            self.shared_rdus[sm_id] = rdu
        return rdu

    # ------------------------------------------------------------------
    # kernel / block lifecycle

    def on_kernel_start(self, launch: Any, device_mem: Any) -> None:
        self._active = True
        if self.config.mode.global_enabled:
            if self._global_shadow_region is None:
                # reserve the shadow region in device memory once, covering
                # the application data present at first launch (cudaMalloc
                # at kernel launch, §IV-B); later launches of the workload
                # reuse it, re-invalidated between kernels
                region = device_mem.allocated_bytes
                from repro.core.shadow_memory import GlobalShadowMemory
                probe = GlobalShadowMemory(region, self.config, RaceLog(),
                                           self.rrf)
                base = device_mem.malloc(max(1, probe.footprint_bytes()),
                                         name="haccrg_global_shadow",
                                         internal=True)
                self._global_shadow_region = (region, base)
            region, shadow_base = self._global_shadow_region
            self.global_rdu.kernel_started(region, shadow_base)

    def on_kernel_end(self) -> None:
        self._active = False
        if self.config.mode.global_enabled:
            self.global_rdu.kernel_ended()

    def on_block_start(self, block: Any) -> None:
        if not self.config.mode.shared_enabled:
            return
        shadow_base: Optional[int] = None
        if self.config.shared_shadow_in_global:
            # Fig. 8: the block's shared shadow entries live in global
            # memory; allocate a region so fetches go through L1/L2
            shared_bytes = block.launch.kernel.shared_bytes()
            if shared_bytes:
                entries = -(-shared_bytes // self.config.shared_granularity)
                entry_bytes = -(-self.config.shared_entry_bits() // 8)
                shadow_base = self.sim.device_mem.malloc(
                    max(1, entries * entry_bytes),
                    name="haccrg_shared_shadow", internal=True,
                )
        self._shared_rdu(block.sm_id).block_started(block, shadow_base)

    def on_block_end(self, block: Any) -> None:
        if self.config.mode.shared_enabled and block.sm_id is not None:
            self._shared_rdu(block.sm_id).block_ended(block)

    # ------------------------------------------------------------------
    # access hooks

    def on_warp_access(self, access: WarpAccess, now: int,
                       lane_l1_hit: Optional[Sequence[bool]] = None
                       ) -> TimingEffect:
        if not self._active:
            return NO_EFFECT
        if access.space == MemSpace.SHARED:
            return self._on_shared(access, now)
        return self._on_global(access, now, lane_l1_hit)

    def _on_shared(self, access: WarpAccess, now: int) -> TimingEffect:
        if not self.config.mode.shared_enabled:
            return NO_EFFECT
        rdu = self._shared_rdu(access.sm_id)
        rdu.check_access(access)
        if not self.config.shared_shadow_in_global:
            # dedicated hardware shadow: detection rides the bank access
            return NO_EFFECT
        # Fig. 8: fetch the shadow lines through the L1; misses stall
        lines = rdu.shadow_fetch_lines(access)
        if not lines:
            return NO_EFFECT
        txns = [Transaction(a, self.sim.config.l1d_line, is_write=False,
                            is_shadow=True) for a in lines]
        latency, levels = self.sim.memory.warp_access(access.sm_id, txns, now)
        stall = 0
        if any(level != "l1" for level in levels):
            stall = latency
            self.shared_shadow_misses += sum(
                1 for level in levels if level != "l1"
            )
        self.shared_shadow_stall_cycles += stall
        return TimingEffect(stall_cycles=stall)

    def _on_global(self, access: WarpAccess, now: int,
                   lane_l1_hit: Optional[Sequence[bool]]) -> TimingEffect:
        if not self.config.mode.global_enabled:
            return NO_EFFECT
        txns = self.global_rdu.check_access(access, lane_l1_hit=lane_l1_hit)
        if txns and self.sim.timing_enabled:
            # shadow RMWs ride the memory system without stalling the warp
            self.sim.memory.background_access(access.sm_id, txns, now,
                                              id_bits=self.request_id_bits)
        return NO_EFFECT

    # ------------------------------------------------------------------
    # synchronization hooks

    def on_barrier(self, block: Any, now: int) -> TimingEffect:
        stall = 0
        if self.config.mode.shared_enabled and block.sm_id is not None:
            rdu = self._shared_rdu(block.sm_id)
            if self.config.shared_shadow_in_global:
                # invalidation becomes a memset of the in-memory shadow;
                # background traffic, small fixed trigger cost
                base = rdu._shadow_base.get(block.block_id)
                table = rdu.table_for(block.block_id)
                if base is not None and table is not None:
                    table.barrier_reset()
                    entry_bytes = -(-self.config.shared_entry_bits() // 8)
                    nbytes = table.n * entry_bytes
                    line = self.sim.config.l2_line
                    txns = [
                        Transaction(base + off, line, is_write=True,
                                    is_shadow=True)
                        for off in range(0, nbytes, line)
                    ]
                    if self.sim.timing_enabled:
                        self.sim.memory.background_access(
                            block.sm_id, txns, now
                        )
                    stall += 4
            else:
                stall += rdu.barrier_invalidate(block)
        if self.config.mode.global_enabled:
            # sync-ID increment bookkeeping for the §VI-A2 ID-size study
            will_increment = (block.global_accessed_since_barrier
                              or not self.config.sync_id_lazy_increment)
            self.rrf.note_sync_increment(
                block.sync_id + (1 if will_increment else 0),
                self.config.sync_id_mask,
            )
        return TimingEffect(stall_cycles=stall)

    def on_fence(self, warp: Any, now: int) -> TimingEffect:
        if self.config.mode.global_enabled:
            self.rrf.on_fence(warp.warp_id, warp.fence_id)
        return NO_EFFECT

    # ------------------------------------------------------------------
    # lock markers -> atomic-ID signatures

    def on_lock_acquire(self, thread: Any, addr: int) -> int:
        return self.bloom.insert(thread.lock_sig, addr)

    def on_lock_release(self, thread: Any, addr: int) -> int:
        # clear-on-empty (§III-B): signature survives until all locks drop
        if not thread.held_locks:
            return 0
        return thread.lock_sig
